#!/usr/bin/env python
"""Benchmark-regression gate: diff a pytest-benchmark run against a baseline.

CI runs the smoke benchmarks per PR and calls this script to compare the
fresh ``--benchmark-json`` output against the committed
``BENCH_BASELINE.json``. Because the baseline was recorded on different
hardware than the CI runner, raw ratios mix machine speed with real
regressions; the gate therefore normalizes every benchmark's
current/baseline ratio by the *median* ratio across all benchmarks (the
machine-speed factor) and fails only when a benchmark is more than
``--threshold`` (default 1.5) times slower than that factor — i.e. it
regressed relative to the rest of the suite.

Usage::

    # gate (exit 1 on regression), writing a delta table for CI
    python benchmarks/compare_baseline.py BENCH_BASELINE.json \
        benchmark-results.json --threshold 1.5 --summary "$GITHUB_STEP_SUMMARY"

    # refresh the committed baseline from a fresh smoke run
    python benchmarks/compare_baseline.py --update BENCH_BASELINE.json \
        benchmark-results.json

The baseline is the reduced form ``{"stat": ..., "recorded_with": ...,
"benchmarks": {fullname: seconds}}``; ``--update`` produces it from a raw
pytest-benchmark JSON. Stdlib only — no third-party imports.
"""

import argparse
import json
import statistics
import sys


def load_times(path, stat):
    """``{fullname: seconds}`` from a raw pytest-benchmark JSON or a
    reduced baseline file."""
    with open(path) as handle:
        payload = json.load(handle)
    if isinstance(payload.get("benchmarks"), dict):
        return dict(payload["benchmarks"])  # reduced baseline
    return {
        bench["fullname"]: bench["stats"][stat]
        for bench in payload.get("benchmarks", [])
    }


def write_baseline(baseline_path, results_path, stat):
    times = load_times(results_path, stat)
    if not times:
        print(f"no benchmarks found in {results_path}", file=sys.stderr)
        return 1
    payload = {
        "stat": stat,
        "recorded_with": "BENCH_SMOKE=1 --benchmark-min-rounds=1 "
        "--benchmark-warmup=off --benchmark-max-time=0.05",
        "benchmarks": {name: times[name] for name in sorted(times)},
    }
    with open(baseline_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(times)} baseline entries to {baseline_path}")
    return 0


def check_required(baseline, current, required):
    """Enforce presence of gated suites on both sides of the diff.

    A benchmark under a ``--require`` prefix that exists in the baseline
    but not in the results (or vice versa) is a hard failure, not the
    soft "missing" warning — deleting a path benchmark must not silently
    un-gate path performance.
    """
    problems = []
    for prefix in required:
        base_names = {n for n in baseline if n.startswith(prefix)}
        cur_names = {n for n in current if n.startswith(prefix)}
        if not base_names:
            problems.append(f"no baseline entries under required {prefix!r}")
        if not cur_names:
            problems.append(f"no result entries under required {prefix!r}")
        for name in sorted(base_names - cur_names):
            problems.append(f"required benchmark missing from results: {name}")
        for name in sorted(cur_names - base_names):
            problems.append(f"required benchmark missing from baseline: {name}")
    return problems


def compare(baseline_path, results_path, stat, threshold, summary_path,
            required=()):
    baseline = load_times(baseline_path, stat)
    current = load_times(results_path, stat)
    shared = sorted(set(baseline) & set(current))
    added = sorted(set(current) - set(baseline))
    removed = sorted(set(baseline) - set(current))
    if not shared:
        print("no overlapping benchmarks between baseline and results",
              file=sys.stderr)
        return 1
    required_problems = check_required(baseline, current, required)

    ratios = {name: current[name] / baseline[name] for name in shared}
    speed_factor = statistics.median(ratios.values())
    rows = []
    regressions = []
    for name in shared:
        normalized = ratios[name] / speed_factor
        status = "ok"
        if normalized > threshold:
            status = "REGRESSION"
            regressions.append((name, normalized))
        elif normalized < 1 / threshold:
            status = "improved"
        rows.append((name, baseline[name], current[name], ratios[name],
                     normalized, status))

    lines = [
        "## Benchmark regression gate",
        "",
        f"Machine-speed factor (median current/baseline ratio): "
        f"`{speed_factor:.3f}`; threshold: `{threshold}x` normalized.",
        "",
        "| benchmark | baseline | current | ratio | normalized | status |",
        "| --- | ---: | ---: | ---: | ---: | --- |",
    ]
    for name, base, cur, ratio, normalized, status in rows:
        flag = {"REGRESSION": "❌", "improved": "✅"}.get(status, "")
        lines.append(
            f"| `{name}` | {base * 1000:.3f} ms | {cur * 1000:.3f} ms "
            f"| {ratio:.2f}x | {normalized:.2f}x | {flag} {status} |"
        )
    for name in added:
        lines.append(f"| `{name}` | — | {current[name] * 1000:.3f} ms "
                     f"| — | — | new |")
    for name in removed:
        lines.append(f"| `{name}` | {baseline[name] * 1000:.3f} ms | — "
                     f"| — | — | missing |")
    report = "\n".join(lines)
    print(report)
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(report + "\n")

    if removed:
        print(f"\nWARNING: {len(removed)} baseline benchmark(s) missing "
              "from this run", file=sys.stderr)
    if required_problems:
        for problem in required_problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    if regressions:
        worst = max(regressions, key=lambda item: item[1])
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) slower than "
            f"{threshold}x the machine-normalized baseline "
            f"(worst: {worst[0]} at {worst[1]:.2f}x)",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: no benchmark beyond {threshold}x normalized slowdown")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="reduced baseline JSON")
    parser.add_argument("results", help="raw pytest-benchmark JSON")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="max allowed normalized slowdown (default 1.5)")
    parser.add_argument("--stat", default="mean",
                        help="pytest-benchmark stat to compare (default mean)")
    parser.add_argument("--summary", default="",
                        help="file to append the markdown delta table to "
                        "(e.g. $GITHUB_STEP_SUMMARY)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="PREFIX",
                        help="fail when any benchmark under PREFIX is "
                        "missing from either side (repeatable); used to "
                        "pin gated suites like the path benchmarks")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the results instead "
                        "of comparing")
    args = parser.parse_args(argv)
    if args.update:
        return write_baseline(args.baseline, args.results, args.stat)
    return compare(args.baseline, args.results, args.stat, args.threshold,
                   args.summary, required=args.require)


if __name__ == "__main__":
    sys.exit(main())
