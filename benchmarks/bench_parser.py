"""Frontend micro-benchmarks: tokenize / parse / pretty / round-trip.

The LDBC reference grammar is ANTLR-generated; our hand-written
recursive-descent parser should stay comfortably in the tens of
microseconds per query so parsing never dominates query latency.
"""

import pytest

from repro.lang.lexer import tokenize
from repro.lang.parser import parse_statement
from repro.lang.pretty import pretty_statement

QUERIES = {
    "simple": "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'",
    "multi_graph": (
        "CONSTRUCT (c)<-[:worksAt]-(n) MATCH (c:Company) ON company_graph, "
        "(n:Person {employer=e}) ON social_graph WHERE c.name = e "
        "UNION social_graph"
    ),
    "paths": (
        "CONSTRUCT (n)-/@p:localPeople{distance:=c}/->(m) "
        "MATCH (n)-/3 SHORTEST p<:knows*> COST c/->(m) "
        "WHERE (n:Person) AND (m:Person) AND n.firstName = 'John' "
        "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)"
    ),
    "views": (
        "GRAPH VIEW sg2 AS (PATH wKnows = (x)-[e:knows]->(y) "
        "WHERE NOT 'Acme' IN y.employer COST 1 / (1 + e.nr_messages) "
        "CONSTRUCT sg1, (n)-/@p:toWagner/->(m) "
        "MATCH (n:Person)-/p<~wKnows*>/->(m:Person) ON sg1 "
        "WHERE (m)-[:hasInterest]->(:Tag {name='Wagner'}))"
    ),
}


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_tokenize(benchmark, name):
    tokens = benchmark(tokenize, QUERIES[name])
    assert tokens[-1].kind == "EOF"


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_parse(benchmark, name):
    statement = benchmark(parse_statement, QUERIES[name])
    assert statement is not None


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_round_trip(benchmark, name):
    statement = parse_statement(QUERIES[name])

    def round_trip():
        return parse_statement(pretty_statement(statement))

    assert benchmark(round_trip) == statement
