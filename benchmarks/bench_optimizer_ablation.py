"""EXP-B1 — planner ablation: greedy atom ordering vs. syntax order.

DESIGN.md calls out the greedy "expand from what is bound" ordering as a
design choice; this bench quantifies it. The triangle-ish pattern below
begins, in syntax order, with an unlabeled unconstrained node scan; the
greedy planner instead starts from the selective Tag lookup. The naive
ordering is expected to lose by a growing factor.
"""

import pytest

from repro.eval.context import EvalContext
from repro.eval.match import evaluate_match
from repro.lang.lexer import tokenize
from repro.lang.parser import Parser

from .conftest import snb_engine

QUERY = (
    "MATCH (m), (n:Person)-[:hasInterest]->(t:Tag {name='Wagner'}), "
    "(n)-[:knows]->(m) WHERE (m:Person)"
)


def _match_clause(text):
    parser = Parser(tokenize(text))
    clause = parser._match_clause()
    parser.expect_eof()
    return clause


def run_match(engine, clause, naive):
    ctx = EvalContext(engine.catalog)
    ctx.naive_planner = naive
    return evaluate_match(clause, ctx)


@pytest.mark.parametrize("persons", [50, 100])
def test_greedy_planner(benchmark, persons):
    engine = snb_engine(persons)
    clause = _match_clause(QUERY)
    table = benchmark(run_match, engine, clause, False)
    assert table is not None


@pytest.mark.parametrize("persons", [50, 100])
def test_naive_syntax_order(benchmark, persons):
    engine = snb_engine(persons)
    clause = _match_clause(QUERY)
    table = benchmark(run_match, engine, clause, True)
    assert table is not None


def test_orders_agree(snb_small):
    clause = _match_clause(QUERY)
    assert run_match(snb_small, clause, True) == run_match(
        snb_small, clause, False
    )
