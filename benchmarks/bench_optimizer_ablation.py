"""EXP-B1 — planner ablation: cost-based vs. greedy heuristic vs. naive.

DESIGN.md calls out atom ordering as a design choice; this bench
quantifies it across all three planner modes:

* ``cost``      — the statistics-driven cardinality estimator (default),
* ``heuristic`` — the constant-weight greedy fallback,
* ``naive``     — pure syntax order (the ablation baseline).

The triangle-ish pattern below begins, in syntax order, with an
unlabeled unconstrained node scan; both planners instead start from the
selective Tag lookup, and the cost-based planner additionally sizes the
two edge expansions against the graph's degree statistics. The naive
ordering is expected to lose by a growing factor; the cost-based order
must match or beat the heuristic.
"""

import pytest

from repro.config import DEFAULT_CONFIG, NAIVE_CONFIG
from repro.eval.context import EvalContext
from repro.eval.match import evaluate_match
from repro.lang.lexer import tokenize
from repro.lang.parser import Parser

from .conftest import sizes, snb_engine

QUERY = (
    "MATCH (m), (n:Person)-[:hasInterest]->(t:Tag {name='Wagner'}), "
    "(n)-[:knows]->(m) WHERE (m:Person)"
)

PERSONS = sizes([50, 100], [15])

MODE_CONFIGS = {
    "cost": DEFAULT_CONFIG,
    "heuristic": DEFAULT_CONFIG.with_(planner="greedy"),
    "naive": NAIVE_CONFIG,
}
MODES = tuple(MODE_CONFIGS)


def _match_clause(text):
    parser = Parser(tokenize(text))
    clause = parser._match_clause()
    parser.expect_eof()
    return clause


def run_match(engine, clause, mode):
    ctx = EvalContext(engine.catalog, config=MODE_CONFIGS[mode])
    return evaluate_match(clause, ctx)


@pytest.mark.parametrize("persons", PERSONS)
def test_cost_based_planner(benchmark, persons):
    engine = snb_engine(persons)
    clause = _match_clause(QUERY)
    engine.graph("snb").statistics()  # statistics are amortized; warm them
    table = benchmark(run_match, engine, clause, "cost")
    assert table is not None


@pytest.mark.parametrize("persons", PERSONS)
def test_greedy_planner(benchmark, persons):
    engine = snb_engine(persons)
    clause = _match_clause(QUERY)
    table = benchmark(run_match, engine, clause, "heuristic")
    assert table is not None


@pytest.mark.parametrize("persons", PERSONS)
def test_naive_syntax_order(benchmark, persons):
    engine = snb_engine(persons)
    clause = _match_clause(QUERY)
    table = benchmark(run_match, engine, clause, "naive")
    assert table is not None


@pytest.mark.parametrize("mode", MODES)
def test_orders_agree(snb_small, mode):
    """Every planner mode must produce the identical binding table."""
    clause = _match_clause(QUERY)
    assert run_match(snb_small, clause, mode) == run_match(
        snb_small, clause, "naive"
    )
