"""EXP-S1 — snapshot cold start vs rebuild, and shared-mapping RSS.

Two claims justify the storage subsystem (ISSUE 8):

* ``cold_start`` — ``GCoreEngine.open(path)`` on a saved snapshot must
  beat regenerating and registering the same dataset by >= 20x (the
  acceptance gate, asserted in full mode where the dataset is big
  enough for the ratio to be meaningful; smoke mode records timings
  only). The open is mmap + directory decode; the rebuild pays
  generation, validation and index construction.
* ``worker_rss`` — N worker processes attaching to one snapshot share
  its pages; the per-worker peak RSS (recorded in ``extra_info``)
  stays flat as the mapped graph grows, where fork-inherited dicts
  would be copied on write.

BENCH_7.json records the measured numbers.
"""

import multiprocessing
import os
import resource
import time

import pytest

from repro import GCoreEngine
from repro.datasets import load

from .conftest import SMOKE, full_persons

PERSONS = full_persons(300) if not SMOKE else 40
SEED = 13
WORKERS = 4

_FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()


def rebuild_engine():
    engine = GCoreEngine()
    load("snb", scale=PERSONS, seed=SEED).install(engine)
    return engine


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("bench_snapshot") / "snb.gsnap")
    rebuild_engine().save(path)
    return path


def test_cold_start_open(benchmark, snapshot_path):
    engine = benchmark(GCoreEngine.open, snapshot_path)
    assert "snb" in engine.catalog.graph_names()
    benchmark.extra_info["snapshot_bytes"] = os.path.getsize(snapshot_path)


def test_cold_start_rebuild(benchmark):
    engine = benchmark(rebuild_engine)
    assert "snb" in engine.catalog.graph_names()


@pytest.mark.skipif(SMOKE, reason="ratio is meaningless at smoke scale")
def test_cold_start_speedup_floor(snapshot_path):
    """The acceptance gate: snapshot open >= 20x faster than rebuild."""
    started = time.perf_counter()
    rebuild_engine()
    rebuild_seconds = time.perf_counter() - started

    best_open = float("inf")
    for _ in range(5):
        started = time.perf_counter()
        GCoreEngine.open(snapshot_path)
        best_open = min(best_open, time.perf_counter() - started)

    assert best_open > 0
    speedup = rebuild_seconds / best_open
    assert speedup >= 20, (
        f"snapshot open {best_open:.4f}s vs rebuild {rebuild_seconds:.4f}s "
        f"= {speedup:.1f}x (< 20x floor)"
    )


def _attach_and_report(path, queue):
    from repro.storage import attach

    snapshot = attach(path)
    graph = snapshot.graph("snb")
    # Touch the hot read surfaces so the pages are genuinely resident.
    total = sum(1 for _ in graph.nodes)
    total += sum(len(graph.out_edges(node)) for node in graph.nodes)
    queue.put((total, resource.getrusage(resource.RUSAGE_SELF).ru_maxrss))


@pytest.mark.skipif(not _FORK_AVAILABLE, reason="needs process workers")
def test_worker_rss(benchmark, snapshot_path):
    """Peak RSS of N workers attached to one mapping, in extra_info."""
    ctx = multiprocessing.get_context("fork")

    def attach_workers():
        queue = ctx.Queue()
        procs = [
            ctx.Process(target=_attach_and_report, args=(snapshot_path, queue))
            for _ in range(WORKERS)
        ]
        for proc in procs:
            proc.start()
        reports = [queue.get(timeout=60) for _ in procs]
        for proc in procs:
            proc.join(timeout=60)
        return reports

    reports = benchmark.pedantic(attach_workers, rounds=1, iterations=1)
    touched, rss_kib = zip(*reports)
    assert all(count > 0 for count in touched)
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["peak_rss_kib_max"] = max(rss_kib)
    benchmark.extra_info["peak_rss_kib_mean"] = sum(rss_kib) // len(rss_kib)
    benchmark.extra_info["snapshot_bytes"] = os.path.getsize(snapshot_path)
