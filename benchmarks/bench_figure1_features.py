"""EXP-F1 — Figure 1: the feature classes practitioners use, as workloads.

Figure 1 tallies the features requested across LDBC TUC use cases:
reachability (36), construction (34), pattern matching (32), shortest
path search (19), clustering (14). For each class we run a representative
G-CORE workload on the generated SNB graph, demonstrating (with timings)
that the language covers every class the survey identified. The harness
(`python -m repro.bench figure1`) prints the survey table itself.
"""

import pytest

WORKLOADS = {
    "graph_reachability": (
        "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) "
        "WHERE n.firstName = 'John'"
    ),
    "graph_construction": (
        "CONSTRUCT (x GROUP e :Company {name:=e})<-[:worksAt]-(n) "
        "MATCH (n:Person {employer=e})"
    ),
    "pattern_matching": (
        "CONSTRUCT (n)-[e:coFan]->(m) "
        "MATCH (n:Person)-[:hasInterest]->(t:Tag)<-[:hasInterest]-(m:Person)"
    ),
    "shortest_path_search": (
        "CONSTRUCT (n)-/@p:route {d := c}/->(m) "
        "MATCH (n:Person)-/p<:knows*> COST c/->(m:Person) "
        "WHERE n.firstName = 'John' "
        "AND (m)-[:hasInterest]->(:Tag {name='Wagner'})"
    ),
    # Clustering proxy: group persons into their city communities and
    # materialize one :Community node per city with a member count.
    "graph_clustering": (
        "CONSTRUCT (x GROUP c :Community {city := c.name, "
        "members := COUNT(*)}) "
        "MATCH (n:Person)-[:isLocatedIn]->(c)"
    ),
}


@pytest.mark.parametrize("feature", sorted(WORKLOADS))
def test_figure1_feature_class(benchmark, snb_small, feature):
    statement = snb_small.parse(WORKLOADS[feature])
    result = benchmark(snb_small.run, statement)
    assert not result.is_empty()


@pytest.mark.parametrize("feature", ["graph_reachability", "pattern_matching"])
def test_figure1_feature_class_medium(benchmark, snb_medium, feature):
    statement = snb_medium.parse(WORKLOADS[feature])
    result = benchmark(snb_medium.run, statement)
    assert not result.is_empty()
