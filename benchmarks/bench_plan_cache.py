"""EXP-B3 — the prepared-query plan cache under repeated identical traffic.

The ROADMAP's "heavy traffic" scenario is the same parameterized query
arriving over and over. ``engine.run(text)`` keeps an LRU of
:class:`~repro.engine.PreparedQuery` objects keyed by query text, so the
second and later runs skip lexing, parsing and planning. The hot query
below is deliberately parse-heavy (a long WHERE conjunction) and cheap to
execute, isolating the amortized frontend cost: warm runs must be at
least 2x faster than cold runs (the acceptance bar for this cache).
"""

import time

import pytest

from repro import GCoreEngine
from repro.datasets import company_graph, social_graph

HOT_QUERY = (
    "CONSTRUCT (n) MATCH (n:Person {firstName='John', lastName='Doe'}) "
    "WHERE " + " AND ".join(f"n.firstName <> 'x{i}'" for i in range(100))
)

PARAM_QUERY = (
    "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = $company"
)


@pytest.fixture(scope="module")
def engine():
    eng = GCoreEngine()
    eng.register_graph("social_graph", social_graph(), default=True)
    eng.register_graph("company_graph", company_graph())
    return eng


def test_cold_run(benchmark, engine):
    """Every iteration re-lexes, re-parses and re-plans (cache cleared)."""

    def cold():
        engine.clear_plan_cache()
        return engine.run(HOT_QUERY)

    result = benchmark(cold)
    assert result.nodes == {"john"}


def test_warm_run(benchmark, engine):
    """Second-and-later runs of the identical text hit the plan cache."""
    engine.run(HOT_QUERY)  # warm the cache
    result = benchmark(engine.run, HOT_QUERY)
    assert result.nodes == {"john"}


def test_prepared_query_with_params(benchmark, engine):
    """The explicit prepare() path with per-run parameter values."""
    prepared = engine.prepare(PARAM_QUERY)
    result = benchmark(prepared.run, params={"company": "Acme"})
    assert result.nodes == {"john", "alice"}


def test_warm_runs_at_least_2x_faster(engine):
    """The acceptance bar: >= 2x speedup from the second run onwards."""

    def best(callable_, repeats=100):
        elapsed = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            callable_()
            elapsed = min(elapsed, time.perf_counter() - start)
        return elapsed

    def cold():
        engine.clear_plan_cache()
        engine.run(HOT_QUERY)

    cold_time = best(cold)
    engine.run(HOT_QUERY)
    warm_time = best(lambda: engine.run(HOT_QUERY))
    speedup = cold_time / warm_time
    assert speedup >= 2.0, (
        f"plan cache speedup only {speedup:.2f}x "
        f"(cold {cold_time * 1e6:.0f}us, warm {warm_time * 1e6:.0f}us)"
    )
