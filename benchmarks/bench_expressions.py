"""EXP-E1 — expression-engine ablation: vectorized kernels vs. interpreted.

Three workloads exercise the expression-heavy paths this PR vectorizes:

* ``filter_heavy_match`` — a two-hop MATCH whose WHERE carries pushable
  single-variable conjuncts (probe filters) plus a join conjunct
  (post-atom filter),
* ``group_by_aggregate`` — GROUP BY with COUNT(*)/MIN/COUNT DISTINCT
  over per-group column slices,
* ``projection`` — batch SELECT projection with concatenation and CASE.

Each runs in three modes:

* ``vectorized``   — compiled kernels + predicate pushdown (default),
* ``interpreted``  — columnar executor, row-at-a-time
  ``ExpressionEvaluator`` for WHERE/SELECT/GROUP BY (the expression
  ablation arm; pushdown stays, applied per row),
* ``naive``        — the full row-at-a-time reference pipeline.

The acceptance gate of ISSUE 4 requires the vectorized mode to beat the
interpreted (naive reference) path by >= 2x on the filter-heavy MATCH at
snb100; BENCH_4.json records the measured ablation.
"""

import pytest

from repro.config import DEFAULT_CONFIG, NAIVE_CONFIG
from repro.eval.context import EvalContext
from repro.eval.query import evaluate_statement

from .conftest import full_persons, sizes, snb_engine

FILTER_HEAVY = (
    "SELECT n.firstName AS fn, m.firstName AS mf "
    "MATCH (n:Person)-[:knows]->(m:Person) "
    "WHERE n.employer = 'Acme' AND m.lastName >= 'M' "
    "AND m.firstName < n.firstName"
)

GROUP_BY_AGGREGATE = (
    "SELECT n.employer AS emp, COUNT(*) AS c, MIN(n.firstName) AS lo, "
    "COUNT(DISTINCT n.lastName) AS dl "
    "MATCH (n:Person) GROUP BY n.employer"
)

PROJECTION = (
    "SELECT n.firstName + ' ' + n.lastName AS name, "
    "CASE WHEN n.employer = 'Acme' THEN 'acme' ELSE 'other' END AS kind "
    "MATCH (n:Person)"
)

MODE_CONFIGS = {
    "vectorized": DEFAULT_CONFIG,
    "interpreted": DEFAULT_CONFIG.with_(expressions="interpreted"),
    "naive": NAIVE_CONFIG,
}
MODES = tuple(MODE_CONFIGS)

PERSONS = sizes([full_persons(100)], [15])


def run_query(engine, statement, mode):
    ctx = EvalContext(engine.catalog, config=MODE_CONFIGS[mode])
    return evaluate_statement(statement, ctx)


@pytest.fixture(scope="module", params=PERSONS)
def engine(request):
    return snb_engine(request.param)


@pytest.mark.parametrize("mode", MODES)
def test_filter_heavy_match(benchmark, engine, mode):
    statement = engine.parse(FILTER_HEAVY)
    engine.graph("snb").statistics()  # statistics amortize; warm them
    table = benchmark(run_query, engine, statement, mode)
    assert table is not None


@pytest.mark.parametrize("mode", MODES)
def test_group_by_aggregate(benchmark, engine, mode):
    statement = engine.parse(GROUP_BY_AGGREGATE)
    engine.graph("snb").statistics()
    table = benchmark(run_query, engine, statement, mode)
    assert len(table) > 0


@pytest.mark.parametrize("mode", MODES)
def test_projection(benchmark, engine, mode):
    statement = engine.parse(PROJECTION)
    engine.graph("snb").statistics()
    table = benchmark(run_query, engine, statement, mode)
    assert len(table) > 0


@pytest.mark.parametrize("query", [FILTER_HEAVY, GROUP_BY_AGGREGATE, PROJECTION])
def test_modes_agree(snb_small, query):
    """Every mode must produce the identical table (typed cells)."""
    statement = snb_small.parse(query)
    results = [run_query(snb_small, statement, mode) for mode in MODES]
    reference = results[0]

    def typed(table):
        return [
            tuple((type(cell).__name__, cell) for cell in row)
            for row in table.rows
        ]

    for other in results[1:]:
        assert other.columns == reference.columns
        assert sorted(typed(other), key=repr) == sorted(
            typed(reference), key=repr
        )
