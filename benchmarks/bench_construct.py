"""CONSTRUCT micro-benchmarks: grouping, aggregation, copies, set ops.

These cover the operations Appendix A.3 defines, on generated data, so
regressions in the construct pipeline (grouping, skolemization,
label/property assembly, WHEN filtering, graph union) show up as timing
shifts.
"""

import pytest

from .conftest import SMOKE, snb_engine

PERSONS = 20 if SMOKE else 100


@pytest.fixture(scope="module")
def engine():
    return snb_engine(PERSONS)


def run_construct(benchmark, engine, query, check=None):
    statement = engine.parse(query)
    result = benchmark(engine.run, statement)
    if check is not None:
        assert check(result)
    return result


def test_identity_construction(benchmark, engine):
    run_construct(
        benchmark, engine,
        "CONSTRUCT (n) MATCH (n:Person)",
        lambda g: len(g.nodes) == PERSONS,
    )


def test_grouped_aggregation(benchmark, engine):
    run_construct(
        benchmark, engine,
        "CONSTRUCT (x GROUP e :Company {name := e, staff := COUNT(*)}) "
        "MATCH (n:Person {employer=e})",
        lambda g: g.nodes,
    )


def test_edge_aggregation_with_when(benchmark, engine):
    run_construct(
        benchmark, engine,
        "CONSTRUCT (t)-[e:popular {fans := COUNT(*)}]->(t) WHEN e.fans > 2 "
        "MATCH (n:Person)-[:hasInterest]->(t:Tag)",
    )


def test_copy_construction(benchmark, engine):
    run_construct(
        benchmark, engine,
        "CONSTRUCT (=n) MATCH (n:Person)",
        lambda g: len(g.nodes) == PERSONS,
    )


def test_union_with_base(benchmark, engine):
    run_construct(
        benchmark, engine,
        "CONSTRUCT snb, (n {touched := TRUE}) MATCH (n:Person)",
        lambda g: len(g.nodes) > PERSONS,
    )


def test_graph_minus(benchmark, engine):
    run_construct(
        benchmark, engine,
        "snb MINUS (CONSTRUCT (n) MATCH (n:Post|Comment))",
        lambda g: g.nodes,
    )


def test_select_group_by(benchmark, engine):
    run_construct(
        benchmark, engine,
        "SELECT c.name AS city, COUNT(*) AS inhabitants "
        "MATCH (n:Person)-[:isLocatedIn]->(c:City) "
        "GROUP BY city ORDER BY inhabitants DESC",
        lambda t: len(t) > 0,
    )
