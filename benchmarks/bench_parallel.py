"""EXP-P1 — morsel-driven parallel scaling at 1/2/4 workers.

Two workloads whose hot loops the worker pool covers end to end:

* ``exp_b1_join`` — the EXP-B1 triangle-ish multi-atom join from the
  planner ablation (hash-join probes dominate; the block tail after the
  first scan is dispatched as row-range morsels),
* ``filter_heavy_match`` — the EXP-E1 two-hop MATCH with pushable and
  join conjuncts (compiled WHERE kernels run per morsel).

Each runs at ``parallelism`` 1 (serial — no pool involved), 2 and 4 via
:class:`repro.config.ExecutionConfig`; the timing JSON is the scaling
ablation. ``test_parallel_matches_serial`` pins exactness (rows, order,
columns) and ``test_four_worker_floor`` enforces the ISSUE 7 acceptance
bar — >= 1.8x at 4 workers on snb100 — when the host actually has 4
cores to scale onto (the floor is meaningless on smaller machines, where
only parity is asserted; BENCH_6.json records the honest numbers).
"""

import os
import time

import pytest

from repro.config import DEFAULT_CONFIG, ExecutionConfig

from .conftest import SMOKE, full_persons, sizes, snb_engine

EXP_B1 = (
    "MATCH (m), (n:Person)-[:hasInterest]->(t:Tag {name='Wagner'}), "
    "(n)-[:knows]->(m) WHERE (m:Person)"
)

FILTER_HEAVY = (
    "SELECT n.firstName AS fn, m.firstName AS mf "
    "MATCH (n:Person)-[:knows]->(m:Person) "
    "WHERE n.employer = 'Acme' AND m.lastName >= 'M' "
    "AND m.firstName < n.firstName"
)

WORKERS = (1, 2, 4)

PERSONS = sizes([full_persons(100)], [20])


def _config(workers):
    return DEFAULT_CONFIG if workers <= 1 else ExecutionConfig(
        parallelism=workers
    )


def _cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def run_bindings(engine, text, workers):
    return engine.bindings(text, config=_config(workers))


def run_select(engine, statement, workers):
    return engine.run(statement, config=_config(workers))


@pytest.fixture(scope="module", params=PERSONS)
def engine(request):
    eng = snb_engine(request.param)
    eng.graph("snb").statistics()  # statistics amortize; warm them
    # Warm the worker pool + graph export once so fork/export cost does
    # not land inside the first timed round.
    eng.bindings(EXP_B1, config=ExecutionConfig(parallelism=4))
    return eng


@pytest.mark.parametrize("workers", WORKERS)
def test_exp_b1_join(benchmark, engine, workers):
    table = benchmark(run_bindings, engine, EXP_B1, workers)
    assert table is not None


@pytest.mark.parametrize("workers", WORKERS)
def test_filter_heavy_match(benchmark, engine, workers):
    statement = engine.parse(FILTER_HEAVY)
    table = benchmark(run_select, engine, statement, workers)
    assert table is not None


@pytest.mark.parametrize("text", [EXP_B1, FILTER_HEAVY])
def test_parallel_matches_serial(engine, text):
    """Every worker count yields the identical table — rows AND order."""
    if text.startswith("MATCH"):
        results = [run_bindings(engine, text, w) for w in WORKERS]
        reference = results[0]
        for other in results[1:]:
            assert other.variables == reference.variables
            assert list(other.rows) == list(reference.rows)
    else:
        statement = engine.parse(text)
        results = [run_select(engine, statement, w) for w in WORKERS]
        reference = results[0]
        for other in results[1:]:
            assert other.columns == reference.columns
            assert other.rows == reference.rows


def test_four_worker_floor(engine):
    """The ISSUE 7 acceptance bar, measured like the view-refresh gate.

    Only enforced where it is physically possible: a host with >= 4
    usable cores and the full-size graph. Elsewhere the workloads still
    run at 4 workers (parity is asserted above) but the speedup is not a
    property of this code, so it is not gated.
    """
    statement = engine.parse(FILTER_HEAVY)

    def best(callable_, repeats):
        elapsed = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            callable_()
            elapsed = min(elapsed, time.perf_counter() - start)
        return elapsed

    repeats = 3 if SMOKE else 5
    serial_time = best(lambda: run_select(engine, statement, 1), repeats)
    parallel_time = best(lambda: run_select(engine, statement, 4), repeats)

    if SMOKE or _cores() < 4:
        return  # measured for the record, floor not assertable here

    speedup = serial_time / parallel_time
    assert speedup >= 1.8, (
        f"4-worker run only {speedup:.2f}x faster than serial "
        f"(serial {serial_time * 1000:.1f}ms, parallel "
        f"{parallel_time * 1000:.1f}ms, floor 1.8x)"
    )
