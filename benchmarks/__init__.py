"""The benchmark suite (pytest-benchmark based).

This package marker lets the ``from .conftest import ...`` imports inside
the bench modules resolve, so the suite can run from a clean checkout:

    PYTHONPATH=src python -m pytest benchmarks --benchmark-only

Set ``BENCH_SMOKE=1`` for the CI smoke mode: tiny graph sizes and one
benchmark round, just enough to catch crashes and gross regressions.
"""
