"""EXP-C1 (baseline) — the NP-hard simple-path semantics G-CORE rejects.

Appendix A.1 cites Mendelzon & Wood: regular simple paths are
NP-complete. On ladder graphs with 2^k simple s->t paths, enumeration
explodes while the product-graph search (arbitrary-walk semantics, what
G-CORE adopted) stays flat. "Who wins": the walk semantics, by an
exponentially growing factor — exactly the design argument of the paper.
"""

import pytest

from repro.lang import ast
from repro.model.builder import GraphBuilder
from repro.paths.automaton import compile_regex
from repro.paths.product import PathFinder
from repro.paths.simplepaths import count_simple_paths

from .conftest import sizes

KSTAR = compile_regex(ast.RStar(ast.RLabel("k")))


def ladder(rungs):
    builder = GraphBuilder()
    builder.add_node("n0")
    previous = "n0"
    for i in range(rungs):
        top, bottom, merge = f"t{i}", f"b{i}", f"n{i+1}"
        builder.add_node(top)
        builder.add_node(bottom)
        builder.add_node(merge)
        builder.add_edge(previous, top, edge_id=f"e{i}a", labels=["k"])
        builder.add_edge(previous, bottom, edge_id=f"e{i}b", labels=["k"])
        builder.add_edge(top, merge, edge_id=f"e{i}c", labels=["k"])
        builder.add_edge(bottom, merge, edge_id=f"e{i}d", labels=["k"])
        previous = merge
    return builder.build(), "n0", previous


RUNGS = sizes([4, 6, 8, 10], [3, 4])


@pytest.mark.parametrize("rungs", RUNGS)
def test_simple_path_enumeration_explodes(benchmark, rungs):
    graph, source, target = ladder(rungs)
    count = benchmark(count_simple_paths, graph, KSTAR, source, target)
    assert count == 2 ** rungs


@pytest.mark.parametrize("rungs", RUNGS)
def test_walk_semantics_stays_polynomial(benchmark, rungs):
    graph, source, target = ladder(rungs)
    finder = PathFinder(graph, KSTAR)
    walk = benchmark(finder.shortest, source, target)
    assert walk is not None and walk.cost == 2 * rungs


@pytest.mark.parametrize("rungs", RUNGS)
def test_all_paths_projection_stays_polynomial(benchmark, rungs):
    # Even *covering all paths* is tractable via the graph projection.
    graph, source, target = ladder(rungs)
    finder = PathFinder(graph, KSTAR)
    nodes, edges = benchmark(finder.all_paths_projection, source, target)
    assert len(edges) == 4 * rungs


@pytest.mark.parametrize("rungs", RUNGS)
def test_walk_multi_source_batched(benchmark, rungs):
    # Every node as a source against one shared search structure: the
    # batched engine's memoized product expansion is reused across the
    # whole column of sources.
    graph, _, target = ladder(rungs)
    finder = PathFinder(graph, KSTAR)
    all_sources = sorted(graph.nodes, key=str)
    walks = benchmark(finder.shortest_multi, all_sources)
    assert walks[f"n{rungs - 1}"]
