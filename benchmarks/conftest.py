"""Shared fixtures for the benchmark harness.

``BENCH_SMOKE=1`` switches every bench to smoke mode: tiny graph sizes
so the whole suite finishes in seconds. CI runs the smoke mode per PR
and archives the ``--benchmark-json`` output as a build artifact.
"""

import os

import pytest

from repro import GCoreEngine
from repro.datasets import load

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def sizes(full, smoke):
    """The *full* parameter list, or *smoke* under ``BENCH_SMOKE=1``."""
    return list(smoke) if SMOKE else list(full)


def full_persons(default):
    """Full-mode SNB person count, overridable via ``BENCH_PERSONS``.

    The weekly scheduled CI job sets ``BENCH_PERSONS=300`` to run the
    non-smoke suite at snb300 scale; per-push smoke runs and local full
    runs use each bench's default.
    """
    return int(os.environ.get("BENCH_PERSONS", default))


@pytest.fixture(scope="session")
def tour_engine():
    """The paper's toy instances (Figure 4) — used by Table 1 benches."""
    eng = GCoreEngine()
    load("paper").install(eng)
    return eng


def snb_engine(persons: int, seed: int = 42) -> GCoreEngine:
    eng = GCoreEngine()
    load("snb", scale=persons, seed=seed).install(eng)
    load("company").install(eng, set_default=False)
    return eng


@pytest.fixture(scope="session")
def snb_small():
    """A small generated SNB graph (50 persons; 20 in smoke mode)."""
    return snb_engine(20 if SMOKE else 50)


@pytest.fixture(scope="session")
def snb_medium():
    """A medium generated SNB graph (150 persons; 30 in smoke mode)."""
    return snb_engine(30 if SMOKE else 150)
