#!/usr/bin/env python
"""Dump EXPLAIN plans for representative queries (weekly CI artifact).

The scheduled full-scale benchmark job runs this after the snb300 suite
and archives the output, so planner decisions — atom order, cardinality
estimates, and the path search strategy line (bfs/dijkstra,
batched/naive) — can be diffed between PRs alongside the timing JSON.

Usage::

    BENCH_PERSONS=300 PYTHONPATH=src python benchmarks/explain_dump.py
"""

import os

from repro import DEFAULT_CONFIG, GCoreEngine
from repro.config import ExecutionConfig
from repro.datasets.generator import SnbParameters, generate_snb_graph

QUERIES = [
    # Pattern matching over labels and properties.
    "CONSTRUCT (n) MATCH (n:Person)-[e:knows]->(m:Person) "
    "WHERE n.firstName = 'John'",
    # Reachability (bfs strategy, no walk materialization).
    "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person)",
    # Weighted shortest over a PATH view (dijkstra strategy).
    "CONSTRUCT (n)-/@p:route {d := c}/->(m) "
    "MATCH (n:Person)-/p<~wKnows*> COST c/->(m:Person)",
    # k shortest with cost binding.
    "CONSTRUCT (n)-/@p:route/->(m) "
    "MATCH (n:Person)-/3 SHORTEST p<:knows*> COST c/->(m:Person)",
    # Multi-atom join the cost planner reorders.
    "SELECT n.firstName, t.name MATCH (n:Person)-[:hasInterest]->(t:Tag), "
    "(n)-[:isLocatedIn]->(c:City)",
]


def main():
    persons = int(os.environ.get("BENCH_PERSONS", "100"))
    workers = os.environ.get("BENCH_WORKERS")
    config = DEFAULT_CONFIG
    if workers:
        config = ExecutionConfig(parallelism=int(workers))
    engine = GCoreEngine()
    graph = generate_snb_graph(SnbParameters(persons=persons, seed=21))
    engine.register_graph("snb", graph, default=True)
    engine.register_path_view(
        "PATH wKnows = (x:Person)-[e:knows]->(y:Person) COST 1"
    )
    print(f"# EXPLAIN dump @ snb graph, persons={persons}")
    print(f"# nodes={len(graph.nodes)} edges={len(graph.edges)}")
    print(f"# active config: {config.describe()}")
    for query in QUERIES:
        print()
        print(f"## {query}")
        print(engine.explain(query, config=config))


if __name__ == "__main__":
    main()
