"""EXP-T1 — Table 1: every feature of the guided tour, as a benchmark.

Table 1 of the paper maps each G-CORE feature to the query lines that
demonstrate it. Each benchmark below executes the corresponding query on
the Figure 4 instance and asserts the paper's result, so the table rows
are regenerated with timings attached. Run with:

    pytest benchmarks/bench_table1_guided_tour.py --benchmark-only
"""

import pytest

# (feature row of Table 1, query, checker)
TOUR = {
    "matching_literal_values": (
        "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'",
        lambda g: g.nodes == {"john", "alice"},
    ),
    "value_joins": (
        "CONSTRUCT (c)<-[:worksAt]-(n) "
        "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
        "WHERE c.name = n.employer",
        lambda g: len(g.edges) == 3,
    ),
    "cartesian_product": (
        "CONSTRUCT (c), (n) "
        "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph",
        lambda g: len(g.nodes) == 9,
    ),
    "list_membership": (
        "CONSTRUCT (c)<-[:worksAt]-(n) "
        "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
        "WHERE c.name IN n.employer",
        lambda g: len(g.edges) == 5,
    ),
    "graph_aggregation": (
        "CONSTRUCT social_graph, "
        "(x GROUP e :Company {name:=e})<-[y:worksAt]-(n) "
        "MATCH (n:Person {employer=e})",
        lambda g: len([n for n in g.nodes if g.has_label(n, "Company")]) == 4,
    ),
    "k_shortest_paths": (
        "CONSTRUCT (n)-/@p:localPeople{distance:=c}/->(m) "
        "MATCH (n)-/3 SHORTEST p<:knows*> COST c/->(m) "
        "WHERE (n:Person) AND (m:Person) AND n.firstName = 'John' "
        "AND n.lastName = 'Doe' "
        "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
        lambda g: len(g.paths) > 0,
    ),
    "reachability": (
        "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) "
        "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
        "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
        lambda g: len(g.nodes) == 5,
    ),
    "all_shortest_projection": (
        "CONSTRUCT (n)-/p/->(m) "
        "MATCH (n:Person)-/ALL p<:knows*>/->(m:Person) "
        "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
        "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
        lambda g: len(g.edges) == 10,
    ),
    "implicit_existential": (
        "CONSTRUCT (n) MATCH (n:Person), (m:Person) "
        "WHERE (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
        lambda g: len(g.nodes) == 5,
    ),
    "explicit_existential": (
        "CONSTRUCT (n) MATCH (n:Person) WHERE EXISTS ("
        "CONSTRUCT () MATCH (n)-[:hasInterest]->(m))",
        lambda g: g.nodes == {"celine", "frank"},
    ),
    "set_union_on_graphs": (
        "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme' "
        "UNION social_graph",
        lambda g: len(g.nodes) > 5,
    ),
    "tabular_projection": (
        "SELECT m.lastName + ', ' + m.firstName AS friendName "
        "MATCH (n:Person)-/<:knows*>/->(m:Person) "
        "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
        "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
        lambda t: len(t) == 5,
    ),
    "binding_table_import": (
        "CONSTRUCT (cust GROUP custName :Customer {name:=custName}), "
        "(prod GROUP prodCode :Product {code:=prodCode}), "
        "(cust)-[:bought]->(prod) FROM orders",
        lambda g: len(g.edges) == 6,
    ),
    "table_as_graph": (
        "CONSTRUCT (cust GROUP o.custName :Customer {name:=o.custName}), "
        "(prod GROUP o.prodCode :Product {code:=o.prodCode}), "
        "(cust)-[:bought]->(prod) MATCH (o) ON orders",
        lambda g: len(g.edges) == 6,
    ),
}


@pytest.mark.parametrize("feature", sorted(TOUR))
def test_table1_feature(benchmark, tour_engine, feature):
    query, check = TOUR[feature]
    statement = tour_engine.parse(query)
    result = benchmark(tour_engine.run, statement)
    assert check(result), feature


def test_table1_views_pipeline(benchmark, tour_engine):
    """The Figure 5 pipeline (views + weighted paths + final scoring)."""

    def pipeline():
        tour_engine.run(
            "GRAPH VIEW social_graph1 AS ("
            "CONSTRUCT social_graph, (n)-[e]->(m) "
            "SET e.nr_messages := COUNT(*) "
            "MATCH (n)-[e:knows]->(m) WHERE (n:Person) AND (m:Person) "
            "OPTIONAL (n)<-[c1]-(msg1:Post|Comment), "
            "(msg1)-[:reply_of]-(msg2), (msg2:Post|Comment)-[c2]->(m) "
            "WHERE (c1:has_creator) AND (c2:has_creator))"
        )
        tour_engine.run(
            "GRAPH VIEW social_graph2 AS ("
            "PATH wKnows = (x)-[e:knows]->(y) "
            "WHERE NOT 'Acme' IN y.employer "
            "COST 1 / (1 + e.nr_messages) "
            "CONSTRUCT social_graph1, (n)-/@p:toWagner/->(m) "
            "MATCH (n:Person)-/p<~wKnows*>/->(m:Person) ON social_graph1 "
            "WHERE (m)-[:hasInterest]->(:Tag {name='Wagner'}) "
            "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) "
            "AND n.firstName = 'John' AND n.lastName = 'Doe')"
        )
        return tour_engine.run(
            "CONSTRUCT (n)-[e:wagnerFriend {score:=COUNT(*)}]->(m) "
            "WHEN e.score > 0 "
            "MATCH (n:Person)-/@p:toWagner/->(), (m:Person) ON social_graph2 "
            "WHERE m = nodes(p)[1]"
        )

    result = benchmark(pipeline)
    (edge,) = result.edges
    assert result.endpoints(edge) == ("john", "peter")
    assert result.property(edge, "score") == {2}
