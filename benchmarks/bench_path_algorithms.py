"""EXP-B2 — path-algorithm micro-benchmarks vs. a networkx baseline.

PathFinder interleaves automaton states with graph traversal; on a plain
single-label reachability/shortest-path task it should stay within a
small constant factor of networkx's dedicated algorithms (which cannot
handle regular path constraints at all). Also covers k-shortest and the
weighted view traversal.
"""

import pytest

nx = pytest.importorskip("networkx")

from repro.datasets.generator import SnbParameters, generate_snb_graph
from repro.lang import ast
from repro.paths.automaton import compile_regex
from repro.paths.product import PathFinder, ViewSegment

from .conftest import SMOKE

KSTAR = compile_regex(ast.RStar(ast.RLabel("knows")))

PERSONS = 30 if SMOKE else 150


@pytest.fixture(scope="module")
def snb():
    return generate_snb_graph(SnbParameters(persons=PERSONS, seed=21))


@pytest.fixture(scope="module")
def nx_graph(snb):
    g = nx.DiGraph()
    g.add_nodes_from(snb.nodes)
    for edge in snb.edges_with_label("knows"):
        src, dst = snb.endpoints(edge)
        g.add_edge(src, dst)
    return g


SOURCE = "p0"


def test_single_source_shortest_pathfinder(benchmark, snb):
    finder = PathFinder(snb, KSTAR)
    walks = benchmark(finder.shortest_from, SOURCE)
    assert walks


def test_single_source_shortest_networkx(benchmark, nx_graph):
    lengths = benchmark(nx.single_source_shortest_path_length, nx_graph, SOURCE)
    assert lengths


def test_results_agree_with_networkx(snb, nx_graph):
    finder = PathFinder(snb, KSTAR)
    walks = finder.shortest_from(SOURCE)
    lengths = nx.single_source_shortest_path_length(nx_graph, SOURCE)
    persons = {n for n in snb.nodes_with_label("Person")}
    assert {n: w.cost for n, w in walks.items() if n in persons} == {
        n: float(l) if isinstance(l, float) else l
        for n, l in lengths.items() if n in persons
    }


def test_reachability_pathfinder(benchmark, snb):
    finder = PathFinder(snb, KSTAR)
    reachable = benchmark(finder.reachable_from, SOURCE)
    assert reachable


def test_k_shortest(benchmark, snb):
    finder = PathFinder(snb, KSTAR)
    walks = benchmark(finder.k_shortest, SOURCE, "p25", 4)
    assert walks


def test_all_paths_projection(benchmark, snb):
    finder = PathFinder(snb, KSTAR)
    nodes, edges = benchmark(finder.all_paths_projection, SOURCE, "p25")
    assert nodes


def test_weighted_view_traversal(benchmark, snb):
    # A synthetic weighted view over knows edges (uniform 0.5 cost).
    segments = {}
    for edge in snb.edges_with_label("knows"):
        src, dst = snb.endpoints(edge)
        segments.setdefault(src, []).append(
            ViewSegment(dst, 0.5, (src, edge, dst))
        )
    views = {"w": {s: tuple(v) for s, v in segments.items()}}
    nfa = compile_regex(ast.RStar(ast.RView("w")))
    finder = PathFinder(snb, nfa, views)
    walks = benchmark(finder.shortest_from, SOURCE)
    assert walks
