"""EXP-B2/EXP-P3 — path-algorithm benchmarks: batched vs naive vs networkx.

PathFinder interleaves automaton states with graph traversal; on a plain
single-label reachability/shortest-path task it should stay within a
small constant factor of networkx's dedicated algorithms (which cannot
handle regular path constraints at all).

PR 3 adds the batched-vs-naive ablation: every workload runs once on the
batched parent-pointer engine (the default) and once on the row-at-a-time
reference (``naive=True``). The multi-source micro benches share one
search structure across sources (:meth:`PathFinder.shortest_multi`); the
``match_*`` benches measure the full vertical slice — columnar
``PathAtom`` expansion against the reference executor — on the snb100
weighted-shortest, reachability and k-shortest workloads (the PR's
acceptance gate: >= 3x median on weighted-shortest and reachability).
"""

import pytest

nx = pytest.importorskip("networkx")

from repro import GCoreEngine
from repro.config import NAIVE_CONFIG
from repro.datasets import load
from repro.lang import ast
from repro.paths.automaton import compile_regex
from repro.paths.product import PathFinder, ViewSegment

from .conftest import SMOKE, full_persons

KSTAR = compile_regex(ast.RStar(ast.RLabel("knows")))

#: snb100 is the PR-3 acceptance scale; the weekly scheduled job lifts
#: it to snb300 via BENCH_PERSONS.
PERSONS = 30 if SMOKE else full_persons(100)

MULTI_SOURCES = 10 if SMOKE else 40


@pytest.fixture(scope="module")
def snb():
    return load("snb", scale=PERSONS, seed=21).graphs["snb"]


@pytest.fixture(scope="module")
def nx_graph(snb):
    g = nx.DiGraph()
    g.add_nodes_from(snb.nodes)
    for edge in snb.edges_with_label("knows"):
        src, dst = snb.endpoints(edge)
        g.add_edge(src, dst)
    return g


@pytest.fixture(scope="module")
def sources(snb):
    persons = sorted(n for n in snb.nodes_with_label("Person"))
    return persons[:MULTI_SOURCES]


@pytest.fixture(scope="module")
def weighted_views(snb):
    """A synthetic weighted view over knows edges (uniform 0.5 cost)."""
    segments = {}
    for edge in snb.edges_with_label("knows"):
        src, dst = snb.endpoints(edge)
        segments.setdefault(src, []).append(
            ViewSegment(dst, 0.5, (src, edge, dst))
        )
    return {"w": {s: tuple(v) for s, v in segments.items()}}


WVIEW = compile_regex(ast.RStar(ast.RView("w")))

SOURCE = "p0"


# ---------------------------------------------------------------------------
# Single-source micro benches (+ networkx sanity baseline)
# ---------------------------------------------------------------------------

def test_single_source_shortest_pathfinder(benchmark, snb):
    # Finder construction inside the timed callable, symmetric with the
    # naive arm: the batched engine pays its program/memo build here.
    def run():
        return PathFinder(snb, KSTAR).shortest_from(SOURCE)

    walks = benchmark(run)
    assert walks


def test_single_source_shortest_naive(benchmark, snb):
    finder = PathFinder(snb, KSTAR, naive=True)
    walks = benchmark(finder.shortest_from, SOURCE)
    assert walks


def test_single_source_shortest_networkx(benchmark, nx_graph):
    lengths = benchmark(nx.single_source_shortest_path_length, nx_graph, SOURCE)
    assert lengths


def test_results_agree_with_networkx(snb, nx_graph):
    finder = PathFinder(snb, KSTAR)
    walks = finder.shortest_from(SOURCE)
    lengths = nx.single_source_shortest_path_length(nx_graph, SOURCE)
    persons = {n for n in snb.nodes_with_label("Person")}
    assert {n: w.cost for n, w in walks.items() if n in persons} == {
        n: float(l) if isinstance(l, float) else l
        for n, l in lengths.items() if n in persons
    }


def test_reachability_pathfinder(benchmark, snb):
    finder = PathFinder(snb, KSTAR)
    reachable = benchmark(finder.reachable_from, SOURCE)
    assert reachable


def test_k_shortest(benchmark, snb):
    finder = PathFinder(snb, KSTAR)
    walks = benchmark(finder.k_shortest, SOURCE, "p25", 4)
    assert walks


def test_all_paths_projection(benchmark, snb):
    finder = PathFinder(snb, KSTAR)
    nodes, edges = benchmark(finder.all_paths_projection, SOURCE, "p25")
    assert nodes


def test_weighted_view_traversal(benchmark, snb, weighted_views):
    finder = PathFinder(snb, WVIEW, weighted_views)
    walks = benchmark(finder.shortest_from, SOURCE)
    assert walks


# ---------------------------------------------------------------------------
# Multi-source batches: one shared search structure vs per-row searches
# ---------------------------------------------------------------------------

def test_shortest_multi_batched(benchmark, snb, sources):
    def run():
        return PathFinder(snb, KSTAR).shortest_multi(sources)

    walks = benchmark(run)
    assert all(walks[s] for s in sources)


def test_shortest_multi_naive(benchmark, snb, sources):
    def run():
        finder = PathFinder(snb, KSTAR, naive=True)
        return {s: finder.shortest_from(s) for s in sources}

    walks = benchmark(run)
    assert all(walks[s] for s in sources)


def test_reachability_multi_batched(benchmark, snb, sources):
    def run():
        return PathFinder(snb, KSTAR).reachable_multi(sources)

    reach = benchmark(run)
    assert all(reach[s] for s in sources)


def test_reachability_multi_naive(benchmark, snb, sources):
    def run():
        finder = PathFinder(snb, KSTAR, naive=True)
        return {s: finder.reachable_from(s) for s in sources}

    reach = benchmark(run)
    assert all(reach[s] for s in sources)


def test_weighted_multi_batched(benchmark, snb, sources, weighted_views):
    def run():
        return PathFinder(snb, WVIEW, weighted_views).shortest_multi(sources)

    walks = benchmark(run)
    assert all(walks[s] for s in sources)


def test_weighted_multi_naive(benchmark, snb, sources, weighted_views):
    def run():
        finder = PathFinder(snb, WVIEW, weighted_views, naive=True)
        return {s: finder.shortest_from(s) for s in sources}

    walks = benchmark(run)
    assert all(walks[s] for s in sources)


# ---------------------------------------------------------------------------
# Full vertical slice: MATCH path workloads (columnar vs reference)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def path_engine(snb):
    engine = GCoreEngine()
    engine.register_graph("snb", snb, default=True)
    engine.register_path_view(
        "PATH wKnows = (x:Person)-[e:knows]->(y:Person) COST 1"
    )
    return engine


MATCH_WORKLOADS = {
    "weighted_shortest": "MATCH (n:Person)-/p<~wKnows*> COST c/->(m:Person)",
    "reachability": "MATCH (n:Person)-/<:knows*>/->(m:Person)",
    "shortest_cost": "MATCH (n:Person)-/p<:knows*> COST c/->(m:Person)",
    "k_shortest": (
        "MATCH (n:Person {firstName='John'})"
        "-/2 SHORTEST p<:knows*> COST c/->(m:Person)"
    ),
}


@pytest.mark.parametrize("workload", sorted(MATCH_WORKLOADS))
def test_match_paths_batched(benchmark, path_engine, workload):
    query = MATCH_WORKLOADS[workload]
    table = benchmark(path_engine.bindings, query)
    assert len(table) > 0


@pytest.mark.parametrize("workload", sorted(MATCH_WORKLOADS))
def test_match_paths_naive(benchmark, path_engine, workload):
    query = MATCH_WORKLOADS[workload]
    table = benchmark(path_engine.bindings, query, config=NAIVE_CONFIG)
    assert len(table) > 0


@pytest.mark.parametrize("workload", sorted(MATCH_WORKLOADS))
def test_match_paths_agree(path_engine, workload):
    query = MATCH_WORKLOADS[workload]
    batched = path_engine.bindings(query)
    naive = path_engine.bindings(query, config=NAIVE_CONFIG)
    assert batched.columns == naive.columns
    assert set(batched.rows) == set(naive.rows)
