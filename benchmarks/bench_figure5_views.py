"""EXP-F5 — Figure 5: view materialization at growing scale.

The two views of the paper (message-intensity annotation; weighted
shortest paths to interest-holders) are re-run over generated SNB graphs,
measuring the cost of the OPTIONAL + aggregation pass and of weighted
path materialization.
"""

import pytest

from .conftest import sizes, snb_engine

VIEW1 = (
    "GRAPH VIEW nrm AS (CONSTRUCT snb, (n)-[e]->(m) "
    "SET e.nr_messages := COUNT(*) "
    "MATCH (n)-[e:knows]->(m) WHERE (n:Person) AND (m:Person) "
    "OPTIONAL (n)<-[c1]-(msg1:Post|Comment), (msg1)-[:reply_of]-(msg2), "
    "(msg2:Post|Comment)-[c2]->(m) "
    "WHERE (c1:has_creator) AND (c2:has_creator))"
)

VIEW2 = (
    "GRAPH VIEW wagner AS ("
    "PATH wKnows = (x)-[e:knows]->(y) "
    "WHERE NOT 'Acme' IN y.employer COST 1 / (1 + e.nr_messages) "
    "CONSTRUCT nrm, (n)-/@p:toWagner/->(m) "
    "MATCH (n:Person)-/p<~wKnows*>/->(m:Person) ON nrm "
    "WHERE (m)-[:hasInterest]->(:Tag {name='Wagner'}) "
    "AND n.firstName = 'John')"
)


@pytest.mark.parametrize("persons", sizes([25, 50, 100], [10]))
def test_view1_message_annotation(benchmark, persons):
    engine = snb_engine(persons)
    statement = engine.parse(VIEW1)

    def materialize():
        return engine.run(statement)

    result = benchmark(materialize)
    assert result.graph.edges_with_label("knows")


@pytest.mark.parametrize("persons", sizes([25, 50], [10]))
def test_view2_weighted_paths(benchmark, persons):
    engine = snb_engine(persons)
    engine.run(VIEW1)
    statement = engine.parse(VIEW2)

    def materialize():
        return engine.run(statement)

    result = benchmark(materialize)
    assert not result.graph.is_empty()
