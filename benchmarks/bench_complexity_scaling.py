"""EXP-C1 — Section 4: polynomial data complexity, measured.

The paper's headline formal claim is tractability: each fixed query
evaluates in polynomial time in the data size. We time three fixed
queries (pattern matching, single-source shortest paths, CONSTRUCT
aggregation) over generated graphs of growing size. The harness
(`python -m repro.bench complexity`) fits the log-log slope — a small
constant exponent, versus the exponential blow-up of the simple-path
baseline in bench_simple_path_baseline.py.
"""

import pytest

from .conftest import sizes, snb_engine

SIZES = sizes([25, 50, 100, 200], [10, 20])

PATTERN_QUERY = (
    "CONSTRUCT (n)-[e:coFan]->(m) "
    "MATCH (n:Person)-[:hasInterest]->(t:Tag)<-[:hasInterest]-(m:Person)"
)
SHORTEST_QUERY = (
    "CONSTRUCT (n)-/@p:route/->(m) "
    "MATCH (n:Person)-/p<:knows*>/->(m:Person) WHERE n.firstName = 'John'"
)
AGGREGATION_QUERY = (
    "CONSTRUCT (x GROUP c {members := COUNT(*)}) "
    "MATCH (n:Person)-[:isLocatedIn]->(c)"
)
REACHABILITY_QUERY = (
    "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) "
    "WHERE n.firstName = 'John'"
)


@pytest.mark.parametrize("persons", SIZES)
def test_scaling_pattern_matching(benchmark, persons):
    engine = snb_engine(persons)
    statement = engine.parse(PATTERN_QUERY)
    result = benchmark(engine.run, statement)
    assert result is not None


@pytest.mark.parametrize("persons", SIZES)
def test_scaling_shortest_paths(benchmark, persons):
    engine = snb_engine(persons)
    statement = engine.parse(SHORTEST_QUERY)
    result = benchmark(engine.run, statement)
    assert result is not None


@pytest.mark.parametrize("persons", SIZES)
def test_scaling_aggregation(benchmark, persons):
    engine = snb_engine(persons)
    statement = engine.parse(AGGREGATION_QUERY)
    result = benchmark(engine.run, statement)
    assert not result.is_empty()


@pytest.mark.parametrize("persons", SIZES)
def test_scaling_reachability(benchmark, persons):
    engine = snb_engine(persons)
    statement = engine.parse(REACHABILITY_QUERY)
    result = benchmark(engine.run, statement)
    assert result is not None
