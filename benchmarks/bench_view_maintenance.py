"""EXP-V1 — incremental view maintenance vs full recompute (ISSUE 5).

The streaming-update workload: a materialized ``GRAPH VIEW`` over the
SNB graph receives a steady drip of ~1% graph deltas through
``engine.apply_update``. The incremental refresh patches the
materialization from the changelog (touched-binding join-delta, support
counts — :mod:`repro.eval.maintenance`); the ``incremental=False``
reference recomputes the view from scratch. The acceptance bar for this
subsystem: a 1%-delta incremental refresh is **>= 5x** faster than the
full recompute at snb100 (>= 2x in CI's tiny smoke mode, where constant
overheads dominate).
"""

import itertools
import time

import pytest

from repro import GraphDelta

from .conftest import SMOKE, full_persons, snb_engine

PERSONS = 20 if SMOKE else full_persons(100)

VIEW_BODY = (
    "CONSTRUCT (a)-[e1]->(b)-[e2]->(c) "
    "MATCH (a:Person)-[e1:knows]->(b:Person)-[e2:knows]->(c:Person)"
)
VIEW_TEXT = f"GRAPH VIEW vknows AS ({VIEW_BODY})"

_tag = itertools.count()


def one_percent_delta(engine):
    """~1% of persons added (with knows edges) + one property change."""
    graph = engine.graph("snb")
    persons = sorted(
        (node for node in graph.nodes if graph.has_label(node, "Person")),
        key=str,
    )
    batch = max(1, len(persons) // 100)
    delta = GraphDelta()
    for _ in range(batch):
        tag = next(_tag)
        new_id = f"vm{tag}"
        delta.add_node(new_id, labels=["Person"],
                       properties={"firstName": f"Vm{tag}"})
        anchor = persons[tag % len(persons)]
        delta.add_edge(f"vmk{tag}a", new_id, anchor, labels=["knows"])
        delta.add_edge(f"vmk{tag}b", anchor, new_id, labels=["knows"])
    delta.set_property(
        persons[next(_tag) % len(persons)], "firstName", f"Renamed{next(_tag)}"
    )
    return delta


@pytest.fixture(scope="module")
def view_engine():
    engine = snb_engine(PERSONS)
    engine.run(VIEW_TEXT)
    return engine


def test_full_recompute(benchmark, view_engine):
    """The from-scratch oracle: re-evaluate the view body every refresh."""
    result = benchmark(view_engine.refresh_view, "vknows", incremental=False)
    assert result.edges


def test_incremental_small_delta(benchmark, view_engine):
    """Steady-state incremental refresh of a ~1% delta (setup untimed)."""

    def setup():
        view_engine.apply_update("snb", one_percent_delta(view_engine))
        return (), {}

    def refresh():
        return view_engine.refresh_view("vknows")

    result = benchmark.pedantic(refresh, setup=setup, rounds=5)
    assert result.edges


def test_apply_update_cost(benchmark, view_engine):
    """The mutation path itself (delta validation + stats adjustment)."""

    def apply():
        view_engine.apply_update("snb", one_percent_delta(view_engine))

    benchmark.pedantic(apply, rounds=5)


def test_incremental_at_least_5x_faster(view_engine):
    """The ISSUE 5 acceptance bar, measured like the plan-cache gate."""
    engine = view_engine

    def best(callable_, repeats):
        elapsed = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            callable_()
            elapsed = min(elapsed, time.perf_counter() - start)
        return elapsed

    repeats = 3 if SMOKE else 5
    full_time = best(
        lambda: engine.refresh_view("vknows", incremental=False), repeats
    )

    def incremental_round():
        engine.apply_update("snb", one_percent_delta(engine))
        engine.refresh_view("vknows")

    # warm once so support state is steady, then time delta+refresh rounds
    incremental_round()
    incremental_time = best(incremental_round, repeats)

    # sanity: the maintained view still matches a from-scratch recompute
    incremental = engine.graph("vknows")
    recomputed = engine.refresh_view("vknows", incremental=False)
    assert incremental == recomputed

    speedup = full_time / incremental_time
    floor = 2.0 if SMOKE else 5.0
    assert speedup >= floor, (
        f"incremental refresh only {speedup:.1f}x faster than full "
        f"recompute (full {full_time * 1000:.1f}ms, incremental "
        f"{incremental_time * 1000:.1f}ms, floor {floor}x)"
    )
