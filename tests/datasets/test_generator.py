"""Tests for the deterministic SNB-like generator."""

import pytest

from repro.datasets.generator import (
    SnbParameters,
    generate_company_graph,
    generate_snb_graph,
)
from repro.model.schema import snb_schema


class TestDeterminism:
    def test_same_seed_same_graph(self):
        g1 = generate_snb_graph(SnbParameters(persons=40, seed=3))
        g2 = generate_snb_graph(SnbParameters(persons=40, seed=3))
        assert g1 == g2

    def test_different_seed_different_graph(self):
        g1 = generate_snb_graph(SnbParameters(persons=40, seed=3))
        g2 = generate_snb_graph(SnbParameters(persons=40, seed=4))
        assert g1 != g2

    def test_keyword_overrides(self):
        g = generate_snb_graph(persons=10, seed=1)
        assert len(g.nodes_with_label("Person")) == 10

    def test_params_and_overrides_conflict(self):
        with pytest.raises(TypeError):
            generate_snb_graph(SnbParameters(), persons=3)


class TestShape:
    def test_scales_with_persons(self):
        small = generate_snb_graph(persons=20, seed=1)
        large = generate_snb_graph(persons=100, seed=1)
        assert large.order() > small.order()
        assert large.size() > small.size()

    def test_knows_ring_connectivity(self):
        g = generate_snb_graph(persons=30, seed=2, knows_chords=0.0)
        persons = sorted(g.nodes_with_label("Person"), key=str)
        # The ring guarantees every person has at least 2 knows neighbours.
        for person in persons:
            knows = [
                e for e in g.out_edges(person) if g.has_label(e, "knows")
            ]
            assert len(knows) >= 2

    def test_knows_edges_bidirectional(self):
        g = generate_snb_graph(persons=25, seed=5)
        knows_pairs = {
            g.endpoints(e) for e in g.edges_with_label("knows")
        }
        for src, dst in knows_pairs:
            assert (dst, src) in knows_pairs

    def test_messages_reference_acquainted_authors(self):
        g = generate_snb_graph(persons=25, seed=5)
        knows_pairs = {
            g.endpoints(e) for e in g.edges_with_label("knows")
        }
        for edge in g.edges_with_label("reply_of"):
            msg, parent = g.endpoints(edge)
            author = next(
                g.endpoints(e)[1]
                for e in g.out_edges(msg)
                if g.has_label(e, "has_creator")
            )
            parent_author = next(
                g.endpoints(e)[1]
                for e in g.out_edges(parent)
                if g.has_label(e, "has_creator")
            )
            if author != parent_author:
                assert (author, parent_author) in knows_pairs

    def test_schema_conformance(self):
        g = generate_snb_graph(persons=50, seed=7)
        assert snb_schema().validate(g) == []

    def test_multi_valued_employers_exist(self):
        g = generate_snb_graph(persons=200, seed=11,
                               multi_employer_probability=0.3)
        multi = [
            n for n in g.nodes_with_label("Person")
            if len(g.property(n, "employer")) > 1
        ]
        assert multi

    def test_unemployed_exist(self):
        g = generate_snb_graph(persons=200, seed=11,
                               unemployed_probability=0.3)
        unemployed = [
            n for n in g.nodes_with_label("Person")
            if not g.property(n, "employer")
        ]
        assert unemployed

    def test_company_graph_matches_employers(self):
        params = SnbParameters(persons=30, seed=9)
        g = generate_snb_graph(params)
        companies = generate_company_graph(params)
        company_names = {
            next(iter(companies.property(n, "name")))
            for n in companies.nodes
        }
        for person in g.nodes_with_label("Person"):
            for employer in g.property(person, "employer"):
                assert employer in company_names


class TestQueriesOverGenerated:
    def test_paper_queries_run_at_scale(self):
        from repro import GCoreEngine

        eng = GCoreEngine()
        params = SnbParameters(persons=60, seed=13)
        eng.register_graph("snb", generate_snb_graph(params), default=True)
        eng.register_graph("companies", generate_company_graph(params))
        g = eng.run(
            "CONSTRUCT (c)<-[:worksAt]-(n) "
            "MATCH (c:Company) ON companies, (n:Person) ON snb "
            "WHERE c.name IN n.employer"
        )
        assert g.edges  # some employment edges exist

    def test_view_pipeline_at_scale(self):
        from repro import GCoreEngine

        eng = GCoreEngine()
        eng.register_graph(
            "snb", generate_snb_graph(persons=40, seed=17), default=True
        )
        eng.run(
            "GRAPH VIEW msg AS (CONSTRUCT snb, (n)-[e]->(m) "
            "SET e.nr_messages := COUNT(*) "
            "MATCH (n)-[e:knows]->(m) "
            "OPTIONAL (n)<-[c1]-(m1:Post|Comment), (m1)-[:reply_of]-(m2), "
            "(m2:Post|Comment)-[c2]->(m) "
            "WHERE (c1:has_creator) AND (c2:has_creator))"
        )
        view = eng.graph("msg")
        for edge in view.edges_with_label("knows"):
            assert view.property(edge, "nr_messages") != frozenset()
