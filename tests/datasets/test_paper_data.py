"""Sanity checks of the reconstructed paper instances (DESIGN.md table)."""


from repro.datasets import company_graph, figure2_graph, orders_table, social_graph
from repro.model.schema import snb_schema


class TestSocialGraph:
    def test_persons(self, social):
        persons = social.nodes_with_label("Person")
        assert persons == {"john", "alice", "celine", "peter", "frank"}

    def test_employers(self, social):
        assert social.property("john", "employer") == {"Acme"}
        assert social.property("alice", "employer") == {"Acme"}
        assert social.property("celine", "employer") == {"HAL"}
        assert social.property("peter", "employer") == frozenset()
        assert social.property("frank", "employer") == {"CWI", "MIT"}

    def test_everyone_in_houston(self, social):
        for person in social.nodes_with_label("Person"):
            located = [
                social.endpoints(e)[1]
                for e in social.out_edges(person)
                if social.has_label(e, "isLocatedIn")
            ]
            assert located == ["houston"]

    def test_knows_edges_are_bidirectional_pairs(self, social):
        knows = social.edges_with_label("knows")
        pairs = {social.endpoints(e) for e in knows}
        for src, dst in pairs:
            assert (dst, src) in pairs  # Figure 4's caption

    def test_wagner_lovers(self, social):
        lovers = {
            social.endpoints(e)[0]
            for e in social.edges_with_label("hasInterest")
        }
        assert lovers == {"celine", "frank"}

    def test_johns_friends_do_not_like_wagner(self, social):
        johns_friends = {
            social.endpoints(e)[1]
            for e in social.out_edges("john")
            if social.has_label(e, "knows")
        }
        lovers = {
            social.endpoints(e)[0]
            for e in social.edges_with_label("hasInterest")
        }
        assert not (johns_friends & lovers)

    def test_message_threads_alternate(self, social):
        for edge in social.edges_with_label("reply_of"):
            msg, parent = social.endpoints(edge)
            assert social.labels(msg) & {"Comment"}
            assert social.labels(parent) & {"Post", "Comment"}

    def test_schema_conformance(self, social):
        assert snb_schema().validate(social) == []

    def test_no_stored_paths_in_base(self, social):
        assert social.paths == frozenset()


class TestCompanyGraphAndOrders:
    def test_companies(self, companies):
        names = {
            next(iter(companies.property(n, "name")))
            for n in companies.nodes
        }
        assert names == {"Acme", "HAL", "CWI", "MIT"}

    def test_companies_unconnected(self, companies):
        assert companies.edges == frozenset()

    def test_orders_shape(self):
        t = orders_table()
        assert t.columns == ("custName", "prodCode")
        assert len(t) == 6

    def test_determinism(self):
        assert social_graph() == social_graph()
        assert figure2_graph() == figure2_graph()
        assert company_graph() == company_graph()
