"""Binary snapshots: round trips, rejection paths, engine + pool wiring."""

import pickle
import struct

import pytest

from repro import GCoreEngine
from repro.datasets import load
from repro.errors import (
    SnapshotFormatError,
    SnapshotVersionError,
    UnknownGraphError,
    UnknownTableError,
)
from repro.eval import parallel
from repro.model.graph import PathPropertyGraph
from repro.storage import (
    FORMAT_VERSION,
    FlatPathPropertyGraph,
    attach,
    open_snapshot,
)
from repro.storage.format import _HEADER, MAGIC
from repro.storage.snapshot import detach_all

STATISTICS_FIELDS = (
    "node_count",
    "edge_count",
    "path_count",
    "node_label_counts",
    "edge_label_counts",
    "path_label_counts",
    "edge_label_sources",
    "edge_label_targets",
    "_node_prop_sel",
    "_edge_prop_sel",
    "_path_prop_sel",
)


def make_engine(dataset="paper", **knobs):
    engine = GCoreEngine()
    load(dataset, **knobs).install(engine)
    return engine


def saved(tmp_path, engine, name="catalog.gsnap"):
    path = str(tmp_path / name)
    engine.save(path)
    return path


def assert_graph_equal(flat, oracle):
    assert isinstance(flat, FlatPathPropertyGraph)
    assert flat == oracle  # nodes, rho, delta, labels, props
    assert oracle == flat  # reflected: dict slots vs lazy mappings
    for node in oracle.nodes:
        assert flat.labels(node) == oracle.labels(node)
        assert flat.properties(node) == oracle.properties(node)
        assert flat.out_edges(node) == oracle.out_edges(node)
        assert flat.in_edges(node) == oracle.in_edges(node)
    for edge in oracle.edges:
        assert flat.endpoints(edge) == oracle.endpoints(edge)
    for path in oracle.paths:
        assert flat.path_sequence(path) == oracle.path_sequence(path)
    flat_stats, oracle_stats = flat.statistics(), oracle.statistics()
    for field in STATISTICS_FIELDS:
        assert getattr(flat_stats, field) == getattr(oracle_stats, field)


@pytest.fixture(autouse=True)
def _fresh_attach_cache():
    yield
    detach_all()


# ---------------------------------------------------------------------------
# Round trips
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("dataset", ["paper", "figure2", "company"])
def test_round_trip_datasets(tmp_path, dataset):
    engine = make_engine(dataset)
    path = saved(tmp_path, engine)
    with open_snapshot(path) as snapshot:
        assert sorted(snapshot.graph_names()) == sorted(
            engine.catalog.graph_names()
        )
        for name in engine.catalog.graph_names():
            assert_graph_equal(snapshot.graph(name), engine.catalog.graph(name))
        for name in engine.catalog.table_names():
            assert snapshot.table(name) == engine.catalog.table(name)
        assert snapshot.default_graph_name == engine.catalog.default_graph_name


def test_round_trip_snb_and_mmap_off(tmp_path):
    engine = make_engine("snb", scale=60, seed=11)
    path = saved(tmp_path, engine)
    for mmap_flag in (True, False):
        with open_snapshot(path, mmap=mmap_flag) as snapshot:
            if not mmap_flag:
                assert not snapshot.mapped
            assert_graph_equal(snapshot.graph("snb"), engine.catalog.graph("snb"))
            snapshot.verify()


def test_adjacency_matches_oracle(tmp_path):
    engine = make_engine("snb", scale=40, seed=5)
    oracle = engine.catalog.graph("snb")
    path = saved(tmp_path, engine)
    with open_snapshot(path) as snapshot:
        flat = snapshot.graph("snb")
        for forward in (True, False):
            for label in (None, "knows", "hasInterest", "no_such_label"):
                assert flat._adjacency(forward, label) == oracle._adjacency(
                    forward, label
                )


def test_unknown_names_raise(tmp_path):
    path = saved(tmp_path, make_engine())
    with open_snapshot(path) as snapshot:
        with pytest.raises(UnknownGraphError):
            snapshot.graph("nope")
        with pytest.raises(UnknownTableError):
            snapshot.table("nope")


def test_engine_open_round_trip(tmp_path):
    engine = make_engine()
    path = saved(tmp_path, engine)
    reopened = GCoreEngine.open(path)
    assert sorted(reopened.catalog.graph_names()) == sorted(
        engine.catalog.graph_names()
    )
    assert reopened.catalog.default_graph_name == "social_graph"
    assert reopened.catalog.table("orders") == engine.catalog.table("orders")
    query = "SELECT n MATCH (n:Person) ON social_graph"
    assert reopened.run(query) == engine.run(query)


def test_with_name_keeps_flat_class(tmp_path):
    path = saved(tmp_path, make_engine("figure2"))
    with open_snapshot(path) as snapshot:
        graph = snapshot.graph("figure2")
        renamed = graph.with_name("other")
        assert isinstance(renamed, FlatPathPropertyGraph)
        assert renamed.name == "other"
        assert renamed == graph


def test_copy_on_write_update(tmp_path):
    from repro import GraphDelta

    engine = GCoreEngine.open(saved(tmp_path, make_engine("figure2")))
    before = engine.catalog.graph("figure2")
    node_count = len(before.nodes)
    delta = GraphDelta().add_node(
        900, labels=["Tag"], properties={"name": "Bruckner"}
    )
    engine.apply_update("figure2", delta)
    after = engine.catalog.graph("figure2")
    assert not isinstance(after, FlatPathPropertyGraph)
    assert isinstance(after, PathPropertyGraph)
    assert len(after.nodes) == node_count + 1
    # the mapped original is untouched
    assert isinstance(before, FlatPathPropertyGraph)
    assert len(before.nodes) == node_count
    assert 900 not in before.nodes


# ---------------------------------------------------------------------------
# Rejection paths
# ---------------------------------------------------------------------------

def test_bad_magic_rejected(tmp_path):
    path = saved(tmp_path, make_engine("figure2"))
    with open(path, "r+b") as handle:
        handle.write(b"NOTASNAP")
    with pytest.raises(SnapshotFormatError) as excinfo:
        open_snapshot(path)
    assert excinfo.value.code == "snapshot_format_error"
    assert excinfo.value.http_status == 422


def test_truncated_file_rejected(tmp_path):
    path = saved(tmp_path, make_engine("figure2"))
    with open(path, "rb") as handle:
        payload = handle.read()
    for cut in (4, len(payload) // 2, len(payload) - 3):
        short = str(tmp_path / f"cut{cut}.gsnap")
        with open(short, "wb") as handle:
            handle.write(payload[:cut])
        with pytest.raises(SnapshotFormatError):
            open_snapshot(short)


def test_corrupted_section_rejected(tmp_path):
    path = saved(tmp_path, make_engine("figure2"))
    with open(path, "r+b") as handle:
        handle.seek(_HEADER.size + 2)
        byte = handle.read(1)
        handle.seek(_HEADER.size + 2)
        handle.write(bytes([byte[0] ^ 0xFF]))
    with open_snapshot(path) as snapshot:
        with pytest.raises(SnapshotFormatError):
            snapshot.verify()


def test_version_mismatch_rejected(tmp_path):
    path = saved(tmp_path, make_engine("figure2"))
    with open(path, "r+b") as handle:
        handle.seek(len(MAGIC))
        handle.write(struct.pack("<H", FORMAT_VERSION + 1))
    with pytest.raises(SnapshotVersionError) as excinfo:
        open_snapshot(path)
    error = excinfo.value
    assert error.found == FORMAT_VERSION + 1
    assert error.supported == FORMAT_VERSION
    assert error.code == "snapshot_version_error"
    assert error.http_status == 422
    assert isinstance(error, SnapshotFormatError)


# ---------------------------------------------------------------------------
# Worker-pool integration
# ---------------------------------------------------------------------------

def test_flat_graphs_export_as_attach_tokens(tmp_path):
    path = saved(tmp_path, make_engine("figure2"))
    with open_snapshot(path) as snapshot:
        graph = snapshot.graph("figure2")
        token = parallel.export(graph)
        assert isinstance(token, tuple)
        assert token[0] == parallel._SNAPSHOT_TOKEN
        resolved = parallel._resolve(token)
        assert isinstance(resolved, FlatPathPropertyGraph)
        assert resolved == graph


def test_stale_attach_token_resolves_missing(tmp_path):
    token = (
        parallel._SNAPSHOT_TOKEN,
        str(tmp_path / "deleted.gsnap"),
        "g0",
        "g",
    )
    assert parallel._resolve(token) is parallel._MISSING


def test_pickle_reopens_through_attach(tmp_path):
    path = saved(tmp_path, make_engine("figure2"))
    graph = GCoreEngine.open(path).catalog.graph("figure2")
    clone = pickle.loads(pickle.dumps(graph))
    assert isinstance(clone, FlatPathPropertyGraph)
    assert clone == graph
    assert clone.name == graph.name
    # attach() caches per path: a second unpickle shares the mapping
    again = pickle.loads(pickle.dumps(graph))
    assert again.store.reader is clone.store.reader


def test_attach_is_cached_per_path(tmp_path):
    path = saved(tmp_path, make_engine("figure2"))
    assert attach(path) is attach(path)
