"""EXISTS subqueries — explicit and implicit (Section 3, Appendix A.2)."""



class TestImplicitExistential:
    def test_colocated_pattern(self, engine):
        table = engine.bindings(
            "MATCH (n:Person), (m:Person) "
            "WHERE (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)"
        )
        # all 5 persons live in Houston: 25 pairs (homomorphism allows n=m)
        assert len(table) == 25

    def test_correlated_on_bound_vars(self, engine):
        table = engine.bindings(
            "MATCH (n:Person) WHERE (n)-[:hasInterest]->(:Tag {name='Wagner'})"
        )
        assert {row["n"] for row in table} == {"celine", "frank"}

    def test_negation(self, engine):
        table = engine.bindings(
            "MATCH (n:Person) WHERE NOT (n)-[:hasInterest]->()"
        )
        assert {row["n"] for row in table} == {"john", "alice", "peter"}


class TestExplicitExists:
    def test_equivalent_to_implicit(self, engine):
        implicit = engine.bindings(
            "MATCH (n:Person), (m:Person) "
            "WHERE (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)"
        )
        explicit = engine.bindings(
            "MATCH (n:Person), (m:Person) WHERE EXISTS ("
            "CONSTRUCT () MATCH (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m))"
        )
        assert implicit == explicit

    def test_uncorrelated_exists_true(self, engine):
        table = engine.bindings(
            "MATCH (n:Tag) WHERE EXISTS (CONSTRUCT (p) MATCH (p:Person))"
        )
        assert len(table) == 1

    def test_uncorrelated_exists_false(self, engine):
        table = engine.bindings(
            "MATCH (n:Tag) WHERE EXISTS (CONSTRUCT (p) MATCH (p:Ghost))"
        )
        assert len(table) == 0

    def test_exists_on_other_graph(self, engine):
        table = engine.bindings(
            "MATCH (n:Person {employer=e}) WHERE EXISTS ("
            "CONSTRUCT (c) MATCH (c:Company) ON company_graph "
            "WHERE c.name = e)"
        )
        assert {row["n"] for row in table} == {
            "john", "alice", "celine", "frank",
        }

    def test_nested_exists(self, engine):
        table = engine.bindings(
            "MATCH (n:Person) WHERE EXISTS ("
            "CONSTRUCT (m) MATCH (m:Person) WHERE EXISTS ("
            "CONSTRUCT (t) MATCH (m)-[:hasInterest]->(t)) "
            "AND (n)-[:knows]->(m))"
        )
        # persons who know someone with an interest: peter (knows celine,
        # frank), celine & frank (know each other), john? john knows
        # alice+peter, neither has interests -> john excluded
        assert {row["n"] for row in table} == {"peter", "celine", "frank"}
