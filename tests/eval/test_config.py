"""ExecutionConfig: validation, wire forms, legacy flags, API plumbing.

The mode-lattice value itself (:mod:`repro.config`), the deprecated
``naive=True`` alias, the legacy EvalContext flag properties, the
EXPLAIN config line, prepared-query config overrides, and the REPL
``.config`` command.
"""

import warnings

import pytest

from repro import (
    DEFAULT_CONFIG,
    NAIVE_CONFIG,
    ExecutionConfig,
    GCoreEngine,
    ValidationError,
)
from repro.__main__ import ShellState, _parse_config_args, handle_command
from repro.catalog import Catalog
from repro.datasets import social_graph
from repro.engine import _resolve_config
from repro.eval.context import EvalContext


def make_engine():
    engine = GCoreEngine()
    engine.register_graph("social_graph", social_graph(), default=True)
    return engine


class TestValidation:
    def test_default_is_fast_serial_lattice_point(self):
        assert DEFAULT_CONFIG == ExecutionConfig(
            planner="cost",
            executor="columnar",
            expressions="vectorized",
            paths="batched",
            view_refresh="incremental",
            parallelism=1,
        )
        assert DEFAULT_CONFIG.serial

    def test_naive_config_is_the_reference_column(self):
        assert NAIVE_CONFIG.planner == "naive"
        assert NAIVE_CONFIG.executor == "reference"
        assert NAIVE_CONFIG.expressions == "interpreted"
        assert NAIVE_CONFIG.paths == "naive"

    @pytest.mark.parametrize(
        "axis,value",
        [
            ("planner", "speedy"),
            ("executor", "rowwise"),
            ("expressions", "jit"),
            ("paths", "dfs"),
            ("view_refresh", "lazy"),
        ],
    )
    def test_invalid_axis_value_raises(self, axis, value):
        with pytest.raises(ValidationError, match=axis):
            ExecutionConfig(**{axis: value})

    @pytest.mark.parametrize("bad", [0, -1, 65, 1.5, True, "many", None])
    def test_invalid_parallelism_raises(self, bad):
        with pytest.raises(ValidationError, match="parallelism"):
            ExecutionConfig(parallelism=bad)

    def test_serial_string_normalizes_to_one(self):
        config = ExecutionConfig(parallelism="serial")
        assert config.parallelism == 1
        assert config.serial
        assert config == DEFAULT_CONFIG

    def test_with_validates_like_the_constructor(self):
        assert DEFAULT_CONFIG.with_(parallelism=4).parallelism == 4
        with pytest.raises(ValidationError):
            DEFAULT_CONFIG.with_(planner="bogus")

    def test_config_is_frozen_and_hashable(self):
        config = ExecutionConfig(parallelism=2)
        with pytest.raises(Exception):
            config.planner = "greedy"
        assert hash(config) == hash(ExecutionConfig(parallelism=2))


class TestWireForm:
    def test_json_roundtrip(self):
        config = ExecutionConfig(planner="greedy", parallelism=4)
        assert ExecutionConfig.from_json(config.to_json()) == config

    def test_none_and_empty_mean_default(self):
        assert ExecutionConfig.from_json(None) == DEFAULT_CONFIG
        assert ExecutionConfig.from_json({}) == DEFAULT_CONFIG

    def test_serial_spelled_out_on_the_wire(self):
        assert DEFAULT_CONFIG.to_json()["parallelism"] == "serial"
        assert ExecutionConfig(parallelism=2).to_json()["parallelism"] == 2

    def test_unknown_keys_raise(self):
        with pytest.raises(ValidationError, match="unknown"):
            ExecutionConfig.from_json({"bogus": 1})

    def test_non_object_raises(self):
        with pytest.raises(ValidationError):
            ExecutionConfig.from_json("cost")

    def test_describe_lists_every_axis(self):
        line = ExecutionConfig(parallelism=3).describe()
        for axis in (
            "planner=cost",
            "executor=columnar",
            "expressions=vectorized",
            "paths=batched",
            "view_refresh=incremental",
            "parallelism=3",
        ):
            assert axis in line
        assert "parallelism=serial" in DEFAULT_CONFIG.describe()


class TestLegacyFlags:
    def test_naive_planner_selects_the_reference_column(self):
        ctx = EvalContext(Catalog())
        ctx.naive_planner = True
        assert ctx.config == NAIVE_CONFIG
        ctx.naive_planner = False
        assert ctx.config == DEFAULT_CONFIG

    def test_cost_planner_toggle(self):
        ctx = EvalContext(Catalog())
        ctx.use_cost_planner = False
        assert ctx.config.planner == "greedy"
        ctx.use_cost_planner = True
        assert ctx.config.planner == "cost"

    def test_columnar_executor_cascades_like_history(self):
        ctx = EvalContext(Catalog())
        ctx.columnar_executor = False
        assert ctx.config.executor == "reference"
        assert ctx.config.expressions == "interpreted"
        assert ctx.config.paths == "naive"
        # a later explicit assignment overrides the cascade
        ctx.vectorized_expressions = True
        assert ctx.config.expressions == "vectorized"
        assert ctx.config.executor == "reference"

    def test_resolve_config_deprecates_naive(self):
        with pytest.warns(DeprecationWarning):
            assert _resolve_config(None, True) == NAIVE_CONFIG
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _resolve_config(None, False) == DEFAULT_CONFIG
        # an explicit config always wins over the legacy flag
        with pytest.warns(DeprecationWarning):
            assert _resolve_config(DEFAULT_CONFIG, True) == DEFAULT_CONFIG

    def test_engine_run_naive_true_warns_and_matches_naive_config(self):
        engine = make_engine()
        query = "SELECT n.firstName MATCH (n:Person) ORDER BY n.firstName"
        with pytest.warns(DeprecationWarning):
            legacy = engine.run(query, naive=True)
        assert legacy.rows == engine.run(query, config=NAIVE_CONFIG).rows


class TestEnginePlumbing:
    def test_explain_prints_the_active_config(self):
        engine = make_engine()
        query = "SELECT n.firstName MATCH (n:Person)"
        assert "config: " + DEFAULT_CONFIG.describe() in engine.explain(query)
        greedy = ExecutionConfig(planner="greedy")
        assert "config: " + greedy.describe() in engine.explain(
            query, config=greedy
        )

    def test_run_accepts_config_at_every_lattice_point(self):
        engine = make_engine()
        query = "SELECT n.firstName MATCH (n:Person) ORDER BY n.firstName"
        reference = engine.run(query)
        for config in (NAIVE_CONFIG, ExecutionConfig(executor="reference"),
                       ExecutionConfig(parallelism=2)):
            assert engine.run(query, config=config).rows == reference.rows

    def test_prepared_query_accepts_config(self):
        engine = make_engine()
        prepared = engine.prepare(
            "SELECT n.firstName MATCH (n:Person) ORDER BY n.firstName"
        )
        reference = prepared.run()
        assert prepared.run(config=NAIVE_CONFIG).rows == reference.rows
        snapshot = engine.snapshot()
        assert snapshot.execute_prepared(
            prepared, config=ExecutionConfig(planner="greedy")
        ).rows == reference.rows

    def test_refresh_view_full_mode_forces_recompute(self):
        engine = make_engine()
        engine.run(
            "GRAPH VIEW acme AS (CONSTRUCT (n) MATCH (n:Person) "
            "WHERE n.employer = 'Acme')"
        )
        incremental = engine.refresh_view("acme")
        full = engine.refresh_view(
            "acme", config=ExecutionConfig(view_refresh="full")
        )
        assert incremental == full


class TestReplConfigCommand:
    def test_parse_and_reset(self):
        config = _parse_config_args(
            DEFAULT_CONFIG, "parallelism=4 planner=greedy"
        )
        assert config.parallelism == 4
        assert config.planner == "greedy"
        assert _parse_config_args(config, "reset") == DEFAULT_CONFIG
        assert _parse_config_args(config, "parallelism=serial").serial

    @pytest.mark.parametrize("argument", ["bogus=1", "planner", "planner=x"])
    def test_bad_arguments_raise_validation_error(self, argument):
        with pytest.raises(ValidationError):
            _parse_config_args(DEFAULT_CONFIG, argument)

    def test_config_command_mutates_shell_state(self, capsys):
        engine = make_engine()
        state = ShellState()
        handle_command(engine, ".config parallelism=2", state)
        assert state.config.parallelism == 2
        assert "parallelism=2" in capsys.readouterr().out
        handle_command(engine, ".config reset", state)
        assert state.config == DEFAULT_CONFIG
