"""MATCH path-pattern evaluation: SHORTEST / k SHORTEST / ALL / reachability."""

import pytest

from repro import GCoreEngine, GraphBuilder
from repro.errors import SemanticError
from repro.paths.walk import Walk


@pytest.fixture()
def chain_engine():
    """a -k-> b -k-> c -k-> d plus shortcut a -k-> c."""
    b = GraphBuilder()
    for n in "abcd":
        b.add_node(n, labels=["N"], properties={"name": n})
    b.add_edge("a", "b", edge_id="ab", labels=["k"])
    b.add_edge("b", "c", edge_id="bc", labels=["k"])
    b.add_edge("c", "d", edge_id="cd", labels=["k"])
    b.add_edge("a", "c", edge_id="ac", labels=["k"])
    eng = GCoreEngine()
    eng.register_graph("g", b.build(), default=True)
    return eng


class TestShortest:
    def test_binds_walk_and_cost(self, chain_engine):
        table = chain_engine.bindings(
            "MATCH (a {name='a'})-/p<:k*> COST c/->(d {name='d'})"
        )
        assert len(table) == 1
        row = table.rows[0]
        assert isinstance(row["p"], Walk)
        assert row["p"].sequence == ("a", "ac", "c", "cd", "d")
        assert row["c"] == 2

    def test_cost_defaults_to_hop_count(self, chain_engine):
        table = chain_engine.bindings(
            "MATCH (a {name='a'})-/p<:k*> COST c/->(b {name='b'})"
        )
        assert table.rows[0]["c"] == 1

    def test_expands_unbound_target(self, chain_engine):
        table = chain_engine.bindings("MATCH (a {name='a'})-/p<:k*>/->(m)")
        assert {row["m"] for row in table} == {"a", "b", "c", "d"}

    def test_incoming_direction(self, chain_engine):
        table = chain_engine.bindings(
            "MATCH (d {name='d'})<-/p<:k*>/-(a {name='a'})"
        )
        (row,) = table.rows
        assert row["p"].source == "a" and row["p"].target == "d"

    def test_k_shortest_multiplicity(self, chain_engine):
        table = chain_engine.bindings(
            "MATCH (a {name='a'})-/2 SHORTEST p<:k*>/->(c {name='c'})"
        )
        costs = sorted(row["p"].cost for row in table)
        assert costs == [1, 2]  # a-c direct and a-b-c

    def test_k_larger_than_available(self, chain_engine):
        table = chain_engine.bindings(
            "MATCH (a {name='a'})-/5 SHORTEST p<:k*>/->(b {name='b'})"
        )
        assert len(table) == 1  # DAG: only one walk a->b


class TestReachability:
    def test_filters_pairs(self, chain_engine):
        table = chain_engine.bindings(
            "MATCH (x {name='b'})-/<:k*>/->(y:N)"
        )
        assert {row["y"] for row in table} == {"b", "c", "d"}

    def test_no_path_variable_bound(self, chain_engine):
        table = chain_engine.bindings("MATCH (x {name='a'})-/<:k*>/->(y)")
        assert set(table.columns) == {"x", "y"}


class TestAllPaths:
    def test_handle_projection(self, chain_engine):
        g = chain_engine.run(
            "CONSTRUCT (a)-/p/->(d) "
            "MATCH (a {name='a'})-/ALL p<:k*>/->(d {name='d'})"
        )
        assert g.nodes == {"a", "b", "c", "d"}
        assert g.edges == {"ab", "bc", "cd", "ac"}
        assert g.paths == frozenset()  # projection, not storage

    def test_all_var_in_where_rejected(self, chain_engine):
        with pytest.raises(SemanticError):
            chain_engine.bindings(
                "MATCH (a)-/ALL p<:k*>/->(d) WHERE length(p) > 1"
            )

    def test_storing_all_rejected(self, chain_engine):
        with pytest.raises(SemanticError):
            chain_engine.run(
                "CONSTRUCT (a)-/@p/->(d) MATCH (a {name='a'})-/ALL p<:k*>/->(d)"
            )


class TestStoredPathMatch:
    def test_match_by_label(self, figure2_engine):
        table = figure2_engine.bindings("MATCH (x)-/@p:toWagner/->(y)")
        (row,) = table.rows
        assert row["p"] == 301 and row["x"] == 105 and row["y"] == 102

    def test_stored_path_direction(self, figure2_engine):
        table = figure2_engine.bindings("MATCH (x)<-/@p:toWagner/-(y)")
        (row,) = table.rows
        assert row["x"] == 102 and row["y"] == 105

    def test_no_label_matches_all_stored(self, figure2_engine):
        table = figure2_engine.bindings("MATCH (x)-/@p/->(y)")
        assert len(table) == 1

    def test_wrong_label_no_match(self, figure2_engine):
        assert len(figure2_engine.bindings("MATCH (x)-/@p:other/->(y)")) == 0

    def test_path_functions_on_stored(self, figure2_engine):
        table = figure2_engine.bindings(
            "MATCH (x)-/@p:toWagner/->(y) WHERE length(p) = 2"
        )
        assert len(table) == 1
