"""Query parameters ($name) — engine.run(..., params=...)."""

import pytest

from repro.errors import EvaluationError, LexerError
from repro.lang.parser import parse_statement
from repro.lang.pretty import pretty_statement


class TestParams:
    def test_equality_param(self, engine):
        g = engine.run(
            "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = $emp",
            params={"emp": "Acme"},
        )
        assert g.nodes == {"john", "alice"}

    def test_in_param(self, engine):
        g = engine.run(
            "CONSTRUCT (n) MATCH (n:Person) WHERE $emp IN n.employer",
            params={"emp": "MIT"},
        )
        assert g.nodes == {"frank"}

    def test_collection_param(self, engine):
        g = engine.run(
            "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer SUBSET OF $set",
            params={"set": {"CWI", "MIT"}},
        )
        assert "frank" in g.nodes

    def test_param_in_construct_assignment(self, engine):
        g = engine.run(
            "CONSTRUCT (n {tag := $v}) MATCH (n:Tag)", params={"v": 7}
        )
        assert g.property("wagner", "tag") == {7}

    def test_param_visible_in_subquery(self, engine):
        g = engine.run(
            "CONSTRUCT (n) MATCH (n:Person) WHERE EXISTS ("
            "CONSTRUCT (c) MATCH (c:Company) ON company_graph "
            "WHERE c.name = $emp AND c.name IN n.employer)",
            params={"emp": "HAL"},
        )
        assert g.nodes == {"celine"}

    def test_missing_param_errors(self, engine):
        with pytest.raises(EvaluationError):
            engine.run(
                "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = $emp"
            )

    def test_same_statement_different_params(self, engine):
        statement = engine.parse(
            "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = $emp"
        )
        acme = engine.run(statement, params={"emp": "Acme"})
        hal = engine.run(statement, params={"emp": "HAL"})
        assert acme.nodes == {"john", "alice"}
        assert hal.nodes == {"celine"}


class TestParamSyntax:
    def test_round_trip(self):
        text = "CONSTRUCT (n) MATCH (n) WHERE n.a = $x AND $y IN n.b"
        statement = parse_statement(text)
        assert parse_statement(pretty_statement(statement)) == statement

    def test_dollar_without_name_rejected(self):
        with pytest.raises(LexerError):
            parse_statement("CONSTRUCT (n) MATCH (n) WHERE n.a = $")
