"""Tabular input extensions (Section 5): FROM tables and tables-as-graphs."""

import pytest

from repro import Table
from repro.errors import UnknownTableError


class TestFromTable:
    def test_construct_from_orders(self, engine):
        g = engine.run(
            "CONSTRUCT (cust GROUP custName :Customer {name:=custName}), "
            "(prod GROUP prodCode :Product {code:=prodCode}), "
            "(cust)-[:bought]->(prod) FROM orders"
        )
        customers = {
            next(iter(g.property(n, "name")))
            for n in g.nodes if g.has_label(n, "Customer")
        }
        products = {
            next(iter(g.property(n, "code")))
            for n in g.nodes if g.has_label(n, "Product")
        }
        assert customers == {"Alice", "Bob", "Carol"}
        assert products == {"P100", "P200", "P300"}
        assert len(g.edges) == 6

    def test_bought_edges_connect_right_pairs(self, engine):
        g = engine.run(
            "CONSTRUCT (cust GROUP custName :Customer {name:=custName}), "
            "(prod GROUP prodCode :Product {code:=prodCode}), "
            "(cust)-[:bought]->(prod) FROM orders"
        )
        pairs = set()
        for e in g.edges:
            src, dst = g.endpoints(e)
            pairs.add((
                next(iter(g.property(src, "name"))),
                next(iter(g.property(dst, "code"))),
            ))
        assert ("Alice", "P100") in pairs and ("Carol", "P300") in pairs
        assert ("Alice", "P300") not in pairs

    def test_unknown_table(self, engine):
        with pytest.raises(UnknownTableError):
            engine.run("CONSTRUCT (x GROUP a) FROM mystery")


class TestTableAsGraph:
    def test_match_on_orders(self, engine):
        table = engine.bindings("MATCH (o) ON orders")
        assert len(table) == 6  # one isolated node per row

    def test_row_properties(self, engine):
        table = engine.bindings(
            "MATCH (o) ON orders WHERE o.custName = 'Alice'"
        )
        assert len(table) == 2

    def test_equivalent_to_from(self, engine):
        g_from = engine.run(
            "CONSTRUCT (cust GROUP custName :Customer {name:=custName}), "
            "(prod GROUP prodCode :Product {code:=prodCode}), "
            "(cust)-[:bought]->(prod) FROM orders"
        )
        g_on = engine.run(
            "CONSTRUCT (cust GROUP o.custName :Customer {name:=o.custName}), "
            "(prod GROUP o.prodCode :Product {code:=o.prodCode}), "
            "(cust)-[:bought]->(prod) MATCH (o) ON orders"
        )
        # Same shape: identical label/property structure (ids are skolems).
        def shape(g):
            nodes = sorted(
                (sorted(g.labels(n)), sorted(
                    (k, tuple(sorted(map(str, v)))) for k, v in g.properties(n).items()
                ))
                for n in g.nodes
            )
            edges = sorted(
                (sorted(g.labels(e)),
                 sorted(g.labels(g.endpoints(e)[0])),
                 sorted(g.labels(g.endpoints(e)[1])))
                for e in g.edges
            )
            return (nodes, len(g.edges), edges)
        assert shape(g_from) == shape(g_on)

    def test_registered_graph_beats_table(self, engine):
        # register a graph with the same name as a table: graph wins
        from repro import GraphBuilder

        b = GraphBuilder()
        b.add_node("solo")
        engine.register_graph("orders", b.build())
        table = engine.bindings("MATCH (o) ON orders")
        assert len(table) == 1


class TestTableValue:
    def test_from_dicts_round_trip(self):
        t = Table.from_dicts(
            [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}], name="t"
        )
        assert t.columns == ("a", "b")
        assert t.to_dicts() == [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]

    def test_from_dicts_empty_first_record_keeps_later_columns(self):
        # Regression: column inference must scan *every* record — with a
        # first-record-only inference, an empty (or partial) leading
        # record would silently drop the columns later records introduce.
        t = Table.from_dicts([{}, {"a": 1}, {"a": 2, "b": 3}])
        assert t.columns == ("a", "b")
        assert t.rows == ((None, None), (1, None), (2, 3))

    def test_from_dicts_later_records_widen_columns(self):
        t = Table.from_dicts([{"a": 1}, {"b": 2}, {"c": 3, "a": 4}])
        assert t.columns == ("a", "b", "c")
        assert t.rows == ((1, None, None), (None, 2, None), (4, None, 3))

    def test_from_dicts_consumes_one_shot_iterators(self):
        t = Table.from_dicts(iter([{}, {"a": 1}]))
        assert t.columns == ("a",)
        assert t.rows == ((None,), (1,))

    def test_column_access(self):
        t = Table(("a", "b"), [(1, 2), (3, 4)])
        assert t.column("b") == (2, 4)

    def test_width_mismatch(self):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            Table(("a",), [(1, 2)])

    def test_unknown_column(self):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            Table(("a",), [(1,)]).column("z")

    def test_equality(self):
        assert Table(("a",), [(1,)]) == Table(("a",), [(1,)])
        assert Table(("a",), [(1,)]) != Table(("a",), [(2,)])

    def test_pretty_limit(self):
        t = Table(("a",), [(i,) for i in range(100)])
        assert "more rows" in t.pretty(limit=5)
