"""SELECT (tabular projection) tests — Section 5."""


from repro.table import Table


class TestProjection:
    def test_simple_projection(self, engine):
        t = engine.run("SELECT n.firstName AS first MATCH (n:Person)")
        assert isinstance(t, Table)
        assert t.columns == ("first",)
        assert set(t.column("first")) == {
            "John", "Alice", "Celine", "Peter", "Frank",
        }

    def test_string_concatenation(self, engine):
        t = engine.run(
            "SELECT m.lastName + ', ' + m.firstName AS friendName "
            "MATCH (m:Person) WHERE m.employer = 'HAL'"
        )
        assert t.rows == (("Mayer, Celine",),)

    def test_default_column_name_is_expression(self, engine):
        t = engine.run("SELECT n.firstName MATCH (n:Person) LIMIT 1")
        assert t.columns == ("n.firstName",)

    def test_multivalued_cell(self, engine):
        t = engine.run(
            "SELECT n.employer AS e MATCH (n:Person) WHERE n.firstName = 'Frank'"
        )
        assert t.rows[0][0] == frozenset({"CWI", "MIT"})

    def test_absent_property_is_null_cell(self, engine):
        t = engine.run(
            "SELECT n.employer AS e MATCH (n:Person) WHERE n.firstName = 'Peter'"
        )
        assert t.rows[0][0] is None


class TestModifiers:
    def test_distinct(self, engine):
        t = engine.run("SELECT DISTINCT e MATCH (n:Person {employer=e})")
        assert len(t) == 4  # Acme, HAL, CWI, MIT (Acme deduplicated)

    def test_order_by(self, engine):
        t = engine.run(
            "SELECT n.firstName AS f MATCH (n:Person) ORDER BY f"
        )
        assert list(t.column("f")) == sorted(t.column("f"))

    def test_order_by_desc(self, engine):
        t = engine.run(
            "SELECT n.firstName AS f MATCH (n:Person) ORDER BY f DESC"
        )
        assert list(t.column("f")) == sorted(t.column("f"), reverse=True)

    def test_limit_offset(self, engine):
        t_all = engine.run("SELECT n.firstName AS f MATCH (n:Person) ORDER BY f")
        t = engine.run(
            "SELECT n.firstName AS f MATCH (n:Person) ORDER BY f LIMIT 2 OFFSET 1"
        )
        assert list(t.column("f")) == list(t_all.column("f"))[1:3]

    def test_order_by_non_projected_expression(self, engine):
        t = engine.run(
            "SELECT n.firstName AS f MATCH (n:Person) ORDER BY n.lastName"
        )
        assert len(t) == 5


class TestAggregation:
    def test_implicit_single_group(self, engine):
        t = engine.run("SELECT COUNT(*) AS c MATCH (n:Person)")
        assert t.rows == ((5,),)

    def test_group_by(self, engine):
        t = engine.run(
            "SELECT e AS employer, COUNT(*) AS c "
            "MATCH (n:Person {employer=e}) GROUP BY e ORDER BY employer"
        )
        assert t.rows == (("Acme", 2), ("CWI", 1), ("HAL", 1), ("MIT", 1))

    def test_count_distinct(self, engine):
        t = engine.run(
            "SELECT COUNT(DISTINCT m.name) AS cities "
            "MATCH (n:Person)-[:isLocatedIn]->(m)"
        )
        assert t.rows == ((1,),)

    def test_sum_avg_min_max(self, tiny_engine):
        t = tiny_engine.run(
            "SELECT SUM(e.w) AS s, AVG(e.w) AS a, MIN(e.w) AS lo, "
            "MAX(e.w) AS hi MATCH (x)-[e]->(y)"
        )
        assert t.rows == ((10, 2.5, 1, 4),)

    def test_collect(self, tiny_engine):
        t = tiny_engine.run(
            "SELECT COLLECT(m.name) AS names MATCH (a:Start)-[e]->(m)"
        )
        assert set(t.rows[0][0]) == {"b", "c"}

    def test_group_by_with_having_via_order(self, tiny_engine):
        t = tiny_engine.run(
            "SELECT x.name AS src, COUNT(*) AS fanout "
            "MATCH (x)-[e]->(y) GROUP BY x.name ORDER BY fanout DESC, src"
        )
        assert t.rows[0] == ("a", 2)


class TestSelectFromTable:
    def test_select_from_orders(self, engine):
        t = engine.run(
            "SELECT custName AS c, COUNT(*) AS n FROM orders GROUP BY c ORDER BY c"
        )
        assert t.rows == (("Alice", 2), ("Bob", 2), ("Carol", 2))

    def test_pretty_rendering(self, engine):
        t = engine.run("SELECT n.firstName AS f MATCH (n:Person) ORDER BY f")
        text = t.pretty()
        assert "f" in text and "Alice" in text
