"""Unit tests for CONSTRUCT semantics (Appendix A.3)."""

import pytest

from repro import GCoreEngine, GraphBuilder
from repro.errors import EvaluationError, SemanticError


class TestBoundConstruction:
    def test_bound_node_keeps_identity_labels_props(self, engine):
        g = engine.run("CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'")
        assert g.nodes == {"john", "alice"}
        assert g.has_label("john", "Person")
        assert g.property("john", "firstName") == {"John"}
        assert g.edges == frozenset()

    def test_result_contains_only_constructed(self, engine):
        g = engine.run("CONSTRUCT (n) MATCH (n:Tag)")
        assert g.nodes == {"wagner"}

    def test_bound_node_grouping_dedupes(self, tiny_engine):
        # n appears once per outgoing edge, but is constructed once.
        g = tiny_engine.run("CONSTRUCT (n) MATCH (n:Start)-[e]->(m)")
        assert g.nodes == {"a"}

    def test_bound_edge_preserved(self, tiny_engine):
        g = tiny_engine.run("CONSTRUCT (a)-[e]->(b) MATCH (a)-[e:x]->(b)")
        assert g.edges == {"ab", "ac"}
        assert g.endpoints("ab") == ("a", "b")
        assert g.property("ab", "w") == {1}

    def test_bound_edge_endpoint_violation(self, tiny_engine):
        with pytest.raises(EvaluationError):
            tiny_engine.run("CONSTRUCT (b)-[e]->(a) MATCH (a)-[e:x]->(b)")

    def test_unbound_optional_var_contributes_nothing(self, tiny_engine):
        g = tiny_engine.run(
            "CONSTRUCT (c) MATCH (n:End) OPTIONAL (n)-[:x]->(c)"
        )
        assert g.is_empty()  # d has no outgoing x edge; c never bound


class TestUnboundConstruction:
    def test_new_node_per_binding(self, tiny_engine):
        g = tiny_engine.run("CONSTRUCT (x) MATCH (n:Mid)")
        assert len(g.nodes) == 2  # one fresh node per binding
        assert not (g.nodes & {"b", "c"})  # fresh identities

    def test_single_node_no_match_clause(self):
        eng = GCoreEngine()
        b = GraphBuilder()
        b.add_node("seed")
        eng.register_graph("g", b.build(), default=True)
        g = eng.run("CONSTRUCT (x:Fresh {name := 'only'})")
        assert len(g.nodes) == 1
        node = next(iter(g.nodes))
        assert g.has_label(node, "Fresh")
        assert g.property(node, "name") == {"only"}

    def test_group_by_value(self, engine):
        g = engine.run(
            "CONSTRUCT (x GROUP e :Company {name:=e}) MATCH (n:Person {employer=e})"
        )
        names = {next(iter(g.property(n, "name"))) for n in g.nodes}
        assert names == {"Acme", "HAL", "CWI", "MIT"}
        assert len(g.nodes) == 4

    def test_unbound_edge_grouped_by_endpoints(self, engine):
        g = engine.run(
            "CONSTRUCT (c)<-[y:worksAt]-(n) "
            "MATCH (c:Company) ON company_graph, "
            "(n:Person {employer=e}) ON social_graph WHERE c.name = e"
        )
        worksat = [e for e in g.edges if g.has_label(e, "worksAt")]
        assert len(worksat) == 5  # Frank gets two, one per company
        frank_edges = [e for e in worksat if g.endpoints(e)[0] == "frank"]
        assert len(frank_edges) == 2

    def test_skolem_ids_deterministic_within_query(self, tiny_engine):
        g = tiny_engine.run(
            "CONSTRUCT (x GROUP m)-[:made]->(y GROUP m) MATCH (n:Start)-[e]->(m)"
        )
        # x and y group identically, so each group's x == x, and the edge
        # connects two *distinct* fresh families.
        assert len(g.nodes) == 4 and len(g.edges) == 2

    def test_multiple_unbound_occurrences_share_identity(self, tiny_engine):
        g = tiny_engine.run(
            "CONSTRUCT (x GROUP n :A)-[:self]->(x GROUP n) MATCH (n:Mid)"
        )
        # both ends of the edge are the same fresh node
        for e in g.edges:
            src, dst = g.endpoints(e)
            assert src == dst


class TestCopyConstruction:
    def test_node_copy_gets_new_identity(self, tiny_engine):
        g = tiny_engine.run("CONSTRUCT (=n) MATCH (n:Start)")
        assert len(g.nodes) == 1
        node = next(iter(g.nodes))
        assert node != "a"
        assert g.has_label(node, "Start")
        assert g.property(node, "name") == {"a"}

    def test_edge_copy_between_bound_nodes(self, tiny_engine):
        g = tiny_engine.run("CONSTRUCT (b)-[=e]->(a) MATCH (a)-[e:x]->(b)")
        assert len(g.edges) == 2
        for edge in g.edges:
            assert edge not in ("ab", "ac")  # fresh identities
            assert g.has_label(edge, "x")
            assert g.property(edge, "w") in ({1}, {2})

    def test_copy_in_match_rejected(self, tiny_engine):
        with pytest.raises(SemanticError):
            tiny_engine.bindings("MATCH (=n)")


class TestAssignments:
    def test_inline_property_assignment(self, tiny_engine):
        g = tiny_engine.run("CONSTRUCT (n {score := 10}) MATCH (n:Start)")
        assert g.property("a", "score") == {10}
        assert g.property("a", "name") == {"a"}  # original props kept

    def test_set_subclause(self, tiny_engine):
        g = tiny_engine.run("CONSTRUCT (n) SET n.extra := 1 + 1 MATCH (n:Start)")
        assert g.property("a", "extra") == {2}

    def test_set_label(self, tiny_engine):
        g = tiny_engine.run("CONSTRUCT (n) SET n:Promoted MATCH (n:Start)")
        assert g.labels("a") == {"Start", "Promoted"}

    def test_remove_property(self, tiny_engine):
        g = tiny_engine.run("CONSTRUCT (n) REMOVE n.name MATCH (n:Start)")
        assert g.property("a", "name") == frozenset()

    def test_remove_label(self, tiny_engine):
        g = tiny_engine.run("CONSTRUCT (n) REMOVE n:Start MATCH (n:Start)")
        assert g.labels("a") == frozenset()

    def test_set_does_not_modify_base_graph(self, tiny_engine):
        tiny_engine.run("CONSTRUCT (n) SET n.extra := 1 MATCH (n:Start)")
        base = tiny_engine.graph("tiny")
        assert base.property("a", "extra") == frozenset()

    def test_aggregate_in_assignment(self, tiny_engine):
        g = tiny_engine.run(
            "CONSTRUCT (n {fanout := COUNT(*)}) MATCH (n:Start)-[e]->(m)"
        )
        assert g.property("a", "fanout") == {2}

    def test_collect_assignment(self, tiny_engine):
        g = tiny_engine.run(
            "CONSTRUCT (n {targets := COLLECT(m.name)}) MATCH (n:Start)-[e]->(m)"
        )
        assert g.property("a", "targets") == {"b", "c"}


class TestWhen:
    def test_when_filters_groups(self, tiny_engine):
        g = tiny_engine.run(
            "CONSTRUCT (n)-[e:agg {c := COUNT(*)}]->(m) WHEN e.c > 1 "
            "MATCH (n:Start)-[x]->(mid)-[y]->(m)"
        )
        # a reaches d twice (via b and via c): count 2 -> kept
        assert len(g.edges) == 1
        edge = next(iter(g.edges))
        assert g.endpoints(edge) == ("a", "d")
        assert g.property(edge, "c") == {2}

    def test_when_false_drops_everything(self, tiny_engine):
        g = tiny_engine.run(
            "CONSTRUCT (n)-[e:agg]->(m) WHEN 1 > 2 MATCH (n)-[x]->(m)"
        )
        assert g.is_empty()

    def test_when_keeps_endpoints_of_survivors_only(self, tiny_engine):
        g = tiny_engine.run(
            "CONSTRUCT (n)-[e:f {w := m.name}]->(m) WHEN e.w = 'd' "
            "MATCH (n)-[x]->(m)"
        )
        assert g.nodes == {"b", "c", "d"}  # b->d and c->d survive


class TestGraphUnionShorthand:
    def test_union_with_base_graph(self, tiny_engine):
        g = tiny_engine.run("CONSTRUCT tiny, (n {extra := 1}) MATCH (n:Start)")
        assert g.nodes == {"a", "b", "c", "d"}
        assert g.property("a", "extra") == {1}
        assert g.property("a", "name") == {"a"}

    def test_multiple_items_union(self, tiny_engine):
        g = tiny_engine.run("CONSTRUCT (n), (m) MATCH (n:Start), (m:End)")
        assert g.nodes == {"a", "d"}


class TestStoredPathConstruct:
    def test_store_computed_walk(self, tiny_engine):
        g = tiny_engine.run(
            "CONSTRUCT (a)-/@p:route {hops := c}/->(d) "
            "MATCH (a:Start)-/p<:x :y> COST c/->(d:End)"
        )
        assert len(g.paths) == 1
        pid = next(iter(g.paths))
        assert g.has_label(pid, "route")
        assert g.property(pid, "hops") == {2}
        # constituent nodes and edges are projected in
        assert g.path_nodes(pid)[0] == "a" and g.path_nodes(pid)[-1] == "d"
        for edge in g.path_edges(pid):
            assert edge in g.edges

    def test_restore_existing_path(self, figure2_engine):
        g = figure2_engine.run(
            "CONSTRUCT (x)-/@p/->(y) MATCH (x)-/@p:toWagner/->(y)"
        )
        assert g.paths == {301}
        assert g.labels(301) == {"toWagner"}
        assert g.property(301, "trust") == {0.95}

    def test_bare_path_projects_only(self, tiny_engine):
        g = tiny_engine.run(
            "CONSTRUCT (a)-/p/->(d) MATCH (a:Start)-/p<:x :y>/->(d:End)"
        )
        assert g.paths == frozenset()
        assert "a" in g.nodes and "d" in g.nodes
