"""Unit tests for MATCH evaluation on small targeted graphs."""

import pytest

from repro.errors import SemanticError


def rows(engine, text):
    return {tuple(sorted(row.items(), key=lambda kv: kv[0]))
            for row in engine.bindings(text)}


class TestNodePatterns:
    def test_all_nodes(self, tiny_engine):
        table = tiny_engine.bindings("MATCH (n)")
        assert len(table) == 4

    def test_label_filter(self, tiny_engine):
        table = tiny_engine.bindings("MATCH (n:Mid)")
        assert {row["n"] for row in table} == {"b", "c"}

    def test_label_conjunction(self, tiny_engine):
        table = tiny_engine.bindings("MATCH (n:Mid:Alt)")
        assert {row["n"] for row in table} == {"c"}

    def test_label_disjunction(self, tiny_engine):
        table = tiny_engine.bindings("MATCH (n:Start|End)")
        assert {row["n"] for row in table} == {"a", "d"}

    def test_property_test(self, tiny_engine):
        table = tiny_engine.bindings("MATCH (n {name='a'})")
        assert {row["n"] for row in table} == {"a"}

    def test_property_bind(self, tiny_engine):
        table = tiny_engine.bindings("MATCH (n:Start {name=v})")
        assert table.rows[0]["v"] == "a"

    def test_anonymous_node_not_bound(self, tiny_engine):
        table = tiny_engine.bindings("MATCH ()")
        assert table.columns == ()
        assert len(table) == 1  # one empty binding: pure existence

    def test_no_match_empty(self, tiny_engine):
        assert len(tiny_engine.bindings("MATCH (n:Ghost)")) == 0


class TestEdgePatterns:
    def test_directed_edge(self, tiny_engine):
        table = tiny_engine.bindings("MATCH (a:Start)-[e]->(b)")
        assert {(r["a"], r["e"], r["b"]) for r in table} == {
            ("a", "ab", "b"), ("a", "ac", "c"),
        }

    def test_reversed_edge(self, tiny_engine):
        table = tiny_engine.bindings("MATCH (b)<-[e:x]-(a)")
        assert {r["b"] for r in table} == {"b", "c"}

    def test_undirected_edge(self, tiny_engine):
        table = tiny_engine.bindings("MATCH (m:Mid)-[e]-(x)")
        # b: ab in, bd out; c: ac in, cd out — both orientations found
        assert len(table) == 4

    def test_edge_label_filter(self, tiny_engine):
        table = tiny_engine.bindings("MATCH (a)-[e:y]->(b)")
        assert {r["e"] for r in table} == {"bd", "cd"}

    def test_edge_property_test(self, tiny_engine):
        table = tiny_engine.bindings("MATCH (a)-[e {w=1}]->(b)")
        assert {r["e"] for r in table} == {"ab"}

    def test_edge_property_bind(self, tiny_engine):
        table = tiny_engine.bindings("MATCH (a:Start)-[e:x {w=v}]->(b)")
        assert {(r["e"], r["v"]) for r in table} == {("ab", 1), ("ac", 2)}

    def test_chain(self, tiny_engine):
        table = tiny_engine.bindings("MATCH (a:Start)-[:x]->(m)-[:y]->(d:End)")
        assert {r["m"] for r in table} == {"b", "c"}

    def test_homomorphism_allows_repeats(self, tiny_engine):
        # (x)-[e1]->(y), (x)-[e2]->(z): e1 and e2 may bind the same edge.
        table = tiny_engine.bindings("MATCH (x:Start)-[e1]->(y), (x)-[e2]->(z)")
        same = [r for r in table if r["e1"] == r["e2"]]
        assert same  # no injectivity constraint (Section 6)

    def test_self_loop(self):
        from repro import GCoreEngine, GraphBuilder

        b = GraphBuilder()
        b.add_node("n")
        b.add_edge("n", "n", edge_id="loop", labels=["self"])
        eng = GCoreEngine()
        eng.register_graph("g", b.build(), default=True)
        table = eng.bindings("MATCH (x)-[e:self]->(x)")
        assert len(table) == 1 and table.rows[0]["x"] == "n"


class TestPropertyTestErrors:
    def test_missing_param_with_no_candidates_matches_reference(self, tiny_engine):
        # The reference executor never evaluates a property test when no
        # candidate reaches it; the columnar executor's constant-test
        # prefetch must not raise earlier than that (regression).
        from repro.errors import EvaluationError

        query = "MATCH (n:NoSuchLabel {k=$missing})"
        assert len(tiny_engine.bindings(query)) == 0
        assert len(tiny_engine.bindings(query, naive=True)) == 0
        # With candidates present, both executors raise identically.
        with pytest.raises(EvaluationError):
            tiny_engine.bindings("MATCH (n {k=$missing})")
        with pytest.raises(EvaluationError):
            tiny_engine.bindings("MATCH (n {k=$missing})", naive=True)


class TestWhere:
    def test_filter_by_property(self, tiny_engine):
        table = tiny_engine.bindings("MATCH (n) WHERE n.name = 'b'")
        assert {r["n"] for r in table} == {"b"}

    def test_filter_with_arithmetic(self, tiny_engine):
        table = tiny_engine.bindings("MATCH (a)-[e]->(b) WHERE e.w + 1 > 4")
        assert {r["e"] for r in table} == {"cd"}

    def test_label_test_in_where(self, tiny_engine):
        table = tiny_engine.bindings("MATCH (n) WHERE (n:Mid)")
        assert len(table) == 2

    def test_pattern_predicate(self, tiny_engine):
        table = tiny_engine.bindings("MATCH (n) WHERE (n)-[:y]->()")
        assert {r["n"] for r in table} == {"b", "c"}

    def test_negated_pattern_predicate(self, tiny_engine):
        table = tiny_engine.bindings("MATCH (n) WHERE NOT (n)-[:y]->()")
        assert {r["n"] for r in table} == {"a", "d"}


class TestMultiGraph:
    def test_join_across_graphs(self, engine):
        table = engine.bindings(
            "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
            "WHERE c.name = n.employer"
        )
        assert {(r["c"], r["n"]) for r in table} == {
            ("acme", "alice"), ("acme", "john"), ("hal", "celine"),
        }

    def test_cartesian_product_size(self, engine):
        table = engine.bindings(
            "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph"
        )
        assert len(table) == 20  # the paper's 20-row table

    def test_trailing_on_covers_earlier_patterns(self, engine):
        engine.run("GRAPH VIEW only_tags AS (CONSTRUCT (t) MATCH (t:Tag))")
        table = engine.bindings("MATCH (a), (b) ON only_tags")
        assert {r["a"] for r in table} == {"wagner"}

    def test_sort_clash_rejected(self, engine):
        with pytest.raises(SemanticError):
            engine.bindings("MATCH (n)-[n]->(m)")
