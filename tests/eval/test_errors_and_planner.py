"""Coverage for error paths, the planner, the catalog and the id factory."""

import pytest

from repro import GCoreEngine, GraphBuilder
from repro.catalog import Catalog, table_as_graph
from repro.errors import (
    EvaluationError,
    SemanticError,
    UnknownGraphError,
    UnknownTableError,
)
from repro.eval.context import EvalContext, IdFactory
from repro.eval.match import decompose_chain, _AnonNamer
from repro.eval.planner import atom_score, explain_order, order_atoms
from repro.lang.parser import parse_query
from repro.table import Table


class TestErrors:
    def test_unknown_graph(self, engine):
        with pytest.raises(UnknownGraphError):
            engine.run("CONSTRUCT (n) MATCH (n) ON mystery")

    def test_unknown_table(self, engine):
        with pytest.raises(UnknownTableError):
            engine.run("SELECT a FROM mystery")

    def test_no_default_graph(self):
        eng = GCoreEngine()
        with pytest.raises(UnknownGraphError):
            eng.run("CONSTRUCT (n) MATCH (n)")

    def test_undirected_path_pattern_rejected(self, engine):
        with pytest.raises(SemanticError):
            engine.bindings("MATCH (a)-/p<:knows*>/-(b)")

    def test_undirected_construct_edge_rejected(self, engine):
        with pytest.raises(SemanticError):
            engine.run("CONSTRUCT (a)-[e:x]-(b) MATCH (a)-[:knows]->(b)")

    def test_construct_path_var_must_be_bound(self, engine):
        with pytest.raises(SemanticError):
            engine.run("CONSTRUCT (a)-/@q/->(b) MATCH (a)-[:knows]->(b)")

    def test_node_var_as_edge_in_construct(self, engine):
        with pytest.raises(SemanticError):
            engine.run("CONSTRUCT (x)-[n]->(y) MATCH (n:Person), (x), (y)")

    def test_division_by_zero_at_runtime(self, engine):
        with pytest.raises(EvaluationError):
            engine.run("CONSTRUCT (n {bad := 1 / 0}) MATCH (n:Tag)")


class TestIdFactory:
    def test_fresh_never_repeats(self):
        ids = IdFactory()
        assert len({ids.fresh() for _ in range(100)}) == 100

    def test_skolem_memoizes(self):
        ids = IdFactory()
        a = ids.skolem("n", ("site", 0), ("Acme",))
        b = ids.skolem("n", ("site", 0), ("Acme",))
        c = ids.skolem("n", ("site", 0), ("HAL",))
        assert a == b and a != c

    def test_skolem_distinct_sites(self):
        ids = IdFactory()
        assert ids.skolem("n", 1, ()) != ids.skolem("n", 2, ())


class TestCatalog:
    def test_table_as_graph_properties(self):
        table = Table(("a", "b"), [(1, None), (2, "x")], name="t")
        g = table_as_graph(table)
        assert g.order() == 2
        values = {frozenset(g.properties(n).keys()) for n in g.nodes}
        assert values == {frozenset({"a"}), frozenset({"a", "b"})}

    def test_graph_names_listing(self):
        catalog = Catalog()
        b = GraphBuilder()
        b.add_node("n")
        catalog.register_graph("g1", b.build())
        assert catalog.graph_names() == ["g1"]
        assert catalog.default_graph_name == "g1"

    def test_view_cache_resolution(self, engine):
        engine.run("GRAPH VIEW v AS (CONSTRUCT (n) MATCH (n:Tag))")
        assert engine.catalog.has_graph("v")
        assert engine.catalog.view_query("v") is not None


class TestPlanner:
    def chain_atoms(self, text):
        query = parse_query(f"CONSTRUCT (x) MATCH {text}")
        chain = query.body.match.block.patterns[0].chain
        return decompose_chain(chain, _AnonNamer())

    def test_labeled_node_scheduled_before_plain(self):
        atoms = self.chain_atoms("(a)-[e]->(b:Person)")
        ordered = order_atoms(atoms, set())
        assert ordered[0].kind == "node" and ordered[0].var == "b"

    def test_path_atom_waits_for_source(self):
        atoms = self.chain_atoms("(a:Person)-/p<:knows*>/->(b)")
        ordered = order_atoms(atoms, set())
        kinds = [atom.kind for atom in ordered]
        assert kinds.index("path") > kinds.index("node")

    def test_naive_preserves_syntax_order(self):
        atoms = self.chain_atoms("(a)-[e]->(b:Person)")
        assert order_atoms(atoms, set(), naive=True) == list(atoms)

    def test_scores_monotone_in_boundness(self):
        atoms = self.chain_atoms("(a)-[e:knows]->(b)")
        edge = next(a for a in atoms if a.kind == "edge")
        assert atom_score(edge, {"a"}) > atom_score(edge, set())
        assert atom_score(edge, {"a", "b"}) > atom_score(edge, {"a"})

    def test_explain_order_mentions_atoms(self):
        atoms = self.chain_atoms("(a:Person)-[e]->(b)")
        text = explain_order(atoms, set())
        assert "node" in text and "edge" in text


class TestContext:
    def test_child_depth_guard(self, engine):
        ctx = EvalContext(engine.catalog)
        for _ in range(64):
            ctx = ctx.child()
        with pytest.raises(EvaluationError):
            ctx.child()

    def test_lookup_missing_object(self, engine):
        ctx = EvalContext(engine.catalog)
        assert ctx.lookup_labels("ghost-object") == frozenset()
        assert ctx.lookup_property("ghost-object", "k") == frozenset()
        assert ctx.lookup_properties("ghost-object") == {}
