"""GRAPH VIEW / local GRAPH clauses / set operations on graphs (A.5, A.6)."""

import pytest

from repro.errors import SemanticError, UnknownGraphError
from repro.eval.query import ViewResult


class TestGraphViews:
    def test_view_registration_returns_result(self, engine):
        result = engine.run(
            "GRAPH VIEW persons AS (CONSTRUCT (n) MATCH (n:Person))"
        )
        assert isinstance(result, ViewResult)
        assert result.name == "persons"
        assert len(result.graph.nodes) == 5

    def test_view_queryable_by_name(self, engine):
        engine.run("GRAPH VIEW persons AS (CONSTRUCT (n) MATCH (n:Person))")
        table = engine.bindings("MATCH (n) ON persons")
        assert len(table) == 5

    def test_view_on_view(self, engine):
        engine.run("GRAPH VIEW persons AS (CONSTRUCT (n) MATCH (n:Person))")
        engine.run(
            "GRAPH VIEW acme AS (CONSTRUCT (n) MATCH (n) ON persons "
            "WHERE n.employer = 'Acme')"
        )
        assert engine.graph("acme").nodes == {"john", "alice"}

    def test_view_usable_in_union(self, engine):
        engine.run("GRAPH VIEW tags AS (CONSTRUCT (t) MATCH (t:Tag))")
        g = engine.run("CONSTRUCT (n) MATCH (n:Person) UNION tags")
        assert "wagner" in g.nodes and "john" in g.nodes


class TestLocalGraphClause:
    def test_local_binding_visible_in_body(self, engine):
        g = engine.run(
            "GRAPH tmp AS (CONSTRUCT (n) MATCH (n:Person)) "
            "CONSTRUCT (m) MATCH (m) ON tmp WHERE m.employer = 'HAL'"
        )
        assert g.nodes == {"celine"}

    def test_local_binding_not_persistent(self, engine):
        engine.run(
            "GRAPH tmp AS (CONSTRUCT (n) MATCH (n:Person)) "
            "CONSTRUCT (m) MATCH (m) ON tmp"
        )
        with pytest.raises(UnknownGraphError):
            engine.graph("tmp")

    def test_local_shadows_catalog(self, engine):
        g = engine.run(
            "GRAPH company_graph AS (CONSTRUCT (t) MATCH (t:Tag)) "
            "CONSTRUCT (x) MATCH (x) ON company_graph"
        )
        assert g.nodes == {"wagner"}


class TestSetOperations:
    def test_union_respects_identity(self, engine):
        g = engine.run(
            "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme' "
            "UNION social_graph"
        )
        base = engine.graph("social_graph")
        assert g.nodes == base.nodes
        assert g.edges == base.edges

    def test_intersect_queries(self, engine):
        g = engine.run(
            "(CONSTRUCT (n) MATCH (n:Person)) INTERSECT "
            "(CONSTRUCT (m) MATCH (m) WHERE m.employer = 'Acme')"
        )
        assert g.nodes == {"john", "alice"}

    def test_minus_removes_identities(self, engine):
        g = engine.run(
            "social_graph MINUS (CONSTRUCT (n) MATCH (n:Person))"
        )
        assert "john" not in g.nodes
        assert "wagner" in g.nodes
        # knows edges lost their endpoints
        assert not [e for e in g.edges if g.has_label(e, "knows")]

    def test_graph_reference_query(self, engine):
        g = engine.run("social_graph")
        assert g == engine.graph("social_graph")

    def test_set_op_on_select_rejected(self, engine):
        with pytest.raises(SemanticError):
            engine.run("(SELECT n.a MATCH (n)) UNION social_graph")

    def test_three_way_ops(self, engine):
        g = engine.run(
            "(CONSTRUCT (n) MATCH (n:Person)) "
            "MINUS (CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme') "
            "MINUS (CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'HAL')"
        )
        assert g.nodes == {"peter", "frank"}


class TestComposability:
    def test_output_registered_and_requeried(self, engine):
        g = engine.run("CONSTRUCT (n) MATCH (n:Person)")
        engine.register_graph("just_persons", g)
        table = engine.bindings("MATCH (x) ON just_persons")
        assert len(table) == 5

    def test_on_subquery_location(self, engine):
        table = engine.bindings(
            "MATCH (x) ON (CONSTRUCT (n) MATCH (n:Person) "
            "WHERE n.employer = 'HAL')"
        )
        assert {row["x"] for row in table} == {"celine"}
