"""PATH clause (weighted path views) tests — Appendix A.4."""

import pytest

from repro import GCoreEngine, GraphBuilder
from repro.errors import CostError, UnknownPathViewError


@pytest.fixture()
def weighted_engine():
    """s->a->t (weights 1,1) and s->b->t (weights 10,10) over 'road' edges."""
    b = GraphBuilder()
    for n in "sabt":
        b.add_node(n, labels=["N"], properties={"name": n})
    b.add_edge("s", "a", edge_id="sa", labels=["road"], properties={"w": 1})
    b.add_edge("a", "t", edge_id="at", labels=["road"], properties={"w": 1})
    b.add_edge("s", "b", edge_id="sb", labels=["road"], properties={"w": 10})
    b.add_edge("b", "t", edge_id="bt", labels=["road"], properties={"w": 10})
    eng = GCoreEngine()
    eng.register_graph("roads", b.build(), default=True)
    return eng


class TestWeightedShortest:
    def test_weighted_route_choice(self, weighted_engine):
        g = weighted_engine.run(
            "PATH hop = (x)-[e:road]->(y) COST e.w "
            "CONSTRUCT (s)-/@p:best {c := c}/->(t) "
            "MATCH (s {name='s'})-/p<~hop*> COST c/->(t {name='t'})"
        )
        (pid,) = g.paths
        assert g.path_nodes(pid) == ("s", "a", "t")
        assert g.property(pid, "c") == {2.0}

    def test_unweighted_hops_would_tie(self, weighted_engine):
        # Without weights both routes cost 2 hops; lexicographic tie-break
        # picks the 'a' route deterministically.
        table = weighted_engine.bindings(
            "MATCH (s {name='s'})-/p<:road*> COST c/->(t {name='t'})"
        )
        (row,) = table.rows
        assert row["c"] == 2

    def test_cost_binds_weighted_value(self, weighted_engine):
        g = weighted_engine.run(
            "PATH hop = (x)-[e:road]->(y) COST e.w "
            "CONSTRUCT (s)-/@p {total := c}/->(b) "
            "MATCH (s {name='s'})-/p<~hop*> COST c/->(b {name='b'})"
        )
        (pid,) = g.paths
        assert g.property(pid, "total") == {10.0}

    def test_where_filter_in_path_clause(self, weighted_engine):
        # Exclude node b from traversal: only the a-route remains for t.
        g = weighted_engine.run(
            "PATH noB = (x)-[e:road]->(y) WHERE y.name <> 'b' "
            "CONSTRUCT (s)-/p/->(m) "
            "MATCH (s {name='s'})-/ALL p<~noB*>/->(m {name='t'})"
        )
        assert "sb" not in g.edges and "bt" not in g.edges
        assert "sa" in g.edges and "at" in g.edges

    def test_default_cost_is_hop_count(self, weighted_engine):
        g = weighted_engine.run(
            "PATH anyhop = (x)-[e:road]->(y) "
            "CONSTRUCT (s)-/@p {c := c}/->(t) "
            "MATCH (s {name='s'})-/p<~anyhop*> COST c/->(t {name='t'})"
        )
        (pid,) = g.paths
        assert g.property(pid, "c") == {2.0}


class TestCostValidation:
    def test_non_positive_cost_raises(self, weighted_engine):
        with pytest.raises(CostError):
            weighted_engine.run(
                "PATH bad = (x)-[e:road]->(y) COST e.w - 1 "
                "CONSTRUCT (n) MATCH (n)-/p<~bad*>/->(m)"
            )

    def test_non_numeric_cost_raises(self, weighted_engine):
        with pytest.raises(CostError):
            weighted_engine.run(
                "PATH bad = (x)-[e:road]->(y) COST 'cheap' "
                "CONSTRUCT (n) MATCH (n)-/p<~bad*>/->(m)"
            )

    def test_unknown_view_raises(self, weighted_engine):
        with pytest.raises(UnknownPathViewError):
            weighted_engine.bindings("MATCH (n)-/p<~mystery*>/->(m)")


class TestNonLinearPathClause:
    def test_second_chain_constrains(self, weighted_engine):
        # Only traverse road edges whose target also has an outgoing road
        # (footnote 3's non-linear pattern). From s we can step to a and b
        # (both lead on), but a->t / b->t steps are excluded (t is a sink),
        # so t is reachable only via... nothing with + (needs >=1 step).
        g = weighted_engine.run(
            "PATH mid = (x)-[e:road]->(y), (y)-[f:road]->(z) "
            "CONSTRUCT (m {via := 1}) "
            "MATCH (s {name='s'})-/p<~mid+>/->(m)"
        )
        assert {n for n in g.nodes} == {"a", "b"}

    def test_registered_path_view_via_engine(self, weighted_engine):
        weighted_engine.register_path_view(
            "PATH cheap = (x)-[e:road]->(y) COST e.w"
        )
        table = weighted_engine.bindings(
            "MATCH (s {name='s'})-/p<~cheap*> COST c/->(t {name='t'})"
        )
        assert table.rows[0]["c"] == 2.0


class TestViewOverViews:
    def test_path_view_referencing_path_view(self, weighted_engine):
        g = weighted_engine.run(
            "PATH one = (x)-[e:road]->(y) COST e.w "
            "PATH two = (x)-/q<~one ~one>/->(y) "
            "CONSTRUCT (s)-/@p/->(t) "
            "MATCH (s {name='s'})-/p<~two> COST c/->(t {name='t'})"
        )
        (pid,) = g.paths
        assert g.path_nodes(pid) == ("s", "a", "t")
