"""OPTIONAL semantics tests (Appendix A.2)."""

import pytest

from repro import GCoreEngine, GraphBuilder
from repro.errors import SemanticError


@pytest.fixture()
def org_engine():
    """People, some with a workplace, some with a home."""
    b = GraphBuilder()
    b.add_node("ann", labels=["Person"], properties={"name": "Ann"})
    b.add_node("bob", labels=["Person"], properties={"name": "Bob"})
    b.add_node("cat", labels=["Person"], properties={"name": "Cat"})
    b.add_node("acme", labels=["Company"])
    b.add_node("home1", labels=["House"])
    b.add_edge("ann", "acme", edge_id="w1", labels=["worksAt"])
    b.add_edge("bob", "home1", edge_id="l1", labels=["livesIn"])
    b.add_edge("ann", "home1", edge_id="l2", labels=["livesIn"])
    eng = GCoreEngine()
    eng.register_graph("org", b.build(), default=True)
    return eng


class TestLeftJoinBehaviour:
    def test_unmatched_rows_survive(self, org_engine):
        table = org_engine.bindings(
            "MATCH (n:Person) OPTIONAL (n)-[:worksAt]->(c)"
        )
        assert len(table) == 3
        bound = {row["n"]: row.get("c") for row in table}
        assert bound["ann"] == "acme"
        assert bound["bob"] is None and bound["cat"] is None

    def test_matched_rows_extended(self, org_engine):
        table = org_engine.bindings(
            "MATCH (n:Person) OPTIONAL (n)-[:livesIn]->(h)"
        )
        homes = {row["n"]: row.get("h") for row in table}
        assert homes == {"ann": "home1", "bob": "home1", "cat": None}

    def test_two_optionals_commute(self, org_engine):
        t1 = org_engine.bindings(
            "MATCH (n:Person) OPTIONAL (n)-[:worksAt]->(c) "
            "OPTIONAL (n)-[:livesIn]->(h)"
        )
        t2 = org_engine.bindings(
            "MATCH (n:Person) OPTIONAL (n)-[:livesIn]->(h) "
            "OPTIONAL (n)-[:worksAt]->(c)"
        )
        assert t1 == t2  # the paper's order-independence (Section 3)

    def test_optional_with_where(self, org_engine):
        table = org_engine.bindings(
            "MATCH (n:Person) OPTIONAL (n)-[e]->(c) WHERE (c:Company)"
        )
        bound = {row["n"]: row.get("c") for row in table}
        assert bound["ann"] == "acme" and bound["bob"] is None

    def test_optional_never_removes_rows(self, org_engine):
        table = org_engine.bindings(
            "MATCH (n:Person) OPTIONAL (n)-[:ghost]->(x)"
        )
        assert len(table) == 3

    def test_shared_var_restriction_enforced(self, org_engine):
        # Variables shared by OPTIONAL blocks must occur in the main
        # pattern (Section 3's syntactic restriction).
        with pytest.raises(SemanticError):
            org_engine.bindings(
                "MATCH (n:Person) OPTIONAL (n)-[:worksAt]->(a) "
                "OPTIONAL (n)-[:livesIn]->(a)"
            )

    def test_shared_var_allowed_when_in_main(self, org_engine):
        table = org_engine.bindings(
            "MATCH (n:Person), (a) OPTIONAL (n)-[:worksAt]->(a) "
            "OPTIONAL (n)-[:livesIn]->(a)"
        )
        assert table  # no SemanticError; a occurs in the main block

    def test_optional_two_hop_chain(self, org_engine):
        # A multi-hop chain inside one OPTIONAL block extends bindings.
        # (Splitting it across two blocks would violate the paper's
        # shared-variable restriction, which we enforce.)
        table = org_engine.bindings(
            "MATCH (n:Person {name='Ann'}) "
            "OPTIONAL (n)-[:livesIn]->(h)<-[:livesIn]-(roommate)"
        )
        roommates = {row.get("roommate") for row in table}
        assert roommates == {"ann", "bob"}
