"""Expression evaluation tests (Appendix A.1 semantics)."""

import pytest

from repro.algebra.binding import Binding, BindingTable
from repro.catalog import Catalog
from repro.datasets import social_graph
from repro.errors import EvaluationError
from repro.eval.context import EvalContext
from repro.eval.expressions import (
    ExpressionEvaluator,
    expr_has_aggregate,
    expr_variables,
)
from repro.lang.parser import parse_expression
from repro.paths.walk import Walk


@pytest.fixture()
def ev():
    catalog = Catalog()
    catalog.register_graph("social_graph", social_graph(), default=True)
    ctx = EvalContext(catalog)
    ctx.touch_graph(catalog.graph("social_graph"))
    return ExpressionEvaluator(ctx)


def evaluate(ev, text, row=None, group=None, maxdom=None):
    return ev.evaluate(parse_expression(text), Binding(row or {}),
                       group=group, maximal_domain=maxdom)


class TestLeaves:
    def test_literals(self, ev):
        assert evaluate(ev, "42") == 42
        assert evaluate(ev, "'x'") == "x"
        assert evaluate(ev, "TRUE") is True

    def test_variable(self, ev):
        assert evaluate(ev, "x", {"x": 7}) == 7

    def test_unbound_variable_is_absent(self, ev):
        assert evaluate(ev, "x") == frozenset()

    def test_property_lookup(self, ev):
        assert evaluate(ev, "n.firstName", {"n": "john"}) == {"John"}

    def test_absent_property_is_empty(self, ev):
        assert evaluate(ev, "n.shoeSize", {"n": "john"}) == frozenset()

    def test_multivalued_property(self, ev):
        assert evaluate(ev, "n.employer", {"n": "frank"}) == {"CWI", "MIT"}

    def test_property_of_walk_is_absent(self, ev):
        walk = Walk(("john",))
        assert evaluate(ev, "p.k", {"p": walk}) == frozenset()

    def test_label_test(self, ev):
        assert evaluate(ev, "n:Person", {"n": "john"}) is True
        assert evaluate(ev, "n:Tag", {"n": "john"}) is False

    def test_label_disjunction(self, ev):
        assert evaluate(ev, "n:Tag|Person", {"n": "john"}) is True

    def test_list_literal(self, ev):
        assert evaluate(ev, "[1, 2]") == (1, 2)


class TestOperators:
    def test_arithmetic(self, ev):
        assert evaluate(ev, "1 + 2 * 3") == 7
        assert evaluate(ev, "10 / 4") == 2.5
        assert evaluate(ev, "7 % 3") == 1
        assert evaluate(ev, "-(2 + 3)") == -5

    def test_division_by_zero(self, ev):
        with pytest.raises(EvaluationError):
            evaluate(ev, "1 / 0")

    def test_paper_cost_expression(self, ev):
        # 1 / (1 + e.nr_messages) with nr_messages = 3
        row = {"v": 3}
        assert evaluate(ev, "1 / (1 + v)", row) == 0.25

    def test_arithmetic_over_singleton_set(self, ev):
        assert evaluate(ev, "n.firstName + '!'", {"n": "john"}) == "John!"

    def test_arithmetic_over_absent_propagates(self, ev):
        assert evaluate(ev, "n.shoeSize + 1", {"n": "john"}) == frozenset()

    def test_string_number_concat_rejected(self, ev):
        with pytest.raises(EvaluationError):
            evaluate(ev, "'a' + 1")

    def test_comparisons(self, ev):
        assert evaluate(ev, "1 < 2") is True
        assert evaluate(ev, "2 <= 1") is False
        assert evaluate(ev, "'a' <> 'b'") is True

    def test_set_equality_semantics(self, ev):
        assert evaluate(ev, "n.employer = 'Acme'", {"n": "john"}) is True
        assert evaluate(ev, "n.employer = 'CWI'", {"n": "frank"}) is False

    def test_in_and_subset(self, ev):
        assert evaluate(ev, "'CWI' IN n.employer", {"n": "frank"}) is True
        assert evaluate(ev, "n.employer SUBSET OF ['CWI','MIT','X']",
                        {"n": "frank"}) is True  # list coerces to a set
        assert evaluate(ev, "n.employer SUBSET OF ['CWI']",
                        {"n": "frank"}) is False
        assert evaluate(ev, "'Acme' IN n.employer", {"n": "peter"}) is False

    def test_boolean_connectives(self, ev):
        assert evaluate(ev, "TRUE AND NOT FALSE") is True
        assert evaluate(ev, "FALSE OR TRUE") is True
        assert evaluate(ev, "TRUE XOR TRUE") is False

    def test_and_short_circuit(self, ev):
        # right side would error, but left is already false
        assert evaluate(ev, "FALSE AND (1 / 0 = 1)") is False


class TestFunctions:
    def test_nodes_edges_on_walk(self, ev):
        walk = Walk(("john", "knows_john_peter", "peter"), 1.0)
        assert evaluate(ev, "nodes(p)", {"p": walk}) == ("john", "peter")
        assert evaluate(ev, "edges(p)", {"p": walk}) == ("knows_john_peter",)

    def test_indexing_is_zero_based(self, ev):
        walk = Walk(("john", "knows_john_peter", "peter"), 1.0)
        assert evaluate(ev, "nodes(p)[1]", {"p": walk}) == "peter"

    def test_index_out_of_range_absent(self, ev):
        walk = Walk(("john",))
        assert evaluate(ev, "nodes(p)[9]", {"p": walk}) == frozenset()

    def test_labels_function(self, ev):
        assert evaluate(ev, "labels(n)", {"n": "john"}) == {"Person"}

    def test_size(self, ev):
        assert evaluate(ev, "size(n.employer)", {"n": "frank"}) == 2
        assert evaluate(ev, "size(n.employer)", {"n": "peter"}) == 0
        assert evaluate(ev, "size('abc')") == 3

    def test_length_and_cost_of_walk(self, ev):
        walk = Walk(("john", "knows_john_peter", "peter"), 1.0)
        assert evaluate(ev, "length(p)", {"p": walk}) == 1
        assert evaluate(ev, "cost(p)", {"p": walk}) == 1.0

    def test_type_conversions(self, ev):
        assert evaluate(ev, "toString(5)") == "5"
        assert evaluate(ev, "toInteger('5')") == 5
        assert evaluate(ev, "toFloat('2.5')") == 2.5
        assert evaluate(ev, "toInteger('zz')") == frozenset()

    def test_coalesce(self, ev):
        assert evaluate(ev, "coalesce(n.shoeSize, 'none')", {"n": "john"}) == "none"
        assert evaluate(ev, "coalesce(n.firstName, 'x')", {"n": "john"}) == {"John"}

    def test_abs(self, ev):
        assert evaluate(ev, "abs(0 - 5)") == 5

    def test_unknown_function(self, ev):
        with pytest.raises(EvaluationError):
            evaluate(ev, "quux(1)")


class TestCase:
    def test_case_coalesces_missing_data(self, ev):
        text = ("CASE WHEN size(n.employer) = 0 THEN 'unemployed' "
                "ELSE 'employed' END")
        assert evaluate(ev, text, {"n": "peter"}) == "unemployed"
        assert evaluate(ev, text, {"n": "john"}) == "employed"

    def test_case_without_else_is_absent(self, ev):
        assert evaluate(ev, "CASE WHEN FALSE THEN 1 END") == frozenset()

    def test_first_matching_branch(self, ev):
        assert evaluate(ev, "CASE WHEN TRUE THEN 1 WHEN TRUE THEN 2 END") == 1


class TestAggregatesInContext:
    def test_aggregate_requires_group(self, ev):
        with pytest.raises(EvaluationError):
            evaluate(ev, "COUNT(*)")

    def test_aggregate_with_group(self, ev):
        group = BindingTable(["x"], [Binding({"x": i}) for i in range(4)])
        assert evaluate(ev, "COUNT(*)", group=group) == 4
        assert evaluate(ev, "SUM(x)", group=group) == 6

    def test_count_star_maximality(self, ev):
        group = BindingTable(
            ["x", "y"], [Binding({"x": 1, "y": 1}), Binding({"x": 2})]
        )
        assert evaluate(ev, "COUNT(*)", group=group,
                        maxdom=frozenset({"x", "y"})) == 1


class TestHelpers:
    def test_expr_has_aggregate(self):
        assert expr_has_aggregate(parse_expression("COUNT(*)"))
        assert expr_has_aggregate(parse_expression("1 + SUM(x)"))
        assert expr_has_aggregate(parse_expression("CASE WHEN a THEN MIN(b) END"))
        assert not expr_has_aggregate(parse_expression("size(x) + 1"))
        assert not expr_has_aggregate(None)

    def test_expr_variables(self):
        variables = expr_variables(
            parse_expression("x.a + f(y) + CASE WHEN z THEN w[i] END")
        )
        assert variables == {"x", "y", "z", "w", "i"}
