"""Incremental view maintenance: strategy analysis, staleness, patching."""

import pytest

from repro import GCoreEngine, GraphBuilder, GraphDelta
from repro.errors import SemanticError, StaleViewError, UnknownGraphError
from repro.eval.maintenance import analyze_view, describe_strategy
from repro.eval.planner import PlanCache


def chain_graph():
    b = GraphBuilder(name="base")
    for i in range(6):
        b.add_node(f"n{i}", labels=["Person"], properties={"score": i})
    for i in range(5):
        b.add_edge(f"n{i}", f"n{i + 1}", edge_id=f"e{i}", labels=["knows"])
    b.add_edge("n0", "n3", edge_id="x0", labels=["likes"])
    return b.build()


@pytest.fixture()
def eng():
    engine = GCoreEngine()
    engine.register_graph("base", chain_graph(), default=True)
    return engine


IDENTITY_VIEW = (
    "GRAPH VIEW v AS (CONSTRUCT (a)-[e]->(b) MATCH (a:Person)-[e:knows]->(b))"
)


def oracle(engine, body):
    fresh = GCoreEngine()
    fresh.register_graph("base", engine.graph("base"), default=True)
    return fresh.run(body)


class TestStrategyAnalysis:
    def analyze(self, eng, text):
        statement = eng.parse(text)
        return analyze_view(statement.query, eng.catalog)

    def test_identity_view_is_incremental(self, eng):
        plan = self.analyze(eng, IDENTITY_VIEW)
        assert plan.strategy == "incremental"
        assert plan.base == "base"
        assert plan.deps == ("base",)
        assert plan.node_vars == ("a", "b")
        assert plan.items == ((("a", "b"), ("e",)),)

    @pytest.mark.parametrize(
        "text, needle",
        [
            ("GRAPH VIEW v AS (CONSTRUCT (a) MATCH (a)-/p<:knows*>/->(b))",
             "path pattern"),
            ("GRAPH VIEW v AS (CONSTRUCT (a)-[e]->(b) SET e.c := COUNT(*) "
             "MATCH (a)-[e:knows]->(b))", "non-identity"),
            ("GRAPH VIEW v AS (CONSTRUCT (a) MATCH (a:Person) "
             "OPTIONAL (a)-[e:knows]->(b))", "OPTIONAL"),
            ("GRAPH VIEW v AS (CONSTRUCT (a) MATCH (a:Person) "
             "WHERE (a)-[:likes]->(:Person))", "pattern predicate"),
            ("GRAPH VIEW v AS (CONSTRUCT (c) MATCH (a:Person), (c) "
             "ON company_graph)", "multiple graphs"),
            ("GRAPH VIEW v AS (CONSTRUCT (a) MATCH (a)-[:knows]->())",
             "anonymous node"),
            ("GRAPH VIEW v AS (CONSTRUCT (a), base MATCH (a:Person))",
             "graph union"),
            ("GRAPH VIEW v AS (CONSTRUCT (x) MATCH (a)-[e:knows]->(b))",
             "non-identity"),
            ("GRAPH VIEW v AS (CONSTRUCT (a) MATCH (a)-[e:knows]-(b))",
             "undirected"),
            ("GRAPH VIEW v AS (base UNION base)", "set operation"),
            ("GRAPH VIEW v AS (GRAPH g AS (CONSTRUCT (a) MATCH (a)) "
             "CONSTRUCT (m) MATCH (m) ON g)", "head"),
        ],
    )
    def test_fallback_reasons(self, eng, text, needle):
        eng.register_graph("company_graph", chain_graph())
        plan = self.analyze(eng, text)
        assert plan.strategy == "full"
        assert needle in plan.reason
        assert needle in describe_strategy(plan)

    def test_view_over_view_falls_back(self, eng):
        eng.run(IDENTITY_VIEW)
        plan = self.analyze(
            eng, "GRAPH VIEW w AS (CONSTRUCT (a) MATCH (a) ON v)"
        )
        assert plan.strategy == "full"
        assert "mutable base graph" in plan.reason

    def test_explain_reports_strategy(self, eng):
        sketch = eng.explain(IDENTITY_VIEW)
        assert "view maintenance: incremental" in sketch
        sketch = eng.explain(
            "GRAPH VIEW v AS (CONSTRUCT (a) MATCH (a:Person) "
            "OPTIONAL (a)-[e:knows]->(b))"
        )
        assert "view maintenance: full recompute" in sketch


class TestIncrementalRefresh:
    BODY = "CONSTRUCT (a)-[e]->(b) MATCH (a:Person)-[e:knows]->(b)"

    def refresh_and_check(self, eng):
        got = eng.refresh_view("v")
        expected = oracle(eng, self.BODY)
        assert got == expected
        assert eng.graph("v") == expected
        return got

    def test_insertions(self, eng):
        eng.run(IDENTITY_VIEW)
        eng.apply_update(
            "base",
            GraphDelta()
            .add_node("n9", labels=["Person"])
            .add_edge("k9", "n9", "n0", labels=["knows"]),
        )
        got = self.refresh_and_check(eng)
        assert "n9" in got.nodes

    def test_removals_with_shared_support(self, eng):
        eng.run(IDENTITY_VIEW)
        # n1 participates in e0 (as target) and e1 (as source): removing
        # e0 must keep n1 alive through e1's support.
        eng.apply_update("base", GraphDelta().remove_edge("e0"))
        got = self.refresh_and_check(eng)
        assert "n1" in got.nodes and "e0" not in got.edges

    def test_property_and_label_changes_propagate(self, eng):
        eng.run(IDENTITY_VIEW)
        eng.apply_update(
            "base",
            GraphDelta()
            .set_property("n2", "score", 99)
            .add_label("e1", "strong"),
        )
        got = self.refresh_and_check(eng)
        assert got.property("n2", "score") == frozenset({99})
        assert got.has_label("e1", "strong")

    def test_where_filter_gains_and_loses_rows(self):
        engine = GCoreEngine()
        engine.register_graph("base", chain_graph(), default=True)
        engine.run(
            "GRAPH VIEW v AS (CONSTRUCT (a)-[e]->(b) "
            "MATCH (a)-[e:knows]->(b) WHERE a.score = 0)"
        )
        assert engine.graph("v").edges == frozenset({"e0"})
        engine.apply_update(
            "base",
            GraphDelta()
            .set_property("n0", "score", 1)
            .set_property("n3", "score", 0),
        )
        got = engine.refresh_view("v")
        expected = oracle(
            engine,
            "CONSTRUCT (a)-[e]->(b) MATCH (a)-[e:knows]->(b) "
            "WHERE a.score = 0",
        )
        assert got == expected
        assert got.edges == frozenset({"e3"})

    def test_multi_delta_changelog_in_one_refresh(self, eng):
        eng.run(IDENTITY_VIEW)
        eng.apply_update("base", GraphDelta().add_node("m1", labels=["Person"]))
        eng.apply_update(
            "base", GraphDelta().add_edge("me", "m1", "n4", labels=["knows"])
        )
        eng.apply_update("base", GraphDelta().remove_node("n0"))
        got = self.refresh_and_check(eng)
        assert "me" in got.edges and "n0" not in got.nodes

    def test_node_removal_drops_cascaded_edges(self, eng):
        eng.run(IDENTITY_VIEW)
        eng.apply_update("base", GraphDelta().remove_node("n2"))
        got = self.refresh_and_check(eng)
        assert "n2" not in got.nodes
        assert "e1" not in got.edges and "e2" not in got.edges

    def test_refresh_without_changes_is_noop(self, eng):
        eng.run(IDENTITY_VIEW)
        before = eng.graph("v")
        assert eng.refresh_view("v") == before

    def test_forced_full_recompute_matches(self, eng):
        eng.run(IDENTITY_VIEW)
        eng.apply_update("base", GraphDelta().remove_edge("e1"))
        got = eng.refresh_view("v", incremental=False)
        assert got == oracle(eng, self.BODY)

    def test_base_replacement_falls_back_to_full(self, eng):
        eng.run(IDENTITY_VIEW)
        b = GraphBuilder()
        b.add_node("z1", labels=["Person"])
        b.add_node("z2", labels=["Person"])
        b.add_edge("z1", "z2", edge_id="ez", labels=["knows"])
        eng.register_graph("base", b.build(), default=True)
        got = eng.refresh_view("v")
        assert got.nodes == {"z1", "z2"} and got.edges == {"ez"}

    def test_incremental_after_full_rebuild_keeps_working(self, eng):
        eng.run(IDENTITY_VIEW)
        b = GraphBuilder()
        for n in ("z1", "z2", "z3"):
            b.add_node(n, labels=["Person"])
        b.add_edge("z1", "z2", edge_id="ez", labels=["knows"])
        eng.register_graph("base", b.build(), default=True)
        eng.refresh_view("v")  # full rebuild, re-snapshots + new state
        eng.apply_update(
            "base", GraphDelta().add_edge("ez2", "z2", "z3", labels=["knows"])
        )
        got = self.refresh_and_check(eng)
        assert "ez2" in got.edges


class TestStaleness:
    def test_reregistered_base_marks_dependents_stale(self, eng):
        """Regression: re-registering a base graph used to leave dependent
        views stale with no invalidation signal at all."""
        eng.run(IDENTITY_VIEW)
        assert not eng.catalog.is_view_stale("v")
        assert eng.stale_views() == []
        eng.register_graph("base", chain_graph(), default=True)
        assert eng.catalog.is_view_stale("v")
        assert eng.stale_views() == ["v"]
        with pytest.raises(StaleViewError) as err:
            eng.get_graph("v")
        assert "refresh_view" in str(err.value)
        # lenient accessors still serve the old materialization
        assert eng.get_graph("v", allow_stale=True) is not None
        assert eng.graph("v") is not None
        eng.refresh_view("v")
        assert eng.stale_views() == []
        assert eng.get_graph("v") == eng.graph("v")

    def test_apply_update_marks_dependents_stale(self, eng):
        eng.run(IDENTITY_VIEW)
        eng.apply_update("base", GraphDelta().add_node("q", labels=["Person"]))
        assert eng.catalog.is_view_stale("v")
        eng.refresh_view("v")
        assert not eng.catalog.is_view_stale("v")

    def test_transitive_staleness_through_view_on_view(self, eng):
        eng.run(IDENTITY_VIEW)
        eng.run("GRAPH VIEW w AS (CONSTRUCT (x) MATCH (x) ON v)")
        assert eng.stale_views() == []
        eng.apply_update("base", GraphDelta().add_node("q", labels=["Person"]))
        assert eng.catalog.is_view_stale("w")  # via v
        eng.refresh_view("v")
        # v fresh again, but w still points at v's old materialization
        assert eng.catalog.is_view_stale("w")
        eng.refresh_view("w")
        assert eng.stale_views() == []

    def test_default_pointer_move_marks_onless_views_stale(self, eng):
        """Regression: an ON-less view resolves through the default-graph
        pointer; after set_default_graph its incremental refresh used to
        keep patching against the definition-time default while the full
        oracle re-resolved the new one."""
        eng.register_graph("other", GraphBuilder(name="other").build())
        eng.run("GRAPH VIEW dv AS (CONSTRUCT (a)-[e]->(b) "
                "MATCH (a)-[e:knows]->(b))")
        assert not eng.catalog.is_view_stale("dv")
        eng.set_default_graph("other")
        assert eng.catalog.is_view_stale("dv")
        refreshed = eng.refresh_view("dv")  # must recompute over 'other'
        assert refreshed.is_empty()
        assert not eng.catalog.is_view_stale("dv")
        # ON-qualified views are immune to the pointer move
        eng.set_default_graph("base")
        eng.run("GRAPH VIEW qv AS (CONSTRUCT (a)-[e]->(b) "
                "MATCH (a)-[e:knows]->(b) ON base)")
        eng.set_default_graph("other")
        assert not eng.catalog.is_view_stale("qv")

    def test_non_views_are_never_stale(self, eng):
        assert not eng.catalog.is_view_stale("base")
        assert not eng.catalog.is_view_stale("nonsense")
        assert eng.get_graph("base") is not None


class TestCatalogEdgeCases:
    def test_view_query_unknown_name(self, eng):
        assert eng.catalog.view_query("mystery") is None
        assert eng.catalog.view_meta("mystery") is None

    def test_refresh_unknown_view(self, eng):
        with pytest.raises(UnknownGraphError):
            eng.refresh_view("mystery")

    def test_view_reregistration_replaces(self, eng):
        eng.run("GRAPH VIEW v AS (CONSTRUCT (a) MATCH (a:Person))")
        assert len(eng.graph("v").nodes) == 6
        eng.run(
            "GRAPH VIEW v AS (CONSTRUCT (a) MATCH (a:Person) "
            "WHERE a.score = 0)"
        )
        assert eng.graph("v").nodes == {"n0"}

    def test_view_name_colliding_with_graph_rejected(self, eng):
        with pytest.raises(SemanticError):
            eng.run("GRAPH VIEW base AS (CONSTRUCT (a) MATCH (a:Person))")

    def test_view_name_colliding_with_table_rejected(self, eng):
        from repro.table import Table

        eng.register_table("t", Table(("a",), [(1,)]))
        with pytest.raises(SemanticError):
            eng.run("GRAPH VIEW t AS (CONSTRUCT (a) MATCH (a:Person))")

    def test_graph_name_colliding_with_view_rejected(self, eng):
        eng.run(IDENTITY_VIEW)
        with pytest.raises(SemanticError):
            eng.register_graph("v", chain_graph())

    def test_table_name_colliding_with_view_rejected(self, eng):
        from repro.table import Table

        eng.run(IDENTITY_VIEW)
        with pytest.raises(SemanticError):
            eng.register_table("v", Table(("a",), [(1,)]))

    def test_base_graph_accessor_rejects_views(self, eng):
        eng.run(IDENTITY_VIEW)
        with pytest.raises(UnknownGraphError):
            eng.catalog.base_graph("v")
        with pytest.raises(UnknownGraphError):
            eng.apply_update("v", GraphDelta().add_node("x"))

    def test_plain_register_view_still_maintains_incrementally(self, eng):
        """catalog.register_view without plan/state (the raw API): the
        first incremental refresh rebuilds support counts from the
        dependency snapshot and patches from there on."""
        body = "CONSTRUCT (a)-[e]->(b) MATCH (a)-[e:knows]->(b)"
        statement = eng.parse(f"GRAPH VIEW v AS ({body})")
        materialized = eng.run(body)
        eng.catalog.register_view("v", statement.query, materialized)
        meta = eng.catalog.view_meta("v")
        assert meta.plan is None and meta.state is None
        eng.apply_update("base", GraphDelta().remove_edge("e2"))
        got = eng.refresh_view("v")
        assert got == oracle(eng, body)
        # and the rebuilt state keeps later refreshes incremental
        assert eng.catalog.view_meta("v").state is not None

    def test_changelog_overflow_degrades_to_full_recompute(self, eng):
        eng.catalog.CHANGELOG_LIMIT = 4
        eng.run(IDENTITY_VIEW)
        for i in range(8):
            eng.apply_update(
                "base",
                GraphDelta().add_node(f"w{i}", labels=["Person"]),
            )
        assert len(eng.catalog.changelog("base")) == 4
        got = eng.refresh_view("v")
        assert got == oracle(
            eng, "CONSTRUCT (a)-[e]->(b) MATCH (a:Person)-[e:knows]->(b)"
        )

    def test_epochs_and_changelog(self, eng):
        eng.run(IDENTITY_VIEW)  # a dependent pins the history
        assert eng.catalog.epoch("base") == 1
        eng.apply_update("base", GraphDelta().add_node("q"))
        assert eng.catalog.epoch("base") == 2
        log = eng.catalog.changelog("base")
        assert [record.kind for record in log] == ["delta"]
        assert log[-1].effects.added_nodes == {"q"}
        assert eng.catalog.changelog("unknown") == []

    def test_changelog_pruned_to_view_snapshots(self, eng):
        # no dependents: only the newest record is retained
        eng.apply_update("base", GraphDelta().add_node("q1"))
        eng.apply_update("base", GraphDelta().add_node("q2"))
        assert len(eng.catalog.changelog("base")) == 1
        # a view pins records newer than its snapshot; refresh frees them
        eng.run(IDENTITY_VIEW)
        eng.apply_update("base", GraphDelta().add_node("q3"))
        eng.apply_update("base", GraphDelta().add_node("q4"))
        assert len(eng.catalog.changelog("base")) == 2
        eng.refresh_view("v")
        assert len(eng.catalog.changelog("base")) <= 1


class TestPlanCachePurge:
    def test_purge_graph_drops_only_that_graph(self, eng):
        cache = PlanCache()
        site, other_site = object(), object()
        g1, g2 = chain_graph(), chain_graph()
        cache.store(site, ("a",), g1, [0])
        cache.store(other_site, ("a",), g2, [0])
        assert cache.purge_graph(g1) == 1
        assert len(cache) == 1
        assert cache.lookup(other_site, ("a",), g2) == [0]
        assert cache.lookup(site, ("a",), g1) is None

    def test_apply_update_keeps_prepared_queries_hot(self, eng):
        text = "SELECT a.score MATCH (a:Person) WHERE a.score = 0"
        eng.run(text)
        assert eng.is_plan_cached(text)
        eng.apply_update("base", GraphDelta().add_node("q", labels=["Person"]))
        # prepared statements survive deltas (only per-graph plans purge)
        assert eng.is_plan_cached(text)
        assert eng.run(text).rows == ((0,),)


class TestReplViews:
    def test_views_command_lists_freshness(self, eng, capsys):
        from repro.__main__ import handle_command

        handle_command(eng, ".views")
        assert "no materialized views" in capsys.readouterr().out
        eng.run(IDENTITY_VIEW)
        handle_command(eng, ".views")
        out = capsys.readouterr().out
        assert "v:" in out and "[fresh]" in out and "incremental" in out
        eng.apply_update("base", GraphDelta().add_node("q"))
        handle_command(eng, ".views")
        assert "[STALE]" in capsys.readouterr().out
