"""Coverage for the statistics layer, the cost-based planner and the
prepared-query plan cache."""

import pytest

from repro.engine import PreparedQuery
from repro.errors import EvaluationError
from repro.eval.match import _AnonNamer, decompose_chain
from repro.eval.planner import (
    PlanCache,
    estimate_cardinality,
    explain_order,
    order_atoms,
    plan_atoms,
)
from repro.lang.parser import parse_query
from repro.model.statistics import DEFAULT_SELECTIVITY


def chain_atoms(text):
    query = parse_query(f"CONSTRUCT (x) MATCH {text}")
    chain = query.body.match.block.patterns[0].chain
    return decompose_chain(chain, _AnonNamer())


class TestGraphStatistics:
    def test_totals_match_graph(self, social):
        stats = social.statistics()
        assert stats.node_count == len(social.nodes)
        assert stats.edge_count == len(social.edges)
        assert stats.path_count == len(social.paths)

    def test_label_counts_match_indexes(self, social):
        stats = social.statistics()
        for label in ("Person", "Tag", "City"):
            assert stats.node_label_count(label) == len(
                social.nodes_with_label(label)
            )
        for label in ("knows", "hasInterest"):
            assert stats.edge_label_count(label) == len(
                social.edges_with_label(label)
            )

    def test_statistics_cached_on_graph(self, social):
        assert social.statistics() is social.statistics()

    def test_avg_degree(self, social):
        stats = social.statistics()
        knows = len(social.edges_with_label("knows"))
        assert stats.avg_out_degree("knows") == pytest.approx(
            knows / len(social.nodes)
        )

    def test_property_selectivity_bounds(self, social):
        stats = social.statistics()
        sel = stats.property_selectivity("node", "firstName")
        assert 0.0 < sel <= 1.0
        assert (
            stats.property_selectivity("node", "no-such-key")
            == DEFAULT_SELECTIVITY
        )

    def test_label_selectivity_disjunction(self, social):
        stats = social.statistics()
        persons = stats.node_label_count("Person")
        tags = stats.node_label_count("Tag")
        sel = stats.label_selectivity("node", (("Person", "Tag"),))
        assert sel == pytest.approx((persons + tags) / stats.node_count)

    def test_empty_graph_statistics(self):
        from repro.model.setops import empty_graph

        stats = empty_graph().statistics()
        assert stats.node_count == 0
        assert stats.label_selectivity("node", (("X",),)) == 0.0
        assert stats.avg_out_degree() == 0.0

    def test_describe_mentions_labels(self, social):
        text = social.statistics().describe()
        assert "Person" in text and "knows" in text

    def test_label_reach_fraction(self, social):
        stats = social.statistics()
        fraction = stats.label_reach_fraction("knows")
        targets = {social.endpoints(e)[1] for e in social.edges_with_label("knows")}
        assert fraction == pytest.approx(len(targets) / stats.node_count)
        assert stats.label_reach_fraction("no-such-label") == 0.0

    def test_reachability_estimate_modes(self, social):
        stats = social.statistics()
        # Unknown label set: the default fraction of the graph.
        assert stats.reachability_estimate(None) == pytest.approx(
            max(stats.node_count * 0.5, 1.0)
        )
        # No edge traversal at all: only the source itself.
        assert stats.reachability_estimate(frozenset()) == 1.0
        # Labeled: bounded by the label's entered-node set.
        labeled = stats.reachability_estimate(frozenset({"knows"}))
        assert labeled == pytest.approx(
            max(
                stats.node_count * stats.label_reach_fraction("knows"), 1.0
            )
        )
        assert labeled <= stats.node_count

    def test_path_estimate_uses_regex_labels(self, social):
        # A labeled path pattern must get a tighter (or equal) fan
        # estimate than an unconstrained -/p/-> pattern.
        stats = social.statistics()
        labeled_atom = chain_atoms("(x)-/p <:knows*>/->(y)")[2]
        bare_atom = chain_atoms("(x)-/q/->(y)")[2]
        labeled = estimate_cardinality(labeled_atom, {"x"}, stats)
        bare = estimate_cardinality(bare_atom, {"x"}, stats)
        assert labeled <= bare

    def test_explain_reports_path_strategy(self, social):
        atoms = chain_atoms("(x)-/p <:knows*>/->(y)")
        text = explain_order(atoms, set(), stats=social.statistics())
        assert "strategy=bfs,batched" in text
        naive_text = explain_order(
            atoms, set(), stats=social.statistics(), naive=True
        )
        assert "strategy=bfs,naive" in naive_text


class TestCardinalityEstimates:
    """Estimates vs. actual cardinalities on the paper's instances."""

    def test_label_scan_estimate_is_exact(self, social):
        stats = social.statistics()
        (atom,) = chain_atoms("(n:Person)")
        estimate = estimate_cardinality(atom, set(), stats)
        actual = len(social.nodes_with_label("Person"))
        assert estimate == pytest.approx(actual)

    def test_unconstrained_scan_estimate_is_exact(self, social):
        stats = social.statistics()
        (atom,) = chain_atoms("(n)")
        assert estimate_cardinality(atom, set(), stats) == pytest.approx(
            len(social.nodes)
        )

    def test_edge_scan_estimate_is_exact(self, social):
        stats = social.statistics()
        atoms = chain_atoms("(a)-[e:knows]->(b)")
        edge = next(a for a in atoms if a.kind == "edge")
        # No endpoint bound: the estimate is the matching-edge count.
        assert estimate_cardinality(edge, set(), stats) == pytest.approx(
            len(social.edges_with_label("knows"))
        )

    def test_bound_endpoint_shrinks_estimate(self, social):
        stats = social.statistics()
        atoms = chain_atoms("(a)-[e:knows]->(b)")
        edge = next(a for a in atoms if a.kind == "edge")
        unbound = estimate_cardinality(edge, set(), stats)
        one_bound = estimate_cardinality(edge, {"a"}, stats)
        both_bound = estimate_cardinality(edge, {"a", "b"}, stats)
        assert unbound > one_bound > both_bound

    def test_property_test_shrinks_estimate(self, social):
        stats = social.statistics()
        (plain,) = chain_atoms("(n:Person)")
        (tested,) = chain_atoms("(n:Person {employer='Acme'})")
        assert estimate_cardinality(
            tested, set(), stats
        ) < estimate_cardinality(plain, set(), stats)

    def test_unbound_path_source_is_penalized(self, social):
        stats = social.statistics()
        atoms = chain_atoms("(a)-/p<:knows*>/->(b)")
        path = next(a for a in atoms if a.kind == "path")
        assert estimate_cardinality(path, set(), stats) > estimate_cardinality(
            path, {"a"}, stats
        )


class TestCostBasedOrdering:
    def test_selective_tag_runs_first(self, social):
        stats = social.statistics()
        atoms = chain_atoms(
            "(n:Person)-[:hasInterest]->(t:Tag {name='Wagner'})"
        )
        ordered = order_atoms(atoms, set(), stats=stats)
        assert ordered[0].kind == "node" and ordered[0].var == "t"

    def test_naive_keeps_syntax_order(self, social):
        atoms = chain_atoms("(a)-[e]->(b:Person)")
        assert order_atoms(
            atoms, set(), naive=True, stats=social.statistics()
        ) == list(atoms)

    def test_plan_steps_record_selection_time_estimates(self, social):
        stats = social.statistics()
        atoms = chain_atoms("(a:Person)-[e:knows]->(b)")
        steps = plan_atoms(atoms, set(), stats=stats)
        assert [s.atom for s in steps] == order_atoms(
            atoms, set(), stats=stats
        )
        bound = set()
        for step in steps:
            assert step.estimate == pytest.approx(
                estimate_cardinality(step.atom, bound, stats)
            )
            bound |= step.atom.binds()

    def test_explain_order_shows_estimates(self, social):
        atoms = chain_atoms("(a:Person)-[e]->(b)")
        text = explain_order(atoms, set(), stats=social.statistics())
        assert "est~" in text and "node" in text and "edge" in text

    def test_explain_order_without_stats_shows_scores(self):
        atoms = chain_atoms("(a:Person)-[e]->(b)")
        text = explain_order(atoms, set())
        assert "score=" in text and "est~" not in text

    def test_same_bindings_as_heuristic_and_naive(self, engine):
        from repro.eval.context import EvalContext
        from repro.eval.match import evaluate_match
        from repro.lang.lexer import tokenize
        from repro.lang.parser import Parser

        parser = Parser(tokenize(
            "MATCH (n:Person)-[:hasInterest]->(t:Tag), (n)-[e:knows]->(m) "
            "WHERE (m:Person)"
        ))
        clause = parser._match_clause()
        parser.expect_eof()
        tables = []
        for naive, cost in ((False, True), (False, False), (True, False)):
            ctx = EvalContext(engine.catalog)
            ctx.naive_planner = naive
            ctx.use_cost_planner = cost
            tables.append(evaluate_match(clause, ctx))
        assert set(tables[0]) == set(tables[1]) == set(tables[2])


class TestPlanCache:
    def test_run_twice_hits(self, engine):
        query = "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'"
        engine.run(query)
        before = engine.plan_cache_info()
        engine.run(query)
        after = engine.plan_cache_info()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_cached_result_identical(self, engine):
        query = "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'"
        first = engine.run(query)
        second = engine.run(query)
        assert first == second

    def test_is_plan_cached(self, engine):
        query = "CONSTRUCT (n) MATCH (n:Tag)"
        assert not engine.is_plan_cached(query)
        engine.run(query)
        assert engine.is_plan_cached(query)

    def test_register_graph_invalidates(self, engine, tiny_graph):
        query = "CONSTRUCT (n) MATCH (n:Person)"
        engine.run(query)
        assert engine.is_plan_cached(query)
        engine.register_graph("tiny", tiny_graph)
        assert not engine.is_plan_cached(query)

    def test_set_default_graph_invalidates(self, engine):
        query = "CONSTRUCT (n) MATCH (n:Person)"
        engine.run(query)
        engine.set_default_graph("company_graph")
        assert not engine.is_plan_cached(query)

    def test_invalidation_changes_result(self, engine, tiny_graph):
        """Rebinding the default graph must not replay a stale plan."""
        query = "CONSTRUCT (n) MATCH (n)"
        on_social = engine.run(query)
        engine.register_graph("tiny", tiny_graph, default=True)
        engine.set_default_graph("tiny")
        on_tiny = engine.run(query)
        assert on_tiny.nodes == tiny_graph.nodes
        assert on_social.nodes != on_tiny.nodes

    def test_lru_eviction(self, engine):
        engine.PLAN_CACHE_SIZE = 4
        try:
            for index in range(6):
                engine.run(f"CONSTRUCT (n {{i := {index}}}) MATCH (n:Tag)")
            assert engine.plan_cache_info()["size"] == 4
        finally:
            del engine.PLAN_CACHE_SIZE  # restore the class default

    def test_ast_input_bypasses_cache(self, engine):
        statement = engine.parse("CONSTRUCT (n) MATCH (n:Tag)")
        before = engine.plan_cache_info()
        engine.run(statement)
        after = engine.plan_cache_info()
        assert before["size"] == after["size"]

    def test_plan_cache_identity_guard(self, social):
        cache = PlanCache(maxsize=2)
        site, other = object(), object()
        cache.store(site, ("a",), social, [0, 1])
        assert cache.lookup(site, ("a",), social) == [0, 1]
        assert cache.lookup(other, ("a",), social) is None
        assert cache.hits == 1 and cache.misses == 1

    def test_plan_cache_evicts_oldest(self, social):
        cache = PlanCache(maxsize=2)
        sites = [object() for _ in range(3)]
        for index, site in enumerate(sites):
            cache.store(site, (), social, [index])
        assert len(cache) == 2
        assert cache.lookup(sites[0], (), social) is None


class TestPreparedQuery:
    def test_prepare_returns_same_object(self, engine):
        query = "CONSTRUCT (n) MATCH (n:Person)"
        assert engine.prepare(query) is engine.prepare(query)

    def test_prepared_run_counts_executions(self, engine):
        prepared = engine.prepare("CONSTRUCT (n) MATCH (n:Person)")
        prepared.run()
        prepared.run()
        assert prepared.executions == 2

    def test_param_slots_collected(self, engine):
        prepared = engine.prepare(
            "CONSTRUCT (n) MATCH (n:Person) "
            "WHERE n.employer = $company AND n.firstName = $name"
        )
        assert prepared.param_names == {"company", "name"}

    def test_missing_params_rejected(self, engine):
        prepared = engine.prepare(
            "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = $company"
        )
        with pytest.raises(EvaluationError, match="company"):
            prepared.run()

    def test_params_change_results(self, engine):
        prepared = engine.prepare(
            "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = $company"
        )
        acme = prepared.run(params={"company": "Acme"})
        hal = prepared.run(params={"company": "HAL"})
        assert acme.nodes == {"john", "alice"}
        assert hal.nodes == {"celine"}

    def test_prepared_survives_invalidation(self, engine, tiny_graph):
        """A held PreparedQuery stays runnable after catalog changes."""
        prepared = engine.prepare("CONSTRUCT (n) MATCH (n:Person)")
        before = prepared.run()
        engine.register_graph("tiny", tiny_graph)
        after = prepared.run()
        assert before == after

    def test_explain_mentions_cache_state(self, engine):
        query = "CONSTRUCT (n) MATCH (n:Person)"
        assert "plan: cold" in engine.explain(query)
        engine.run(query)
        assert "plan: cached" in engine.explain(query)

    def test_repr(self, engine):
        prepared = engine.prepare("CONSTRUCT (n) MATCH (n:Person)")
        assert isinstance(prepared, PreparedQuery)
        assert "PreparedQuery" in repr(prepared)
