"""Vectorized expression kernels vs. the interpreted oracle.

Every test runs the same query through the compiled-kernel engine (the
default), the interpreted-expression arm (columnar executor, row-at-a-time
``ExpressionEvaluator``), and the full ``naive=True`` reference, asserting
exact agreement — including the comparison/aggregate semantics fixes of
this PR (bool/number separation, DISTINCT normalization, Date extrema)
and the WHERE predicate pushdown machinery.
"""

import pytest

from repro import GCoreEngine, GraphBuilder
from repro.eval.context import EvalContext
from repro.eval.query import evaluate_statement
from repro.lang.lexer import tokenize
from repro.lang.parser import Parser
from repro.model.values import Date
from repro.eval.pushdown import PushdownPlan, split_conjuncts
from repro.table import Table


def typed_rows(table: Table):
    """Rows with type tags, so True vs 1 cannot hide behind Python ==."""
    return [
        tuple((type(cell).__name__, cell) for cell in row)
        for row in table.rows
    ]


def run_modes(engine, text, params=None):
    """(vectorized, interpreted-expressions, naive-reference) results."""
    vectorized = engine.run(text, params=params)
    ctx = EvalContext(engine.catalog)
    ctx.vectorized_expressions = False
    if params:
        ctx.params = dict(params)
    interpreted = evaluate_statement(engine.parse(text), ctx)
    naive = engine.run(text, params=params, naive=True)
    return vectorized, interpreted, naive


def assert_modes_agree(engine, text, params=None):
    vectorized, interpreted, naive = run_modes(engine, text, params)
    if isinstance(vectorized, Table):
        assert vectorized.columns == interpreted.columns == naive.columns
        assert (
            typed_rows(vectorized)
            == typed_rows(interpreted)
            == typed_rows(naive)
        )
    else:  # graph results
        assert sorted(vectorized.nodes, key=str) == \
            sorted(naive.nodes, key=str)
        assert sorted(vectorized.edges, key=str) == \
            sorted(naive.edges, key=str)
    return vectorized


@pytest.fixture()
def typed_engine():
    """A graph whose properties span bool/int/float/str/Date/multi-set."""
    b = GraphBuilder(name="typed")
    b.add_node("a", labels=["Thing"], properties={
        "flag": True, "rank": 1, "score": 1.5, "name": "alpha",
        "since": Date(2014, 12, 1), "tags": {"x", "y"},
    })
    b.add_node("b", labels=["Thing"], properties={
        "flag": False, "rank": 2, "score": 2.0, "name": "beta",
        "since": Date(2015, 6, 30), "tags": {"y"},
    })
    b.add_node("c", labels=["Thing", "Odd"], properties={
        "rank": 1.0, "name": "gamma", "since": Date(2013, 1, 15),
        "mixed": 1,
    })
    b.add_node("d", labels=["Thing"], properties={
        "flag": True, "rank": 7, "name": "delta", "mixed": True,
    })
    b.add_edge("a", "b", edge_id="e1", labels=["rel"],
               properties={"w": 2})
    b.add_edge("b", "c", edge_id="e2", labels=["rel"],
               properties={"w": 5})
    b.add_edge("c", "d", edge_id="e3", labels=["other"])
    eng = GCoreEngine()
    eng.register_graph("typed", b.build(), default=True)
    return eng


class TestWhereParity:
    QUERIES = [
        "SELECT n.name AS n MATCH (n:Thing) WHERE n.rank > 1",
        "SELECT n.name AS n MATCH (n:Thing) WHERE n.rank = 1",
        "SELECT n.name AS n MATCH (n) WHERE n.flag = TRUE AND n.rank < 5",
        "SELECT n.name AS n MATCH (n) WHERE n.flag = TRUE OR n:Odd",
        "SELECT n.name AS n MATCH (n) WHERE NOT (n.flag = FALSE) XOR n.rank > 1",
        "SELECT n.name AS n MATCH (n) WHERE 'x' IN n.tags",
        "SELECT n.name AS n MATCH (n) WHERE n.tags SUBSET OF ['x', 'y', 'z']",
        "SELECT n.name AS n MATCH (n) WHERE n.rank + 1 > 2",
        "SELECT n.name AS n MATCH (n) WHERE CASE WHEN n.rank > 1 "
        "THEN n.flag ELSE TRUE END",
        "SELECT n.name AS n MATCH (n) WHERE SIZE(n.tags) >= 1",
        "SELECT n.name AS n, m.name AS m MATCH (n)-[e:rel]->(m) "
        "WHERE e.w > 2 AND n.rank <= 2",
        "SELECT n.name AS n MATCH (n) WHERE n.since < $cutoff",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_three_mode_agreement(self, typed_engine, query):
        assert_modes_agree(
            typed_engine, query, params={"cutoff": Date(2015, 1, 1)}
        )

    def test_where_filters_rows(self, typed_engine):
        t = typed_engine.run(
            "SELECT n.name AS n MATCH (n:Thing) WHERE n.rank > 1 ORDER BY n"
        )
        assert list(t.column("n")) == ["beta", "delta"]


class TestComparisonSemanticsFixes:
    def test_true_less_than_two_is_false_everywhere(self, typed_engine):
        # d.mixed = TRUE: a bool never compares against a number.
        t = assert_modes_agree(
            typed_engine,
            "SELECT n.name AS n MATCH (n) WHERE n.mixed < 2",
        )
        assert list(t.column("n")) == ["gamma"]  # c.mixed = 1 (a number)

    def test_bool_prop_comparisons(self, typed_engine):
        t = assert_modes_agree(
            typed_engine,
            "SELECT n.name AS n MATCH (n) WHERE n.flag >= 0",
        )
        assert len(t) == 0

    def test_count_distinct_keeps_bool_and_one_apart(self, typed_engine):
        t = assert_modes_agree(
            typed_engine,
            "SELECT COUNT(DISTINCT n.mixed) AS c MATCH (n:Thing)",
        )
        assert t.rows == ((2,),)  # {1, TRUE}, not conflated to 1

    def test_min_max_over_dates(self, typed_engine):
        t = assert_modes_agree(
            typed_engine,
            "SELECT MIN(n.since) AS lo, MAX(n.since) AS hi MATCH (n:Thing)",
        )
        assert t.rows == ((Date(2013, 1, 15), Date(2015, 6, 30)),)


class TestAggregationParity:
    QUERIES = [
        "SELECT COUNT(*) AS c MATCH (n:Thing)",
        "SELECT n.flag AS f, COUNT(*) AS c MATCH (n:Thing) "
        "GROUP BY n.flag ORDER BY c DESC",
        "SELECT SUM(n.rank) AS s, AVG(n.rank) AS a MATCH (n:Thing)",
        "SELECT COLLECT(n.name) AS names MATCH (n:Thing)",
        "SELECT n.rank AS r, MIN(n.name) AS lo MATCH (n:Thing) "
        "GROUP BY n.rank ORDER BY lo",
        "SELECT COUNT(m) AS c, n.name AS nm "
        "MATCH (n:Thing) OPTIONAL (n)-[:rel]->(m) GROUP BY n.name ORDER BY nm",
        "SELECT COUNT(*) + 1 AS c1, CASE WHEN COUNT(*) > 3 THEN 'big' "
        "ELSE 'small' END AS size MATCH (n:Thing)",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_three_mode_agreement(self, typed_engine, query):
        assert_modes_agree(typed_engine, query)

    def test_star_is_count_only(self, typed_engine):
        # SUM(*) / FOO(*) parse; both evaluators must reject them with
        # the oracle's messages, never silently return the group count.
        from repro.errors import EvaluationError

        for query, fragment in (
            ("SELECT SUM(*) AS s MATCH (n:Thing)", "requires an argument"),
            ("SELECT FOO(*) AS s MATCH (n:Thing)", "unknown aggregate"),
        ):
            for naive in (False, True):
                with pytest.raises(EvaluationError, match=fragment):
                    typed_engine.run(query, naive=naive)

    def test_count_star_maximality_over_presence_masks(self, typed_engine):
        # OPTIONAL misses leave m ABSENT; COUNT(*) counts only maximal rows.
        t = assert_modes_agree(
            typed_engine,
            "SELECT n.name AS nm, COUNT(*) AS c "
            "MATCH (n:Thing) OPTIONAL (n)-[:rel]->(m) "
            "GROUP BY n.name ORDER BY nm",
        )
        # c's only out-edge is labeled "other", d has none: both OPTIONAL
        # misses count 0 under the maximality rule.
        assert dict(t.rows) == {"alpha": 1, "beta": 1, "gamma": 0, "delta": 0}


class TestErrorParity:
    def test_arithmetic_error_raises_in_both_modes(self, typed_engine):
        from repro.errors import EvaluationError

        query = "SELECT n.name + 1 AS x MATCH (n:Thing)"
        with pytest.raises(EvaluationError):
            typed_engine.run(query)
        with pytest.raises(EvaluationError):
            typed_engine.run(query, naive=True)

    def test_short_circuit_avoids_error_in_both_modes(self, typed_engine):
        # n.name + 1 would raise, but AND never reaches it when the
        # left conjunct is false — under either evaluator.
        query = (
            "SELECT n.name AS n MATCH (n:Thing) "
            "WHERE n.rank > 99 AND n.name + 1 > 0"
        )
        assert typed_engine.run(query).rows == ()
        assert typed_engine.run(query, naive=True).rows == ()

    def test_division_by_zero_raises_in_both_modes(self, typed_engine):
        from repro.errors import EvaluationError

        query = "SELECT n.rank / 0 AS x MATCH (n:Thing)"
        with pytest.raises(EvaluationError):
            typed_engine.run(query)
        with pytest.raises(EvaluationError):
            typed_engine.run(query, naive=True)


class TestPushdown:
    def test_split_conjuncts_flattens_nested_ands(self):
        parser = Parser(tokenize(
            "MATCH (n) WHERE n.a = 1 AND (n.b = 2 AND n.c = 3)"
        ))
        clause = parser._match_clause()
        conjuncts = split_conjuncts(clause.block.where)
        assert len(conjuncts) == 3

    def test_non_total_conjuncts_stay_residual(self):
        parser = Parser(tokenize(
            "MATCH (n) WHERE n.a + 1 > 2 AND n.b = 2"
        ))
        clause = parser._match_clause()
        plan = PushdownPlan(clause.block.where, {})
        # The arithmetic conjunct blocks itself AND everything to its
        # right (error-order preservation).
        assert len(plan.pushable) == 0
        assert len(plan.remaining()) == 2

    def test_total_prefix_is_pushable(self):
        parser = Parser(tokenize(
            "MATCH (n) WHERE n.b = 2 AND n.a + 1 > 2"
        ))
        clause = parser._match_clause()
        plan = PushdownPlan(clause.block.where, {})
        assert len(plan.pushable) == 1
        assert len(plan.remaining()) == 2  # nothing consumed yet

    def test_pushed_property_keys_feed_the_planner(self):
        parser = Parser(tokenize(
            "MATCH (n)-[e:rel]->(m) WHERE n.rank = 1 AND e.w > 2"
        ))
        clause = parser._match_clause()
        plan = PushdownPlan(clause.block.where, {})
        keys = plan.pushed_property_keys()
        assert keys == {"n": ("rank",), "e": ("w",)}

    def test_missing_param_is_not_pushable(self):
        parser = Parser(tokenize("MATCH (n) WHERE n.a = $v"))
        clause = parser._match_clause()
        assert len(PushdownPlan(clause.block.where, {}).pushable) == 0
        assert len(PushdownPlan(clause.block.where, {"v": 1}).pushable) == 1

    def test_pushdown_results_match_reference(self, typed_engine):
        # Conjuncts over n and e push into different atoms; result must
        # equal the naive reference exactly (rows and order).
        t1 = typed_engine.bindings(
            "MATCH (n)-[e:rel]->(m) WHERE n.rank <= 2 AND e.w > 2 "
            "AND m.name = 'gamma'"
        )
        t2 = typed_engine.bindings(
            "MATCH (n)-[e:rel]->(m) WHERE n.rank <= 2 AND e.w > 2 "
            "AND m.name = 'gamma'",
            naive=True,
        )
        assert t1 == t2
        assert list(t1.rows) == list(t2.rows)
        assert len(t1) == 1

    def test_label_test_conjunct_pushes(self, typed_engine):
        t1 = typed_engine.bindings("MATCH (n)-[:rel]->(m) WHERE (m:Odd)")
        t2 = typed_engine.bindings(
            "MATCH (n)-[:rel]->(m) WHERE (m:Odd)", naive=True
        )
        assert t1 == t2 and len(t1) == 1


class TestExplainPushdown:
    def test_explain_reports_probe_assignment(self, typed_engine):
        text = typed_engine.explain(
            "CONSTRUCT (n) MATCH (n:Thing)-[e:rel]->(m) "
            "WHERE n.rank = 1 AND m.name = 'gamma'"
        )
        assert "pushed n.rank = 1 -> node(n) [probe]" in text
        assert "pushed m.name = 'gamma' ->" in text
        assert "[probe]" in text

    def test_explain_reports_residual(self, typed_engine):
        text = typed_engine.explain(
            "CONSTRUCT (n) MATCH (n:Thing) WHERE n.rank + 1 > 2"
        )
        assert "residual n.rank + 1 > 2" in text

    def test_explain_assumes_params_bound(self, typed_engine):
        # Execution always has every $param bound, so EXPLAIN must show
        # the conjunct pushed — not residual.
        text = typed_engine.explain(
            "CONSTRUCT (n) MATCH (n:Thing) WHERE n.rank = $r"
        )
        assert "pushed n.rank = $r -> node(n) [probe]" in text
        assert "residual" not in text

    def test_explain_reports_join_conjunct_as_filter(self, typed_engine):
        text = typed_engine.explain(
            "CONSTRUCT (n) MATCH (n:Thing), (m:Thing) WHERE n.rank = m.rank"
        )
        assert "[filter]" in text


class TestVectorizedFlagPlumbing:
    def test_context_flag_defaults(self):
        from repro.catalog import Catalog

        ctx = EvalContext(Catalog())
        assert ctx.use_vectorized() is True
        ctx.naive_planner = True
        assert ctx.use_vectorized() is False
        ctx.columnar_executor = True
        assert ctx.use_vectorized() is True
        ctx.vectorized_expressions = False
        assert ctx.use_vectorized() is False
        assert ctx.child().use_vectorized() is False

    def test_projection_of_expressions(self, typed_engine):
        assert_modes_agree(
            typed_engine,
            "SELECT n.name AS nm, n.rank * 2 AS dbl, "
            "CASE WHEN n.flag THEN 'y' ELSE 'n' END AS f "
            "MATCH (n:Thing) ORDER BY nm",
        )

    def test_list_and_index_kernels(self, typed_engine):
        assert_modes_agree(
            typed_engine,
            "SELECT [n.rank, n.name][0] AS head MATCH (n:Thing) ORDER BY head",
        )

    def test_exists_pattern_falls_back(self, typed_engine):
        assert_modes_agree(
            typed_engine,
            "SELECT n.name AS nm MATCH (n:Thing) "
            "WHERE (n)-[:rel]->() ORDER BY nm",
        )


def _match_clause(text):
    parser = Parser(tokenize(text))
    clause = parser._match_clause()
    parser.expect_eof()
    return clause


class TestBindingParity:
    """Binding-table-level parity on the toy data.

    Vectorized vs interpreted expressions under the *same* planner must
    agree exactly (rows, order, columns); against the naive reference
    (different atom order) the tables must be set-equal.
    """

    QUERIES = [
        "MATCH (n:Person) WHERE n.employer = 'Acme'",
        "MATCH (n:Person)-[:knows]->(m) WHERE m.lastName = 'Doe'",
        "MATCH (n:Person {employer=e}) WHERE e = 'CWI' OR e = 'MIT'",
        "MATCH (n:Person)-[:knows]->(m:Person) "
        "WHERE n.firstName < m.firstName",
    ]

    def evaluate(self, engine, query, vectorized):
        from repro.eval.match import evaluate_match

        ctx = EvalContext(engine.catalog)
        ctx.vectorized_expressions = vectorized
        return evaluate_match(_match_clause(query), ctx)

    @pytest.mark.parametrize("query", QUERIES)
    def test_exact_table_parity(self, engine, query):
        fast = self.evaluate(engine, query, vectorized=True)
        slow = self.evaluate(engine, query, vectorized=False)
        assert fast.columns == slow.columns
        assert list(fast.rows) == list(slow.rows)
        assert fast == engine.bindings(query, naive=True)
