"""One end-to-end unit test per diagnostic code, through ``engine.analyze``.

Every code of the registry is exercised against the guided-tour catalog
(social graph + SNB schema, company graph, orders table) — the
acceptance bar of the analyzer issue: each documented code observable
through the public entry point.
"""

import pytest

from repro import GCoreEngine
from repro.analysis import CODES
from repro.datasets import company_graph, orders_table, social_graph
from repro.model.schema import snb_schema


@pytest.fixture(scope="module")
def engine():
    eng = GCoreEngine()
    eng.register_graph(
        "social_graph", social_graph(), default=True, schema=snb_schema()
    )
    eng.register_graph("company_graph", company_graph())
    eng.register_table("orders", orders_table())
    return eng


#: code -> a query that must trigger it (and nothing more severe).
TRIGGERS = {
    "GC001": "CONSTRUCT (",
    "GC101": "CONSTRUCT (n) MATCH (n) ON missing_graph",
    "GC102": "SELECT x FROM missing_table",
    "GC103": "CONSTRUCT (n) MATCH (n:Persn)",
    "GC104": "CONSTRUCT (n) MATCH (n) WHERE n.agee = 1",
    "GC105": "CONSTRUCT (n) MATCH (n)-/p<~missing_view>/->(m)",
    "GC201": "CONSTRUCT (x) MATCH (x)-[x]->(m)",
    "GC202": (
        "CONSTRUCT (n) MATCH (n)-/ALL p<:knows*>/->(m) WHERE length(p) > 2"
    ),
    "GC203": (
        "CONSTRUCT (n) MATCH (n) "
        "OPTIONAL (z)-[:knows]->(a) OPTIONAL (z)-[:knows]->(b)"
    ),
    "GC204": "CONSTRUCT (n) MATCH (n) WHERE m.name = 'Alice'",
    "GC205": "CONSTRUCT (n) MATCH (n) WHERE TRUE < 2",
    "GC206": "CONSTRUCT (n) MATCH (n) WHERE 1 + 1",
    "GC207": "CONSTRUCT (n) MATCH (n) WHERE count(n) > 1",
    "GC301": (
        "SELECT n.name MATCH (n:Person) "
        "WHERE n.employer = 'Acme' AND n.employer = 'HAL'"
    ),
    "GC302": "CONSTRUCT (c) MATCH (c:Company)",
    "GC401": "CONSTRUCT (n) MATCH (n), (m)",
    "GC402": "CONSTRUCT (n) MATCH (n)-/ALL p<:knows*>/->(m)",
}


def test_trigger_table_covers_the_whole_registry():
    assert set(TRIGGERS) == set(CODES)


@pytest.mark.parametrize("code", sorted(TRIGGERS))
def test_code_fires_with_registry_severity(engine, code):
    result = engine.analyze(TRIGGERS[code])
    fired = [d for d in result if d.code == code]
    assert fired, f"{code} not raised: {[d.code for d in result]}"
    assert all(d.severity == CODES[code].severity for d in fired)


@pytest.mark.parametrize("code", sorted(set(TRIGGERS) - {"GC202", "GC402"}))
def test_trigger_is_minimal(engine, code):
    """Each trigger raises only its own code (the two path codes pair)."""
    result = engine.analyze(TRIGGERS[code])
    assert {d.code for d in result} == {code}


def test_clean_query_has_no_diagnostics(engine):
    result = engine.analyze(
        "SELECT n.name MATCH (n:Person) WHERE n.employer = 'Acme'"
    )
    assert result.ok
    assert len(result) == 0


def test_diagnostics_carry_source_spans(engine):
    result = engine.analyze(TRIGGERS["GC204"])
    diagnostic = result[0]
    assert diagnostic.line == 1
    assert diagnostic.column is not None and diagnostic.column > 30


def test_parse_error_reports_position(engine):
    result = engine.analyze("CONSTRUCT (n) MATCH (n) WHERE ???")
    assert [d.code for d in result] == ["GC001"]
    assert result[0].line == 1


def test_analyze_accepts_parsed_statement(engine):
    from repro.lang.parser import parse_statement

    statement = parse_statement(TRIGGERS["GC204"])
    result = engine.analyze(statement)
    assert [d.code for d in result] == ["GC204"]
    assert result[0].line is None  # no token stream, no spans


def test_analyze_without_catalog_skips_schema_checks():
    from repro.analysis import analyze

    result = analyze("CONSTRUCT (n) MATCH (n:Persn) WHERE n.agee = 1")
    assert result.ok  # GC103/GC104 need a catalog; nothing else fires


def test_local_graph_head_suppresses_gc101(engine):
    result = engine.analyze(
        "GRAPH tmp AS (CONSTRUCT (n) MATCH (n:Person)) "
        "CONSTRUCT (m) MATCH (m) ON tmp"
    )
    assert result.ok


def test_local_path_head_suppresses_gc105(engine):
    result = engine.analyze(
        "PATH two = (a)-[:knows]->(b) "
        "CONSTRUCT (x) MATCH (x)-/q<~two>/->(y)"
    )
    assert result.ok


def test_contradictory_pattern_and_where_facts(engine):
    result = engine.analyze(
        "SELECT n.name MATCH (n:Person {employer: 'Acme'}) "
        "WHERE n.employer = 'HAL'"
    )
    assert "GC301" in {d.code for d in result}


def test_domain_miss_is_flagged(engine):
    result = engine.analyze(
        "SELECT n.name MATCH (n:Person) WHERE n.employer = 'Initech'"
    )
    assert {d.code for d in result} == {"GC301"}


def test_bounded_all_paths_not_flagged(engine):
    result = engine.analyze(
        "CONSTRUCT (n) MATCH (n)-/ALL p<:knows{1,3}>/->(m)"
    )
    assert "GC402" not in {d.code for d in result}


def test_shortest_star_not_flagged(engine):
    result = engine.analyze("CONSTRUCT (n) MATCH (n)-/p<:knows*>/->(m)")
    assert "GC402" not in {d.code for d in result}
