"""Strict mode, EXPLAIN surfacing, snapshots, REPL and the batch CLI."""

import io
import subprocess
import sys
from pathlib import Path

import pytest

from repro import AnalysisError, GCoreEngine
from repro.analysis.__main__ import lint_paths, split_statements
from repro.datasets import social_graph

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

ERROR_QUERY = "SELECT m.name MATCH (n:Person)"  # GC204 (error)
WARN_QUERY = "CONSTRUCT (n), (m) MATCH (n), (m)"  # GC401 (warning)
CLEAN_QUERY = "SELECT n.name MATCH (n:Person) ORDER BY n.name"


@pytest.fixture()
def engine():
    eng = GCoreEngine()
    eng.register_graph("social_graph", social_graph(), default=True)
    return eng


class TestStrictMode:
    def test_error_diagnostic_blocks_before_planning(self, engine):
        with pytest.raises(AnalysisError) as excinfo:
            engine.run(ERROR_QUERY, strict=True)
        error = excinfo.value
        assert error.code == "analysis_error"
        assert error.http_status == 400
        assert "GC204" in str(error)
        assert [d.code for d in error.result] == ["GC204"]

    def test_non_strict_run_still_succeeds(self, engine):
        table = engine.run(ERROR_QUERY)
        # the runtime silently evaluates the unbound var to empty values
        assert all(value is None for (value,) in table.rows)

    def test_warnings_do_not_block(self, engine):
        graph = engine.run(WARN_QUERY, strict=True)
        assert len(graph.nodes) > 0

    def test_clean_query_unaffected(self, engine):
        table = engine.run(CLEAN_QUERY, strict=True)
        assert len(table.rows) > 0

    def test_snapshot_strict_and_analyze(self, engine):
        with engine.snapshot() as snapshot:
            result = snapshot.analyze(ERROR_QUERY)
            assert [d.code for d in result] == ["GC204"]
            with pytest.raises(AnalysisError):
                snapshot.run(ERROR_QUERY, strict=True)
            assert len(snapshot.run(CLEAN_QUERY, strict=True).rows) > 0


class TestExplainSurfacing:
    def test_explain_lists_diagnostics(self, engine):
        plan = engine.explain(WARN_QUERY)
        assert "diagnostics:" in plan
        assert "GC401" in plan

    def test_explain_clean_query_says_none(self, engine):
        assert "diagnostics: none" in engine.explain(CLEAN_QUERY)


class TestSplitStatements:
    def test_semicolons_comments_and_line_offsets(self):
        text = (
            "SELECT a FROM t;  # trailing comment\n"
            "# full line\n"
            "SELECT b FROM t;\n"
        )
        assert split_statements(text) == [
            (1, "SELECT a FROM t"),
            (3, "SELECT b FROM t"),
        ]

    def test_semicolon_inside_quotes_is_kept(self):
        statements = split_statements("SELECT n.name MATCH (n {name: 'a;b'})")
        assert len(statements) == 1
        assert "a;b" in statements[0][1]

    def test_double_quoted_semicolon_is_kept(self):
        statements = split_statements('SELECT n.name MATCH (n {name: "a;#b"})')
        assert len(statements) == 1


class TestBatchCli:
    def lint(self, tmp_path, text):
        query_file = tmp_path / "queries.gcore"
        query_file.write_text(text, encoding="utf-8")
        out = io.StringIO()
        exit_code = lint_paths([str(query_file)], out=out)
        return exit_code, out.getvalue()

    def test_clean_file_exits_zero(self, tmp_path):
        exit_code, output = self.lint(tmp_path, f"{CLEAN_QUERY};\n")
        assert exit_code == 0
        assert "checked 1 statement(s)" in output

    def test_warning_file_exits_one(self, tmp_path):
        exit_code, output = self.lint(tmp_path, WARN_QUERY)
        assert exit_code == 1
        assert "GC401" in output

    def test_error_file_exits_two(self, tmp_path):
        exit_code, output = self.lint(
            tmp_path, f"{CLEAN_QUERY};\n{ERROR_QUERY};"
        )
        assert exit_code == 2
        assert "GC204" in output
        assert "queries.gcore:2:" in output

    def test_missing_file_exits_two(self, tmp_path):
        out = io.StringIO()
        exit_code = lint_paths([str(tmp_path / "absent.gcore")], out=out)
        assert exit_code == 2

    def test_module_entry_point(self, tmp_path):
        query_file = tmp_path / "q.gcore"
        query_file.write_text(f"{WARN_QUERY};", encoding="utf-8")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(query_file)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "GC401" in proc.stdout


class TestRepl:
    def test_lint_command(self, engine, capsys):
        from repro.__main__ import handle_command

        assert handle_command(engine, f".lint {ERROR_QUERY}")
        captured = capsys.readouterr()
        assert "GC204" in captured.out
