"""Diagnostic / AnalysisResult value semantics (no analyzer involved)."""

import pytest

from repro.analysis import CODES, SEVERITIES, AnalysisResult, Diagnostic
from repro.analysis.diagnostics import severity_rank


def make(code="GC204", severity=None, **kwargs):
    info = CODES[code]
    return Diagnostic(
        code=code,
        severity=severity or info.severity,
        message=kwargs.pop("message", "msg"),
        **kwargs,
    )


class TestRegistry:
    def test_every_code_has_name_severity_and_summary(self):
        for code, info in CODES.items():
            assert info.code == code
            assert info.severity in SEVERITIES
            assert info.name
            assert info.summary

    def test_registry_covers_all_families(self):
        families = {code[:3] for code in CODES}
        assert families == {"GC0", "GC1", "GC2", "GC3", "GC4"}

    def test_severity_rank_is_total(self):
        ranks = [severity_rank(s) for s in SEVERITIES]
        assert ranks == sorted(ranks)
        assert len(set(ranks)) == len(SEVERITIES)


class TestDiagnostic:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="GC999", severity="error", message="x")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="GC204", severity="fatal", message="x")

    def test_describe_with_and_without_span(self):
        spanless = make(message="boom")
        assert spanless.describe() == "GC204 error: boom"
        spanned = make(message="boom", line=3, column=7, hint="fix it")
        assert spanned.describe() == "GC204 error [3:7]: boom (hint: fix it)"

    def test_to_json_omits_absent_optionals(self):
        payload = make(message="boom").to_json()
        assert payload == {
            "code": "GC204",
            "name": CODES["GC204"].name,
            "severity": "error",
            "message": "boom",
        }

    def test_to_json_carries_span_and_hint(self):
        payload = make(message="boom", line=2, column=5, hint="h").to_json()
        assert payload["line"] == 2
        assert payload["column"] == 5
        assert payload["hint"] == "h"


class TestAnalysisResult:
    def test_sorted_worst_first_then_position(self):
        result = AnalysisResult(
            [
                make("GC401", message="warn", line=1, column=1),
                make("GC204", message="late error", line=9, column=1),
                make("GC302", message="info"),
                make("GC204", message="early error", line=2, column=1),
            ]
        )
        assert [d.severity for d in result] == [
            "error",
            "error",
            "warning",
            "info",
        ]
        assert result[0].message == "early error"

    def test_counts_and_ok(self):
        result = AnalysisResult(
            [make("GC204"), make("GC401"), make("GC302")]
        )
        assert not result.ok
        assert len(result.errors) == 1
        assert len(result.warnings) == 1
        assert len(result.infos) == 1
        assert result.max_severity == "error"

    def test_ok_tolerates_warnings_and_infos(self):
        assert AnalysisResult([]).ok
        assert AnalysisResult([make("GC401")]).ok
        assert AnalysisResult([make("GC302")]).ok

    @pytest.mark.parametrize(
        "codes,expected",
        [((), 0), (("GC302",), 0), (("GC401",), 1), (("GC401", "GC204"), 2)],
    )
    def test_exit_code(self, codes, expected):
        result = AnalysisResult([make(c) for c in codes])
        assert result.exit_code() == expected

    def test_to_json_envelope(self):
        result = AnalysisResult([make("GC204"), make("GC401")])
        payload = result.to_json()
        assert payload["ok"] is False
        assert payload["error_count"] == 1
        assert payload["warning_count"] == 1
        assert payload["info_count"] == 0
        assert [d["code"] for d in payload["diagnostics"]] == [
            "GC204",
            "GC401",
        ]

    def test_describe_empty(self):
        assert AnalysisResult([]).describe() == "no diagnostics"
