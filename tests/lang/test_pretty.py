"""Round-trip tests: parse(pretty(parse(q))) == parse(q) for all paper queries."""

import pytest

from repro.lang.parser import parse_statement
from repro.lang.pretty import pretty_statement

# Every query from the paper's guided tour (Section 3) and extensions
# (Section 5), plus grammar corner cases.
PAPER_QUERIES = [
    # lines 1-4
    "CONSTRUCT (n) MATCH (n:Person) ON social_graph WHERE n.employer = 'Acme'",
    # lines 5-9
    "CONSTRUCT (c)<-[:worksAt]-(n) MATCH (c:Company) ON company_graph, "
    "(n:Person) ON social_graph WHERE c.name = n.employer UNION social_graph",
    # lines 10-14
    "CONSTRUCT (c)<-[:worksAt]-(n) MATCH (c:Company) ON company_graph, "
    "(n:Person) ON social_graph WHERE c.name IN n.employer UNION social_graph",
    # lines 15-19
    "CONSTRUCT (c)<-[:worksAt]-(n) MATCH (c:Company) ON company_graph, "
    "(n:Person {employer=e}) ON social_graph WHERE c.name = e UNION social_graph",
    # lines 20-22
    "CONSTRUCT social_graph, (x GROUP e :Company {name:=e})<-[y:worksAt]-(n) "
    "MATCH (n:Person {employer=e})",
    # lines 23-27
    "CONSTRUCT (n)-/@p:localPeople{distance:=c}/->(m) "
    "MATCH (n)-/3 SHORTEST p<:knows*> COST c/->(m) "
    "WHERE (n:Person) AND (m:Person) AND n.firstName = 'John' "
    "AND n.lastName = 'Doe' AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
    # lines 28-31
    "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) "
    "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
    "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
    # lines 32-35
    "CONSTRUCT (n)-/p/->(m) MATCH (n:Person)-/ALL p<:knows*>/->(m:Person) "
    "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
    "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
    # lines 36-38 (explicit existential)
    "CONSTRUCT (n) MATCH (n) WHERE EXISTS "
    "(CONSTRUCT () MATCH (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m))",
    # lines 39-47
    "GRAPH VIEW social_graph1 AS (CONSTRUCT social_graph, (n)-[e]->(m) "
    "SET e.nr_messages := COUNT(*) MATCH (n)-[e:knows]->(m) "
    "WHERE (n:Person) AND (m:Person) "
    "OPTIONAL (n)<-[c1]-(msg1:Post|Comment), (msg1)-[:reply_of]-(msg2), "
    "(msg2:Post|Comment)-[c2]->(m) WHERE (c1:has_creator) AND (c2:has_creator))",
    # lines 48-56
    "CONSTRUCT (n) MATCH (n:Person) OPTIONAL (n)-[:worksAt]->(c) "
    "OPTIONAL (n)-[:livesIn]->(a)",
    # lines 57-66
    "GRAPH VIEW social_graph2 AS (PATH wKnows = (x)-[e:knows]->(y) "
    "WHERE NOT 'Acme' IN y.employer COST 1 / (1 + e.nr_messages) "
    "CONSTRUCT social_graph1, (n)-/@p:toWagner/->(m) "
    "MATCH (n:Person)-/p<~wKnows*>/->(m:Person) ON social_graph1 "
    "WHERE (m)-[:hasInterest]->(:Tag {name='Wagner'}) "
    "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) "
    "AND n.firstName = 'John' AND n.lastName = 'Doe')",
    # lines 67-71 (with the documented m = nodes(p)[1] reading)
    "CONSTRUCT (n)-[e:wagnerFriend {score:=COUNT(*)}]->(m) WHEN e.score > 0 "
    "MATCH (n:Person)-/@p:toWagner/->(), (m:Person) ON social_graph2 "
    "WHERE m = nodes(p)[1]",
    # lines 72-75
    "SELECT m.lastName + ', ' + m.firstName AS friendName "
    "MATCH (n:Person)-/<:knows*>/->(m:Person) "
    "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
    "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
    # lines 76-80
    "CONSTRUCT (cust GROUP custName :Customer {name:=custName}), "
    "(prod GROUP prodCode :Product {code:=prodCode}), "
    "(cust)-[:bought]->(prod) FROM orders",
    # lines 81-85
    "CONSTRUCT (cust GROUP o.custName :Customer {name:=o.custName}), "
    "(prod GROUP o.prodCode :Product {code:=o.prodCode}), "
    "(cust)-[:bought]->(prod) MATCH (o) ON orders",
]

EXTRA_QUERIES = [
    "g1 UNION g2 MINUS g3",
    "g1 INTERSECT (g2 UNION g3)",
    "GRAPH tmp AS (CONSTRUCT (n) MATCH (n)) CONSTRUCT (m) MATCH (m) ON tmp",
    "PATH p = (a)-[:k]->(b), (b)-[:l]->(c) WHERE b.x = 1 COST 2 "
    "CONSTRUCT (n) MATCH (n)-/q<~p+>/->(m)",
    "CONSTRUCT (a)-[:x]->(b)<-[:y]-(c) MATCH (a)->(b)<-(c)-(d)",
    "CONSTRUCT (=n)-[=y]->(m) MATCH (n)-[y:k]->(m)",
    "CONSTRUCT (n) SET n.k := 1 + 2 SET n:L REMOVE n.z REMOVE n:M MATCH (n)",
    "CONSTRUCT (x GROUP e, f :L {a:=COUNT(*), b:=SUM(e)}) MATCH (n {p=e, q=f})",
    "SELECT DISTINCT n.a AS a, COUNT(*) AS c MATCH (n) "
    "GROUP BY n.a ORDER BY c DESC, a LIMIT 10 OFFSET 1",
    "CONSTRUCT (n) MATCH (n) WHERE CASE WHEN size(n.e) = 0 THEN TRUE ELSE FALSE END",
    "CONSTRUCT (m) MATCH (n)-/<(:a|:b^)* !Tag _>/->(m)",
    "CONSTRUCT (n) MATCH (n) WHERE n.a SUBSET OF n.b AND NOT (n)-[:x]->()",
]


@pytest.mark.parametrize("text", PAPER_QUERIES)
def test_paper_query_round_trips(text):
    first = parse_statement(text)
    rendered = pretty_statement(first)
    assert parse_statement(rendered) == first


@pytest.mark.parametrize("text", EXTRA_QUERIES)
def test_extra_query_round_trips(text):
    first = parse_statement(text)
    rendered = pretty_statement(first)
    assert parse_statement(rendered) == first


def test_pretty_is_stable():
    text = PAPER_QUERIES[4]
    once = pretty_statement(parse_statement(text))
    twice = pretty_statement(parse_statement(once))
    assert once == twice
