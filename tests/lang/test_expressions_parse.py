"""Expression grammar tests (precedence, functions, CASE, lists)."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.parser import parse_expression


class TestPrecedence:
    def test_or_lower_than_and(self):
        e = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert e.op == "or"
        assert e.right.op == "and"

    def test_not_binds_tighter_than_and(self):
        e = parse_expression("NOT a = 1 AND b = 2")
        assert e.op == "and"
        assert isinstance(e.left, ast.Unary)

    def test_arithmetic_precedence(self):
        e = parse_expression("1 + 2 * 3")
        assert e.op == "+" and e.right.op == "*"

    def test_parentheses_override(self):
        e = parse_expression("(1 + 2) * 3")
        assert e.op == "*" and e.left.op == "+"

    def test_comparison_of_sums(self):
        e = parse_expression("a.x + 1 < b.y - 2")
        assert e.op == "<" and e.left.op == "+" and e.right.op == "-"

    def test_unary_minus(self):
        e = parse_expression("-a.x + 1")
        assert e.op == "+" and isinstance(e.left, ast.Unary)

    def test_division_chain_left_assoc(self):
        e = parse_expression("8 / 4 / 2")
        assert e.op == "/" and e.left.op == "/"


class TestOperators:
    def test_in(self):
        e = parse_expression("c.name IN n.employer")
        assert e.op == "in"

    def test_subset_of(self):
        e = parse_expression("a.x SUBSET OF b.y")
        assert e.op == "subset"

    def test_subset_without_of(self):
        e = parse_expression("a.x SUBSET b.y")
        assert e.op == "subset"

    def test_neq_both_spellings(self):
        assert parse_expression("a <> b").op == "<>"
        assert parse_expression("a != b").op == "<>"

    def test_not_in(self):
        e = parse_expression("NOT 'Acme' IN y.employer")
        assert isinstance(e, ast.Unary) and e.operand.op == "in"

    def test_xor(self):
        assert parse_expression("a XOR b").op == "xor"


class TestPostfix:
    def test_property_access(self):
        e = parse_expression("n.employer")
        assert e == ast.Prop(ast.Var("n"), "employer")

    def test_chained_property(self):
        e = parse_expression("nodes(p)[1].name")
        assert isinstance(e, ast.Prop)
        assert isinstance(e.base, ast.Index)

    def test_indexing(self):
        e = parse_expression("nodes(p)[1]")
        assert isinstance(e, ast.Index)
        assert e.index == ast.Literal(1)

    def test_label_postfix(self):
        e = parse_expression("n:Person")
        assert e == ast.LabelTest("n", ("Person",))

    def test_label_disjunction_postfix(self):
        e = parse_expression("m:Post|Comment")
        assert e == ast.LabelTest("m", ("Post", "Comment"))

    def test_label_conjunction_postfix(self):
        e = parse_expression("m:A:B")
        assert e.op == "and"


class TestCallsAndLiterals:
    def test_count_star(self):
        e = parse_expression("COUNT(*)")
        assert e.star and e.name == "COUNT"

    def test_count_distinct(self):
        e = parse_expression("count(DISTINCT n.a)")
        assert e.distinct

    def test_function_args(self):
        e = parse_expression("coalesce(a.x, b.y, 0)")
        assert len(e.args) == 3

    def test_boolean_literals(self):
        assert parse_expression("TRUE") == ast.Literal(True)
        assert parse_expression("FALSE") == ast.Literal(False)

    def test_string_concat(self):
        e = parse_expression("m.lastName + ', ' + m.firstName")
        assert e.op == "+"

    def test_list_literal(self):
        e = parse_expression("[1, 2, 3]")
        assert e == ast.ListLiteral(
            (ast.Literal(1), ast.Literal(2), ast.Literal(3))
        )

    def test_empty_list(self):
        assert parse_expression("[]") == ast.ListLiteral(())

    def test_case_when(self):
        e = parse_expression(
            "CASE WHEN size(n.employer) = 0 THEN 'none' ELSE n.employer END"
        )
        assert isinstance(e, ast.CaseExpr)
        assert len(e.whens) == 1 and e.default is not None

    def test_case_multiple_whens_no_else(self):
        e = parse_expression("CASE WHEN a THEN 1 WHEN b THEN 2 END")
        assert len(e.whens) == 2 and e.default is None

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_expression("CASE ELSE 1 END")

    def test_malformed_expression(self):
        with pytest.raises(ParseError):
            parse_expression("1 +")
