"""Unit tests for the hand-written lexer."""

import pytest

from repro.errors import LexerError
from repro.lang.lexer import tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def texts(text):
    return [t.text for t in tokenize(text)][:-1]


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert texts("construct MATCH Where") == ["CONSTRUCT", "MATCH", "WHERE"]

    def test_identifiers_are_case_sensitive(self):
        tokens = tokenize("social_Graph")
        assert tokens[0].kind == "IDENT" and tokens[0].text == "social_Graph"

    def test_keyword_prefix_identifier(self):
        # 'Matched' must not lex as MATCH + ed.
        tokens = tokenize("Matched")
        assert tokens[0].kind == "IDENT"

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "EOF"

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_comment_skipped(self):
        assert kinds("a # trailing comment\nb") == ["IDENT", "IDENT"]

    def test_is_keyword_helper(self):
        token = tokenize("MATCH")[0]
        assert token.is_keyword("MATCH") and not token.is_keyword("WHERE")


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.kind == "NUMBER" and token.value == 42

    def test_float(self):
        token = tokenize("0.95")[0]
        assert token.value == 0.95

    def test_scientific(self):
        token = tokenize("1e3")[0]
        assert token.value == 1000.0

    def test_negative_is_dash_then_number(self):
        assert kinds("-5") == ["DASH", "NUMBER"]

    def test_dot_not_swallowed(self):
        # n.k must lex as IDENT DOT IDENT, and 1..2 would be weird anyway
        assert kinds("n.employer") == ["IDENT", "DOT", "IDENT"]


class TestStrings:
    def test_single_quotes(self):
        assert tokenize("'Acme'")[0].value == "Acme"

    def test_double_quotes(self):
        assert tokenize('"Acme"')[0].value == "Acme"

    def test_doubled_quote_escape(self):
        assert tokenize("'O''Hara'")[0].value == "O'Hara"

    def test_backslash_escape(self):
        assert tokenize(r"'a\'b'")[0].value == "a'b"
        assert tokenize(r"'tab\there'")[0].value == "tab\there"

    def test_unterminated_raises(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_newline_in_string_raises(self):
        with pytest.raises(LexerError):
            tokenize("'a\nb'")

    def test_backtick_identifier(self):
        token = tokenize("`weird label`")[0]
        assert token.kind == "IDENT" and token.text == "weird label"

    def test_unterminated_backtick(self):
        with pytest.raises(LexerError):
            tokenize("`oops")


class TestPunctuation:
    def test_two_char_operators(self):
        assert kinds(":= <> != <= >=") == ["ASSIGN", "NEQ", "NEQ", "LE", "GE"]

    def test_edge_arrow_atoms(self):
        # Arrows are NOT fused; the parser reassembles them.
        assert kinds("-[") == ["DASH", "LBRACKET"]
        assert kinds("]->") == ["RBRACKET", "DASH", "GT"]
        assert kinds("<-[") == ["LT", "DASH", "LBRACKET"]
        assert kinds("-/") == ["DASH", "SLASH"]
        assert kinds("/->") == ["SLASH", "DASH", "GT"]

    def test_comparison_vs_arrow_ambiguity(self):
        # x < -1 must stay comparison + negation.
        assert kinds("x < -1") == ["IDENT", "LT", "DASH", "NUMBER"]

    def test_regex_tokens(self):
        assert kinds("<:knows*>") == ["LT", "COLON", "IDENT", "STAR", "GT"]
        assert kinds("~wKnows") == ["TILDE", "IDENT"]
        assert kinds("!Person") == ["BANG", "IDENT"]

    def test_at_and_braces(self):
        assert kinds("@p {k := 1}") == [
            "AT", "IDENT", "LBRACE", "IDENT", "ASSIGN", "NUMBER", "RBRACE",
        ]

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("$")


class TestRealQueries:
    def test_paper_query_lexes(self):
        text = "CONSTRUCT (n) MATCH (n:Person) ON social_graph WHERE n.employer = 'Acme'"
        token_kinds = kinds(text)
        assert token_kinds[0] == "KEYWORD"
        assert "STRING" in token_kinds

    def test_path_pattern_lexes(self):
        text = "-/3 SHORTEST p<:knows*> COST c/->"
        assert kinds(text) == [
            "DASH", "SLASH", "NUMBER", "KEYWORD", "IDENT", "LT", "COLON",
            "IDENT", "STAR", "GT", "KEYWORD", "IDENT", "SLASH", "DASH", "GT",
        ]
