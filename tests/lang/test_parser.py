"""Unit tests for the G-CORE parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.parser import parse_query, parse_statement


class TestBasicQueries:
    def test_minimal_construct_match(self):
        q = parse_query("CONSTRUCT (n) MATCH (n:Person)")
        assert isinstance(q.body, ast.BasicQuery)
        assert isinstance(q.body.head, ast.ConstructClause)
        node = q.body.match.block.patterns[0].chain.elements[0]
        assert node.var == "n" and node.labels == (("Person",),)

    def test_match_on_where(self):
        q = parse_query(
            "CONSTRUCT (n) MATCH (n) ON social_graph WHERE n.employer = 'Acme'"
        )
        location = q.body.match.block.patterns[0]
        assert location.on == "social_graph"
        where = q.body.match.block.where
        assert isinstance(where, ast.Binary) and where.op == "="

    def test_multiple_patterns_with_own_on(self):
        q = parse_query(
            "CONSTRUCT (c) MATCH (c:Company) ON g1, (n:Person) ON g2"
        )
        locations = q.body.match.block.patterns
        assert [l.on for l in locations] == ["g1", "g2"]

    def test_construct_without_match(self):
        q = parse_query("CONSTRUCT (n:Person {name := 'X'})")
        assert q.body.match is None

    def test_missing_construct_fails(self):
        with pytest.raises(ParseError):
            parse_query("MATCH (n)")

    def test_trailing_garbage_fails(self):
        with pytest.raises(ParseError):
            parse_query("CONSTRUCT (n) MATCH (n) xyz 123 (")


class TestEdgePatterns:
    def chain(self, text):
        return parse_query(f"CONSTRUCT (x) MATCH {text}").body.match.block.patterns[0].chain

    def test_outgoing(self):
        chain = self.chain("(a)-[e:knows]->(b)")
        edge = chain.elements[1]
        assert edge.var == "e" and edge.direction == ast.OUT
        assert edge.labels == (("knows",),)

    def test_incoming(self):
        chain = self.chain("(a)<-[:worksAt]-(b)")
        edge = chain.elements[1]
        assert edge.direction == ast.IN and edge.var is None

    def test_undirected(self):
        chain = self.chain("(a)-[:reply_of]-(b)")
        assert chain.elements[1].direction == ast.UNDIRECTED

    def test_bare_arrows(self):
        assert self.chain("(a)->(b)").elements[1].direction == ast.OUT
        assert self.chain("(a)<-(b)").elements[1].direction == ast.IN
        assert self.chain("(a)-(b)").elements[1].direction == ast.UNDIRECTED

    def test_long_chain(self):
        chain = self.chain("(a)-[:x]->(b)<-[:y]-(c)-[:z]->(d)")
        assert len(chain.elements) == 7
        assert [e.direction for e in chain.connectors()] == [
            ast.OUT, ast.IN, ast.OUT,
        ]

    def test_label_disjunction(self):
        chain = self.chain("(m:Post|Comment)")
        assert chain.elements[0].labels == (("Post", "Comment"),)

    def test_label_conjunction(self):
        chain = self.chain("(m:Person:Manager)")
        assert chain.elements[0].labels == (("Person",), ("Manager",))

    def test_property_bind_and_test(self):
        chain = self.chain("(n:Person {employer=e, name='Ann'})")
        node = chain.elements[0]
        assert node.prop_binds == (("employer", "e"),)
        assert node.prop_tests == (("name", ast.Literal("Ann")),)


class TestPathPatterns:
    def connector(self, text):
        q = parse_query(f"CONSTRUCT (a) MATCH {text}")
        return q.body.match.block.patterns[0].chain.elements[1]

    def test_default_shortest(self):
        p = self.connector("(a)-/p<:knows*>/->(b)")
        assert p.mode == "shortest" and p.count == 1 and p.var == "p"
        assert isinstance(p.regex, ast.RStar)

    def test_k_shortest_with_cost(self):
        p = self.connector("(a)-/3 SHORTEST p<:knows*> COST c/->(b)")
        assert p.count == 3 and p.cost_var == "c"

    def test_all_paths(self):
        p = self.connector("(a)-/ALL p<:knows*>/->(b)")
        assert p.mode == "all"

    def test_reachability(self):
        p = self.connector("(a)-/<:knows*>/->(b)")
        assert p.mode == "reach" and p.var is None

    def test_stored_path_match(self):
        p = self.connector("(a)-/@p:toWagner/->(b)")
        assert p.stored and p.labels == (("toWagner",),)

    def test_view_reference(self):
        p = self.connector("(a)-/p<~wKnows*>/->(b)")
        star = p.regex
        assert isinstance(star, ast.RStar)
        assert star.item == ast.RView("wKnows")

    def test_incoming_path(self):
        p = self.connector("(a)<-/p<:knows*>/-(b)")
        assert p.direction == ast.IN

    def test_regex_alternation_concat(self):
        p = self.connector("(a)-/<(:knows|:likes) :worksAt>/->(b)")
        concat = p.regex
        assert isinstance(concat, ast.RConcat)
        assert isinstance(concat.items[0], ast.RAlt)

    def test_regex_inverse_and_wildcards(self):
        p = self.connector("(a)-/<:knows^ _ !Person>/->(b)")
        items = p.regex.items
        assert items[0] == ast.RLabel("knows", inverse=True)
        assert items[1] == ast.RAnyEdge()
        assert items[2] == ast.RNodeTest("Person")

    def test_regex_plus_and_opt(self):
        p = self.connector("(a)-/<:knows+ :likes?>/->(b)")
        items = p.regex.items
        assert isinstance(items[0], ast.RPlus)
        assert isinstance(items[1], ast.ROpt)


class TestConstructClause:
    def test_graph_name_shorthand(self):
        q = parse_query("CONSTRUCT social_graph, (n) MATCH (n)")
        items = q.body.head.items
        assert items[0] == ast.GraphRefItem("social_graph")
        assert isinstance(items[1], ast.PatternItem)

    def test_group_clause(self):
        q = parse_query(
            "CONSTRUCT (x GROUP e :Company {name:=e})<-[y:worksAt]-(n) MATCH (n)"
        )
        node = q.body.head.items[0].chain.elements[0]
        assert node.group == (ast.Var("e"),)
        assert node.assignments == (("name", ast.Var("e")),)

    def test_group_property_expression(self):
        q = parse_query("CONSTRUCT (x GROUP o.custName :C) MATCH (o)")
        node = q.body.head.items[0].chain.elements[0]
        assert node.group == (ast.Prop(ast.Var("o"), "custName"),)

    def test_copy_node_and_edge(self):
        q = parse_query("CONSTRUCT (=n)-[=y]->(m) MATCH (n)-[y]->(m)")
        item = q.body.head.items[0]
        assert item.chain.elements[0].copy_of == "n"
        assert item.chain.elements[1].copy_of == "y"

    def test_when_clause(self):
        q = parse_query("CONSTRUCT (n)-[e:f {s:=COUNT(*)}]->(m) WHEN e.s > 0 MATCH (n), (m)")
        item = q.body.head.items[0]
        assert isinstance(item.when, ast.Binary)

    def test_set_and_remove(self):
        q = parse_query(
            "CONSTRUCT (n) SET n.k := 1 SET n:Extra REMOVE n.old REMOVE n:Gone MATCH (n)"
        )
        item = q.body.head.items[0]
        assert len(item.sets) == 2 and len(item.removes) == 2
        assert item.sets[0].key == "k"
        assert item.sets[1].label == "Extra"
        assert item.removes[0].key == "old"
        assert item.removes[1].label == "Gone"

    def test_stored_path_construct(self):
        q = parse_query(
            "CONSTRUCT (n)-/@p:localPeople{distance:=c}/->(m) MATCH (n)-/p<:k*> COST c/->(m)"
        )
        connector = q.body.head.items[0].chain.elements[1]
        assert connector.stored and connector.labels == (("localPeople",),)
        assert connector.assignments[0][0] == "distance"


class TestSetOpsAndHeads:
    def test_union_with_graph_name(self):
        q = parse_query("CONSTRUCT (n) MATCH (n) UNION social_graph")
        assert isinstance(q.body, ast.SetOpQuery)
        assert q.body.op == "union"
        assert q.body.right == ast.GraphRefQuery("social_graph")

    def test_chained_set_ops_left_assoc(self):
        q = parse_query("g1 UNION g2 MINUS g3")
        assert q.body.op == "minus"
        assert q.body.left.op == "union"

    def test_intersect(self):
        q = parse_query("g1 INTERSECT g2")
        assert q.body.op == "intersect"

    def test_parenthesized_operand(self):
        q = parse_query("g1 MINUS (g2 UNION g3)")
        assert q.body.op == "minus"
        assert q.body.right.op == "union"

    def test_path_clause(self):
        q = parse_query(
            "PATH wKnows = (x)-[e:knows]->(y) WHERE NOT 'Acme' IN y.employer "
            "COST 1 / (1 + e.nr_messages) CONSTRUCT (n) MATCH (n)"
        )
        head = q.heads[0]
        assert isinstance(head, ast.PathClause)
        assert head.name == "wKnows"
        assert head.where is not None and head.cost is not None

    def test_path_clause_cost_before_where(self):
        q = parse_query(
            "PATH p = (x)-[:k]->(y) COST 2 WHERE x.a = 1 CONSTRUCT (n) MATCH (n)"
        )
        head = q.heads[0]
        assert head.cost == ast.Literal(2)

    def test_non_linear_path_clause(self):
        q = parse_query(
            "PATH p = (a)-[:k]->(b), (b)-[:l]->(c) CONSTRUCT (n) MATCH (n)"
        )
        assert len(q.heads[0].chains) == 2

    def test_local_graph_clause(self):
        q = parse_query(
            "GRAPH tmp AS (CONSTRUCT (n) MATCH (n)) CONSTRUCT (m) MATCH (m) ON tmp"
        )
        assert isinstance(q.heads[0], ast.GraphClause)

    def test_graph_view_statement(self):
        statement = parse_statement(
            "GRAPH VIEW v1 AS (CONSTRUCT (n) MATCH (n))"
        )
        assert isinstance(statement, ast.GraphViewStmt)
        assert statement.name == "v1"


class TestOptionalAndExists:
    def test_optional_blocks(self):
        q = parse_query(
            "CONSTRUCT (n) MATCH (n:Person) "
            "OPTIONAL (n)-[:worksAt]->(c) OPTIONAL (n)-[:livesIn]->(a)"
        )
        assert len(q.body.match.optionals) == 2

    def test_optional_with_where(self):
        q = parse_query(
            "CONSTRUCT (n) MATCH (n) OPTIONAL (n)-[c1]->(m) WHERE (c1:has_creator)"
        )
        optional = q.body.match.optionals[0]
        assert optional.where is not None

    def test_explicit_exists(self):
        q = parse_query(
            "CONSTRUCT (n) MATCH (n) WHERE EXISTS (CONSTRUCT () MATCH (n)-[:a]->(m))"
        )
        assert isinstance(q.body.match.block.where, ast.ExistsQuery)

    def test_implicit_pattern_predicate(self):
        q = parse_query(
            "CONSTRUCT (n) MATCH (n), (m) WHERE (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)"
        )
        assert isinstance(q.body.match.block.where, ast.ExistsPattern)

    def test_label_test_in_where(self):
        q = parse_query("CONSTRUCT (n) MATCH (n) WHERE (n:Person)")
        assert q.body.match.block.where == ast.LabelTest("n", ("Person",))

    def test_parenthesized_var_in_where(self):
        q = parse_query("CONSTRUCT (n) MATCH (n) WHERE (n) = 3")
        assert q.body.match.block.where == ast.Binary("=", ast.Var("n"), ast.Literal(3))


class TestSelectAndTabular:
    def test_select_with_alias(self):
        q = parse_query("SELECT n.a AS x, n.b MATCH (n)")
        select = q.body.head
        assert isinstance(select, ast.SelectClause)
        assert select.items[0].alias == "x"
        assert select.items[1].alias is None

    def test_select_distinct_order_limit(self):
        q = parse_query(
            "SELECT DISTINCT n.a MATCH (n) ORDER BY n.a DESC, n.b LIMIT 5 OFFSET 2"
        )
        select = q.body.head
        assert select.distinct
        assert select.order_by[0][1] is False  # DESC
        assert select.order_by[1][1] is True
        assert select.limit == 5 and select.offset == 2

    def test_select_group_by(self):
        q = parse_query("SELECT n.city, COUNT(*) AS c MATCH (n) GROUP BY n.city")
        assert q.body.head.group_by == (ast.Prop(ast.Var("n"), "city"),)

    def test_construct_from_table(self):
        q = parse_query("CONSTRUCT (c GROUP custName :C {n:=custName}) FROM orders")
        assert q.body.from_table == "orders"

    def test_select_from_table(self):
        q = parse_query("SELECT custName FROM orders")
        assert q.body.from_table == "orders"
