"""Property: incremental view refresh == from-scratch recompute, exactly.

Random delta sequences over generated graphs, applied through
``engine.apply_update``, with ``refresh_view`` interleaved at random
points. After every refresh the maintained materialization must be
graph-equal — nodes, edges, paths, labels and properties — to evaluating
the view body from scratch over the current base graph (a fresh engine,
so no state can leak). View bodies cover the maintenance strategy
matrix: plain MATCH and label-filtered MATCH (incremental), WHERE with
value joins (incremental with row gain/loss), OPTIONAL and GROUP BY
aggregates (full-recompute fallback) — the strategies must be
indistinguishable from the outside.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import GCoreEngine, GraphBuilder, GraphDelta
from repro.eval.maintenance import analyze_view

NODE_IDS = [f"p{i}" for i in range(7)]

VIEW_BODIES = {
    "plain": "CONSTRUCT (a)-[e]->(b) MATCH (a)-[e:knows]->(b)",
    "labeled": "CONSTRUCT (a) MATCH (a:Person)",
    "where": (
        "CONSTRUCT (a)-[e]->(b) MATCH (a)-[e:knows]->(b) "
        "WHERE a.score = b.score"
    ),
    "optional": (
        "CONSTRUCT (a)-[f]->(c) MATCH (a:Person) OPTIONAL (a)-[f:likes]->(c)"
    ),
    "group_by": (
        "CONSTRUCT (a)-[e]->(b) SET e.cnt := COUNT(*) "
        "MATCH (a)-[e:knows]->(b)"
    ),
}

EXPECTED_STRATEGY = {
    "plain": "incremental",
    "labeled": "incremental",
    "where": "incremental",
    "optional": "full",
    "group_by": "full",
}


@st.composite
def base_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=len(NODE_IDS)))
    builder = GraphBuilder(name="base")
    for node in NODE_IDS[:n]:
        labels = ["Person"] if draw(st.booleans()) else ["Tag"]
        properties = {}
        if draw(st.booleans()):
            properties["score"] = draw(st.integers(min_value=0, max_value=2))
        builder.add_node(node, labels=labels, properties=properties)
    edge_count = draw(st.integers(min_value=0, max_value=2 * n))
    for index in range(edge_count):
        src = NODE_IDS[draw(st.integers(0, n - 1))]
        dst = NODE_IDS[draw(st.integers(0, n - 1))]
        label = draw(st.sampled_from(["knows", "likes"]))
        builder.add_edge(src, dst, edge_id=f"e{index}", labels=[label])
    return builder.build()


def random_delta(draw, graph, counter):
    """A small structurally-valid delta against *graph*."""
    nodes = sorted(graph.nodes, key=str)
    edges = sorted(graph.edges, key=str)
    choices = ["add_node", "add_node_edge"]
    if nodes:
        choices += ["remove_node", "set_score", "drop_score", "flip_label"]
    if edges:
        choices += ["remove_edge", "relabel_edge"]
    kind = draw(st.sampled_from(choices))
    delta = GraphDelta()
    if kind == "add_node":
        labels = ["Person"] if draw(st.booleans()) else ["Tag"]
        delta.add_node(f"q{counter}", labels=labels,
                       properties={"score": draw(st.integers(0, 2))})
    elif kind == "add_node_edge":
        delta.add_node(f"q{counter}", labels=["Person"])
        if nodes:
            other = draw(st.sampled_from(nodes))
            label = draw(st.sampled_from(["knows", "likes"]))
            if draw(st.booleans()):
                delta.add_edge(f"k{counter}", f"q{counter}", other,
                               labels=[label])
            else:
                delta.add_edge(f"k{counter}", other, f"q{counter}",
                               labels=[label])
    elif kind == "remove_node":
        delta.remove_node(draw(st.sampled_from(nodes)))
    elif kind == "remove_edge":
        delta.remove_edge(draw(st.sampled_from(edges)))
    elif kind == "set_score":
        delta.set_property(draw(st.sampled_from(nodes)), "score",
                           draw(st.integers(0, 2)))
    elif kind == "drop_score":
        delta.remove_property(draw(st.sampled_from(nodes)), "score")
    elif kind == "flip_label":
        node = draw(st.sampled_from(nodes))
        if "Person" in graph.labels(node):
            delta.remove_label(node, "Person")
        else:
            delta.add_label(node, "Person")
    elif kind == "relabel_edge":
        edge = draw(st.sampled_from(edges))
        if "knows" in graph.labels(edge):
            delta.remove_label(edge, "knows")
            delta.add_label(edge, "likes")
        else:
            delta.add_label(edge, "knows")
    return delta


def recompute_oracle(engine, body):
    """The view body evaluated from scratch on a fresh engine."""
    fresh = GCoreEngine()
    fresh.register_graph("base", engine.graph("base"), default=True)
    return fresh.run(body)


def assert_graph_equal(got, expected, context):
    assert got.nodes == expected.nodes, context
    assert dict(got.rho) == dict(expected.rho), context
    assert dict(got.delta) == dict(expected.delta), context
    assert got.label_map() == expected.label_map(), context
    assert got.property_map() == expected.property_map(), context
    assert got == expected, context


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    graph=base_graphs(),
    view_kind=st.sampled_from(sorted(VIEW_BODIES)),
    steps=st.integers(min_value=1, max_value=5),
    data=st.data(),
)
def test_incremental_refresh_equals_recompute(graph, view_kind, steps, data):
    body = VIEW_BODIES[view_kind]
    engine = GCoreEngine()
    engine.register_graph("base", graph, default=True)
    engine.run(f"GRAPH VIEW v AS ({body})")

    plan = analyze_view(engine.catalog.view_query("v"), engine.catalog)
    assert plan.strategy == EXPECTED_STRATEGY[view_kind]

    for step in range(steps):
        delta = random_delta(data.draw, engine.graph("base"), step)
        engine.apply_update("base", delta)
        if data.draw(st.booleans(), label="refresh now"):
            got = engine.refresh_view("v")
            assert_graph_equal(
                got, recompute_oracle(engine, body),
                f"{view_kind} step {step}",
            )
    got = engine.refresh_view("v")
    assert_graph_equal(
        got, recompute_oracle(engine, body), f"{view_kind} final"
    )
    # and the registered materialization is what refresh returned
    assert engine.graph("v") == got


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=base_graphs(), steps=st.integers(1, 4), data=st.data())
def test_statistics_counts_stay_exact_under_deltas(graph, steps, data):
    """Incrementally adjusted statistics == full rebuild, for the exact
    fields (totals and per-label counts) the contract promises."""
    from repro.model.statistics import GraphStatistics

    engine = GCoreEngine()
    engine.register_graph("base", graph, default=True)
    engine.graph("base").statistics()  # force the cache so deltas adjust it
    for step in range(steps):
        delta = random_delta(data.draw, engine.graph("base"), step)
        engine.apply_update("base", delta)
    adjusted = engine.graph("base").statistics()
    rebuilt = GraphStatistics(engine.graph("base"))
    assert adjusted.node_count == rebuilt.node_count
    assert adjusted.edge_count == rebuilt.edge_count
    assert adjusted.path_count == rebuilt.path_count
    assert adjusted.node_label_counts == rebuilt.node_label_counts
    assert adjusted.edge_label_counts == rebuilt.edge_label_counts
    assert adjusted.path_label_counts == rebuilt.path_label_counts
