"""Property-based CSV round-trip tests."""

import io

from hypothesis import given, settings, strategies as st

from repro.model.builder import GraphBuilder
from repro.model.io_csv import (
    dump_graph_csv,
    dump_table_csv,
    format_cell,
    load_graph_csv,
    load_table_csv,
    parse_cell,
)
from repro.table import Table

# Scalars that survive CSV type inference unambiguously: integers,
# booleans, and strings that don't look like numbers/bools/dates/empties
# and don't contain the multi-value separator or CSV-hostile characters.
safe_strings = st.text(
    alphabet="abcdefgXYZ_ ", min_size=1, max_size=8
).filter(lambda s: s.strip() == s and s.lower() not in ("true", "false"))
safe_scalars = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.booleans(),
    safe_strings,
)


@given(safe_scalars)
def test_cell_round_trip(value):
    assert parse_cell(format_cell(value)) == value


@given(st.frozensets(safe_scalars, min_size=2, max_size=4))
@settings(max_examples=100)
def test_multivalue_cell_round_trip(values):
    assert parse_cell(format_cell(values)) == values


@st.composite
def csv_graphs(draw):
    builder = GraphBuilder()
    node_count = draw(st.integers(1, 5))
    names = [f"n{i}" for i in range(node_count)]
    for name in names:
        labels = draw(st.sets(st.sampled_from(["A", "B"]), max_size=2))
        props = {}
        if draw(st.booleans()):
            props["k"] = draw(safe_scalars)
        builder.add_node(name, labels=labels, properties=props)
    for index in range(draw(st.integers(0, 5))):
        builder.add_edge(
            draw(st.sampled_from(names)),
            draw(st.sampled_from(names)),
            edge_id=f"e{index}",
            labels=draw(st.sets(st.sampled_from(["x", "y"]), max_size=1)),
        )
    return builder.build()


@given(csv_graphs())
@settings(max_examples=100)
def test_graph_csv_round_trip(graph):
    nodes_out, edges_out = io.StringIO(), io.StringIO()
    dump_graph_csv(graph, nodes_out, edges_out)
    nodes_out.seek(0)
    edges_out.seek(0)
    assert load_graph_csv(nodes_out, edges_out) == graph


@given(
    st.lists(
        st.tuples(safe_scalars, safe_scalars), min_size=0, max_size=6
    )
)
@settings(max_examples=100)
def test_table_csv_round_trip(rows):
    table = Table(("colA", "colB"), rows)
    out = io.StringIO()
    dump_table_csv(table, out)
    out.seek(0)
    restored = load_table_csv(out)
    if rows:
        assert restored == table
    else:
        assert len(restored) == 0
