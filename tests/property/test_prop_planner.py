"""Property tests for the cost-based planner.

Pattern semantics is a join: the atom evaluation order can never change
the binding table, only its cost. For random small graphs and random
chains we check that all three planner modes — cost-based (statistics),
heuristic (constant weights) and naive (syntax order) — agree, and that
planning is a permutation (every atom scheduled exactly once).
"""

from hypothesis import given, settings, strategies as st

from repro.catalog import Catalog
from repro.eval.context import EvalContext
from repro.eval.match import _AnonNamer, decompose_chain, evaluate_block
from repro.eval.planner import order_atoms, plan_atoms
from repro.lang import ast
from repro.model.builder import GraphBuilder

NODES = ["a", "b", "c", "d", "e"]
LABELS = ["X", "Y", "Z"]
EDGE_LABELS = ["k", "l"]
PROPS = {"p": ["1", "2"], "q": ["1"]}


@st.composite
def graphs(draw):
    builder = GraphBuilder()
    for node in NODES:
        props = {}
        for key, values in PROPS.items():
            if draw(st.booleans()):
                props[key] = draw(st.sampled_from(values))
        builder.add_node(
            node,
            labels=draw(st.sets(st.sampled_from(LABELS))),
            properties=props,
        )
    for index in range(draw(st.integers(0, 8))):
        builder.add_edge(
            draw(st.sampled_from(NODES)),
            draw(st.sampled_from(NODES)),
            edge_id=f"e{index}",
            labels=[draw(st.sampled_from(EDGE_LABELS))],
        )
    return builder.build()


@st.composite
def chains(draw):
    """Random chains of 1-4 node patterns joined by labeled edges."""
    length = draw(st.integers(0, 3))
    node_vars = ["n0", "n1", "n2", "n3"][: length + 1]
    elements = []
    for index, var in enumerate(node_vars):
        labels = ()
        if draw(st.booleans()):
            labels = ((draw(st.sampled_from(LABELS)),),)
        prop_tests = ()
        if draw(st.booleans()):
            key = draw(st.sampled_from(sorted(PROPS)))
            prop_tests = ((key, ast.Literal(draw(st.sampled_from(PROPS[key])))),)
        elements.append(
            ast.NodePattern(var=var, labels=labels, prop_tests=prop_tests)
        )
        if index < length:
            edge_labels = ()
            if draw(st.booleans()):
                edge_labels = ((draw(st.sampled_from(EDGE_LABELS)),),)
            elements.append(
                ast.EdgePattern(
                    var=f"e{index}",
                    direction=draw(
                        st.sampled_from([ast.OUT, ast.IN, ast.UNDIRECTED])
                    ),
                    labels=edge_labels,
                )
            )
    return ast.Chain(tuple(elements))


def _evaluate(graph, chain, naive, cost, columnar=None):
    catalog = Catalog()
    catalog.register_graph("g", graph, default=True)
    ctx = EvalContext(catalog)
    ctx.naive_planner = naive
    ctx.use_cost_planner = cost
    ctx.columnar_executor = columnar
    block = ast.MatchBlock((ast.PatternLocation(chain, "g"),), None)
    return set(evaluate_block(block, ctx))


@given(graphs(), chains())
@settings(max_examples=80, deadline=None)
def test_all_planner_modes_agree(graph, chain):
    """Every planner mode *and* both executors produce the same table.

    This is the oracle of the columnar rewrite: the three planner modes
    run the columnar pipeline (naive derives the reference executor, so
    it is forced columnar here), and the cost-based order additionally
    re-runs on the row-at-a-time reference executor.
    """
    cost_based = _evaluate(graph, chain, naive=False, cost=True)
    heuristic = _evaluate(graph, chain, naive=False, cost=False)
    naive = _evaluate(graph, chain, naive=True, cost=False, columnar=True)
    reference = _evaluate(graph, chain, naive=False, cost=True, columnar=False)
    assert cost_based == heuristic == naive == reference


@given(graphs(), chains(), st.sets(st.sampled_from(["n0", "n1", "n2"])))
@settings(max_examples=80, deadline=None)
def test_ordering_is_a_permutation(graph, chain, bound):
    atoms = decompose_chain(chain, _AnonNamer())
    ordered = order_atoms(atoms, bound, stats=graph.statistics())
    assert sorted(map(id, ordered)) == sorted(map(id, atoms))
    steps = plan_atoms(atoms, bound, stats=graph.statistics())
    assert [id(s.atom) for s in steps] == [id(a) for a in ordered]
    assert all(s.estimate is not None and s.estimate >= 0.0 for s in steps)
