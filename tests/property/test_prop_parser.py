"""Property-based round-trip tests: parse(pretty(ast)) == ast."""

from hypothesis import given, settings, strategies as st

from repro.lang import ast
from repro.lang.parser import parse_expression, parse_statement
from repro.lang.pretty import pretty_expr, pretty_statement

names = st.sampled_from(["a", "b", "n", "m", "x9"])
keys = st.sampled_from(["k", "name", "w"])
labels = st.sampled_from(["Person", "Tag", "K1"])


@st.composite
def expressions(draw, depth=3):
    if depth == 0:
        return draw(
            st.one_of(
                st.integers(0, 99).map(ast.Literal),
                st.text(
                    alphabet="abcXYZ 09", max_size=6
                ).map(ast.Literal),
                st.booleans().map(ast.Literal),
                names.map(ast.Var),
                st.tuples(names, keys).map(
                    lambda nk: ast.Prop(ast.Var(nk[0]), nk[1])
                ),
            )
        )
    kind = draw(st.integers(0, 6))
    if kind == 0:
        return draw(expressions(depth=0))
    if kind == 1:
        op = draw(st.sampled_from(["+", "-", "*", "/"]))
        return ast.Binary(
            op,
            draw(expressions(depth=depth - 1)),
            draw(expressions(depth=depth - 1)),
        )
    if kind == 2:
        op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">=", "in",
                                   "subset"]))
        return ast.Binary(
            op,
            draw(expressions(depth=depth - 1)),
            draw(expressions(depth=depth - 1)),
        )
    if kind == 3:
        op = draw(st.sampled_from(["and", "or"]))
        return ast.Binary(
            op,
            draw(expressions(depth=depth - 1)),
            draw(expressions(depth=depth - 1)),
        )
    if kind == 4:
        return ast.Unary("not", draw(expressions(depth=depth - 1)))
    if kind == 5:
        args = draw(st.lists(expressions(depth=depth - 1), max_size=2))
        return ast.FuncCall("size", tuple(args))
    whens = draw(
        st.lists(
            st.tuples(expressions(depth=depth - 1),
                      expressions(depth=depth - 1)),
            min_size=1, max_size=2,
        )
    )
    default = draw(st.none() | expressions(depth=depth - 1))
    return ast.CaseExpr(tuple(whens), default)


@given(expressions())
@settings(max_examples=300)
def test_expression_round_trip(expr):
    rendered = pretty_expr(expr)
    assert parse_expression(rendered) == expr


@st.composite
def node_patterns(draw):
    var = draw(st.none() | names)
    label_groups = draw(
        st.lists(
            st.lists(labels, min_size=1, max_size=2, unique=True).map(tuple),
            max_size=2,
        ).map(tuple)
    )
    tests = draw(
        st.lists(
            st.tuples(keys, st.integers(0, 9).map(ast.Literal)), max_size=1
        ).map(tuple)
    )
    return ast.NodePattern(var=var, labels=label_groups, prop_tests=tests)


@st.composite
def chains(draw):
    length = draw(st.integers(0, 2))
    elements = [draw(node_patterns())]
    for _ in range(length):
        direction = draw(st.sampled_from([ast.OUT, ast.IN, ast.UNDIRECTED]))
        edge_labels = draw(
            st.lists(
                st.lists(labels, min_size=1, max_size=2, unique=True).map(tuple),
                max_size=1,
            ).map(tuple)
        )
        elements.append(
            ast.EdgePattern(
                var=draw(st.none() | names),
                direction=direction,
                labels=edge_labels,
            )
        )
        elements.append(draw(node_patterns()))
    return ast.Chain(tuple(elements))


@st.composite
def statements(draw):
    chain = draw(chains())
    match_chain = draw(chains())
    where = draw(st.none() | expressions(depth=1))
    construct = ast.ConstructClause(
        (ast.PatternItem(chain),)
    )
    match = ast.MatchClause(
        ast.MatchBlock((ast.PatternLocation(match_chain, None),), where)
    )
    return ast.Query((), ast.BasicQuery(construct, match))


@given(statements())
@settings(max_examples=200)
def test_statement_round_trip(statement):
    rendered = pretty_statement(statement)
    assert parse_statement(rendered) == statement
