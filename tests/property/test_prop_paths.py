"""Property-based tests of the path engine against a networkx oracle.

networkx provides an independent shortest-path implementation; we build
the product graph (data graph x NFA) explicitly as an nx.DiGraph and
compare reachability and shortest distances with PathFinder's results on
randomly generated graphs and regexes.
"""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.lang import ast
from repro.model.builder import GraphBuilder
from repro.paths.automaton import compile_regex
from repro.paths.product import PathFinder

NODES = ["a", "b", "c", "d", "e"]
LABELS = ["k", "l"]


@st.composite
def graphs(draw):
    builder = GraphBuilder()
    for node in NODES:
        builder.add_node(node, labels=["N"])
    count = draw(st.integers(0, 8))
    for index in range(count):
        src = draw(st.sampled_from(NODES))
        dst = draw(st.sampled_from(NODES))
        label = draw(st.sampled_from(LABELS))
        builder.add_edge(src, dst, edge_id=f"edge{index}", labels=[label])
    return builder.build()


@st.composite
def regexes(draw, depth=2):
    if depth == 0:
        return draw(
            st.one_of(
                st.sampled_from(LABELS).map(ast.RLabel),
                st.sampled_from(LABELS).map(
                    lambda l: ast.RLabel(l, inverse=True)
                ),
                st.just(ast.RAnyEdge()),
            )
        )
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return draw(regexes(depth=0))
    if kind == 1:
        return ast.RStar(draw(regexes(depth=depth - 1)))
    if kind == 2:
        return ast.ROpt(draw(regexes(depth=depth - 1)))
    if kind == 3:
        items = draw(st.lists(regexes(depth=depth - 1), min_size=2, max_size=2))
        return ast.RConcat(tuple(items))
    items = draw(st.lists(regexes(depth=depth - 1), min_size=2, max_size=2))
    return ast.RAlt(tuple(items))


def product_digraph(graph, nfa):
    """The product graph as an nx.DiGraph with hop-count weights."""
    product = nx.DiGraph()
    for node in graph.nodes:
        for state in range(nfa.state_count):
            product.add_node((node, state))
    finder = PathFinder(graph, nfa)
    for node in graph.nodes:
        for state in range(nfa.state_count):
            for delta, _, nxt_node, nxt_state in finder._expand(node, state):
                current = product.get_edge_data(
                    (node, state), (nxt_node, nxt_state)
                )
                if current is None or current["weight"] > delta:
                    product.add_edge(
                        (node, state), (nxt_node, nxt_state), weight=delta
                    )
    return product


@given(graphs(), regexes())
@settings(max_examples=60, deadline=None)
def test_reachability_matches_networkx(graph, regex):
    nfa = compile_regex(regex)
    finder = PathFinder(graph, nfa)
    product = product_digraph(graph, nfa)
    for source in sorted(graph.nodes, key=str):
        expected = set()
        lengths = nx.single_source_dijkstra_path_length(
            product, (source, nfa.start)
        )
        for (node, state), _ in lengths.items():
            if nfa.is_accepting(state):
                expected.add(node)
        assert finder.reachable_from(source) == expected


@given(graphs(), regexes())
@settings(max_examples=60, deadline=None)
def test_shortest_costs_match_networkx(graph, regex):
    nfa = compile_regex(regex)
    finder = PathFinder(graph, nfa)
    product = product_digraph(graph, nfa)
    for source in sorted(graph.nodes, key=str):
        walks = finder.shortest_from(source)
        lengths = nx.single_source_dijkstra_path_length(
            product, (source, nfa.start)
        )
        best = {}
        for (node, state), distance in lengths.items():
            if nfa.is_accepting(state):
                if node not in best or distance < best[node]:
                    best[node] = distance
        assert {n: w.cost for n, w in walks.items()} == best


@given(graphs(), regexes())
@settings(max_examples=60, deadline=None)
def test_walks_are_wellformed_and_conforming(graph, regex):
    nfa = compile_regex(regex)
    finder = PathFinder(graph, nfa)
    for source in sorted(graph.nodes, key=str):
        for target, walk in finder.shortest_from(source).items():
            sequence = walk.sequence
            assert sequence[0] == source and sequence[-1] == target
            assert len(sequence) % 2 == 1
            # verify graph-level adjacency of the walk
            for i in range(1, len(sequence), 2):
                edge = sequence[i]
                src, dst = graph.endpoints(edge)
                assert {src, dst} >= {sequence[i - 1], sequence[i + 1]} or (
                    src == sequence[i - 1] and dst == sequence[i + 1]
                ) or (src == sequence[i + 1] and dst == sequence[i - 1])
            # verify NFA acceptance by simulating the walk
            states = {nfa.start}
            position = 0
            # breadth simulation over (index into walk, state)
            frontier = {(0, nfa.start)}
            seen = set(frontier)
            accepted = False
            while frontier:
                new_frontier = set()
                for index, state in frontier:
                    node = sequence[2 * index]
                    if 2 * index == len(sequence) - 1 and nfa.is_accepting(state):
                        accepted = True
                    for delta, ext, nxt_node, nxt_state in finder._expand(
                        node, state
                    ):
                        if ext:
                            if (
                                2 * index + 2 < len(sequence) + 1
                                and 2 * index + 1 < len(sequence)
                                and sequence[2 * index + 1] == ext[0]
                                and sequence[2 * index + 2] == ext[1]
                            ):
                                item = (index + 1, nxt_state)
                                if item not in seen:
                                    seen.add(item)
                                    new_frontier.add(item)
                        else:
                            item = (index, nxt_state)
                            if item not in seen:
                                seen.add(item)
                                new_frontier.add(item)
                frontier = new_frontier
            # re-check acceptance including final-state node arcs
            assert accepted or any(
                2 * i == len(sequence) - 1 and nfa.is_accepting(s)
                for i, s in seen
            )


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_k_shortest_is_sorted_and_distinct(graph):
    nfa = compile_regex(ast.RStar(ast.RAnyEdge()))
    finder = PathFinder(graph, nfa)
    for source in sorted(graph.nodes, key=str):
        for target in sorted(graph.nodes, key=str):
            walks = finder.k_shortest(source, target, 4)
            costs = [w.cost for w in walks]
            assert costs == sorted(costs)
            assert len({w.sequence for w in walks}) == len(walks)
            if walks:
                best = finder.shortest(source, target)
                assert best is not None and best.cost == costs[0]
