"""Property tests: batched path execution vs. the row-at-a-time oracle.

PR 2 established the pattern for node/edge atoms
(``test_prop_match_oracle.py``); this file extends it to path atoms. The
batched engine (parent-pointer frontier, BFS fast path, columnar
``PathAtom`` expansion) must produce the *identical* binding table — same
rows, same order, same columns, same walk sequences, same costs — as the
row-at-a-time reference executor across ``SHORTEST``, ``k SHORTEST``,
``ALL`` and reachability modes. A second group locks in the
deterministic lexicographic tie-break across the three search
implementations (naive Dijkstra, parent-pointer Dijkstra, level-ranked
BFS).
"""

from hypothesis import given, settings, strategies as st

from repro.catalog import Catalog
from repro.eval.context import EvalContext
from repro.eval.match import evaluate_block
from repro.lang import ast
from repro.model.builder import GraphBuilder
from repro.paths.automaton import compile_regex
from repro.paths.product import PathFinder

NODES = ["a", "b", "c", "d", "e"]
NODE_LABELS = ["X", "Y"]
EDGE_LABELS = ["k", "l"]


@st.composite
def graphs(draw):
    builder = GraphBuilder()
    for node in NODES:
        builder.add_node(
            node, labels=draw(st.sets(st.sampled_from(NODE_LABELS)))
        )
    count = draw(st.integers(0, 8))
    for index in range(count):
        builder.add_edge(
            draw(st.sampled_from(NODES)),
            draw(st.sampled_from(NODES)),
            edge_id=f"e{index}",
            labels=[draw(st.sampled_from(EDGE_LABELS))],
        )
    return builder.build()


@st.composite
def regexes(draw, depth=2):
    if depth == 0:
        return draw(
            st.one_of(
                st.sampled_from(EDGE_LABELS).map(ast.RLabel),
                st.sampled_from(EDGE_LABELS).map(
                    lambda l: ast.RLabel(l, inverse=True)
                ),
                st.just(ast.RAnyEdge()),
                st.sampled_from(NODE_LABELS).map(ast.RNodeTest),
            )
        )
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return draw(regexes(depth=0))
    if kind == 1:
        return ast.RStar(draw(regexes(depth=depth - 1)))
    if kind == 2:
        return ast.ROpt(draw(regexes(depth=depth - 1)))
    if kind == 3:
        items = draw(st.lists(regexes(depth=depth - 1), min_size=2, max_size=2))
        return ast.RConcat(tuple(items))
    items = draw(st.lists(regexes(depth=depth - 1), min_size=2, max_size=2))
    return ast.RAlt(tuple(items))


@st.composite
def path_elements(draw):
    """A random computed-path pattern across all four modes."""
    mode = draw(st.sampled_from(["shortest", "k", "reach", "all"]))
    regex = draw(regexes())
    direction = draw(st.sampled_from([ast.OUT, ast.IN]))
    if mode == "reach":
        return ast.PathPatternElem(
            var=None, direction=direction, mode="reach", regex=regex
        )
    if mode == "all":
        return ast.PathPatternElem(
            var="p", direction=direction, mode="all", regex=regex
        )
    count = 1 if mode == "shortest" else draw(st.integers(2, 3))
    cost_var = draw(st.sampled_from([None, "c"]))
    return ast.PathPatternElem(
        var="p",
        direction=direction,
        mode="shortest",
        count=count,
        regex=regex,
        cost_var=cost_var,
    )


@st.composite
def path_chains(draw):
    """``(n0 [:L])  -/<path>/->  (n1 [:L])`` with optional labels."""
    elements = []
    for var in ("n0", "n1"):
        labels = draw(
            st.sampled_from([(), (("X",),), (("Y",),)])
        )
        elements.insert(
            len(elements), ast.NodePattern(var=var, labels=labels)
        )
    chain = [elements[0], draw(path_elements()), elements[1]]
    return ast.Chain(tuple(chain))


def _tables(graph, chain):
    catalog = Catalog()
    catalog.register_graph("g", graph, default=True)
    block = ast.MatchBlock((ast.PatternLocation(chain, "g"),), None)
    columnar_ctx = EvalContext(catalog)
    columnar_ctx.columnar_executor = True
    reference_ctx = EvalContext(catalog)
    reference_ctx.columnar_executor = False
    return (
        evaluate_block(block, columnar_ctx),
        evaluate_block(block, reference_ctx),
    )


@given(graphs(), path_chains())
@settings(max_examples=120, deadline=None)
def test_batched_paths_match_reference_exactly(graph, chain):
    """Batched vs. row-at-a-time path execution: identical tables.

    Row order included — walk values compare by sequence *and* cost, so
    any divergence in tie-breaking, cost bookkeeping or lazy
    reconstruction shows up here.
    """
    columnar, reference = _tables(graph, chain)
    assert columnar.columns == reference.columns
    assert list(columnar.rows) == list(reference.rows)


@given(graphs(), path_chains())
@settings(max_examples=40, deadline=None)
def test_batched_paths_under_naive_planner(graph, chain):
    """Planner choice must not leak into path results (join semantics)."""
    catalog = Catalog()
    catalog.register_graph("g", graph, default=True)
    block = ast.MatchBlock((ast.PatternLocation(chain, "g"),), None)
    batched_ctx = EvalContext(catalog)
    naive_ctx = EvalContext(catalog)
    naive_ctx.naive_planner = True
    assert set(evaluate_block(block, batched_ctx)) == set(
        evaluate_block(block, naive_ctx)
    )


# ---------------------------------------------------------------------------
# Determinism of the lexicographic tie-break
# ---------------------------------------------------------------------------

@given(graphs(), regexes())
@settings(max_examples=80, deadline=None)
def test_all_three_engines_settle_identically(graph, regex):
    """naive / parent-pointer Dijkstra / ranked BFS: same walks, same order.

    The parent-pointer reconstruction and the BFS rank ordering must
    realize exactly the reference's full-sequence lexicographic
    tie-break — down to the settle order of the results dict.
    """
    nfa = compile_regex(regex)
    naive = PathFinder(graph, nfa, naive=True)
    batched = PathFinder(graph, nfa)
    dijkstra = PathFinder(graph, nfa, bfs=False)
    assert batched.strategy == "bfs"
    assert dijkstra.strategy == "dijkstra"
    for source in sorted(graph.nodes, key=str):
        reference = list(naive.shortest_from(source).items())
        assert list(batched.shortest_from(source).items()) == reference
        assert list(dijkstra.shortest_from(source).items()) == reference
        assert naive.reachable_from(source) == batched.reachable_from(source)


@given(graphs(), regexes())
@settings(max_examples=40, deadline=None)
def test_k_shortest_engines_agree(graph, regex):
    nfa = compile_regex(regex)
    naive = PathFinder(graph, nfa, naive=True)
    batched = PathFinder(graph, nfa)
    for source in sorted(graph.nodes, key=str):
        for target in sorted(graph.nodes, key=str):
            assert naive.k_shortest(source, target, 3) == batched.k_shortest(
                source, target, 3
            )


@given(graphs(), regexes())
@settings(max_examples=40, deadline=None)
def test_shortest_multi_agrees_with_single_source(graph, regex):
    """The batched multi-source entry point vs. one search per source."""
    nfa = compile_regex(regex)
    batched = PathFinder(graph, nfa)
    naive = PathFinder(graph, nfa, naive=True)
    sources = sorted(graph.nodes, key=str)
    multi = batched.shortest_multi(sources)
    for source in sources:
        assert multi[source] == naive.shortest_from(source)


def test_tie_break_prefers_lexicographic_walk():
    """Two equal-cost walks: the smaller identifier sequence wins in all
    engines (Appendix A footnote 4)."""
    builder = GraphBuilder()
    for node in ("s", "m1", "m2", "t"):
        builder.add_node(node)
    # Two cost-2 walks s -> t; the walk through edge "a1" sorts first.
    builder.add_edge("s", "m1", edge_id="a1", labels=["k"])
    builder.add_edge("m1", "t", edge_id="a2", labels=["k"])
    builder.add_edge("s", "m2", edge_id="b1", labels=["k"])
    builder.add_edge("m2", "t", edge_id="b2", labels=["k"])
    graph = builder.build()
    nfa = compile_regex(ast.RStar(ast.RLabel("k")))
    expected = ("s", "a1", "m1", "a2", "t")
    for finder in (
        PathFinder(graph, nfa),
        PathFinder(graph, nfa, bfs=False),
        PathFinder(graph, nfa, naive=True),
    ):
        walk = finder.shortest("s", "t")
        assert walk is not None and walk.sequence == expected
