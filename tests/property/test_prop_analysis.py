"""Property tests for the semantic analyzer (ISSUE 9 acceptance).

Two contracts:

1. **Soundness (no false-positive errors)** — a query assembled from
   well-formed fragments over the loaded catalog parses, executes
   successfully, and the analyzer reports no error-level diagnostics
   for it. Error severity is reserved for genuinely broken statements;
   anything speculative must be a warning or info.
2. **Config-independence** — analysis is a static function of the
   statement and the catalog: ``engine.analyze`` must return the
   identical diagnostic list whatever ``ExecutionConfig`` axis
   (columnar expressions, parallelism, path engine) rides along.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro import GCoreEngine
from repro.config import ExecutionConfig
from repro.datasets import social_graph
from repro.model.schema import snb_schema


@pytest.fixture(scope="module")
def engine():
    eng = GCoreEngine()
    eng.register_graph(
        "social_graph", social_graph(), default=True, schema=snb_schema()
    )
    return eng


NODE_LABELS = ("Person", "Post", "Tag")
EDGE_LABELS = ("knows", "hasInterest")
EMPLOYERS = ("Acme", "HAL", "CWI", "MIT")


@st.composite
def valid_queries(draw):
    """Well-formed queries over the social graph, by construction."""
    label = draw(st.sampled_from(NODE_LABELS))
    edge = draw(st.sampled_from(EDGE_LABELS))
    shape = draw(st.sampled_from(("node", "edge", "path")))
    if shape == "node":
        pattern = f"(n:{label})"
    elif shape == "edge":
        pattern = f"(n:Person)-[e:{edge}]->(m)"
    else:
        pattern = "(n:Person)-/p<:knows*>/->(m:Person)"
    clauses = ""
    if draw(st.booleans()) and shape != "path":
        employer = draw(st.sampled_from(EMPLOYERS))
        clauses = f" WHERE n.employer = '{employer}'"
    head = draw(st.sampled_from(("select", "construct")))
    if head == "select":
        query = f"SELECT n MATCH {pattern}{clauses}"
        if draw(st.booleans()):
            query += " ORDER BY n.firstName"
    else:
        query = f"CONSTRUCT (n) MATCH {pattern}{clauses}"
    return query


#: Queries mixing valid, broken and smelly constructs (for parity).
MIXED_QUERIES = (
    "SELECT n.name MATCH (n:Person)",
    "SELECT m.name MATCH (n:Person)",  # GC204
    "CONSTRUCT (x) MATCH (x)-[x]->(m)",  # GC201
    "CONSTRUCT (n) MATCH (n), (m)",  # GC401
    "CONSTRUCT (n) MATCH (n:Persn) WHERE n.agee = 1",  # GC103+GC104
    "SELECT n.name MATCH (n:Person) WHERE TRUE < 2",  # GC205
    "CONSTRUCT (",  # GC001
    "CONSTRUCT (n) MATCH (n)-/ALL p<:knows*>/->(m)",  # GC402
)

CONFIG_AXES = (
    ExecutionConfig(),
    ExecutionConfig(expressions="vectorized"),
    ExecutionConfig(parallelism=3),
    ExecutionConfig(paths="naive"),
)


@settings(max_examples=60, deadline=None)
@given(query=valid_queries())
def test_soundness_valid_queries_have_no_error_diagnostics(engine, query):
    result = engine.analyze(query)
    assert result.errors == [], (
        f"false-positive error on executable query {query!r}: "
        f"{result.describe()}"
    )
    engine.run(query, strict=True)  # must also actually execute


@settings(max_examples=40, deadline=None)
@given(
    query=st.sampled_from(MIXED_QUERIES),
    config=st.sampled_from(CONFIG_AXES),
)
def test_config_independence(engine, query, config):
    """The analyzer verdict ignores the execution configuration."""
    baseline = engine.analyze(query)
    other = engine.analyze(query, config=config)
    key = lambda r: [
        (d.code, d.severity, d.message, d.line, d.column, d.hint)
        for d in r
    ]
    assert key(other) == key(baseline)


@settings(max_examples=40, deadline=None)
@given(query=valid_queries())
def test_analysis_is_deterministic(engine, query):
    first = engine.analyze(query)
    second = engine.analyze(query)
    assert [d.to_json() for d in first] == [d.to_json() for d in second]
