"""Property-based tests for graph set operations (Appendix A.5)."""

from hypothesis import given, settings, strategies as st

from repro.model.builder import GraphBuilder
from repro.model.graph import PathPropertyGraph
from repro.model.setops import (
    empty_graph,
    graph_difference,
    graph_intersect,
    graph_union,
)

NODE_POOL = ["n0", "n1", "n2", "n3"]
# A fixed universe of edges with fixed endpoints guarantees consistency,
# which is what makes union/intersection non-degenerate.
EDGE_POOL = {
    "e0": ("n0", "n1"),
    "e1": ("n1", "n2"),
    "e2": ("n2", "n3"),
    "e3": ("n0", "n2"),
}
LABELS = ["A", "B"]


@st.composite
def graphs(draw):
    nodes = set(draw(st.sets(st.sampled_from(NODE_POOL))))
    builder = GraphBuilder()
    for node in sorted(nodes):
        labels = draw(st.sets(st.sampled_from(LABELS)))
        props = {}
        if draw(st.booleans()):
            props["k"] = draw(st.sets(st.integers(0, 3), min_size=1))
        builder.add_node(node, labels=labels, properties=props)
    for edge, (src, dst) in EDGE_POOL.items():
        if src in nodes and dst in nodes and draw(st.booleans()):
            builder.add_edge(src, dst, edge_id=edge,
                             labels=draw(st.sets(st.sampled_from(LABELS))))
    return builder.build()


@given(graphs())
def test_union_idempotent(g):
    assert graph_union(g, g) == g


@given(graphs(), graphs())
@settings(max_examples=150)
def test_union_commutative(g1, g2):
    assert graph_union(g1, g2) == graph_union(g2, g1)


@given(graphs(), graphs(), graphs())
@settings(max_examples=100)
def test_union_associative(g1, g2, g3):
    assert graph_union(graph_union(g1, g2), g3) == graph_union(
        g1, graph_union(g2, g3)
    )


@given(graphs())
def test_union_identity(g):
    assert graph_union(g, empty_graph()) == g


@given(graphs(), graphs())
@settings(max_examples=150)
def test_intersect_commutative(g1, g2):
    assert graph_intersect(g1, g2) == graph_intersect(g2, g1)


@given(graphs(), graphs())
@settings(max_examples=150)
def test_intersection_contained_in_union(g1, g2):
    inter = graph_intersect(g1, g2)
    union = graph_union(g1, g2)
    assert inter.nodes <= union.nodes
    assert inter.edges <= union.edges


@given(graphs(), graphs())
@settings(max_examples=150)
def test_difference_disjoint_from_right_nodes(g1, g2):
    diff = graph_difference(g1, g2)
    assert not (diff.nodes & g2.nodes)
    assert not (diff.edges & g2.edges)


@given(graphs(), graphs())
@settings(max_examples=150)
def test_results_are_wellformed(g1, g2):
    # Every operation must produce a graph satisfying Definition 2.1;
    # the constructor validates, so building a copy is the check.
    for result in (
        graph_union(g1, g2),
        graph_intersect(g1, g2),
        graph_difference(g1, g2),
    ):
        PathPropertyGraph(
            nodes=result.nodes,
            edges={e: result.endpoints(e) for e in result.edges},
            paths={p: result.path_sequence(p) for p in result.paths},
            labels=result.label_map(),
            properties=result.property_map(),
        )


@given(graphs(), graphs())
@settings(max_examples=150)
def test_difference_then_union_recovers_left_nodes(g1, g2):
    diff = graph_difference(g1, g2)
    assert (diff.nodes | (g1.nodes & g2.nodes)) == g1.nodes
