"""Property test: the MATCH evaluator vs. a brute-force oracle.

Appendix A.2 defines pattern evaluation extensionally: the set of all
bindings of pattern variables to graph objects satisfying every atom.
For small random graphs and random edge-chain patterns we enumerate that
set directly (all |N|^k x |E|^m assignments) and compare it with the
planner-driven incremental evaluator — catching any divergence between
the optimized implementation and the formal definition.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.algebra.binding import Binding
from repro.catalog import Catalog
from repro.eval.context import EvalContext
from repro.eval.match import evaluate_block
from repro.lang import ast
from repro.model.builder import GraphBuilder

NODES = ["a", "b", "c", "d"]
LABELS = ["X", "Y"]
EDGE_LABELS = ["k", "l"]


@st.composite
def graphs(draw):
    builder = GraphBuilder()
    for node in NODES:
        builder.add_node(node, labels=draw(st.sets(st.sampled_from(LABELS))))
    count = draw(st.integers(0, 6))
    for index in range(count):
        builder.add_edge(
            draw(st.sampled_from(NODES)),
            draw(st.sampled_from(NODES)),
            edge_id=f"e{index}",
            labels=[draw(st.sampled_from(EDGE_LABELS))],
        )
    return builder.build()


@st.composite
def chains(draw):
    """Random chains of 1-3 node patterns joined by labeled edges."""
    length = draw(st.integers(0, 2))
    node_vars = ["n0", "n1", "n2"][: length + 1]
    elements = []
    for index, var in enumerate(node_vars):
        node_labels = draw(
            st.lists(
                st.lists(st.sampled_from(LABELS), min_size=1, max_size=1)
                .map(tuple),
                max_size=1,
            ).map(tuple)
        )
        elements.append(ast.NodePattern(var=var, labels=node_labels))
        if index < length:
            direction = draw(st.sampled_from([ast.OUT, ast.IN, ast.UNDIRECTED]))
            edge_labels = draw(
                st.lists(
                    st.lists(st.sampled_from(EDGE_LABELS), min_size=1,
                             max_size=1).map(tuple),
                    max_size=1,
                ).map(tuple)
            )
            elements.append(
                ast.EdgePattern(
                    var=f"e{index}", direction=direction, labels=edge_labels
                )
            )
    return ast.Chain(tuple(elements))


def _edge_atom_satisfied(graph, pattern, src, dst, edge):
    if edge not in graph.edges:
        return False
    if not all(
        any(l in graph.labels(edge) for l in group) for group in pattern.labels
    ):
        return False
    endpoints = graph.endpoints(edge)
    if pattern.direction == ast.OUT:
        return endpoints == (src, dst)
    if pattern.direction == ast.IN:
        return endpoints == (dst, src)
    return endpoints in ((src, dst), (dst, src))


def brute_force(graph, chain):
    """Enumerate all satisfying assignments per the formal definition."""
    node_patterns = chain.nodes()
    edge_patterns = chain.connectors()
    node_vars = [p.var for p in node_patterns]
    edge_vars = [p.var for p in edge_patterns]
    results = set()
    for node_choice in itertools.product(sorted(graph.nodes, key=str),
                                         repeat=len(node_vars)):
        ok = True
        for pattern, node in zip(node_patterns, node_choice):
            if not all(
                any(l in graph.labels(node) for l in group)
                for group in pattern.labels
            ):
                ok = False
                break
        if not ok:
            continue
        edge_universe = sorted(graph.edges, key=str) or [None]
        for edge_choice in itertools.product(edge_universe,
                                             repeat=len(edge_vars)):
            if len(edge_vars) and None in edge_choice:
                continue
            good = True
            for index, pattern in enumerate(edge_patterns):
                if not _edge_atom_satisfied(
                    graph, pattern,
                    node_choice[index], node_choice[index + 1],
                    edge_choice[index],
                ):
                    good = False
                    break
            if good:
                binding = dict(zip(node_vars, node_choice))
                binding.update(zip(edge_vars, edge_choice))
                results.add(Binding(binding))
    return results


@given(graphs(), chains())
@settings(max_examples=120, deadline=None)
def test_match_agrees_with_brute_force(graph, chain):
    catalog = Catalog()
    catalog.register_graph("g", graph, default=True)
    ctx = EvalContext(catalog)
    block = ast.MatchBlock((ast.PatternLocation(chain, "g"),), None)
    table = evaluate_block(block, ctx)
    assert set(table) == brute_force(graph, chain)


@given(graphs(), chains())
@settings(max_examples=60, deadline=None)
def test_naive_planner_agrees_with_greedy(graph, chain):
    catalog = Catalog()
    catalog.register_graph("g", graph, default=True)
    block = ast.MatchBlock((ast.PatternLocation(chain, "g"),), None)
    greedy_ctx = EvalContext(catalog)
    naive_ctx = EvalContext(catalog)
    naive_ctx.naive_planner = True
    assert set(evaluate_block(block, greedy_ctx)) == set(
        evaluate_block(block, naive_ctx)
    )


@given(graphs(), chains())
@settings(max_examples=80, deadline=None)
def test_columnar_executor_matches_reference_exactly(graph, chain):
    """The columnar pipeline vs. the row-at-a-time reference executor.

    Under the same planner the two executors must produce the *identical*
    table — same binding set, same row order, same columns — so the
    columnar rewrite is transparent to everything downstream (pretty
    printing, group representatives, skolem generation).
    """
    catalog = Catalog()
    catalog.register_graph("g", graph, default=True)
    block = ast.MatchBlock((ast.PatternLocation(chain, "g"),), None)
    columnar_ctx = EvalContext(catalog)
    columnar_ctx.columnar_executor = True
    reference_ctx = EvalContext(catalog)
    reference_ctx.columnar_executor = False
    columnar = evaluate_block(block, columnar_ctx)
    reference = evaluate_block(block, reference_ctx)
    assert columnar.columns == reference.columns
    assert list(columnar.rows) == list(reference.rows)
