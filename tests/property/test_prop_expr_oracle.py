"""Property test: vectorized expression kernels vs. the interpreted oracle.

Random graphs carry properties spanning every literal type of Definition
2.1 — bool, int, float, str, ``Date`` — including multi-valued sets and
absent keys; random WHERE conditions and GROUP BY aggregations over them
must evaluate identically under the compiled kernels and the row-at-a-time
``ExpressionEvaluator``: exact table equality (rows, order, columns) for
the same plan, set equality against the ``naive=True`` reference, and
raise-vs-succeed agreement when an expression can error.
"""

from hypothesis import given, settings, strategies as st

from repro import GCoreEngine
from repro.errors import EvaluationError
from repro.eval.context import EvalContext
from repro.eval.match import evaluate_match
from repro.eval.query import evaluate_statement
from repro.lang import ast
from repro.model.builder import GraphBuilder
from repro.model.values import Date
from repro.table import Table

NODES = ["a", "b", "c", "d", "e"]
LABELS = ["X", "Y"]
PROP_KEYS = ["p", "q"]

scalars = st.one_of(
    st.booleans(),
    st.integers(-3, 3),
    st.sampled_from([0.5, 1.0, 2.5]),
    st.sampled_from(["s1", "s2", "s3"]),
    st.sampled_from([Date(2014, 1, 1), Date(2015, 6, 30), Date(2016, 12, 31)]),
)

prop_values = st.one_of(
    scalars,
    st.frozensets(scalars, min_size=2, max_size=3),
)


@st.composite
def graphs(draw):
    builder = GraphBuilder()
    for node in NODES:
        properties = {}
        for key in PROP_KEYS:
            if draw(st.booleans()):
                properties[key] = draw(prop_values)
        builder.add_node(
            node,
            labels=draw(st.sets(st.sampled_from(LABELS))),
            properties=properties,
        )
    count = draw(st.integers(0, 6))
    for index in range(count):
        builder.add_edge(
            draw(st.sampled_from(NODES)),
            draw(st.sampled_from(NODES)),
            edge_id=f"e{index}",
            labels=["k"],
            properties={"w": draw(st.integers(0, 3))},
        )
    return builder.build()


@st.composite
def predicates(draw):
    """Random WHERE conditions over n (and sometimes m)."""

    def leaf():
        variable = draw(st.sampled_from(["n", "m"]))
        kind = draw(st.sampled_from(["cmp", "label", "in", "size"]))
        prop = ast.Prop(ast.Var(variable), draw(st.sampled_from(PROP_KEYS)))
        if kind == "label":
            return ast.LabelTest(variable, (draw(st.sampled_from(LABELS)),))
        if kind == "in":
            return ast.Binary("in", ast.Literal(draw(scalars)), prop)
        if kind == "size":
            return ast.Binary(
                ">=",
                ast.FuncCall("size", (prop,)),
                ast.Literal(draw(st.integers(0, 2))),
            )
        op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
        return ast.Binary(op, prop, ast.Literal(draw(scalars)))

    expr = leaf()
    for _ in range(draw(st.integers(0, 2))):
        connective = draw(st.sampled_from(["and", "or", "xor"]))
        other = leaf()
        if draw(st.booleans()):
            other = ast.Unary("not", other)
        expr = ast.Binary(connective, expr, other)
    return expr


def evaluate_modes(engine, clause):
    """The binding table under (vectorized, interpreted, naive) modes."""
    results = []
    for vectorized, naive in ((True, False), (False, False), (False, True)):
        ctx = EvalContext(engine.catalog)
        ctx.naive_planner = naive
        if not naive:
            ctx.vectorized_expressions = vectorized
        try:
            results.append(evaluate_match(clause, ctx))
        except EvaluationError:
            results.append("error")
    return results


def make_engine(graph):
    engine = GCoreEngine()
    engine.register_graph("g", graph, default=True)
    return engine


@settings(max_examples=100, deadline=None)
@given(graphs(), predicates())
def test_where_parity(graph, predicate):
    engine = make_engine(graph)
    chain = ast.Chain((
        ast.NodePattern(var="n"),
        ast.EdgePattern(var=None, direction=ast.OUT, labels=(("k",),)),
        ast.NodePattern(var="m"),
    ))
    clause = ast.MatchClause(
        ast.MatchBlock((ast.PatternLocation(chain, None),), predicate)
    )
    fast, slow, naive = evaluate_modes(engine, clause)
    assert (fast == "error") == (slow == "error") == (naive == "error")
    if fast == "error":
        return
    # Same plan -> exact parity; naive plan -> set parity.
    assert fast.columns == slow.columns
    assert list(fast.rows) == list(slow.rows)
    assert fast == naive


@settings(max_examples=100, deadline=None)
@given(
    graphs(),
    st.sampled_from(["count", "min", "max", "sum", "avg", "collect"]),
    st.booleans(),
    st.sampled_from(PROP_KEYS),
    st.sampled_from(PROP_KEYS),
)
def test_group_by_aggregate_parity(graph, aggregate, distinct, group_key, arg_key):
    engine = make_engine(graph)
    inner = "DISTINCT " if distinct else ""
    text = (
        f"SELECT n.{group_key} AS k, {aggregate}({inner}n.{arg_key}) AS v, "
        f"COUNT(*) AS c MATCH (n) GROUP BY n.{group_key}"
    )
    statement = engine.parse(text)
    results = []
    for vectorized, naive in ((True, False), (False, False), (False, True)):
        ctx = EvalContext(engine.catalog)
        ctx.naive_planner = naive
        if not naive:
            ctx.vectorized_expressions = vectorized
        try:
            results.append(evaluate_statement(statement, ctx))
        except EvaluationError:
            results.append("error")
    fast, slow, naive_result = results
    assert (fast == "error") == (slow == "error") == (naive_result == "error")
    if fast == "error":
        return

    def typed(table: Table):
        return [
            tuple((type(cell).__name__, cell) for cell in row)
            for row in table.rows
        ]

    assert fast.columns == slow.columns == naive_result.columns
    assert typed(fast) == typed(slow) == typed(naive_result)


@settings(max_examples=60, deadline=None)
@given(graphs(), predicates())
def test_where_parity_single_node(graph, predicate):
    """Single-atom patterns: every pushable conjunct hits the probe."""
    engine = make_engine(graph)
    chain = ast.Chain((ast.NodePattern(var="n", labels=(("X",),)),))
    clause = ast.MatchClause(
        ast.MatchBlock((ast.PatternLocation(chain, None),), predicate)
    )
    fast, slow, naive = evaluate_modes(engine, clause)
    assert (fast == "error") == (slow == "error") == (naive == "error")
    if fast == "error":
        return
    assert fast.columns == slow.columns
    assert list(fast.rows) == list(slow.rows)
    assert fast == naive


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_projection_parity(graph):
    """SELECT projection of every node property, all three modes."""
    engine = make_engine(graph)
    text = (
        "SELECT n.p AS p, n.q AS q, SIZE(n.p) AS sp, "
        "CASE WHEN n.p = n.q THEN 'eq' ELSE 'ne' END AS rel "
        "MATCH (n) ORDER BY p, q"
    )
    statement = engine.parse(text)
    tables = []
    for vectorized, naive in ((True, False), (False, False), (False, True)):
        ctx = EvalContext(engine.catalog)
        ctx.naive_planner = naive
        if not naive:
            ctx.vectorized_expressions = vectorized
        tables.append(evaluate_statement(statement, ctx))
    first, second, third = tables
    assert first.columns == second.columns == third.columns
    typed = lambda t: [  # noqa: E731
        tuple((type(c).__name__, c) for c in row) for row in t.rows
    ]
    assert typed(first) == typed(second) == typed(third)
