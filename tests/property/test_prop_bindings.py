"""Property-based tests of the binding algebra against a brute-force oracle.

The operators of Appendix A.1 have direct set-theoretic definitions over
compatibility of partial bindings; we generate random tables (with partial
rows) and compare the hash-join implementation against the quadratic
definition.
"""

from hypothesis import given, settings, strategies as st

from repro.algebra.binding import Binding, BindingTable
from repro.algebra.ops import (
    table_antijoin,
    table_join,
    table_left_join,
    table_semijoin,
    table_union,
)

VARIABLES = ["x", "y", "z"]
values = st.integers(min_value=0, max_value=3)


@st.composite
def bindings(draw):
    domain = draw(st.sets(st.sampled_from(VARIABLES)))
    return Binding({var: draw(values) for var in domain})


def tables():
    return st.lists(bindings(), max_size=6).map(
        lambda rows: BindingTable(VARIABLES, rows)
    )


def brute_join(left, right):
    out = set()
    for mu1 in left:
        for mu2 in right:
            if mu1.compatible(mu2):
                out.add(mu1.merge(mu2))
    return out


@given(tables(), tables())
@settings(max_examples=200)
def test_join_matches_definition(left, right):
    assert set(table_join(left, right)) == brute_join(left, right)


@given(tables(), tables())
@settings(max_examples=200)
def test_semijoin_matches_definition(left, right):
    expected = {
        mu1 for mu1 in left if any(mu1.compatible(mu2) for mu2 in right)
    }
    assert set(table_semijoin(left, right)) == expected


@given(tables(), tables())
@settings(max_examples=200)
def test_antijoin_matches_definition(left, right):
    expected = {
        mu1 for mu1 in left if not any(mu1.compatible(mu2) for mu2 in right)
    }
    assert set(table_antijoin(left, right)) == expected


@given(tables(), tables())
@settings(max_examples=200)
def test_left_join_definition(left, right):
    # O1 =|><| O2 = (O1 |><| O2) u (O1 \ O2) — computed independently.
    expected = brute_join(left, right) | set(table_antijoin(left, right))
    assert set(table_left_join(left, right)) == expected


@given(tables(), tables())
def test_join_commutative(left, right):
    assert table_join(left, right) == table_join(right, left)


@given(tables(), tables(), tables())
@settings(max_examples=100)
def test_join_associative(t1, t2, t3):
    assert table_join(table_join(t1, t2), t3) == table_join(
        t1, table_join(t2, t3)
    )


@given(tables())
def test_unit_is_join_identity(table):
    assert table_join(table, BindingTable.unit()) == table


@given(tables(), tables())
def test_union_commutative(left, right):
    assert table_union(left, right) == table_union(right, left)


@given(tables(), tables())
def test_semijoin_antijoin_partition(left, right):
    semi = set(table_semijoin(left, right))
    anti = set(table_antijoin(left, right))
    assert semi | anti == set(left)
    assert not (semi & anti)
