"""Property tests: save → open is the identity, and flat graphs are
query-indistinguishable from the dict-backed oracle.

Two invariants back the storage tentpole:

* **Round trip** — for any generated graph, ``save_snapshot`` followed
  by ``open_snapshot`` reproduces the nodes, edges, stored paths,
  labels, properties (across every scalar type the value model admits,
  including the ``1`` / ``1.0`` / ``True`` spelling distinctions) and
  all statistics fields, bit for bit.
* **Query parity** — the same query over the mmap-backed
  ``FlatPathPropertyGraph`` and over the original dict-backed graph
  returns identical results at every sampled point of the
  ExecutionConfig lattice.
"""

from hypothesis import given, settings, strategies as st

from repro import GCoreEngine
from repro.config import ExecutionConfig
from repro.model.builder import GraphBuilder
from repro.model.values import Date
from repro.storage import open_snapshot, save_snapshot

EMPLOYERS = ("Acme", "HAL", "CWI")

#: Every scalar shape the property columns must keep distinct — note the
#: deliberate 1 / 1.0 / True aliases that compare equal in Python.
SCALARS = st.one_of(
    st.just(1),
    st.just(1.0),
    st.just(True),
    st.just(False),
    st.integers(-(2**40), 2**40),
    st.integers(2**70, 2**70 + 8),  # beyond i64: decimal-string encoding
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.just(Date(2014, 12, 1)),
)


@st.composite
def snapshot_graphs(draw):
    """Random graphs with mixed id types, labels, props and stored paths."""
    builder = GraphBuilder(name="g")
    count = draw(st.integers(2, 7))
    node_ids = []
    for index in range(count):
        node_id = index if draw(st.booleans()) else f"n{index}"
        labels = draw(
            st.lists(st.sampled_from(["Person", "Tag", "Place"]), max_size=2)
        )
        props = draw(
            st.dictionaries(
                st.sampled_from(["name", "age", "employer", "x"]),
                SCALARS,
                max_size=3,
            )
        )
        builder.add_node(node_id, labels=labels, properties=props)
        node_ids.append(node_id)
    edge_ids = []
    for index in range(draw(st.integers(0, 10))):
        source = draw(st.sampled_from(node_ids))
        target = draw(st.sampled_from(node_ids))
        edge_id = f"e{index}"
        builder.add_edge(
            source,
            target,
            edge_id=edge_id,
            labels=draw(
                st.lists(st.sampled_from(["knows", "likes"]), max_size=2)
            ),
            properties=draw(
                st.dictionaries(st.just("since"), SCALARS, max_size=1)
            ),
        )
        edge_ids.append((edge_id, source, target))
    if edge_ids and draw(st.booleans()):
        edge_id, source, target = draw(st.sampled_from(edge_ids))
        builder.add_path(
            [source, edge_id, target],
            path_id="sp0",
            labels=["toWagner"],
            properties={"hops": 1},
        )
    return builder.build()


STATISTICS_FIELDS = (
    "node_count",
    "edge_count",
    "path_count",
    "node_label_counts",
    "edge_label_counts",
    "path_label_counts",
    "edge_label_sources",
    "edge_label_targets",
    "_node_prop_sel",
    "_edge_prop_sel",
    "_path_prop_sel",
)


def _typed(mapping):
    """Value sets with spelling: {key: {(type name, value), ...}}."""
    return {
        key: {(type(v).__name__, v) for v in values}
        for key, values in mapping.items()
    }


@given(snapshot_graphs())
@settings(max_examples=60, deadline=None)
def test_save_open_is_identity(tmp_path_factory, graph):
    path = str(tmp_path_factory.mktemp("snap") / "g.gsnap")
    engine = GCoreEngine()
    engine.register_graph("g", graph, default=True)
    with engine.snapshot() as snap:
        save_snapshot(snap.catalog, path)
    with open_snapshot(path) as snapshot:
        flat = snapshot.graph("g")
        assert flat == graph
        assert graph == flat
        for node in graph.nodes:
            assert flat.labels(node) == graph.labels(node)
            assert _typed(flat.properties(node)) == _typed(
                graph.properties(node)
            )
            assert flat.out_edges(node) == graph.out_edges(node)
            assert flat.in_edges(node) == graph.in_edges(node)
        for edge in graph.edges:
            assert flat.endpoints(edge) == graph.endpoints(edge)
            assert flat.labels(edge) == graph.labels(edge)
        for stored in graph.paths:
            assert flat.path_sequence(stored) == graph.path_sequence(stored)
            assert flat.labels(stored) == graph.labels(stored)
        flat_stats, oracle_stats = flat.statistics(), graph.statistics()
        for field in STATISTICS_FIELDS:
            assert getattr(flat_stats, field) == getattr(oracle_stats, field)


# Sampled corners of the lattice: the default columnar/vectorized stack,
# the full naive reference column, a mixed point, and a parallel point.
LATTICE = (
    ExecutionConfig(),
    ExecutionConfig(
        planner="naive",
        executor="reference",
        expressions="interpreted",
        paths="naive",
    ),
    ExecutionConfig(planner="greedy", expressions="interpreted"),
    ExecutionConfig(parallelism=2),
)

QUERIES = (
    "SELECT n.name AS name MATCH (n:Person) WHERE n.age >= 21 ORDER BY name",
    "SELECT n.employer AS emp, COUNT(*) AS c MATCH (n:Person) "
    "GROUP BY n.employer",
    "SELECT n, m MATCH (n:Person)-[:knows]->(m)",
    "SELECT n.name AS name, m.name AS friend "
    "MATCH (n:Person) OPTIONAL (n)-[:knows]->(m:Person)",
)


@st.composite
def person_graphs(draw):
    """Graphs the parity queries can actually bind against."""
    builder = GraphBuilder(name="g")
    count = draw(st.integers(3, 7))
    for index in range(count):
        builder.add_node(
            f"p{index}",
            labels=["Person"],
            properties={
                "name": f"p{index}",
                "age": draw(st.integers(18, 45)),
                "employer": draw(st.sampled_from(EMPLOYERS)),
            },
        )
    for index in range(draw(st.integers(0, 10))):
        source = draw(st.integers(0, count - 1))
        target = draw(st.integers(0, count - 1))
        builder.add_edge(
            f"p{source}", f"p{target}", edge_id=f"k{index}", labels=["knows"]
        )
    return builder.build()


@given(person_graphs(), st.sampled_from(LATTICE))
@settings(max_examples=50, deadline=None)
def test_flat_query_parity_across_lattice(tmp_path_factory, graph, config):
    path = str(tmp_path_factory.mktemp("snap") / "g.gsnap")
    oracle = GCoreEngine()
    oracle.register_graph("g", graph, default=True)
    oracle.save(path)
    flat_engine = GCoreEngine.open(path)
    for query in QUERIES:
        expected = oracle.run(query, config=config)
        got = flat_engine.run(query, config=config)
        assert got.columns == expected.columns
        assert list(got.rows) == list(expected.rows)


@given(person_graphs())
@settings(max_examples=25, deadline=None)
def test_flat_path_bindings_parity(tmp_path_factory, graph):
    path = str(tmp_path_factory.mktemp("snap") / "g.gsnap")
    oracle = GCoreEngine()
    oracle.register_graph("g", graph, default=True)
    oracle.save(path)
    flat_engine = GCoreEngine.open(path)
    query = "MATCH (n:Person)-/<:knows*>/->(m:Person)"
    expected = oracle.bindings(query)
    got = flat_engine.bindings(query)
    assert got.variables == expected.variables
    assert list(got.rows) == list(expected.rows)
