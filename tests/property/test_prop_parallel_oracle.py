"""Property test: parallel execution vs. the serial oracle.

ISSUE 7's exactness bar: a worker pool is an implementation detail, so a
query run at ``parallelism=N`` must produce the *identical* result — the
same rows in the same order with the same columns, the same group merge
order under GROUP BY, the same ABSENT masks under OPTIONAL, and the same
skolem identities under CONSTRUCT — as the serial engine, at every point
of the mode lattice (planner x executor x expressions x paths crossed
with the parallelism axis).

The dispatch thresholds are forced to 1 so every example actually rides
the pool (no vacuous parity through the size guards), on the thread
backend for speed; one test pins the fork backend end to end and a spy
asserts morsels were genuinely dispatched.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro import GCoreEngine
from repro.config import ExecutionConfig
from repro.eval import parallel
from repro.model.builder import GraphBuilder
from repro.model.io import graph_to_dict

THRESHOLDS = (
    "MIN_PARALLEL_ROWS",
    "MIN_PARALLEL_GROUPS",
    "MIN_PARALLEL_SOURCES",
    "MIN_PARALLEL_FILTER_ROWS",
)

PARALLEL = ExecutionConfig(parallelism=3)


@pytest.fixture(scope="module", autouse=True)
def force_dispatch():
    """Thresholds -> 1 (everything dispatches), thread backend (fast)."""
    saved = {name: getattr(parallel, name) for name in THRESHOLDS}
    backend = parallel.DEFAULT_BACKEND
    for name in THRESHOLDS:
        setattr(parallel, name, 1)
    parallel.DEFAULT_BACKEND = "thread"
    try:
        yield
    finally:
        for name, value in saved.items():
            setattr(parallel, name, value)
        parallel.DEFAULT_BACKEND = backend
        parallel.shutdown_pools()


EMPLOYERS = ("Acme", "HAL", "CWI")


@st.composite
def social_graphs(draw):
    """Small random Person/knows graphs with filterable properties."""
    builder = GraphBuilder(name="g")
    count = draw(st.integers(3, 7))
    for index in range(count):
        builder.add_node(
            f"p{index}",
            labels=["Person"],
            properties={
                "name": f"p{index}",
                "age": draw(st.integers(20, 45)),
                "employer": draw(st.sampled_from(EMPLOYERS)),
            },
        )
    for index in range(draw(st.integers(0, 10))):
        source = draw(st.integers(0, count - 1))
        target = draw(st.integers(0, count - 1))
        builder.add_edge(
            f"p{source}", f"p{target}", edge_id=f"k{index}", labels=["knows"]
        )
    return builder.build()


def make_engine(graph):
    engine = GCoreEngine()
    engine.register_graph("g", graph, default=True)
    return engine


# Each query leans on a different parallel surface: compiled WHERE
# kernels, GROUP BY partial aggregation (merge order = group
# first-occurrence order — no ORDER BY on purpose), OPTIONAL ABSENT
# masks flowing through morsels, and plain projection.
SELECT_QUERIES = [
    "SELECT n.name AS a, m.name AS b "
    "MATCH (n:Person)-[:knows]->(m:Person) "
    "WHERE n.age >= m.age AND n.employer = 'Acme'",
    "SELECT n.employer AS emp, COUNT(*) AS c, MIN(n.age) AS lo, "
    "COUNT(DISTINCT n.name) AS dn "
    "MATCH (n:Person) GROUP BY n.employer",
    "SELECT n.name AS name, m.name AS friend "
    "MATCH (n:Person) OPTIONAL (n)-[:knows]->(m:Person)",
    "SELECT n.name AS name, n.age + 1 AS next "
    "MATCH (n:Person) WHERE n.age >= 21 ORDER BY name",
]


def assert_same_table(serial, parallel_result):
    assert parallel_result.columns == serial.columns
    assert list(parallel_result.rows) == list(serial.rows)


@given(social_graphs())
@settings(max_examples=40, deadline=None)
def test_select_queries_match_serial_exactly(graph):
    engine = make_engine(graph)
    for query in SELECT_QUERIES:
        serial = engine.run(query)
        assert_same_table(serial, engine.run(query, config=PARALLEL))


@given(social_graphs())
@settings(max_examples=30, deadline=None)
def test_path_bindings_match_serial_exactly(graph):
    """Per-source-group batched path search partitions transparently."""
    query = "MATCH (n:Person)-/<:knows*>/->(m:Person)"
    engine = make_engine(graph)
    serial = engine.bindings(query)
    parallel_table = engine.bindings(query, config=PARALLEL)
    assert parallel_table.variables == serial.variables
    assert list(parallel_table.rows) == list(serial.rows)


@given(social_graphs())
@settings(max_examples=30, deadline=None)
def test_construct_skolem_identities_match_serial(graph):
    """CONSTRUCT with an unbound variable mints one skolem node per
    binding — morsel execution must preserve the binding order those
    identities are derived from, so the result graphs are bit-identical.
    """
    query = (
        "CONSTRUCT (n)-[:flagged]->(x) "
        "MATCH (n:Person)-[:knows]->(m:Person) WHERE n.age >= m.age"
    )
    engine = make_engine(graph)
    serial = engine.run(query)
    parallel_graph = engine.run(query, config=PARALLEL)
    assert graph_to_dict(parallel_graph) == graph_to_dict(serial)


LATTICE = st.builds(
    ExecutionConfig,
    planner=st.sampled_from(("cost", "greedy", "naive")),
    executor=st.sampled_from(("columnar", "reference")),
    expressions=st.sampled_from(("vectorized", "interpreted")),
    paths=st.sampled_from(("batched", "naive")),
)


@given(social_graphs(), LATTICE, st.sampled_from(SELECT_QUERIES))
@settings(max_examples=60, deadline=None)
def test_parallelism_axis_is_transparent_across_lattice(graph, config, query):
    """parallelism=N vs. serial at the *same* lattice point, for every
    combination of the other axes (fallback points included: e.g. the
    reference executor never dispatches, and must say so by producing
    the serial answer, not by diverging)."""
    engine = make_engine(graph)
    serial = engine.run(query, config=config)
    assert_same_table(
        serial, engine.run(query, config=config.with_(parallelism=3))
    )


def _fixed_graph():
    builder = GraphBuilder(name="g")
    for index in range(8):
        builder.add_node(
            f"p{index}",
            labels=["Person"],
            properties={
                "name": f"p{index}",
                "age": 20 + index,
                "employer": EMPLOYERS[index % len(EMPLOYERS)],
            },
        )
    for index in range(8):
        builder.add_edge(
            f"p{index}",
            f"p{(index * 3 + 1) % 8}",
            edge_id=f"k{index}",
            labels=["knows"],
        )
    return builder.build()


def _spy_on_dispatch(monkeypatch):
    calls = []
    original = parallel._run_tasks

    def spy(fn, payloads, config):
        calls.append(fn.__name__)
        return original(fn, payloads, config)

    monkeypatch.setattr(parallel, "_run_tasks", spy)
    return calls


def test_thread_backend_actually_dispatches(monkeypatch):
    """Guard against vacuous parity: the suite must ride the pool."""
    calls = _spy_on_dispatch(monkeypatch)
    engine = make_engine(_fixed_graph())
    for query in SELECT_QUERIES:
        assert_same_table(
            engine.run(query), engine.run(query, config=PARALLEL)
        )
    assert calls, "no query dispatched to the worker pool"


@pytest.mark.skipif(
    not parallel._FORK_AVAILABLE, reason="fork start method unavailable"
)
def test_fork_backend_matches_serial(monkeypatch):
    """At least one end-to-end run on the production (fork) backend."""
    monkeypatch.setattr(parallel, "DEFAULT_BACKEND", "fork")
    calls = _spy_on_dispatch(monkeypatch)
    engine = make_engine(_fixed_graph())
    try:
        for query in SELECT_QUERIES:
            assert_same_table(
                engine.run(query),
                engine.run(query, config=ExecutionConfig(parallelism=2)),
            )
        query = "MATCH (n:Person)-/<:knows*>/->(m:Person)"
        serial = engine.bindings(query)
        forked = engine.bindings(query, config=ExecutionConfig(parallelism=2))
        assert list(forked.rows) == list(serial.rows)
    finally:
        parallel.shutdown_pools()
    assert calls, "no query dispatched to the fork pool"
