"""Property-based tests for the value-set semantics."""

from hypothesis import given, strategies as st

from repro.model.values import (
    as_scalar,
    as_value_set,
    gcore_equals,
    gcore_in,
    gcore_subset,
)

scalars = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
    st.booleans(),
)
value_sets = st.frozensets(scalars, max_size=5)


@given(scalars)
def test_scalar_singleton_round_trip(value):
    assert as_scalar(as_value_set(value)) == value


@given(value_sets)
def test_as_value_set_idempotent(values):
    assert as_value_set(as_value_set(values)) == as_value_set(values)


@given(value_sets)
def test_equals_reflexive(values):
    assert gcore_equals(values, values)


@given(value_sets, value_sets)
def test_equals_symmetric(a, b):
    assert gcore_equals(a, b) == gcore_equals(b, a)


@given(scalars, value_sets)
def test_scalar_equals_singleton(value, _):
    assert gcore_equals(value, frozenset({value}))


@given(value_sets, value_sets)
def test_subset_reflexive_and_antisymmetric_ish(a, b):
    assert gcore_subset(a, a)
    if gcore_subset(a, b) and gcore_subset(b, a):
        assert gcore_equals(a, b)


@given(value_sets, value_sets, value_sets)
def test_subset_transitive(a, b, c):
    if gcore_subset(a, b) and gcore_subset(b, c):
        assert gcore_subset(a, c)


@given(scalars, value_sets)
def test_in_member_iff_singleton_subset(value, values):
    assert gcore_in(value, values) == gcore_subset(
        frozenset({value}), values
    )


@given(value_sets)
def test_empty_set_is_subset(values):
    assert gcore_subset(frozenset(), values)
