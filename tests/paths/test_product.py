"""Unit tests for the product-graph path search."""


from repro.lang import ast
from repro.model.builder import GraphBuilder
from repro.paths.automaton import compile_regex
from repro.paths.product import PathFinder, ViewSegment


def line_graph(n=5, label="k"):
    """a0 -k-> a1 -k-> ... -k-> a(n-1)"""
    b = GraphBuilder()
    for i in range(n):
        b.add_node(f"a{i}", labels=["N"])
    for i in range(n - 1):
        b.add_edge(f"a{i}", f"a{i+1}", edge_id=f"e{i}", labels=[label])
    return b.build()


def diamond_graph():
    b = GraphBuilder()
    for n in "sabt":
        b.add_node(n, labels=["N"])
    b.add_edge("s", "a", edge_id="sa", labels=["k"])
    b.add_edge("s", "b", edge_id="sb", labels=["k"])
    b.add_edge("a", "t", edge_id="at", labels=["k"])
    b.add_edge("b", "t", edge_id="bt", labels=["k"])
    return b.build()


KSTAR = compile_regex(ast.RStar(ast.RLabel("k")))
KPLUS = compile_regex(ast.RPlus(ast.RLabel("k")))


class TestShortest:
    def test_line_distances(self):
        g = line_graph(5)
        walks = PathFinder(g, KSTAR).shortest_from("a0")
        assert {node: w.cost for node, w in walks.items()} == {
            "a0": 0, "a1": 1, "a2": 2, "a3": 3, "a4": 4,
        }

    def test_walk_sequences(self):
        g = line_graph(3)
        walks = PathFinder(g, KSTAR).shortest_from("a0")
        assert walks["a2"].sequence == ("a0", "e0", "a1", "e1", "a2")

    def test_zero_length_walk(self):
        g = line_graph(2)
        walk = PathFinder(g, KSTAR).shortest("a0", "a0")
        assert walk is not None and walk.sequence == ("a0",) and walk.cost == 0

    def test_plus_excludes_zero_length(self):
        g = line_graph(2)
        finder = PathFinder(g, KPLUS)
        assert finder.shortest("a0", "a0") is None

    def test_label_restriction(self):
        b = GraphBuilder()
        b.add_node("x")
        b.add_node("y")
        b.add_edge("x", "y", edge_id="e", labels=["other"])
        finder = PathFinder(b.build(), KPLUS)
        assert finder.shortest("x", "y") is None

    def test_inverse_traversal(self):
        g = line_graph(3)
        inverse = compile_regex(ast.RPlus(ast.RLabel("k", inverse=True)))
        walk = PathFinder(g, inverse).shortest("a2", "a0")
        assert walk is not None and walk.cost == 2

    def test_deterministic_tie_break(self):
        g = diamond_graph()
        walk = PathFinder(g, KSTAR).shortest("s", "t")
        # Both s-a-t and s-b-t cost 2; the lexicographically smaller node
        # sequence (via 'a') must be chosen, deterministically.
        assert walk.sequence == ("s", "sa", "a", "at", "t")

    def test_targets_early_exit(self):
        g = line_graph(6)
        walks = PathFinder(g, KSTAR).shortest_from("a0", targets={"a2"})
        assert "a2" in walks

    def test_missing_source(self):
        g = line_graph(2)
        assert PathFinder(g, KSTAR).shortest_from("zz") == {}

    def test_node_test_regex(self):
        b = GraphBuilder()
        b.add_node("p1", labels=["Person"])
        b.add_node("p2", labels=["Person"])
        b.add_node("c", labels=["Company"])
        b.add_edge("p1", "p2", edge_id="e1", labels=["k"])
        b.add_edge("p2", "c", edge_id="e2", labels=["k"])
        g = b.build()
        # :k !Person :k — middle node must be a Person
        regex = ast.RConcat(
            (ast.RLabel("k"), ast.RNodeTest("Person"), ast.RLabel("k"))
        )
        walk = PathFinder(g, compile_regex(regex)).shortest("p1", "c")
        assert walk is not None and walk.cost == 2  # node test costs 0
        # and with !Company in the middle there is no walk
        regex2 = ast.RConcat(
            (ast.RLabel("k"), ast.RNodeTest("Company"), ast.RLabel("k"))
        )
        assert PathFinder(g, compile_regex(regex2)).shortest("p1", "c") is None


class TestViews:
    def test_view_arc_traversal(self):
        g = line_graph(3)
        views = {
            "v": {
                "a0": (ViewSegment("a1", 0.5, ("a0", "e0", "a1")),),
                "a1": (ViewSegment("a2", 0.25, ("a1", "e1", "a2")),),
            }
        }
        nfa = compile_regex(ast.RStar(ast.RView("v")))
        walks = PathFinder(g, nfa, views).shortest_from("a0")
        assert walks["a2"].cost == 0.75
        assert walks["a2"].sequence == ("a0", "e0", "a1", "e1", "a2")

    def test_weighted_changes_winner(self):
        g = diamond_graph()
        views = {
            "v": {
                "s": (
                    ViewSegment("a", 5.0, ("s", "sa", "a")),
                    ViewSegment("b", 1.0, ("s", "sb", "b")),
                ),
                "a": (ViewSegment("t", 1.0, ("a", "at", "t")),),
                "b": (ViewSegment("t", 1.0, ("b", "bt", "t")),),
            }
        }
        nfa = compile_regex(ast.RStar(ast.RView("v")))
        walk = PathFinder(g, nfa, views).shortest("s", "t")
        assert walk.sequence == ("s", "sb", "b", "bt", "t")
        assert walk.cost == 2.0


class TestReachability:
    def test_reachable_set(self):
        g = line_graph(4)
        reachable = PathFinder(g, KSTAR).reachable_from("a1")
        assert reachable == {"a1", "a2", "a3"}

    def test_plus_excludes_self_unless_cycle(self):
        g = line_graph(3)
        assert "a0" not in PathFinder(g, KPLUS).reachable_from("a0")

    def test_cycle_reaches_self(self):
        b = GraphBuilder()
        b.add_node("x")
        b.add_node("y")
        b.add_edge("x", "y", edge_id="e1", labels=["k"])
        b.add_edge("y", "x", edge_id="e2", labels=["k"])
        finder = PathFinder(b.build(), KPLUS)
        assert "x" in finder.reachable_from("x")

    def test_unknown_source(self):
        g = line_graph(2)
        assert PathFinder(g, KSTAR).reachable_from("zz") == frozenset()
