"""Unit tests for k-shortest walks and walk values."""

import pytest

from repro.lang import ast
from repro.model.builder import GraphBuilder
from repro.paths.automaton import compile_regex
from repro.paths.product import PathFinder
from repro.paths.walk import AllPathsHandle, Walk

KSTAR = compile_regex(ast.RStar(ast.RLabel("k")))


def diamond():
    b = GraphBuilder()
    for n in "sabt":
        b.add_node(n)
    b.add_edge("s", "a", edge_id="sa", labels=["k"])
    b.add_edge("s", "b", edge_id="sb", labels=["k"])
    b.add_edge("a", "t", edge_id="at", labels=["k"])
    b.add_edge("b", "t", edge_id="bt", labels=["k"])
    return b.build()


class TestKShortest:
    def test_two_paths_in_diamond(self):
        walks = PathFinder(diamond(), KSTAR).k_shortest("s", "t", 2)
        assert [w.cost for w in walks] == [2, 2]
        assert {w.sequence for w in walks} == {
            ("s", "sa", "a", "at", "t"),
            ("s", "sb", "b", "bt", "t"),
        }

    def test_cost_ordered(self):
        b = GraphBuilder()
        for n in "sat":
            b.add_node(n)
        b.add_edge("s", "t", edge_id="st", labels=["k"])
        b.add_edge("s", "a", edge_id="sa", labels=["k"])
        b.add_edge("a", "t", edge_id="at", labels=["k"])
        walks = PathFinder(b.build(), KSTAR).k_shortest("s", "t", 2)
        assert [w.cost for w in walks] == [1, 2]

    def test_k_one_matches_shortest(self):
        finder = PathFinder(diamond(), KSTAR)
        (walk,) = finder.k_shortest("s", "t", 1)
        assert walk == finder.shortest("s", "t")

    def test_walks_may_revisit_nodes(self):
        # arbitrary-walk semantics: with a cycle the 2nd shortest loops.
        b = GraphBuilder()
        b.add_node("x")
        b.add_node("y")
        b.add_edge("x", "y", edge_id="xy", labels=["k"])
        b.add_edge("y", "x", edge_id="yx", labels=["k"])
        walks = PathFinder(b.build(), KSTAR).k_shortest("x", "y", 2)
        assert [w.cost for w in walks] == [1, 3]
        assert walks[1].sequence == ("x", "xy", "y", "yx", "x", "xy", "y")

    def test_fewer_than_k_available(self):
        b = GraphBuilder()
        b.add_node("x")
        b.add_node("y")
        b.add_edge("x", "y", edge_id="e", labels=["k"])
        walks = PathFinder(b.build(), KSTAR).k_shortest("x", "y", 5)
        assert len(walks) == 1  # a DAG with one path has one walk

    def test_distinct_walks_only(self):
        walks = PathFinder(diamond(), KSTAR).k_shortest("s", "t", 10)
        assert len(walks) == len({w.sequence for w in walks})

    def test_k_zero(self):
        assert PathFinder(diamond(), KSTAR).k_shortest("s", "t", 0) == []

    def test_unknown_endpoints(self):
        finder = PathFinder(diamond(), KSTAR)
        assert finder.k_shortest("zz", "t", 2) == []
        assert finder.k_shortest("s", "zz", 2) == []


def duplicate_run_setup(branches=2):
    """A 2-cycle with a regex whose runs massively duplicate each walk.

    ``((k k)|(k k))*`` accepts every even-length walk, and each walk of
    length 2i has ``branches**i`` distinct automaton runs — all
    converging on the single star-hub product state.
    """
    b = GraphBuilder()
    b.add_node("x")
    b.add_node("y")
    b.add_edge("x", "y", edge_id="exy", labels=["k"])
    b.add_edge("y", "x", edge_id="eyx", labels=["k"])
    pair = ast.RConcat((ast.RLabel("k"), ast.RLabel("k")))
    regex = ast.RStar(ast.RAlt(tuple(pair for _ in range(branches))))
    return b.build(), compile_regex(regex)


class TestKShortestDuplicateTruncation:
    """Regression: the historical ``2k + 4`` pop bound silently dropped
    valid walks when duplicate graph walks from distinct automaton runs
    exhausted a product state's budget. The public API must detect the
    suppression and fall back to the duplicate-aware exact scan."""

    def test_bounded_scan_truncates(self):
        # Documents the original bug: the bounded fast path alone loses
        # the 5th walk (duplicates of cheaper walks eat the pop budget).
        graph, nfa = duplicate_run_setup()
        finder = PathFinder(graph, nfa, naive=True)
        results, truncated = finder._k_shortest_bounded("x", "x", 5)
        assert truncated
        assert len(results) < 5

    def test_public_api_falls_back_to_exact_scan(self):
        graph, nfa = duplicate_run_setup()
        finder = PathFinder(graph, nfa, naive=True)
        walks = finder.k_shortest("x", "x", 5)
        # x, xx (via y and back), xxxx, ... one distinct walk per even
        # length: all five must be found, in cost order.
        assert [w.cost for w in walks] == [0, 2, 4, 6, 8]
        assert len({w.sequence for w in walks}) == 5

    def test_batched_engine_is_exact(self):
        graph, nfa = duplicate_run_setup(branches=3)
        naive = PathFinder(graph, nfa, naive=True)
        batched = PathFinder(graph, nfa)
        for k in (1, 3, 4, 5, 7):
            expected = naive.k_shortest("x", "x", k)
            assert batched.k_shortest("x", "x", k) == expected
            assert len(expected) == k


class TestWalkValue:
    def test_accessors(self):
        walk = Walk(("a", "e1", "b", "e2", "c"), 2.0)
        assert walk.source == "a" and walk.target == "c"
        assert walk.nodes() == ("a", "b", "c")
        assert walk.edges() == ("e1", "e2")
        assert walk.length() == 2
        assert walk.key() == ("a", "e1", "b", "e2", "c")

    def test_zero_length(self):
        walk = Walk(("a",))
        assert walk.length() == 0 and walk.source == walk.target == "a"

    def test_invalid_sequence(self):
        with pytest.raises(ValueError):
            Walk(("a", "e1"))
        with pytest.raises(ValueError):
            Walk(())

    def test_concat(self):
        w1 = Walk(("a", "e1", "b"), 1.0)
        w2 = Walk(("b", "e2", "c"), 2.0)
        joined = w1.concat(w2)
        assert joined.sequence == ("a", "e1", "b", "e2", "c")
        assert joined.cost == 3.0

    def test_concat_mismatch(self):
        with pytest.raises(ValueError):
            Walk(("a",)).concat(Walk(("b",)))

    def test_hashable(self):
        assert len({Walk(("a",)), Walk(("a",))}) == 1

    def test_all_paths_handle_repr(self):
        handle = AllPathsHandle("a", "b", ("a", "b"), ("e",))
        assert "a" in repr(handle)
