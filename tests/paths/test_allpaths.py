"""Unit tests for the ALL-paths graph projection (method of [10])."""

from repro.lang import ast
from repro.model.builder import GraphBuilder
from repro.paths.automaton import compile_regex
from repro.paths.product import PathFinder

KSTAR = compile_regex(ast.RStar(ast.RLabel("k")))
KPLUS = compile_regex(ast.RPlus(ast.RLabel("k")))


def graph_with_detour():
    """s -> a -> t plus a dead-end s -> d and a detour a -> b -> t."""
    b = GraphBuilder()
    for n in "sabtd":
        b.add_node(n)
    b.add_edge("s", "a", edge_id="sa", labels=["k"])
    b.add_edge("a", "t", edge_id="at", labels=["k"])
    b.add_edge("a", "b", edge_id="ab", labels=["k"])
    b.add_edge("b", "t", edge_id="bt", labels=["k"])
    b.add_edge("s", "d", edge_id="sd", labels=["k"])  # dead end
    return b.build()


class TestProjection:
    def test_dead_ends_excluded(self):
        g = graph_with_detour()
        nodes, edges = PathFinder(g, KSTAR).all_paths_projection("s", "t")
        assert nodes == {"s", "a", "b", "t"}
        assert edges == {"sa", "at", "ab", "bt"}
        assert "d" not in nodes and "sd" not in edges

    def test_no_path_is_empty(self):
        g = graph_with_detour()
        nodes, edges = PathFinder(g, KSTAR).all_paths_projection("t", "s")
        assert nodes == frozenset() and edges == frozenset()

    def test_self_projection_zero_length(self):
        g = graph_with_detour()
        nodes, edges = PathFinder(g, KSTAR).all_paths_projection("s", "s")
        # The empty walk conforms to k*; only s itself is on it.
        assert nodes == {"s"} and edges == frozenset()

    def test_cycle_included(self):
        # With a cycle on a conforming route, the cycle's edges lie on
        # *some* walk, so they are part of the projection.
        b = GraphBuilder()
        for n in "sct":
            b.add_node(n)
        b.add_edge("s", "c", edge_id="sc", labels=["k"])
        b.add_edge("c", "c", edge_id="cc", labels=["k"])
        b.add_edge("c", "t", edge_id="ct", labels=["k"])
        nodes, edges = PathFinder(b.build(), KSTAR).all_paths_projection("s", "t")
        assert "cc" in edges

    def test_label_filtering(self):
        b = GraphBuilder()
        for n in "sat":
            b.add_node(n)
        b.add_edge("s", "a", edge_id="sa", labels=["k"])
        b.add_edge("a", "t", edge_id="at", labels=["other"])
        nodes, edges = PathFinder(b.build(), KPLUS).all_paths_projection("s", "t")
        assert nodes == frozenset() and edges == frozenset()

    def test_unknown_nodes(self):
        g = graph_with_detour()
        assert PathFinder(g, KSTAR).all_paths_projection("zz", "t") == (
            frozenset(), frozenset(),
        )

    def test_matches_enumeration_on_dag(self):
        """Projection == union of all enumerated simple paths on a DAG."""
        from repro.paths.simplepaths import enumerate_simple_paths

        g = graph_with_detour()
        nodes, edges = PathFinder(g, KSTAR).all_paths_projection("s", "t")
        enum_nodes, enum_edges = set(), set()
        for walk in enumerate_simple_paths(g, KSTAR, "s", "t"):
            enum_nodes.update(walk.nodes())
            enum_edges.update(walk.edges())
        assert nodes == enum_nodes and edges == enum_edges
