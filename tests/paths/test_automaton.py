"""Unit tests for regex compilation into NFAs."""

from repro.lang import ast
from repro.paths.automaton import compile_regex, regex_view_names


def arcs_from_start(nfa):
    return {(arc.kind, arc.label, arc.inverse) for arc, _ in nfa.moves(nfa.start)}


class TestCompilation:
    def test_single_label(self):
        nfa = compile_regex(ast.RLabel("knows"))
        assert arcs_from_start(nfa) == {("edge", "knows", False)}
        assert not nfa.is_accepting(nfa.start)

    def test_inverse_label(self):
        nfa = compile_regex(ast.RLabel("knows", inverse=True))
        assert arcs_from_start(nfa) == {("edge", "knows", True)}

    def test_wildcard(self):
        nfa = compile_regex(ast.RAnyEdge())
        assert arcs_from_start(nfa) == {("edge", None, False)}

    def test_node_test(self):
        nfa = compile_regex(ast.RNodeTest("Person"))
        assert arcs_from_start(nfa) == {("node", "Person", False)}

    def test_view_reference(self):
        nfa = compile_regex(ast.RView("wKnows"))
        assert arcs_from_start(nfa) == {("view", "wKnows", False)}
        assert nfa.view_names() == {"wKnows"}

    def test_star_accepts_empty(self):
        nfa = compile_regex(ast.RStar(ast.RLabel("knows")))
        assert nfa.is_accepting(nfa.start)

    def test_plus_does_not_accept_empty(self):
        nfa = compile_regex(ast.RPlus(ast.RLabel("knows")))
        assert not nfa.is_accepting(nfa.start)

    def test_optional_accepts_empty(self):
        nfa = compile_regex(ast.ROpt(ast.RLabel("knows")))
        assert nfa.is_accepting(nfa.start)

    def test_eps(self):
        nfa = compile_regex(ast.REps())
        assert nfa.is_accepting(nfa.start)
        assert arcs_from_start(nfa) == set()

    def test_alternation_exposes_both(self):
        nfa = compile_regex(ast.RAlt((ast.RLabel("a"), ast.RLabel("b"))))
        assert arcs_from_start(nfa) == {
            ("edge", "a", False), ("edge", "b", False),
        }

    def test_concat_sequencing(self):
        nfa = compile_regex(ast.RConcat((ast.RLabel("a"), ast.RLabel("b"))))
        assert arcs_from_start(nfa) == {("edge", "a", False)}
        # after taking 'a', only 'b' is available
        ((_, mid),) = nfa.moves(nfa.start)
        assert {(a.label) for a, _ in nfa.moves(mid)} == {"b"}

    def test_none_means_any_walk(self):
        nfa = compile_regex(None)
        assert nfa.is_accepting(nfa.start)
        assert arcs_from_start(nfa) == {("edge", None, False)}

    def test_nested_star(self):
        nfa = compile_regex(
            ast.RStar(ast.RConcat((ast.RLabel("a"), ast.RStar(ast.RLabel("b")))))
        )
        assert nfa.is_accepting(nfa.start)


class TestViewNames:
    def test_collects_nested(self):
        regex = ast.RStar(
            ast.RAlt((ast.RView("v1"), ast.RConcat((ast.RView("v2"),
                                                    ast.RLabel("x")))))
        )
        assert regex_view_names(regex) == {"v1", "v2"}

    def test_none(self):
        assert regex_view_names(None) == frozenset()

    def test_no_views(self):
        assert regex_view_names(ast.RLabel("knows")) == frozenset()
