"""Bounded repetition ``r{m,n}`` (the Section 6 succinctness convenience)."""

import pytest

from repro import GCoreEngine, GraphBuilder
from repro.errors import ParseError
from repro.lang.parser import parse_statement
from repro.lang.pretty import pretty_statement


@pytest.fixture()
def line_engine():
    b = GraphBuilder()
    for i in range(6):
        b.add_node(f"a{i}", labels=["N"], properties={"i": i})
    for i in range(5):
        b.add_edge(f"a{i}", f"a{i+1}", edge_id=f"e{i}", labels=["k"])
    eng = GCoreEngine()
    eng.register_graph("line", b.build(), default=True)
    return eng


class TestSemantics:
    def targets(self, engine, regex):
        table = engine.bindings(
            f"MATCH (s {{i=0}})-/p<{regex}>/->(t)"
        )
        return {row["t"] for row in table}

    def test_exact_count(self, line_engine):
        assert self.targets(line_engine, ":k{2}") == {"a2"}

    def test_range(self, line_engine):
        assert self.targets(line_engine, ":k{1,3}") == {"a1", "a2", "a3"}

    def test_zero_lower_bound(self, line_engine):
        assert self.targets(line_engine, ":k{0,2}") == {"a0", "a1", "a2"}

    def test_open_upper_bound(self, line_engine):
        assert self.targets(line_engine, ":k{3,}") == {"a3", "a4", "a5"}

    def test_equivalent_to_concat(self, line_engine):
        assert self.targets(line_engine, ":k{2}") == self.targets(
            line_engine, ":k :k"
        )

    def test_nested_with_alternation(self, line_engine):
        assert self.targets(line_engine, "(:k|:k){2,2}") == {"a2"}


class TestSyntax:
    def test_round_trip(self):
        for regex in (":k{2}", ":k{1,3}", ":k{3,}"):
            text = f"CONSTRUCT (a) MATCH (a)-/p<{regex}>/->(b)"
            statement = parse_statement(text)
            assert parse_statement(pretty_statement(statement)) == statement

    def test_bad_bounds_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("CONSTRUCT (a) MATCH (a)-/p<:k{3,1}>/->(b)")
