"""Unit tests for the NP-hard simple-path baseline."""

from repro.lang import ast
from repro.model.builder import GraphBuilder
from repro.paths.automaton import compile_regex
from repro.paths.simplepaths import (
    count_simple_paths,
    enumerate_simple_paths,
    simple_path_exists,
)

KSTAR = compile_regex(ast.RStar(ast.RLabel("k")))


def ladder(rungs):
    """A graph with 2^rungs simple s->t paths (exponential blow-up)."""
    b = GraphBuilder()
    b.add_node("n0")
    previous = "n0"
    for i in range(rungs):
        top, bottom, merge = f"t{i}", f"b{i}", f"n{i+1}"
        b.add_node(top)
        b.add_node(bottom)
        b.add_node(merge)
        b.add_edge(previous, top, edge_id=f"e{i}a", labels=["k"])
        b.add_edge(previous, bottom, edge_id=f"e{i}b", labels=["k"])
        b.add_edge(top, merge, edge_id=f"e{i}c", labels=["k"])
        b.add_edge(bottom, merge, edge_id=f"e{i}d", labels=["k"])
        previous = merge
    return b.build(), "n0", previous


class TestEnumeration:
    def test_exponential_count(self):
        for rungs in (1, 2, 3, 4):
            g, s, t = ladder(rungs)
            assert count_simple_paths(g, KSTAR, s, t) == 2 ** rungs

    def test_no_node_repetition(self):
        g, s, t = ladder(2)
        for walk in enumerate_simple_paths(g, KSTAR, s, t):
            nodes = walk.nodes()
            assert len(nodes) == len(set(nodes))

    def test_limit(self):
        g, s, t = ladder(4)
        assert count_simple_paths(g, KSTAR, s, t, limit=5) == 5

    def test_existence(self):
        g, s, t = ladder(2)
        assert simple_path_exists(g, KSTAR, s, t)
        assert not simple_path_exists(g, KSTAR, t, s)

    def test_cycle_not_followed(self):
        b = GraphBuilder()
        b.add_node("x")
        b.add_node("y")
        b.add_edge("x", "y", edge_id="xy", labels=["k"])
        b.add_edge("y", "x", edge_id="yx", labels=["k"])
        walks = list(enumerate_simple_paths(b.build(), KSTAR, "x", "y"))
        assert len(walks) == 1  # the looping walk repeats x, so excluded

    def test_all_targets(self):
        g, s, _ = ladder(1)
        # target None: all conforming simple paths from s (any endpoint).
        count = count_simple_paths(g, KSTAR, s)
        assert count == 5  # the empty walk, two 1-hop and two 2-hop walks

    def test_unknown_source(self):
        g, _, _ = ladder(1)
        assert count_simple_paths(g, KSTAR, "zz") == 0
