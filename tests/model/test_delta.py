"""GraphDelta: the mutation layer (validation, cascades, effects, stats)."""

import pytest

from repro import GraphBuilder, GraphDelta, apply_delta
from repro.errors import DeltaError, ValidationError
from repro.model.schema import snb_schema
from repro.model.statistics import GraphStatistics


def small_graph():
    b = GraphBuilder(name="g")
    for n in ("a", "b", "c"):
        b.add_node(n, labels=["Person"], properties={"score": 1})
    b.add_edge("a", "b", edge_id="ab", labels=["knows"], properties={"since": 2020})
    b.add_edge("b", "c", edge_id="bc", labels=["knows"])
    b.add_path(["a", "ab", "b", "bc", "c"], path_id="p1", labels=["trail"])
    return b.build()


class TestApply:
    def test_add_node_and_edge(self):
        g, effects = apply_delta(
            small_graph(),
            GraphDelta()
            .add_node("d", labels=["Person"], properties={"score": 9})
            .add_edge("cd", "c", "d", labels=["knows"]),
        )
        assert "d" in g.nodes and "cd" in g.edges
        assert g.endpoints("cd") == ("c", "d")
        assert g.labels("d") == frozenset({"Person"})
        assert g.property("d", "score") == frozenset({9})
        assert effects.added_nodes == {"d"}
        assert effects.added_edges == {"cd": ("c", "d")}
        # the input graph is untouched (immutability)
        assert "d" not in small_graph().nodes

    def test_remove_node_cascades(self):
        g, effects = apply_delta(small_graph(), GraphDelta().remove_node("b"))
        assert g.nodes == frozenset({"a", "c"})
        assert not g.edges and not g.paths
        assert effects.removed_nodes == {"b"}
        assert set(effects.removed_edges) == {"ab", "bc"}
        assert effects.removed_paths == {"p1"}

    def test_remove_edge_cascades_to_paths(self):
        g, effects = apply_delta(small_graph(), GraphDelta().remove_edge("bc"))
        assert "bc" not in g.edges and "ab" in g.edges
        assert not g.paths
        assert effects.removed_paths == {"p1"}

    def test_label_and_property_ops(self):
        g, effects = apply_delta(
            small_graph(),
            GraphDelta()
            .add_label("a", "Manager")
            .remove_label("c", "Person")
            .set_property("a", "score", [1, 2])
            .remove_property("b", "score")
            .set_property("ab", "since", None),
        )
        assert g.labels("a") == frozenset({"Person", "Manager"})
        assert g.labels("c") == frozenset()
        assert g.property("a", "score") == frozenset({1, 2})
        assert g.property("b", "score") == frozenset()
        assert g.property("ab", "since") == frozenset()
        assert effects.modified == {"a", "b", "c", "ab"}

    def test_touched_nodes_close_over_edge_endpoints(self):
        _, effects = apply_delta(
            small_graph(), GraphDelta().set_property("bc", "w", 3)
        )
        assert effects.touched == frozenset({"bc"})
        assert effects.touched_nodes == frozenset({"b", "c"})
        _, effects = apply_delta(small_graph(), GraphDelta().remove_edge("ab"))
        assert {"a", "b"} <= set(effects.touched_nodes)

    def test_add_then_remove_in_same_delta_nets_out(self):
        g, effects = apply_delta(
            small_graph(),
            GraphDelta().add_node("tmp").remove_node("tmp"),
        )
        assert "tmp" not in g.nodes
        assert not effects.added_nodes and not effects.removed_nodes

    def test_result_satisfies_invariants(self):
        g, _ = apply_delta(
            small_graph(),
            GraphDelta().remove_node("a").add_node("d").add_edge("cd", "c", "d"),
        )
        # re-validating must not raise
        type(g)(
            nodes=g.nodes, edges=dict(g.rho), paths=dict(g.delta),
            labels=g.label_map(), properties=g.property_map(),
        )


class TestValidation:
    def test_add_existing_identifier(self):
        with pytest.raises(DeltaError):
            apply_delta(small_graph(), GraphDelta().add_node("a"))
        with pytest.raises(DeltaError):
            apply_delta(small_graph(), GraphDelta().add_node("ab"))
        with pytest.raises(DeltaError):
            apply_delta(small_graph(), GraphDelta().add_edge("p1", "a", "b"))

    def test_dangling_edge_rejected(self):
        with pytest.raises(DeltaError):
            apply_delta(small_graph(), GraphDelta().add_edge("ax", "a", "zz"))

    def test_unknown_targets(self):
        for delta in (
            GraphDelta().remove_node("zz"),
            GraphDelta().remove_edge("zz"),
            GraphDelta().add_label("zz", "L"),
            GraphDelta().remove_label("zz", "L"),
            GraphDelta().set_property("zz", "k", 1),
            GraphDelta().remove_property("zz", "k"),
        ):
            with pytest.raises(DeltaError):
                apply_delta(small_graph(), delta)

    def test_edge_usable_after_add_in_same_delta(self):
        g, _ = apply_delta(
            small_graph(), GraphDelta().add_node("d").add_edge("ad", "a", "d")
        )
        assert g.endpoints("ad") == ("a", "d")

    def test_repr_and_len(self):
        delta = GraphDelta().add_node("x").remove_node("x")
        assert len(delta) == 2 and bool(delta)
        assert "add_node" in repr(delta)
        assert not GraphDelta()


class TestStatisticsAdjustment:
    def test_counts_match_full_rebuild_exactly(self):
        base = small_graph()
        stats = base.statistics()
        delta = (
            GraphDelta()
            .add_node("d", labels=["Person", "Manager"])
            .add_edge("cd", "c", "d", labels=["knows"])
            .remove_edge("ab")
            .add_label("b", "Manager")
            .remove_label("c", "Person")
        )
        new_graph, effects = apply_delta(base, delta)
        adjusted = stats.apply_delta(base, new_graph, effects)
        rebuilt = GraphStatistics(new_graph)
        assert adjusted.node_count == rebuilt.node_count
        assert adjusted.edge_count == rebuilt.edge_count
        assert adjusted.path_count == rebuilt.path_count
        assert adjusted.node_label_counts == rebuilt.node_label_counts
        assert adjusted.edge_label_counts == rebuilt.edge_label_counts
        assert adjusted.path_label_counts == rebuilt.path_label_counts

    def test_endpoint_estimates_stay_bounded(self):
        base = small_graph()
        stats = base.statistics()
        new_graph, effects = apply_delta(
            base, GraphDelta().add_node("d").add_edge("cd", "c", "d",
                                                      labels=["knows"])
        )
        adjusted = stats.apply_delta(base, new_graph, effects)
        for table in (adjusted.edge_label_sources, adjusted.edge_label_targets):
            for label, count in table.items():
                assert 1 <= count <= adjusted.edge_label_counts[label] or (
                    count <= adjusted.node_count
                )


class TestSchemaScopedValidation:
    def test_validate_objects_only_checks_touched(self):
        schema = snb_schema()
        b = GraphBuilder()
        b.add_node("p1", labels=["Person"], properties={"firstName": "A"})
        b.add_node("rogue", labels=["Alien"])  # pre-existing violation
        g = b.build()
        # scoped validation of p1 alone passes despite the rogue node
        assert schema.validate_objects(g, {"p1"}) == []
        with pytest.raises(ValidationError):
            schema.validate_objects(g, {"rogue"})
        # removed identifiers are skipped silently
        assert schema.validate_objects(g, {"ghost"}) == []

    def test_validate_objects_checks_edges(self):
        schema = snb_schema()
        b = GraphBuilder()
        b.add_node("p1", labels=["Person"])
        b.add_node("t1", labels=["Tag"])
        b.add_edge("t1", "p1", edge_id="e1", labels=["knows"])  # Tag -> Person: bad
        g = b.build()
        problems = schema.validate_objects(g, {"e1"}, strict=False)
        assert problems and "knows" in problems[0]
