"""Unit tests for GraphBuilder."""

import pytest

from repro.errors import GraphModelError
from repro.model.builder import GraphBuilder


class TestNodes:
    def test_auto_ids_are_unique(self):
        b = GraphBuilder()
        ids = {b.add_node() for _ in range(10)}
        assert len(ids) == 10

    def test_explicit_id(self):
        b = GraphBuilder()
        assert b.add_node("me") == "me"

    def test_re_adding_merges_labels_and_props(self):
        b = GraphBuilder()
        b.add_node("n", labels=["A"], properties={"k": 1})
        b.add_node("n", labels=["B"], properties={"k": 2, "j": "x"})
        g = b.build()
        assert g.labels("n") == {"A", "B"}
        assert g.property("n", "k") == {1, 2}
        assert g.property("n", "j") == {"x"}

    def test_kwargs_properties(self):
        b = GraphBuilder()
        b.add_node("n", name="Ada", age=36)
        g = b.build()
        assert g.property("n", "name") == {"Ada"}

    def test_multivalued_property(self):
        b = GraphBuilder()
        b.add_node("n", employer={"CWI", "MIT"})
        assert b.build().property("n", "employer") == {"CWI", "MIT"}

    def test_node_id_clash_with_edge(self):
        b = GraphBuilder()
        b.add_node("a")
        b.add_node("b")
        b.add_edge("a", "b", edge_id="e")
        with pytest.raises(GraphModelError):
            b.add_node("e")


class TestEdges:
    def test_endpoints_must_exist(self):
        b = GraphBuilder()
        b.add_node("a")
        with pytest.raises(GraphModelError):
            b.add_edge("a", "zz")

    def test_parallel_edges_allowed(self):
        b = GraphBuilder()
        b.add_node("a")
        b.add_node("b")
        e1 = b.add_edge("a", "b")
        e2 = b.add_edge("a", "b")
        assert e1 != e2
        assert b.build().size() == 2

    def test_edge_re_add_conflicting_endpoints(self):
        b = GraphBuilder()
        b.add_node("a")
        b.add_node("b")
        b.add_edge("a", "b", edge_id="e")
        with pytest.raises(GraphModelError):
            b.add_edge("b", "a", edge_id="e")


class TestPathsAndMutation:
    def test_add_path_validates_on_build(self):
        b = GraphBuilder()
        b.add_node("a")
        b.add_node("b")
        b.add_edge("a", "b", edge_id="e")
        b.add_path(["a", "e", "b"], path_id="p")
        g = b.build()
        assert g.path_sequence("p") == ("a", "e", "b")

    def test_bad_path_fails_at_build(self):
        b = GraphBuilder()
        b.add_node("a")
        b.add_path(["a", "missing_edge", "a"], path_id="p")
        with pytest.raises(GraphModelError):
            b.build()

    def test_set_label_and_property(self):
        b = GraphBuilder()
        b.add_node("n")
        b.set_label("n", "L1", "L2")
        b.set_property("n", "k", 5)
        g = b.build()
        assert g.labels("n") == {"L1", "L2"}
        assert g.property("n", "k") == {5}

    def test_set_property_to_none_removes(self):
        b = GraphBuilder()
        b.add_node("n", k=1)
        b.set_property("n", "k", None)
        assert b.build().property("n", "k") == frozenset()

    def test_set_on_unknown_object(self):
        b = GraphBuilder()
        with pytest.raises(GraphModelError):
            b.set_label("zz", "L")
        with pytest.raises(GraphModelError):
            b.set_property("zz", "k", 1)

    def test_merge_graph_round_trip(self):
        b1 = GraphBuilder()
        b1.add_node("a", labels=["A"], properties={"p": 1})
        b1.add_node("b")
        b1.add_edge("a", "b", edge_id="e", labels=["x"])
        b1.add_path(["a", "e", "b"], path_id="p", labels=["r"])
        g1 = b1.build()
        b2 = GraphBuilder()
        b2.merge_graph(g1)
        assert b2.build() == g1

    def test_contains(self):
        b = GraphBuilder()
        b.add_node("n")
        assert "n" in b and "zz" not in b
