"""CSV import/export tests."""

import io

import pytest

from repro.datasets import social_graph
from repro.errors import GraphModelError
from repro.model.io_csv import (
    dump_graph_csv,
    dump_table_csv,
    format_cell,
    load_graph_csv,
    load_table_csv,
    parse_cell,
)
from repro.model.values import Date
from repro.table import Table

NODES_CSV = """id,labels,name,age,employer
n1,Person,Ann,34,Acme
n2,Person;Manager,Bob,41,CWI;MIT
n3,Tag,Wagner,,
"""

EDGES_CSV = """id,source,target,labels,since
e1,n1,n2,knows,2014-12-01
e2,n2,n3,hasInterest,
"""


class TestCells:
    def test_parse_types(self):
        assert parse_cell("42") == 42
        assert parse_cell("2.5") == 2.5
        assert parse_cell("true") is True
        assert parse_cell("False") is False
        assert parse_cell("2014-12-01") == Date(2014, 12, 1)
        assert parse_cell("hello") == "hello"
        assert parse_cell("") is None

    def test_parse_multivalued(self):
        assert parse_cell("CWI;MIT") == frozenset({"CWI", "MIT"})
        assert parse_cell("1;2") == frozenset({1, 2})

    def test_format_round_trips(self):
        for value in (42, 2.5, True, False, "x", Date(2020, 1, 2)):
            assert parse_cell(format_cell(value)) == value
        assert parse_cell(format_cell(frozenset({"CWI", "MIT"}))) == frozenset(
            {"CWI", "MIT"}
        )


class TestGraphCsv:
    def load(self):
        return load_graph_csv(
            io.StringIO(NODES_CSV), io.StringIO(EDGES_CSV), name="csvg"
        )

    def test_nodes_loaded(self):
        g = self.load()
        assert g.nodes == {"n1", "n2", "n3"}
        assert g.labels("n2") == {"Person", "Manager"}
        assert g.property("n1", "age") == {34}
        assert g.property("n2", "employer") == {"CWI", "MIT"}
        assert g.property("n3", "age") == frozenset()  # empty cell absent

    def test_edges_loaded(self):
        g = self.load()
        assert g.endpoints("e1") == ("n1", "n2")
        assert g.has_label("e2", "hasInterest")
        assert g.property("e1", "since") == {Date(2014, 12, 1)}

    def test_missing_id_rejected(self):
        with pytest.raises(GraphModelError):
            load_graph_csv(io.StringIO("id,labels\n,Person\n"))

    def test_missing_endpoint_rejected(self):
        with pytest.raises(GraphModelError):
            load_graph_csv(
                io.StringIO("id,labels\nn1,\n"),
                io.StringIO("id,source,target,labels\ne1,n1,,x\n"),
            )

    def test_round_trip(self):
        g = self.load()
        nodes_out, edges_out = io.StringIO(), io.StringIO()
        dump_graph_csv(g, nodes_out, edges_out)
        nodes_out.seek(0)
        edges_out.seek(0)
        restored = load_graph_csv(nodes_out, edges_out)
        assert restored == g

    def test_paths_not_representable(self):
        g = social_graph()
        from repro.model.builder import GraphBuilder

        b = GraphBuilder()
        b.merge_graph(g)
        b.add_path(
            ["john", "knows_john_peter", "peter"], path_id="p1"
        )
        with pytest.raises(GraphModelError):
            dump_graph_csv(b.build(), io.StringIO(), io.StringIO())

    def test_loaded_graph_is_queryable(self):
        from repro import GCoreEngine

        engine = GCoreEngine()
        engine.register_graph("csvg", self.load(), default=True)
        table = engine.bindings("MATCH (n:Person)-[e:knows]->(m)")
        assert len(table) == 1


class TestTableCsv:
    def test_load(self):
        table = load_table_csv(
            io.StringIO("custName,qty\nAlice,2\nBob,5\n"), name="orders"
        )
        assert table.columns == ("custName", "qty")
        assert table.rows == (("Alice", 2), ("Bob", 5))

    def test_empty(self):
        assert len(load_table_csv(io.StringIO(""))) == 0

    def test_round_trip(self):
        table = Table(("a", "b"), [(1, "x"), (2, None)])
        out = io.StringIO()
        dump_table_csv(table, out)
        out.seek(0)
        assert load_table_csv(out) == table

    def test_file_paths(self, tmp_path):
        nodes = tmp_path / "nodes.csv"
        edges = tmp_path / "edges.csv"
        nodes.write_text(NODES_CSV)
        edges.write_text(EDGES_CSV)
        g = load_graph_csv(str(nodes), str(edges))
        assert g.order() == 3
        out_n, out_e = tmp_path / "n2.csv", tmp_path / "e2.csv"
        dump_graph_csv(g, str(out_n), str(out_e))
        assert load_graph_csv(str(out_n), str(out_e)) == g
