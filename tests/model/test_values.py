"""Unit tests for the value-set semantics of Section 3."""

import pytest

from repro.model.values import (
    Date,
    EMPTY_SET,
    as_scalar,
    as_value_set,
    format_scalar,
    distinct_key,
    format_value_set,
    gcore_compare,
    gcore_equals,
    gcore_in,
    gcore_subset,
    is_scalar,
    truthy,
)


class TestDate:
    def test_parse_paper_format(self):
        assert Date.parse("1/12/2014") == Date(2014, 12, 1)

    def test_parse_iso(self):
        assert Date.parse("2014-12-01") == Date(2014, 12, 1)

    def test_str_is_iso(self):
        assert str(Date(2014, 12, 1)) == "2014-12-01"

    def test_ordering(self):
        assert Date(2014, 1, 2) < Date(2014, 2, 1) < Date(2015, 1, 1)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Date.parse("yesterday")


class TestValueSets:
    def test_scalar_becomes_singleton(self):
        assert as_value_set("MIT") == frozenset({"MIT"})

    def test_none_becomes_empty(self):
        assert as_value_set(None) == EMPTY_SET

    def test_collection_becomes_set(self):
        assert as_value_set(["CWI", "MIT"]) == frozenset({"CWI", "MIT"})

    def test_frozenset_passes_through(self):
        values = frozenset({1, 2})
        assert as_value_set(values) is values

    def test_rejects_non_literals(self):
        with pytest.raises(TypeError):
            as_value_set(object())

    def test_rejects_nested_non_literals(self):
        with pytest.raises(TypeError):
            as_value_set(frozenset({object()}))

    def test_as_scalar_unwraps_singleton(self):
        assert as_scalar(frozenset({"MIT"})) == "MIT"

    def test_as_scalar_keeps_multisets(self):
        values = frozenset({"CWI", "MIT"})
        assert as_scalar(values) is values

    def test_is_scalar(self):
        assert is_scalar("x") and is_scalar(1) and is_scalar(1.5)
        assert is_scalar(True) and is_scalar(Date(2020, 1, 1))
        assert not is_scalar([1]) and not is_scalar(None)


class TestEquality:
    def test_frank_fails_the_join(self):
        # "MIT" = {"CWI","MIT"} evaluates to FALSE (Section 3).
        assert not gcore_equals("MIT", frozenset({"CWI", "MIT"}))

    def test_singleton_matches_scalar(self):
        assert gcore_equals("MIT", frozenset({"MIT"}))

    def test_set_to_set(self):
        assert gcore_equals(frozenset({"a", "b"}), frozenset({"b", "a"}))

    def test_absent_property_is_never_equal(self):
        assert not gcore_equals(EMPTY_SET, "Acme")

    def test_empty_equals_empty(self):
        assert gcore_equals(EMPTY_SET, EMPTY_SET)

    def test_int_float_coercion(self):
        assert gcore_equals(1, 1.0)

    def test_bool_is_not_one(self):
        assert not gcore_equals(True, 1)


class TestIn:
    def test_member(self):
        assert gcore_in("MIT", frozenset({"CWI", "MIT"}))

    def test_non_member(self):
        assert not gcore_in("Acme", frozenset({"CWI", "MIT"}))

    def test_in_empty_set_is_false(self):
        # 'Acme' IN (absent employer) is false, so NOT ... IN is true for
        # the unemployed Peter (the wKnows WHERE clause).
        assert not gcore_in("Acme", EMPTY_SET)

    def test_scalar_right_operand_is_singleton(self):
        assert gcore_in("Acme", "Acme")

    def test_multivalued_left_is_false(self):
        assert not gcore_in(frozenset({"a", "b"}), frozenset({"a", "b"}))


class TestSubset:
    def test_subset(self):
        assert gcore_subset(frozenset({"a"}), frozenset({"a", "b"}))

    def test_not_subset(self):
        assert not gcore_subset(frozenset({"a", "c"}), frozenset({"a", "b"}))

    def test_empty_is_subset_of_anything(self):
        assert gcore_subset(EMPTY_SET, frozenset({"a"}))

    def test_scalar_coercion(self):
        assert gcore_subset("a", frozenset({"a", "b"}))


class TestComparison:
    def test_numbers(self):
        assert gcore_compare("<", 1, 2)
        assert gcore_compare("<=", 2, 2)
        assert gcore_compare(">", 3, 2)
        assert gcore_compare(">=", 3, 3)

    def test_singleton_sets_unwrap(self):
        assert gcore_compare(">", frozenset({5}), 4)

    def test_empty_set_comparisons_are_false(self):
        assert not gcore_compare("<", EMPTY_SET, 5)
        assert not gcore_compare(">", 5, EMPTY_SET)

    def test_multivalued_comparisons_are_false(self):
        assert not gcore_compare("<", frozenset({1, 2}), 5)

    def test_mixed_types_are_false(self):
        assert not gcore_compare("<", "a", 5)

    def test_bool_is_not_a_number(self):
        # Regression: isinstance(True, int) made TRUE < 2 compare 1 < 2.
        # Booleans must follow the normalize_scalar policy (a class of
        # their own), so bool-vs-number comparisons are false.
        assert not gcore_compare("<", True, 2)
        assert not gcore_compare("<=", False, 0)
        assert not gcore_compare(">", 2, True)
        assert not gcore_compare(">=", 1, True)
        assert not gcore_compare("<", frozenset({True}), 2)

    def test_bools_compare_with_bools(self):
        assert gcore_compare("<", False, True)
        assert gcore_compare(">=", True, True)

    def test_strings_compare(self):
        assert gcore_compare("<", "abc", "abd")

    def test_dates_compare(self):
        assert gcore_compare("<", Date(2014, 1, 1), Date(2015, 1, 1))

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            gcore_compare("<=>", 1, 2)


class TestTruthyAndFormat:
    def test_truthy_bool(self):
        assert truthy(True) and not truthy(False)

    def test_truthy_singleton_bool(self):
        assert truthy(frozenset({True}))

    def test_truthy_non_bool_is_false(self):
        assert not truthy(1) and not truthy("x") and not truthy(EMPTY_SET)

    def test_format_scalar_quotes_strings(self):
        assert format_scalar("MIT") == '"MIT"'

    def test_format_singleton_without_braces(self):
        assert format_value_set(frozenset({"MIT"})) == '"MIT"'

    def test_format_multivalue_with_braces(self):
        text = format_value_set(frozenset({"CWI", "MIT"}))
        assert text == '{"CWI", "MIT"}'

    def test_format_empty(self):
        assert format_value_set(EMPTY_SET) == "{}"


class TestDistinctKey:
    def test_bool_and_one_stay_distinct(self):
        assert distinct_key(True) != distinct_key(1)
        assert distinct_key(False) != distinct_key(0)

    def test_int_float_collapse(self):
        assert distinct_key(1) == distinct_key(1.0)

    def test_value_sets_key_elementwise(self):
        assert distinct_key(frozenset({1, 2})) == distinct_key(
            frozenset({2.0, 1.0})
        )
        assert distinct_key(frozenset({1})) != distinct_key(
            frozenset({True})
        )

    def test_lists_key_elementwise(self):
        assert distinct_key((1, True)) != distinct_key((True, 1))
        assert distinct_key((1,)) == distinct_key((1.0,))

    def test_dates_key_by_value(self):
        assert distinct_key(Date(2014, 1, 1)) == distinct_key(Date(2014, 1, 1))
        assert distinct_key(Date(2014, 1, 1)) != distinct_key(Date(2014, 1, 2))
