"""Schema validation tests (Figure 3 SNB schema)."""

import pytest

from repro.datasets import figure2_graph, social_graph
from repro.datasets.generator import SnbParameters, generate_snb_graph
from repro.errors import ValidationError
from repro.model.builder import GraphBuilder
from repro.model.schema import EdgeType, GraphSchema, snb_schema


class TestSnbSchema:
    def test_social_graph_conforms(self):
        assert snb_schema().validate(social_graph()) == []

    def test_figure2_conforms(self):
        assert snb_schema().validate(figure2_graph()) == []

    def test_generated_graph_conforms(self):
        g = generate_snb_graph(SnbParameters(persons=30, seed=7))
        assert snb_schema().validate(g) == []

    def test_labels_listed(self):
        schema = snb_schema()
        assert "Person" in schema.node_labels()
        assert "knows" in schema.edge_labels()


class TestViolations:
    def test_unknown_node_label(self):
        b = GraphBuilder()
        b.add_node("n", labels=["Alien"])
        problems = snb_schema().validate(b.build(), strict=False)
        assert any("no declared label" in p for p in problems)

    def test_undeclared_property(self):
        b = GraphBuilder()
        b.add_node("n", labels=["Tag"], properties={"shoeSize": 42})
        problems = snb_schema().validate(b.build(), strict=False)
        assert any("undeclared property" in p for p in problems)

    def test_bad_edge_connection(self):
        b = GraphBuilder()
        b.add_node("t1", labels=["Tag"], properties={"name": "a"})
        b.add_node("t2", labels=["Tag"], properties={"name": "b"})
        b.add_edge("t1", "t2", labels=["knows"])
        problems = snb_schema().validate(b.build(), strict=False)
        assert any("not allowed by schema" in p for p in problems)

    def test_strict_mode_raises(self):
        b = GraphBuilder()
        b.add_node("n", labels=["Alien"])
        with pytest.raises(ValidationError):
            snb_schema().validate(b.build(), strict=True)

    def test_multi_label_object_needs_one_declaration(self):
        # Person+Manager (as in Figure 2's node 102) satisfies the schema.
        b = GraphBuilder()
        b.add_node("n", labels=["Person", "Manager"],
                   properties={"firstName": "Clara"})
        assert snb_schema().validate(b.build()) == []


class TestCustomSchema:
    def test_minimal_schema(self):
        schema = GraphSchema(
            node_properties={"N": frozenset({"k"})},
            edge_types={
                "e": EdgeType("e", frozenset({("N", "N")}), frozenset({"w"}))
            },
        )
        b = GraphBuilder()
        b.add_node("a", labels=["N"], properties={"k": 1})
        b.add_node("b", labels=["N"])
        b.add_edge("a", "b", labels=["e"], properties={"w": 1.5})
        assert schema.validate(b.build()) == []

    def test_paths_are_not_constrained(self):
        schema = GraphSchema(
            node_properties={"N": frozenset()},
            edge_types={"e": EdgeType("e", frozenset({("N", "N")}))},
        )
        b = GraphBuilder()
        b.add_node("a", labels=["N"])
        b.add_node("b", labels=["N"])
        b.add_edge("a", "b", edge_id="ab", labels=["e"])
        b.add_path(["a", "ab", "b"], path_id="p", labels=["AnyPathLabel"])
        assert schema.validate(b.build()) == []
