"""Unit tests for the PPG data model (Definition 2.1)."""

import pytest

from repro.errors import GraphModelError
from repro.model.builder import GraphBuilder
from repro.model.graph import PathPropertyGraph, path_edges, path_nodes


def diamond():
    b = GraphBuilder()
    b.add_node("a", labels=["Start"])
    b.add_node("b")
    b.add_node("c")
    b.add_edge("a", "b", edge_id="ab", labels=["x"])
    b.add_edge("b", "c", edge_id="bc", labels=["y"], properties={"w": 2})
    b.add_path(["a", "ab", "b", "bc", "c"], path_id="p1", labels=["route"])
    return b.build()


class TestComponents:
    def test_nodes_edges_paths_disjoint_sets(self):
        g = diamond()
        assert g.nodes == {"a", "b", "c"}
        assert g.edges == {"ab", "bc"}
        assert g.paths == {"p1"}

    def test_endpoints(self):
        g = diamond()
        assert g.endpoints("ab") == ("a", "b")
        assert g.source("bc") == "b"
        assert g.target("bc") == "c"

    def test_endpoints_unknown_edge(self):
        with pytest.raises(GraphModelError):
            diamond().endpoints("nope")

    def test_path_sequence_and_members(self):
        g = diamond()
        assert g.path_sequence("p1") == ("a", "ab", "b", "bc", "c")
        assert g.path_nodes("p1") == ("a", "b", "c")
        assert g.path_edges("p1") == ("ab", "bc")
        assert g.path_length("p1") == 2

    def test_path_helpers(self):
        seq = ("a", "ab", "b", "bc", "c")
        assert path_nodes(seq) == ("a", "b", "c")
        assert path_edges(seq) == ("ab", "bc")

    def test_labels_and_properties(self):
        g = diamond()
        assert g.labels("a") == {"Start"}
        assert g.labels("b") == frozenset()
        assert g.has_label("ab", "x")
        assert g.property("bc", "w") == {2}
        assert g.property("bc", "missing") == frozenset()
        assert g.properties("bc") == {"w": frozenset({2})}

    def test_contains(self):
        g = diamond()
        assert "a" in g and "ab" in g and "p1" in g and "zz" not in g

    def test_order_size(self):
        g = diamond()
        assert g.order() == 3 and g.size() == 2
        assert not g.is_empty()
        assert PathPropertyGraph().is_empty()


class TestIndexes:
    def test_adjacency(self):
        g = diamond()
        assert g.out_edges("a") == ("ab",)
        assert g.in_edges("b") == ("ab",)
        assert g.out_edges("c") == ()
        assert g.degree("b") == 2

    def test_label_indexes(self):
        g = diamond()
        assert g.nodes_with_label("Start") == {"a"}
        assert g.edges_with_label("y") == {"bc"}
        assert g.paths_with_label("route") == {"p1"}
        assert g.nodes_with_label("Nope") == frozenset()


class TestInvariants:
    def test_edge_endpoint_must_exist(self):
        with pytest.raises(GraphModelError):
            PathPropertyGraph(nodes=["a"], edges={"e": ("a", "zz")})

    def test_path_must_alternate(self):
        with pytest.raises(GraphModelError):
            PathPropertyGraph(
                nodes=["a", "b"],
                edges={"e": ("a", "b")},
                paths={"p": ("a", "e")},  # even length
            )

    def test_path_edges_must_be_adjacent(self):
        with pytest.raises(GraphModelError):
            PathPropertyGraph(
                nodes=["a", "b", "c"],
                edges={"e": ("a", "b")},
                paths={"p": ("a", "e", "c")},  # e does not reach c
            )

    def test_path_may_traverse_edges_backwards(self):
        # Definition 2.1(3): rho(e) = (a_j, a_j+1) OR (a_j+1, a_j).
        g = PathPropertyGraph(
            nodes=["a", "b"],
            edges={"e": ("b", "a")},
            paths={"p": ("a", "e", "b")},
        )
        assert g.path_nodes("p") == ("a", "b")

    def test_identifier_namespaces_disjoint(self):
        with pytest.raises(GraphModelError):
            PathPropertyGraph(nodes=["a", "e"], edges={"e": ("a", "a")})

    def test_labels_require_known_identifier(self):
        with pytest.raises(GraphModelError):
            PathPropertyGraph(nodes=["a"], labels={"zz": ["L"]})

    def test_properties_require_known_identifier(self):
        with pytest.raises(GraphModelError):
            PathPropertyGraph(nodes=["a"], properties={"zz": {"k": 1}})

    def test_singleton_path_is_legal(self):
        g = PathPropertyGraph(nodes=["a"], paths={"p": ("a",)})
        assert g.path_length("p") == 0


class TestEqualityAndMisc:
    def test_structural_equality(self):
        assert diamond() == diamond()

    def test_inequality_on_props(self):
        g1 = diamond()
        b = GraphBuilder()
        b.merge_graph(g1)
        b.set_property("a", "extra", 1)
        assert b.build() != g1

    def test_with_name(self):
        g = diamond().with_name("fresh")
        assert g.name == "fresh"
        assert g == diamond()

    def test_consistency(self):
        g1 = diamond()
        b = GraphBuilder()
        b.add_node("a")
        b.add_node("b")
        b.add_edge("b", "a", edge_id="ab")  # same id, different endpoints
        g2 = b.build()
        assert not g1.consistent_with(g2)
        assert g1.consistent_with(diamond())

    def test_describe_is_deterministic(self):
        assert diamond().describe() == diamond().describe()

    def test_repr(self):
        assert "3 nodes" in repr(diamond())
