"""JSON round-trip tests for graph serialization."""

import io

import pytest

from repro.datasets import figure2_graph, social_graph
from repro.errors import GraphModelError
from repro.model.builder import GraphBuilder
from repro.model.io import (
    dump_graph,
    dumps_graph,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    loads_graph,
)
from repro.model.values import Date


class TestRoundTrip:
    def test_figure2_round_trips(self):
        g = figure2_graph()
        assert loads_graph(dumps_graph(g)) == g

    def test_social_graph_round_trips(self):
        g = social_graph()
        assert loads_graph(dumps_graph(g)) == g

    def test_name_preserved(self):
        g = social_graph()
        assert loads_graph(dumps_graph(g)).name == "social_graph"

    def test_date_values(self):
        b = GraphBuilder()
        b.add_node("n", since=Date(2014, 12, 1))
        g = b.build()
        restored = loads_graph(dumps_graph(g))
        assert restored.property("n", "since") == {Date(2014, 12, 1)}

    def test_multivalued_property(self):
        b = GraphBuilder()
        b.add_node("n", employer={"CWI", "MIT"})
        restored = loads_graph(dumps_graph(b.build()))
        assert restored.property("n", "employer") == {"CWI", "MIT"}

    def test_stored_paths(self):
        g = figure2_graph()
        restored = loads_graph(dumps_graph(g))
        assert restored.path_sequence(301) == (105, 207, 103, 202, 102)
        assert restored.labels(301) == {"toWagner"}
        assert restored.property(301, "trust") == {0.95}

    def test_file_object_round_trip(self):
        g = figure2_graph()
        buffer = io.StringIO()
        dump_graph(g, buffer)
        buffer.seek(0)
        assert load_graph(buffer) == g

    def test_file_path_round_trip(self, tmp_path):
        g = social_graph()
        target = str(tmp_path / "g.json")
        dump_graph(g, target)
        assert load_graph(target) == g


class TestDictFormat:
    def test_dict_shape(self):
        data = graph_to_dict(figure2_graph())
        assert set(data) == {"name", "nodes", "edges", "paths"}
        node = data["nodes"][0]
        assert set(node) >= {"id", "labels", "properties"}
        edge = data["edges"][0]
        assert set(edge) >= {"id", "source", "target"}

    def test_deterministic_output(self):
        assert dumps_graph(social_graph()) == dumps_graph(social_graph())

    def test_unknown_scalar_encoding_rejected(self):
        with pytest.raises(GraphModelError):
            graph_from_dict(
                {
                    "nodes": [
                        {"id": "n", "labels": [],
                         "properties": {"k": [{"$mystery": 1}]}}
                    ]
                }
            )

    def test_empty_graph(self):
        assert loads_graph(dumps_graph(GraphBuilder().build())).is_empty()
