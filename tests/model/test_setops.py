"""Unit tests for the full-graph set operations (Appendix A.5)."""

from repro.model.builder import GraphBuilder
from repro.model.setops import (
    empty_graph,
    graph_difference,
    graph_intersect,
    graph_union,
)


def make(nodes=(), edges=(), paths=(), labels=None, props=None):
    b = GraphBuilder()
    for n in nodes:
        b.add_node(n)
    for e, s, d in edges:
        b.add_edge(s, d, edge_id=e)
    for p, seq in paths:
        b.add_path(seq, path_id=p)
    for obj, ls in (labels or {}).items():
        b.set_label(obj, *ls)
    for obj, kv in (props or {}).items():
        for k, v in kv.items():
            b.set_property(obj, k, v)
    return b.build()


G1 = make(
    nodes=["a", "b", "c"],
    edges=[("ab", "a", "b")],
    paths=[("p", ["a", "ab", "b"])],
    labels={"a": ["A"], "ab": ["x"]},
    props={"a": {"k": 1}},
)
G2 = make(
    nodes=["b", "c", "d"],
    edges=[("cd", "c", "d")],
    labels={"b": ["B"], "c": ["C"]},
    props={"b": {"k": 2}},
)


class TestUnion:
    def test_components(self):
        g = graph_union(G1, G2)
        assert g.nodes == {"a", "b", "c", "d"}
        assert g.edges == {"ab", "cd"}
        assert g.paths == {"p"}

    def test_labels_merge(self):
        g = graph_union(G1, G2)
        assert g.labels("a") == {"A"}
        assert g.labels("b") == {"B"}

    def test_property_value_sets_merge(self):
        shared1 = make(nodes=["n"], props={"n": {"k": 1}})
        shared2 = make(nodes=["n"], props={"n": {"k": 2}})
        g = graph_union(shared1, shared2)
        assert g.property("n", "k") == {1, 2}

    def test_inconsistent_union_is_empty(self):
        h1 = make(nodes=["a", "b"], edges=[("e", "a", "b")])
        h2 = make(nodes=["a", "b"], edges=[("e", "b", "a")])
        assert graph_union(h1, h2).is_empty()

    def test_inconsistent_paths(self):
        h1 = make(nodes=["a", "b"], edges=[("e", "a", "b")],
                  paths=[("p", ["a", "e", "b"])])
        h2 = make(nodes=["a", "b"], edges=[("e", "a", "b")],
                  paths=[("p", ["b", "e", "a"])])
        assert graph_union(h1, h2).is_empty()

    def test_identity(self):
        assert graph_union(G1, empty_graph()) == G1

    def test_idempotent(self):
        assert graph_union(G1, G1) == G1

    def test_commutative(self):
        assert graph_union(G1, G2) == graph_union(G2, G1)


class TestUnionInvariants:
    def test_kind_collision_raises(self):
        # 'x' is a node in one operand and an edge in the other: the
        # union would violate Definition 2.1 disjointness. (Regression:
        # the assembling fast path must keep the validating constructor's
        # behaviour.)
        import pytest

        from repro.errors import GraphModelError

        node_x = make(nodes=["x"])
        edge_x = make(nodes=["a", "b"], edges=[("x", "a", "b")])
        with pytest.raises(GraphModelError):
            graph_union(node_x, edge_x)
        with pytest.raises(GraphModelError):
            graph_union(edge_x, node_x)

    def test_union_with_empty_is_identity(self):
        assert graph_union(empty_graph(), G1) == G1
        assert graph_union(G1, empty_graph()) == G1


class TestIntersect:
    def test_components(self):
        g = graph_intersect(G1, G2)
        assert g.nodes == {"b", "c"}
        assert g.edges == frozenset()
        assert g.paths == frozenset()

    def test_labels_intersect(self):
        h1 = make(nodes=["n"], labels={"n": ["A", "B"]})
        h2 = make(nodes=["n"], labels={"n": ["B", "C"]})
        assert graph_intersect(h1, h2).labels("n") == {"B"}

    def test_property_sets_intersect(self):
        h1 = make(nodes=["n"], props={"n": {"k": {1, 2}}})
        h2 = make(nodes=["n"], props={"n": {"k": {2, 3}}})
        assert graph_intersect(h1, h2).property("n", "k") == {2}

    def test_with_empty(self):
        assert graph_intersect(G1, empty_graph()).is_empty()

    def test_idempotent(self):
        assert graph_intersect(G1, G1) == G1

    def test_inconsistent_is_empty(self):
        h1 = make(nodes=["a", "b"], edges=[("e", "a", "b")])
        h2 = make(nodes=["a", "b"], edges=[("e", "b", "a")])
        assert graph_intersect(h1, h2).is_empty()


class TestDifference:
    def test_nodes_removed(self):
        g = graph_difference(G1, G2)
        assert g.nodes == {"a"}

    def test_edges_with_lost_endpoint_dropped(self):
        g = graph_difference(G1, G2)  # b removed, so ab must go
        assert g.edges == frozenset()

    def test_paths_with_lost_member_dropped(self):
        g = graph_difference(G1, G2)
        assert g.paths == frozenset()

    def test_difference_with_empty_is_identity(self):
        assert graph_difference(G1, empty_graph()) == G1

    def test_self_difference_is_empty(self):
        assert graph_difference(G1, G1).is_empty()

    def test_labels_restricted(self):
        g = graph_difference(G1, G2)
        assert g.labels("a") == {"A"}

    def test_edge_identity_removal(self):
        h1 = make(nodes=["a", "b"], edges=[("e", "a", "b")])
        h2 = make(nodes=["x"], edges=[])
        b = GraphBuilder()
        b.add_node("q1")
        b.add_node("q2")
        b.add_edge("q1", "q2", edge_id="e")
        h3 = b.build()
        # e is removed by identity even though endpoints survive
        g = graph_difference(h1, h3)
        assert g.nodes == {"a", "b"} and g.edges == frozenset()
        del h2


class TestAlgebraicLaws:
    def test_union_associative(self):
        g3 = make(nodes=["e"], labels={"e": ["E"]})
        left = graph_union(graph_union(G1, G2), g3)
        right = graph_union(G1, graph_union(G2, g3))
        assert left == right

    def test_intersect_distributes_over_union_on_nodes(self):
        g3 = make(nodes=["a", "d"])
        lhs = graph_intersect(g3, graph_union(G1, G2))
        rhs = graph_union(graph_intersect(g3, G1), graph_intersect(g3, G2))
        assert lhs.nodes == rhs.nodes
