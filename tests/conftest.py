"""Shared fixtures: the paper's toy instances wired into an engine."""

from __future__ import annotations

import pytest

from repro import GCoreEngine, GraphBuilder
from repro.datasets import (
    company_graph,
    figure2_graph,
    orders_table,
    social_graph,
)


@pytest.fixture(scope="session")
def social():
    return social_graph()


@pytest.fixture(scope="session")
def companies():
    return company_graph()


@pytest.fixture(scope="session")
def figure2():
    return figure2_graph()


@pytest.fixture()
def engine(social, companies):
    """An engine loaded with the guided-tour graphs and the orders table."""
    eng = GCoreEngine()
    eng.register_graph("social_graph", social, default=True)
    eng.register_graph("company_graph", companies)
    eng.register_table("orders", orders_table())
    return eng


@pytest.fixture()
def figure2_engine(figure2):
    eng = GCoreEngine()
    eng.register_graph("figure2", figure2, default=True)
    return eng


@pytest.fixture()
def tiny_graph():
    """A 4-node diamond used by small targeted tests.

    a -x-> b -y-> d,  a -x-> c -y-> d, plus a self-describing Tag node.
    """
    b = GraphBuilder(name="tiny")
    for node, labels in (
        ("a", ["Start"]),
        ("b", ["Mid"]),
        ("c", ["Mid", "Alt"]),
        ("d", ["End"]),
    ):
        b.add_node(node, labels=labels, properties={"name": node})
    b.add_edge("a", "b", edge_id="ab", labels=["x"], properties={"w": 1})
    b.add_edge("a", "c", edge_id="ac", labels=["x"], properties={"w": 2})
    b.add_edge("b", "d", edge_id="bd", labels=["y"], properties={"w": 3})
    b.add_edge("c", "d", edge_id="cd", labels=["y"], properties={"w": 4})
    return b.build()


@pytest.fixture()
def tiny_engine(tiny_graph):
    eng = GCoreEngine()
    eng.register_graph("tiny", tiny_graph, default=True)
    return eng
