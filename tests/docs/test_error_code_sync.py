"""The error-code table in ``docs/http-api.md`` ⟷ the source of truth.

Both directions: every wire code a ``GCoreError``/``ApiError`` subclass
can serialize must appear in the documented table, and every documented
code must exist in the source — drift in either direction fails tier-1.
"""

import ast
import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The abstract roots: never serialized with their own code (every
#: concrete subclass overrides), so they are exempt from documentation.
ABSTRACT_CODES = {"gcore_error", "unknown_name"}

SOURCES = (
    REPO_ROOT / "src" / "repro" / "errors.py",
    REPO_ROOT / "src" / "repro" / "server" / "protocol.py",
)

# | `code` | 400 | ... |
_TABLE_ROW = re.compile(r"^\|\s*`([a-z_]+)`\s*\|\s*(\d{3})\s*\|")


def source_codes():
    """code -> http_status assigned in any error class body."""
    codes = {}
    for path in SOURCES:
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            fields = {}
            for stmt in node.body:
                if isinstance(stmt, ast.Assign) and isinstance(
                    stmt.value, ast.Constant
                ):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            fields[target.id] = stmt.value.value
            if "code" in fields and "http_status" in fields:
                codes[fields["code"]] = fields["http_status"]
    return codes


def documented_codes():
    text = (REPO_ROOT / "docs" / "http-api.md").read_text(encoding="utf-8")
    table = {}
    for line in text.splitlines():
        match = _TABLE_ROW.match(line.strip())
        if match:
            table[match.group(1)] = int(match.group(2))
    return table


def test_every_source_code_is_documented():
    missing = (
        set(source_codes()) - ABSTRACT_CODES - set(documented_codes())
    )
    assert not missing, (
        f"error codes missing from docs/http-api.md: {sorted(missing)}"
    )


def test_every_documented_code_exists_in_source():
    phantom = set(documented_codes()) - set(source_codes())
    assert not phantom, (
        f"docs/http-api.md documents codes the source never raises: "
        f"{sorted(phantom)}"
    )


def test_documented_status_matches_source():
    source = source_codes()
    mismatches = {
        code: (status, source[code])
        for code, status in documented_codes().items()
        if code in source and source[code] != status
    }
    assert not mismatches, f"HTTP status drift (doc, source): {mismatches}"


def test_analysis_error_is_wired():
    """The new strict-mode code is present on both sides."""
    assert source_codes().get("analysis_error") == 400
    assert documented_codes().get("analysis_error") == 400


def test_sanity_the_parsers_found_a_real_table():
    assert len(source_codes()) >= 15
    assert len(documented_codes()) >= 15
