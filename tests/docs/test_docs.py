"""Tier-1 documentation checks.

The CI ``docs`` job runs ``tools/check_docs.py`` in full; this suite
keeps the cheap invariants in the tier-1 loop so a broken link or a
drifted example fails locally before CI.
"""

import importlib.util
import shutil
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


class TestDocsTree:
    def test_required_pages_exist(self):
        for page in ("architecture.md", "http-api.md", "consistency.md",
                     "engine-modes.md"):
            assert (REPO_ROOT / "docs" / page).is_file(), page

    def test_readme_links_every_docs_page(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for page in ("architecture.md", "http-api.md", "consistency.md",
                     "engine-modes.md"):
            assert f"docs/{page}" in readme, f"README does not link {page}"


class TestLinksAndAnchors:
    def test_no_broken_links_or_anchors(self):
        errors = check_docs.check_links(check_docs.doc_files())
        assert not errors, "\n".join(errors)

    def test_checker_catches_breakage(self, tmp_path, monkeypatch):
        # the checker itself must not silently pass everything
        bad = REPO_ROOT / "docs" / "_nonexistent_target_probe.md"
        assert not bad.exists()
        probe = REPO_ROOT / "docs" / "_probe_tmp.md"
        probe.write_text(
            "[a](_nonexistent_target_probe.md)\n"
            "[b](architecture.md#no-such-anchor)\n"
            "[ok](architecture.md#layers)\n",
            encoding="utf-8",
        )
        try:
            errors = check_docs.check_links([probe])
        finally:
            probe.unlink()
        assert len(errors) == 2, errors

    def test_github_anchor_slugs(self):
        assert check_docs.github_anchor("Views & deltas") == "views--deltas"
        assert check_docs.github_anchor("GET /explain") == "get-explain"
        assert check_docs.github_anchor("The MVCC layer") == "the-mvcc-layer"


class TestRunnableExamples:
    def test_marked_examples_are_extracted(self):
        blocks = check_docs.extract_runnable(
            REPO_ROOT / "docs" / "http-api.md"
        )
        languages = [language for language, _line, _code in blocks]
        assert len(blocks) >= 8
        assert "python" in languages and "bash" in languages
        # every bash example must self-report HTTP failures
        for language, line, code in blocks:
            if language == "bash" and "curl" in code:
                assert "-sf" in code, f"line {line}: curl without -sf"

    @pytest.mark.skipif(shutil.which("curl") is None,
                        reason="curl not installed")
    def test_documented_examples_run_against_live_server(self):
        errors = check_docs.run_examples(
            REPO_ROOT / "docs" / "http-api.md"
        )
        assert not errors, "\n".join(errors)
