"""Differential-harness units: encoding, policies, verdicts, configs."""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_CONFIG, NAIVE_CONFIG
from repro.errors import GCoreError
from repro.fuzz import (
    Counterexample,
    DifferentialTester,
    Outcome,
    decode_value,
    encode_value,
    load_counterexample,
    parse_configs,
    run_case,
)
from repro.fuzz.differential import (
    TablePolicy,
    _canonical_graph,
    diff_outcomes,
    rows_sorted,
    table_policy,
)
from repro.model.values import Date


# ---------------------------------------------------------------------------
# Value encoding
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "value",
    [
        True,
        False,
        0,
        1,
        -3.5,
        "text",
        None,
        Date(2014, 12, 1),
        frozenset({1, 2, 3}),
        frozenset({"a", True, 2}),
        [1, "x", Date(1999, 1, 17)],
    ],
)
def test_encode_decode_round_trip(value):
    encoded = encode_value(value)
    decoded = decode_value(encoded)
    if isinstance(value, (list, tuple)):
        assert list(decoded) == list(value)
    elif isinstance(value, frozenset):
        assert frozenset(decoded) == value
    else:
        assert decoded == value
        assert type(decoded) is type(value)


def test_encoding_distinguishes_bool_from_int():
    assert encode_value(True) != encode_value(1)
    assert encode_value(False) != encode_value(0)


def test_encode_is_idempotent():
    once = encode_value(Date(2014, 12, 1))
    assert encode_value(once) == once


# ---------------------------------------------------------------------------
# Counterexample round-trip
# ---------------------------------------------------------------------------

def test_counterexample_json_round_trip(tmp_path):
    entry = Counterexample(
        seed=42,
        query="SELECT 1 AS a MATCH (n)",
        params={"d": encode_value(Date(2002, 10, 1))},
        configs=[DEFAULT_CONFIG.to_json(), NAIVE_CONFIG.to_json()],
        expected={"config": "oracle", "outcome": {"kind": "table"}},
        actual={"config": "default", "outcome": {"kind": "error"}},
        kind="kind-mismatch",
        note="synthetic",
    )
    path = tmp_path / "ce.json"
    entry.save(path)
    loaded = load_counterexample(path)
    assert loaded == entry
    assert loaded.decoded_params() == {"d": Date(2002, 10, 1)}


# ---------------------------------------------------------------------------
# Config parsing
# ---------------------------------------------------------------------------

def test_parse_configs_accepts_presets_and_specs():
    configs = parse_configs(["default", "parallelism=4,planner=greedy"])
    names = [name for name, _ in configs]
    assert names[0] == "default"
    spec = dict(configs)[names[1]]
    assert spec.parallelism == 4
    assert spec.planner == "greedy"


def test_parse_configs_rejects_unknown_axis():
    with pytest.raises(GCoreError):
        parse_configs(["nonsense=1"])


# ---------------------------------------------------------------------------
# Table policies and verdicts
# ---------------------------------------------------------------------------

def test_table_policy_limit_is_count_only(fuzz_engine):
    statement = fuzz_engine.parse(
        "SELECT n.name AS a MATCH (n:Person) LIMIT 3"
    )
    assert table_policy(statement).count_only


def test_table_policy_projected_order_key(fuzz_engine):
    statement = fuzz_engine.parse(
        "SELECT n.name AS a MATCH (n:Person) ORDER BY a DESC"
    )
    policy = table_policy(statement)
    assert policy.order_spec == ((0, False),)


def test_rows_sorted():
    spec = ((0, True),)
    assert rows_sorted([[1], [2], [2], [9]], spec)
    assert not rows_sorted([[2], [1]], spec)
    assert rows_sorted([[9], [2], [1]], ((0, False),))


def test_diff_outcomes_multiset_rows():
    policy = TablePolicy(count_only=False, order_spec=())
    a = Outcome("table", {"columns": ["a"], "rows": [[1], [2]]})
    b = Outcome("table", {"columns": ["a"], "rows": [[2], [1]]})
    c = Outcome("table", {"columns": ["a"], "rows": [[2], [2]]})
    assert diff_outcomes(a, b, policy) is None
    assert diff_outcomes(a, c, policy) == "rows"


def test_diff_outcomes_crash_dominates():
    policy = TablePolicy(count_only=False, order_spec=())
    ok = Outcome("table", {"columns": [], "rows": []})
    crash = Outcome("crash", {"error": "KeyError", "message": "p6"})
    assert diff_outcomes(ok, crash, policy) == "crash"


# ---------------------------------------------------------------------------
# Graph canonicalization
# ---------------------------------------------------------------------------

def test_fresh_construct_ids_are_canonicalized(fuzz_engine):
    """Two runs of one ungrouped CONSTRUCT draw different fresh ids from
    the engine's shared counter; canonical forms must still agree."""
    text = "CONSTRUCT (x) MATCH (n:Tag)"
    first = run_case(fuzz_engine, text, {}, DEFAULT_CONFIG)
    second = run_case(fuzz_engine, text, {}, DEFAULT_CONFIG)
    assert first.kind == "graph" == second.kind
    assert first.payload == second.payload


def test_canonical_graph_renumbers_by_allocation_order():
    data = {
        "nodes": [
            {"id": "_n9", "labels": ["A"]},
            {"id": "_n12", "labels": ["B"]},
            {"id": "stable", "labels": []},
        ],
        "edges": [
            {"id": "_e4", "source": "_n12", "target": "stable"},
        ],
        "paths": [],
    }
    canon = _canonical_graph(data)
    ids = {node["id"] for node in canon["nodes"]}
    assert ids == {"_n#0", "_n#1", "stable"}
    (edge,) = canon["edges"]
    assert edge["id"] == "_e#0"
    assert edge["source"] == "_n#1"
    assert edge["target"] == "stable"


# ---------------------------------------------------------------------------
# Tester behaviour
# ---------------------------------------------------------------------------

def test_tester_passes_clean_query(fuzz_engine):
    tester = DifferentialTester(engine=fuzz_engine)
    assert tester.check_text(
        "SELECT n.firstName AS a MATCH (n:Person) ORDER BY n.firstName",
        {},
        seed=0,
    ) is None
    assert tester.stats["executed"] == 1


def test_tester_skips_statements_with_hard_analyzer_errors(fuzz_engine):
    tester = DifferentialTester(engine=fuzz_engine)
    assert tester.check_text("SELECT 1 +", {}, seed=0) is None
    assert tester.stats["skipped"] == 1
    assert tester.stats["executed"] == 0


def test_tester_error_parity_lane(fuzz_engine):
    """GC101-class analyzer verdicts must hold on every lattice point."""
    tester = DifferentialTester(engine=fuzz_engine)
    result = tester.check_text(
        "SELECT 1 AS a MATCH (n) ON missing_graph", {}, seed=0
    )
    assert result is None
    assert tester.stats["parity_checked"] == 1
