"""Generator quality gates: parseable, mostly analyzer-clean, grounded."""

from __future__ import annotations

import pytest

from repro.fuzz import QueryGenerator, Vocabulary


@pytest.fixture(scope="module")
def generator(fuzz_engine):
    return QueryGenerator(Vocabulary.from_engine(fuzz_engine))


def test_every_statement_parses_back_to_its_ast(generator, fuzz_engine):
    """The pretty-printed text round-trips: parse(text) == statement.

    This is what lets the shrinker mutate ASTs and re-print candidates
    without ever producing unparseable intermediate queries.
    """
    for seed in range(60):
        case = generator.statement(seed)
        assert fuzz_engine.parse(case.text) == case.statement


def test_most_statements_are_analyzer_clean(generator, fuzz_engine):
    """The grammar targets analyzer-clean output (fault injection aside).

    The weighted fault productions deliberately emit a few percent of
    known-bad names to exercise the error-parity lane; everything else
    must pass static analysis or the differential loop would starve.
    """
    clean = sum(
        1
        for seed in range(150)
        if fuzz_engine.analyze(generator.statement(seed).text).ok
    )
    assert clean >= 120


def test_params_are_referenced_by_the_text(generator):
    for seed in range(80):
        case = generator.statement(seed)
        for name in case.params:
            assert f"${name}" in case.text


def test_seeds_cover_multiple_statement_shapes(generator):
    texts = [generator.statement(seed).text for seed in range(120)]
    assert any(t.startswith("SELECT") for t in texts)
    assert any(t.startswith("CONSTRUCT") for t in texts)
    assert any("MATCH" in t for t in texts)
    assert any("-/" in t for t in texts), "no path patterns generated"
    assert any("WHERE" in t for t in texts)
