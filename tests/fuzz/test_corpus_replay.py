"""Replay every committed corpus counterexample; pin the fixed bugs.

Each JSON under ``tests/fuzz/corpus/`` records a divergence the
differential fuzzer found and that has since been *fixed*: replay must
come back clean (``replay_counterexample`` returns ``None``). Reverting
the corresponding fix makes exactly that entry fail — the regression
the corpus guards against.

The direct regression tests below pin each fix at the engine API level
too, naming the module that was repaired, so a corpus-format change can
never silently drop the coverage.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.config import DEFAULT_CONFIG, ExecutionConfig
from repro.errors import UnknownPathViewError
from repro.fuzz import load_counterexample, replay_counterexample

CORPUS = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS.glob("*.json"))

LATTICE = [
    DEFAULT_CONFIG,
    ExecutionConfig.from_json({"planner": "naive"}),
    ExecutionConfig.from_json({"planner": "greedy"}),
    ExecutionConfig.from_json({"executor": "reference"}),
    ExecutionConfig.from_json({"expressions": "interpreted"}),
    ExecutionConfig.from_json({"paths": "naive"}),
    ExecutionConfig.from_json({"parallelism": 4}),
]


def test_corpus_is_not_empty():
    assert len(CORPUS_FILES) >= 3


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_entry_replays_clean(path, fuzz_engine):
    entry = load_counterexample(path)
    fresh = replay_counterexample(entry, engine=fuzz_engine)
    assert fresh is None, (
        f"corpus entry {path.name} reproduces again "
        f"(kind {fresh.kind}):\n{fresh.to_json()}"
    )


# ---------------------------------------------------------------------------
# Direct regressions, one per fixed module
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("config", LATTICE, ids=lambda c: c.describe())
def test_unknown_path_view_raises_on_every_lattice_point(
    config, fuzz_engine
):
    """repro.eval.match.evaluate_block / repro.eval.context.

    Name resolution used to be lazy: when an earlier atom emptied the
    binding table, the block short-circuited past the path atom and an
    unknown view executed "successfully" under some planners while the
    analyzer reported GC105. The eager pre-pass makes every lattice
    point raise.
    """
    query = "CONSTRUCT (a) MATCH (a:Comment:Person)-/<~wKnow>/->(b)"
    with pytest.raises(UnknownPathViewError):
        fuzz_engine.run(query, config=config)


@pytest.mark.parametrize("config", LATTICE, ids=lambda c: c.describe())
@pytest.mark.parametrize(
    "query",
    [
        "SELECT id(n) AS a MATCH (n)-[e:reply_of]-(n)",
        "SELECT id(n) AS a MATCH (n)-[e:reply_of]->(n)",
        "SELECT id(n) AS a MATCH (n)<-[e:reply_of]-(n)",
        "SELECT id(n) AS a MATCH (n)-[e:knows]-(n)",
    ],
)
def test_self_loop_pattern_binds_both_endpoints(config, query, fuzz_engine):
    """repro.eval.match (EdgeAtom.extend / extend_columnar).

    A self-loop pattern collapses source and target into one variable;
    when it arrived unbound, the executors bound the source and silently
    skipped the target equality, matching every edge. The social graph
    has no self-loops, so all of these must return zero rows.
    """
    result = fuzz_engine.run(query, config=config)
    assert list(result.rows) == []


def test_parallel_merge_survives_short_circuited_morsels(fuzz_engine):
    """repro.eval.parallel.merge_tables.

    A morsel whose intermediate table empties stops its atom sequence
    early and returns a chunk with fewer columns; merging used to index
    every chunk with the first payload's schema and crash with KeyError.
    """
    query = (
        "CONSTRUCT (x13) MATCH (n5:City)-/p6 <:has_creator>/->"
        "(n7:Person:Person)-[e8]->(n9)->(n11)"
    )
    parallel = ExecutionConfig.from_json({"parallelism": 4})
    expected = fuzz_engine.run(query, config=DEFAULT_CONFIG)
    actual = fuzz_engine.run(query, config=parallel)
    assert type(actual).__name__ == type(expected).__name__


def test_merge_tables_unit():
    """repro.eval.parallel.merge_tables on heterogeneous payloads."""
    from repro.eval.parallel import merge_tables, table_payload
    from repro.algebra.binding import BindingTable

    full = BindingTable(("a", "b"), [])
    full_rows = BindingTable.from_columns(
        ("a", "b"), ["a", "b"], {"a": [1, 2], "b": [10, 20]}, 2, dedup=False
    )
    short = BindingTable(("a",), [])  # short-circuited morsel: no "b"
    merged = merge_tables(
        [table_payload(short), table_payload(full_rows), table_payload(full)]
    )
    assert set(merged.variables) == {"a", "b"}
    assert len(merged) == 2
