"""Generator determinism: same (seed, weights) -> byte-identical stream.

The generator draws randomness exclusively through
``random.Random(seed).random()``/``randrange()`` — both documented to
produce identical sequences on every CPython the repo supports (3.9
through 3.13) — and iterates only sorted vocabulary pools, so the
emitted statement stream is a pure function of (seed, weights). The
pinned digest below is the cross-version contract: if it moves, either
the grammar changed (fine — re-pin, and say so in the commit) or
iteration-order nondeterminism crept in (a bug).
"""

from __future__ import annotations

import hashlib

from repro.fuzz import DEFAULT_WEIGHTS, QueryGenerator, Vocabulary

# sha256 of "\n".join(statement text for seeds 0..199), utf-8.
PINNED_SHA256 = (
    "ade8c3b6759cce795f759d20e94d3653fd3a7ea5622714a399d1bea1531fea11"
)


def _generator(fuzz_engine, weights=None):
    return QueryGenerator(Vocabulary.from_engine(fuzz_engine), weights)


def test_same_seed_same_statement(fuzz_engine):
    first = _generator(fuzz_engine)
    second = _generator(fuzz_engine)
    for seed in range(40):
        a = first.statement(seed)
        b = second.statement(seed)
        assert a.text == b.text
        assert a.params == b.params


def test_stream_matches_per_seed_statements(fuzz_engine):
    gen = _generator(fuzz_engine)
    stream = list(gen.stream(start=7, count=20))
    for offset, case in enumerate(stream):
        assert case.seed == 7 + offset
        assert case.text == gen.statement(case.seed).text


def test_explicit_default_weights_change_nothing(fuzz_engine):
    base = _generator(fuzz_engine)
    explicit = _generator(fuzz_engine, dict(DEFAULT_WEIGHTS))
    for seed in range(20):
        assert base.statement(seed).text == explicit.statement(seed).text


def test_first_200_statements_hash_is_pinned(fuzz_engine):
    gen = _generator(fuzz_engine)
    blob = "\n".join(
        gen.statement(seed).text for seed in range(200)
    ).encode("utf-8")
    assert hashlib.sha256(blob).hexdigest() == PINNED_SHA256
