"""Shared fixture: the fuzzer's standard engine (guided-tour catalog)."""

from __future__ import annotations

import pytest

from repro.fuzz import build_engine


@pytest.fixture(scope="module")
def fuzz_engine():
    return build_engine()
