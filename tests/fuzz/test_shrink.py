"""Delta-debugging shrinker: smaller output, invariant preserved."""

from __future__ import annotations

from repro.fuzz import shrink_case


def _shrink(engine, text, predicate, params=None):
    statement = engine.parse(text)
    return shrink_case(text, dict(params or {}), statement, predicate)


def test_shrink_drops_unrelated_clauses(fuzz_engine):
    text = (
        "SELECT n.employer AS a1, m.name AS a2 "
        "MATCH (n:Person)-[e:knows]->(m:Person), (c:Company) "
        "WHERE n.age >= 21 ORDER BY a1 LIMIT 7"
    )

    def mentions_knows(candidate, params):
        return "[e:knows]" in candidate

    shrunk, params = _shrink(fuzz_engine, text, mentions_knows)
    assert "[e:knows]" in shrunk
    assert len(shrunk) < len(text)
    assert "(c:Company)" not in shrunk
    assert "LIMIT" not in shrunk
    # The result is still a well-formed statement.
    fuzz_engine.parse(shrunk)
    assert params == {}


def test_shrink_result_preserves_failing_predicate(fuzz_engine):
    text = (
        "CONSTRUCT (x) SET x.kind := 'c' "
        "MATCH (n:Person)-[e:knows]->(m) WHERE n.age > 18"
    )

    def is_construct(candidate, params):
        return candidate.startswith("CONSTRUCT")

    shrunk, _params = _shrink(fuzz_engine, text, is_construct)
    assert shrunk.startswith("CONSTRUCT")
    assert len(shrunk) <= len(text)
    fuzz_engine.parse(shrunk)


def test_shrink_prunes_unused_params(fuzz_engine):
    text = "SELECT n.name AS a MATCH (n:Person) WHERE n.age > $lo"
    params = {"lo": 21, "unused": "x"}

    def still_has_where(candidate, bound):
        return "WHERE" in candidate and "$lo" in candidate

    shrunk, kept = _shrink(fuzz_engine, text, still_has_where, params)
    assert "$lo" in shrunk
    assert "unused" not in kept
    assert kept.get("lo") == 21


def test_shrink_keeps_original_when_nothing_smaller_fails(fuzz_engine):
    text = "SELECT n.name AS a MATCH (n:Person)"

    def exact(candidate, params):
        return candidate == text

    shrunk, params = _shrink(fuzz_engine, text, exact)
    assert shrunk == text
    assert params == {}


def test_predicate_exceptions_count_as_non_reproducing(fuzz_engine):
    text = "SELECT n.name AS a MATCH (n:Person) WHERE n.age > 18"
    calls = []

    def flaky(candidate, params):
        calls.append(candidate)
        if candidate != text:
            raise RuntimeError("boom")
        return True

    shrunk, _params = _shrink(fuzz_engine, text, flaky)
    assert shrunk == text
    assert len(calls) > 1
