"""Unit tests for grouping (the grp operator of Appendix A.3)."""

from repro.algebra.binding import Binding, BindingTable
from repro.algebra.grouping import MISSING, group_by, group_key


def T(columns, *rows):
    return BindingTable(columns, [Binding(r) for r in rows])


class TestGroupKey:
    def test_values_in_order(self):
        row = Binding({"a": 1, "b": 2})
        assert group_key(row, ["b", "a"]) == (2, 1)

    def test_missing_sentinel(self):
        row = Binding({"a": 1})
        assert group_key(row, ["a", "b"]) == (1, MISSING)

    def test_missing_is_singleton(self):
        assert group_key(Binding(), ["x"])[0] is MISSING


class TestGroupBy:
    def test_partition(self):
        table = T(
            ["e", "n"],
            {"e": "MIT", "n": "frank"},
            {"e": "CWI", "n": "frank"},
            {"e": "Acme", "n": "alice"},
            {"e": "Acme", "n": "john"},
        )
        groups = dict(group_by(table, ["e"]))
        assert len(groups) == 3
        assert len(groups[("Acme",)]) == 2

    def test_group_by_empty_gamma_is_single_group(self):
        table = T(["x"], {"x": 1}, {"x": 2})
        groups = group_by(table, [])
        assert len(groups) == 1 and len(groups[0][1]) == 2

    def test_unbound_rows_group_together(self):
        table = BindingTable(
            ["x", "y"],
            [Binding({"x": 1}), Binding({"x": 1, "y": 2})],
        )
        groups = dict(group_by(table, ["y"]))
        assert len(groups) == 2
        assert (MISSING,) in groups

    def test_deterministic_order(self):
        table = T(["k"], {"k": "b"}, {"k": "a"}, {"k": "c"})
        keys1 = [k for k, _ in group_by(table, ["k"])]
        keys2 = [k for k, _ in group_by(table, ["k"])]
        assert keys1 == keys2
        assert keys1 == sorted(keys1)

    def test_group_subtables_preserve_columns(self):
        table = T(["a", "b"], {"a": 1, "b": 2})
        ((_, sub),) = group_by(table, ["a"])
        assert sub.columns == table.columns
