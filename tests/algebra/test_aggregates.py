"""Unit tests for aggregation functions."""

import pytest

from repro.algebra.aggregates import (
    evaluate_aggregate,
    is_aggregate_name,
)
from repro.algebra.binding import Binding
from repro.errors import EvaluationError
from repro.model.values import Date


def rows(*dicts):
    return [Binding(d) for d in dicts]


class TestCountStar:
    def test_plain_count(self):
        assert evaluate_aggregate("count", rows({"x": 1}, {"x": 2}), None,
                                  star=True) == 2

    def test_maximality_rule(self):
        # Rows missing part of the maximal domain are not counted — this is
        # what makes the Figure-5 view yield nr_messages = 0 for pairs whose
        # OPTIONAL block did not match.
        data = rows({"n": 1, "m": 2, "msg": 9}, {"n": 1, "m": 3})
        count = evaluate_aggregate(
            "count", data, None, star=True,
            maximal_domain=frozenset({"n", "m", "msg"}),
        )
        assert count == 1

    def test_zero_when_all_partial(self):
        data = rows({"n": 1})
        count = evaluate_aggregate(
            "count", data, None, star=True,
            maximal_domain=frozenset({"n", "msg"}),
        )
        assert count == 0


class TestCountExpr:
    def arg(self, key):
        return lambda row: row.get(key)

    def test_skips_absent(self):
        data = rows({"x": 1}, {"y": 5}, {"x": 3})
        assert evaluate_aggregate("count", data, self.arg("x")) == 2

    def test_skips_empty_sets(self):
        data = rows({"x": frozenset()}, {"x": frozenset({1})})
        assert evaluate_aggregate("count", data, self.arg("x")) == 1

    def test_distinct(self):
        data = rows({"x": 1}, {"x": 1}, {"x": 2})
        assert evaluate_aggregate("count", data, self.arg("x"),
                                  distinct=True) == 2


class TestNumericAggregates:
    def arg(self, key):
        return lambda row: row.get(key)

    def test_sum(self):
        assert evaluate_aggregate("sum", rows({"x": 1}, {"x": 2}),
                                  self.arg("x")) == 3

    def test_avg(self):
        assert evaluate_aggregate("avg", rows({"x": 1}, {"x": 3}),
                                  self.arg("x")) == 2

    def test_min_max_numbers(self):
        data = rows({"x": 3}, {"x": 1}, {"x": 2})
        assert evaluate_aggregate("min", data, self.arg("x")) == 1
        assert evaluate_aggregate("max", data, self.arg("x")) == 3

    def test_min_max_strings(self):
        data = rows({"x": "b"}, {"x": "a"})
        assert evaluate_aggregate("min", data, self.arg("x")) == "a"

    def test_singleton_sets_unwrap(self):
        data = rows({"x": frozenset({5})}, {"x": 7})
        assert evaluate_aggregate("sum", data, self.arg("x")) == 12

    def test_empty_group_yields_absent(self):
        assert evaluate_aggregate("sum", [], self.arg("x")) == frozenset()
        assert evaluate_aggregate("min", [], self.arg("x")) == frozenset()

    def test_sum_over_strings_fails(self):
        with pytest.raises(EvaluationError):
            evaluate_aggregate("sum", rows({"x": "a"}), self.arg("x"))

    def test_min_mixed_types_fails(self):
        with pytest.raises(EvaluationError):
            evaluate_aggregate("min", rows({"x": "a"}, {"x": 1}),
                               self.arg("x"))

    def test_collect(self):
        data = rows({"x": 1}, {"x": 2})
        assert evaluate_aggregate("collect", data, self.arg("x")) == (1, 2)


class TestMisc:
    def test_is_aggregate_name(self):
        assert is_aggregate_name("COUNT") and is_aggregate_name("collect")
        assert not is_aggregate_name("nodes")

    def test_unknown_aggregate(self):
        with pytest.raises(EvaluationError):
            evaluate_aggregate("median", [], lambda r: 1)

    def test_argument_required(self):
        with pytest.raises(EvaluationError):
            evaluate_aggregate("sum", [], None)


class TestDistinctNormalization:
    """Regression: DISTINCT keys must follow the normalize_scalar policy."""

    def arg(self, key):
        return lambda row: row.get(key)

    def test_true_and_one_stay_distinct(self):
        # hash(True) == hash(1) made the raw-equality dedup key conflate
        # them, so COUNT(DISTINCT x) over {1, TRUE} returned 1.
        data = rows({"x": 1}, {"x": True})
        assert evaluate_aggregate("count", data, self.arg("x"),
                                  distinct=True) == 2

    def test_false_and_zero_stay_distinct(self):
        data = rows({"x": 0}, {"x": False})
        assert evaluate_aggregate("count", data, self.arg("x"),
                                  distinct=True) == 2

    def test_int_float_still_collapse(self):
        data = rows({"x": 1}, {"x": 1.0})
        assert evaluate_aggregate("count", data, self.arg("x"),
                                  distinct=True) == 1

    def test_collect_distinct_keeps_first_occurrence(self):
        data = rows({"x": 1}, {"x": True}, {"x": 1.0})
        assert evaluate_aggregate("collect", data, self.arg("x"),
                                  distinct=True) == (1, True)

    def test_distinct_dates(self):
        data = rows({"x": Date(2014, 1, 1)}, {"x": Date(2014, 1, 1)},
                    {"x": Date(2015, 1, 1)})
        assert evaluate_aggregate("count", data, self.arg("x"),
                                  distinct=True) == 2


class TestExtremumTypes:
    """Regression: MIN/MAX over any single totally-ordered literal type."""

    def arg(self, key):
        return lambda row: row.get(key)

    def test_min_max_dates(self):
        # _extremum only knew numbers and strings; a uniformly
        # Date-typed group raised "MIN/MAX over mixed-type values".
        data = rows({"d": Date(2015, 6, 1)}, {"d": Date(2014, 12, 1)},
                    {"d": Date(2016, 1, 31)})
        assert evaluate_aggregate("min", data, self.arg("d")) == \
            Date(2014, 12, 1)
        assert evaluate_aggregate("max", data, self.arg("d")) == \
            Date(2016, 1, 31)

    def test_min_max_booleans(self):
        data = rows({"b": True}, {"b": False})
        assert evaluate_aggregate("min", data, self.arg("b")) is False
        assert evaluate_aggregate("max", data, self.arg("b")) is True

    def test_bool_among_numbers_is_mixed(self):
        data = rows({"x": 1}, {"x": True})
        with pytest.raises(EvaluationError):
            evaluate_aggregate("min", data, self.arg("x"))

    def test_date_among_numbers_is_mixed(self):
        data = rows({"x": 1}, {"x": Date(2014, 1, 1)})
        with pytest.raises(EvaluationError):
            evaluate_aggregate("max", data, self.arg("x"))

    def test_multivalued_group_has_no_order(self):
        data = rows({"x": frozenset({1, 2})}, {"x": frozenset({3, 4})})
        with pytest.raises(EvaluationError):
            evaluate_aggregate("min", data, self.arg("x"))
