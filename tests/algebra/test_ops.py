"""Unit tests for the binding-table operators (Appendix A.1)."""

from repro.algebra.binding import Binding, BindingTable
from repro.algebra.ops import (
    cartesian_product,
    table_antijoin,
    table_join,
    table_left_join,
    table_semijoin,
    table_union,
)


def T(columns, *rows):
    return BindingTable(columns, [Binding(r) for r in rows])


LEFT = T(["x", "y"], {"x": 1, "y": "a"}, {"x": 2, "y": "b"})
RIGHT = T(["y", "z"], {"y": "a", "z": 10}, {"y": "c", "z": 30})


class TestUnion:
    def test_basic(self):
        u = table_union(LEFT, RIGHT)
        assert len(u) == 4
        assert set(u.columns) == {"x", "y", "z"}

    def test_dedupe(self):
        u = table_union(LEFT, LEFT)
        assert len(u) == 2


class TestJoin:
    def test_natural_join(self):
        j = table_join(LEFT, RIGHT)
        assert len(j) == 1
        assert j.rows[0] == Binding({"x": 1, "y": "a", "z": 10})

    def test_cartesian_when_no_shared(self):
        j = table_join(T(["a"], {"a": 1}, {"a": 2}), T(["b"], {"b": 3}))
        assert len(j) == 2

    def test_join_with_unit(self):
        assert table_join(LEFT, BindingTable.unit()) == LEFT
        assert table_join(BindingTable.unit(), LEFT) == LEFT

    def test_join_with_empty(self):
        assert len(table_join(LEFT, BindingTable.empty())) == 0

    def test_partial_row_joins_leniently(self):
        # A row not binding the shared variable is compatible with all.
        partial = T(["y", "z"], {"z": 99})
        j = table_join(LEFT, partial)
        assert len(j) == 2  # both LEFT rows merge with the partial row

    def test_mixed_partial_and_total(self):
        right = BindingTable(
            ["y", "z"], [Binding({"z": 99}), Binding({"y": "a", "z": 1})]
        )
        j = table_join(LEFT, right)
        # {x:1,y:a} joins both rows; {x:2,y:b} joins only the partial.
        assert len(j) == 3

    def test_commutative_up_to_set(self):
        assert table_join(LEFT, RIGHT) == table_join(RIGHT, LEFT)

    def test_associative(self):
        t3 = T(["z", "w"], {"z": 10, "w": True})
        assert table_join(table_join(LEFT, RIGHT), t3) == table_join(
            LEFT, table_join(RIGHT, t3)
        )


class TestSemiAnti:
    def test_semijoin(self):
        s = table_semijoin(LEFT, RIGHT)
        assert len(s) == 1 and s.rows[0]["x"] == 1

    def test_antijoin(self):
        a = table_antijoin(LEFT, RIGHT)
        assert len(a) == 1 and a.rows[0]["x"] == 2

    def test_semijoin_antijoin_partition(self):
        s = table_semijoin(LEFT, RIGHT)
        a = table_antijoin(LEFT, RIGHT)
        assert len(s) + len(a) == len(LEFT)
        assert not (set(s.rows) & set(a.rows))

    def test_antijoin_with_empty_right(self):
        assert table_antijoin(LEFT, BindingTable.empty()) == LEFT

    def test_semijoin_keeps_left_columns(self):
        s = table_semijoin(LEFT, RIGHT)
        assert s.columns == LEFT.columns


class TestLeftJoin:
    def test_definition(self):
        # O1 =|><| O2 = (O1 |><| O2) u (O1 \ O2)
        lj = table_left_join(LEFT, RIGHT)
        expected = table_union(
            table_join(LEFT, RIGHT), table_antijoin(LEFT, RIGHT)
        )
        assert lj == expected

    def test_unmatched_rows_stay_partial(self):
        lj = table_left_join(LEFT, RIGHT)
        unmatched = [row for row in lj if "z" not in row]
        assert len(unmatched) == 1 and unmatched[0]["x"] == 2

    def test_left_join_with_empty_right(self):
        assert table_left_join(LEFT, BindingTable.empty()) == LEFT

    def test_left_join_all_match(self):
        right = T(["y"], {"y": "a"}, {"y": "b"})
        lj = table_left_join(LEFT, right)
        assert lj == LEFT


class TestCartesian:
    def test_product_size(self):
        p = cartesian_product(T(["a"], {"a": 1}, {"a": 2}),
                              T(["b"], {"b": 1}, {"b": 2}, {"b": 3}))
        assert len(p) == 6

    def test_matches_join_when_disjoint(self):
        t1 = T(["a"], {"a": 1}, {"a": 2})
        t2 = T(["b"], {"b": 3})
        assert cartesian_product(t1, t2) == table_join(t1, t2)
