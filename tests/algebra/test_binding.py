"""Unit tests for bindings and binding tables (Appendix A.1)."""


from repro.algebra.binding import EMPTY_BINDING, Binding, BindingTable


class TestBinding:
    def test_mapping_protocol(self):
        mu = Binding({"x": 1, "y": "a"})
        assert mu["x"] == 1 and mu.get("z") is None
        assert set(mu) == {"x", "y"} and len(mu) == 2
        assert "x" in mu and "z" not in mu

    def test_domain(self):
        assert Binding({"x": 1}).domain == frozenset({"x"})
        assert EMPTY_BINDING.domain == frozenset()

    def test_hash_and_equality(self):
        assert Binding({"x": 1}) == Binding({"x": 1})
        assert hash(Binding({"x": 1})) == hash(Binding({"x": 1}))
        assert Binding({"x": 1}) != Binding({"x": 2})

    def test_compatibility_on_shared_domain(self):
        mu1 = Binding({"x": 1, "y": 2})
        mu2 = Binding({"y": 2, "z": 3})
        assert mu1.compatible(mu2)
        assert not mu1.compatible(Binding({"y": 99}))

    def test_empty_binding_compatible_with_all(self):
        assert EMPTY_BINDING.compatible(Binding({"x": 1}))
        assert Binding({"x": 1}).compatible(EMPTY_BINDING)

    def test_merge(self):
        merged = Binding({"x": 1}).merge(Binding({"y": 2}))
        assert merged == Binding({"x": 1, "y": 2})

    def test_extend_is_persistent(self):
        mu = Binding({"x": 1})
        nu = mu.extend("y", 2)
        assert "y" not in mu and nu["y"] == 2

    def test_extend_many(self):
        nu = Binding({"x": 1}).extend_many({"y": 2, "z": 3})
        assert nu.domain == frozenset({"x", "y", "z"})

    def test_project_and_drop(self):
        mu = Binding({"x": 1, "y": 2, "z": 3})
        assert mu.project(["x", "w"]).domain == frozenset({"x"})
        assert mu.drop(["y"]).domain == frozenset({"x", "z"})

    def test_repr_sorted(self):
        assert repr(Binding({"b": 1, "a": 2})) == "{a=2, b=1}"


class TestBindingTable:
    def test_deduplicates_rows(self):
        table = BindingTable(["x"], [Binding({"x": 1}), Binding({"x": 1})])
        assert len(table) == 1

    def test_unit_and_empty(self):
        assert len(BindingTable.unit()) == 1
        assert not BindingTable.empty(["x"])
        assert BindingTable.unit().rows[0] == EMPTY_BINDING

    def test_columns_deduplicated_in_order(self):
        table = BindingTable(["a", "b", "a"], [])
        assert table.columns == ("a", "b")

    def test_equality_is_set_semantics(self):
        t1 = BindingTable(["x"], [Binding({"x": 1}), Binding({"x": 2})])
        t2 = BindingTable(["x"], [Binding({"x": 2}), Binding({"x": 1})])
        assert t1 == t2

    def test_maximal_domain(self):
        table = BindingTable(
            ["x", "y"], [Binding({"x": 1}), Binding({"x": 2, "y": 3})]
        )
        assert table.maximal_domain() == frozenset({"x", "y"})

    def test_project(self):
        table = BindingTable(
            ["x", "y"],
            [Binding({"x": 1, "y": 1}), Binding({"x": 1, "y": 2})],
        )
        assert len(table.project(["x"])) == 1

    def test_drop(self):
        table = BindingTable(["x", "y"], [Binding({"x": 1, "y": 2})])
        dropped = table.drop(["y"])
        assert dropped.columns == ("x",)
        assert dropped.rows[0].domain == frozenset({"x"})

    def test_filter(self):
        table = BindingTable(["x"], [Binding({"x": i}) for i in range(5)])
        assert len(table.filter(lambda row: row["x"] % 2 == 0)) == 3

    def test_with_columns(self):
        table = BindingTable(["x"], []).with_columns(["y"])
        assert table.columns == ("x", "y")

    def test_pretty_contains_headers_and_values(self):
        table = BindingTable(
            ["c", "n"], [Binding({"c": "#Acme", "n": "#Alice"})]
        )
        text = table.pretty()
        assert "c" in text and "#Acme" in text

    def test_pretty_limit(self):
        table = BindingTable(["x"], [Binding({"x": i}) for i in range(30)])
        assert "more rows" in table.pretty(limit=10)

    def test_pretty_renders_value_sets(self):
        table = BindingTable(
            ["e"], [Binding({"e": frozenset({"CWI", "MIT"})})]
        )
        assert '{"CWI", "MIT"}' in table.pretty()
