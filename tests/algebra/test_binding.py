"""Unit tests for bindings and binding tables (Appendix A.1)."""


from repro.algebra.binding import ABSENT, EMPTY_BINDING, Binding, BindingTable
from repro.algebra.grouping import MISSING, group_by
from repro.algebra.ops import table_join, table_left_join, table_union


class TestBinding:
    def test_mapping_protocol(self):
        mu = Binding({"x": 1, "y": "a"})
        assert mu["x"] == 1 and mu.get("z") is None
        assert set(mu) == {"x", "y"} and len(mu) == 2
        assert "x" in mu and "z" not in mu

    def test_domain(self):
        assert Binding({"x": 1}).domain == frozenset({"x"})
        assert EMPTY_BINDING.domain == frozenset()

    def test_hash_and_equality(self):
        assert Binding({"x": 1}) == Binding({"x": 1})
        assert hash(Binding({"x": 1})) == hash(Binding({"x": 1}))
        assert Binding({"x": 1}) != Binding({"x": 2})

    def test_compatibility_on_shared_domain(self):
        mu1 = Binding({"x": 1, "y": 2})
        mu2 = Binding({"y": 2, "z": 3})
        assert mu1.compatible(mu2)
        assert not mu1.compatible(Binding({"y": 99}))

    def test_empty_binding_compatible_with_all(self):
        assert EMPTY_BINDING.compatible(Binding({"x": 1}))
        assert Binding({"x": 1}).compatible(EMPTY_BINDING)

    def test_merge(self):
        merged = Binding({"x": 1}).merge(Binding({"y": 2}))
        assert merged == Binding({"x": 1, "y": 2})

    def test_extend_is_persistent(self):
        mu = Binding({"x": 1})
        nu = mu.extend("y", 2)
        assert "y" not in mu and nu["y"] == 2

    def test_extend_many(self):
        nu = Binding({"x": 1}).extend_many({"y": 2, "z": 3})
        assert nu.domain == frozenset({"x", "y", "z"})

    def test_project_and_drop(self):
        mu = Binding({"x": 1, "y": 2, "z": 3})
        assert mu.project(["x", "w"]).domain == frozenset({"x"})
        assert mu.drop(["y"]).domain == frozenset({"x", "z"})

    def test_repr_sorted(self):
        assert repr(Binding({"b": 1, "a": 2})) == "{a=2, b=1}"


class TestBindingTable:
    def test_deduplicates_rows(self):
        table = BindingTable(["x"], [Binding({"x": 1}), Binding({"x": 1})])
        assert len(table) == 1

    def test_unit_and_empty(self):
        assert len(BindingTable.unit()) == 1
        assert not BindingTable.empty(["x"])
        assert BindingTable.unit().rows[0] == EMPTY_BINDING

    def test_columns_deduplicated_in_order(self):
        table = BindingTable(["a", "b", "a"], [])
        assert table.columns == ("a", "b")

    def test_equality_is_set_semantics(self):
        t1 = BindingTable(["x"], [Binding({"x": 1}), Binding({"x": 2})])
        t2 = BindingTable(["x"], [Binding({"x": 2}), Binding({"x": 1})])
        assert t1 == t2

    def test_maximal_domain(self):
        table = BindingTable(
            ["x", "y"], [Binding({"x": 1}), Binding({"x": 2, "y": 3})]
        )
        assert table.maximal_domain() == frozenset({"x", "y"})

    def test_project(self):
        table = BindingTable(
            ["x", "y"],
            [Binding({"x": 1, "y": 1}), Binding({"x": 1, "y": 2})],
        )
        assert len(table.project(["x"])) == 1

    def test_drop(self):
        table = BindingTable(["x", "y"], [Binding({"x": 1, "y": 2})])
        dropped = table.drop(["y"])
        assert dropped.columns == ("x",)
        assert dropped.rows[0].domain == frozenset({"x"})

    def test_filter(self):
        table = BindingTable(["x"], [Binding({"x": i}) for i in range(5)])
        assert len(table.filter(lambda row: row["x"] % 2 == 0)) == 3

    def test_with_columns(self):
        table = BindingTable(["x"], []).with_columns(["y"])
        assert table.columns == ("x", "y")

    def test_pretty_contains_headers_and_values(self):
        table = BindingTable(
            ["c", "n"], [Binding({"c": "#Acme", "n": "#Alice"})]
        )
        text = table.pretty()
        assert "c" in text and "#Acme" in text

    def test_pretty_limit(self):
        table = BindingTable(["x"], [Binding({"x": i}) for i in range(30)])
        assert "more rows" in table.pretty(limit=10)

    def test_pretty_renders_value_sets(self):
        table = BindingTable(
            ["e"], [Binding({"e": frozenset({"CWI", "MIT"})})]
        )
        assert '{"CWI", "MIT"}' in table.pretty()


class TestColumnarStorage:
    """The columnar layout under the set-of-bindings surface."""

    def test_absent_masks_partial_rows(self):
        table = BindingTable(
            ["x", "y"], [Binding({"x": 1}), Binding({"x": 2, "y": 3})]
        )
        assert table.column_values("x") == [1, 2]
        assert table.column_values("y") == [ABSENT, 3]
        assert table.present_count("y") == 1
        assert table.column_values("z") is None

    def test_rows_outside_declared_columns_are_stored(self):
        table = BindingTable(["x"], [Binding({"x": 1, "extra": 9})])
        assert table.columns == ("x",)
        assert table.variables == ("x", "extra")
        assert table.rows[0]["extra"] == 9

    def test_dedup_distinguishes_domain_from_value(self):
        # {x=1} and {x=1, y=...} have different domains: both survive.
        table = BindingTable(
            ["x", "y"],
            [Binding({"x": 1}), Binding({"x": 1, "y": 2}), Binding({"x": 1})],
        )
        assert len(table) == 2

    def test_from_columns_dedups_first_wins(self):
        table = BindingTable.from_columns(
            ("x", "y"),
            ("x", "y"),
            {"x": [1, 1, 2], "y": [ABSENT, ABSENT, 5]},
            3,
        )
        assert len(table) == 2
        assert table.rows[0] == Binding({"x": 1})
        assert table.rows[1] == Binding({"x": 2, "y": 5})

    def test_select_rows_preserves_order_and_masks(self):
        table = BindingTable(
            ["x", "y"],
            [Binding({"x": i}) if i % 2 else Binding({"x": i, "y": i * 10})
             for i in range(4)],
        )
        picked = table.select_rows([3, 0])
        assert [row.get("x") for row in picked] == [3, 0]
        assert picked.column_values("y") == [ABSENT, 0]

    def test_row_views_are_cached(self):
        table = BindingTable(["x"], [Binding({"x": 1})])
        assert table.rows[0] is table.rows[0]


class TestOptionalMasksAtColumnarBoundaries:
    """OPTIONAL partiality (missing-variable masks) must survive the
    columnar operators: join, union and grouping treat an ABSENT cell as
    'variable outside the domain', never as a value."""

    def test_masks_through_left_join(self):
        # The OPTIONAL operator: an unmatched left row keeps its mask.
        left = BindingTable(
            ["x"], [Binding({"x": 1}), Binding({"x": 2})]
        )
        right = BindingTable(
            ["x", "y"], [Binding({"x": 1, "y": "hit"})]
        )
        joined = table_left_join(left, right)
        assert len(joined) == 2
        by_x = {row["x"]: row for row in joined}
        assert by_x[1]["y"] == "hit"
        assert "y" not in by_x[2]
        assert joined.column_values("y") is not None
        assert ABSENT in joined.column_values("y")

    def test_partial_row_joins_any_value_of_missing_variable(self):
        # Compatibility constrains only the domain intersection: a row
        # that does not bind y joins every y value (paper A.1).
        left = BindingTable(
            ["x", "y"], [Binding({"x": 1}), Binding({"x": 1, "y": 7})]
        )
        right = BindingTable(
            ["y", "z"], [Binding({"y": 7, "z": "a"}), Binding({"y": 8, "z": "b"})]
        )
        joined = table_join(left, right)
        assert set(joined) == {
            Binding({"x": 1, "y": 7, "z": "a"}),
            Binding({"x": 1, "y": 8, "z": "b"}),
            Binding({"x": 1, "y": 7, "z": "a"}),  # total row joins y=7 only
        }

    def test_masks_through_union(self):
        left = BindingTable(["x", "y"], [Binding({"x": 1})])
        right = BindingTable(
            ["x", "y"], [Binding({"x": 1}), Binding({"x": 1, "y": 2})]
        )
        union = table_union(left, right)
        # {x=1} from both sides collapses; the masked and unmasked rows
        # stay distinct.
        assert set(union) == {Binding({"x": 1}), Binding({"x": 1, "y": 2})}
        assert union.column_values("y") == [ABSENT, 2]

    def test_union_aligns_disjoint_column_sets(self):
        left = BindingTable(["x"], [Binding({"x": 1})])
        right = BindingTable(["y"], [Binding({"y": 2})])
        union = table_union(left, right)
        assert union.columns == ("x", "y")
        assert union.column_values("x") == [1, ABSENT]
        assert union.column_values("y") == [ABSENT, 2]

    def test_group_by_missing_is_its_own_key(self):
        # grp (A.3): an unbound variable groups under MISSING, and rows
        # that bind it group by value — masks never merge with values.
        table = BindingTable(
            ["x", "y"],
            [
                Binding({"x": 1, "y": "a"}),
                Binding({"x": 2}),
                Binding({"x": 3, "y": "a"}),
                Binding({"x": 4}),
            ],
        )
        groups = dict(group_by(table, ["y"]))
        assert set(groups) == {("a",), (MISSING,)}
        assert {row["x"] for row in groups[("a",)]} == {1, 3}
        assert {row["x"] for row in groups[(MISSING,)]} == {2, 4}

    def test_group_by_on_unstored_variable(self):
        table = BindingTable(["x"], [Binding({"x": 1}), Binding({"x": 2})])
        groups = group_by(table, ["ghost"])
        assert len(groups) == 1
        key, sub = groups[0]
        assert key == (MISSING,)
        assert len(sub) == 2

    def test_left_join_then_group_by(self):
        # An end-to-end OPTIONAL shape: left join, then grouping on the
        # optional variable — unmatched rows form the MISSING group.
        left = BindingTable(
            ["n"], [Binding({"n": i}) for i in range(4)]
        )
        right = BindingTable(
            ["n", "tag"],
            [Binding({"n": 0, "tag": "t"}), Binding({"n": 2, "tag": "t"})],
        )
        joined = table_left_join(left, right)
        groups = dict(group_by(joined, ["tag"]))
        assert {row["n"] for row in groups[("t",)]} == {0, 2}
        assert {row["n"] for row in groups[(MISSING,)]} == {1, 3}
