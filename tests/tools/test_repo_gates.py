"""The CI gate scripts: ``tools/lint_repo.py`` and ``tools/run_mypy.py``.

Both are plain scripts (not part of the ``repro`` package), so they are
loaded by file path. The live repo must pass the repo lint; the
synthetic cases prove each invariant actually detects its violation.
"""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_tool(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


lint_repo = load_tool("lint_repo")
run_mypy = load_tool("run_mypy")


class TestLintRepoLive:
    def test_the_repo_is_clean(self):
        assert lint_repo.run_lint(REPO_ROOT) == []

    def test_main_exit_code(self, capsys):
        assert lint_repo.main(["--root", str(REPO_ROOT)]) == 0
        assert "lint_repo: clean" in capsys.readouterr().out


@pytest.fixture()
def fake_repo(tmp_path):
    """A minimal tree satisfying every lint invariant."""
    errors = tmp_path / "src" / "repro" / "errors.py"
    errors.parent.mkdir(parents=True)
    errors.write_text(
        "class GCoreError(Exception):\n"
        '    code = "internal"\n'
        "    http_status = 500\n",
        encoding="utf-8",
    )
    protocol = tmp_path / "src" / "repro" / "server" / "protocol.py"
    protocol.parent.mkdir(parents=True)
    protocol.write_text(
        "class ApiError(Exception):\n"
        '    code = "api"\n'
        "    http_status = 500\n",
        encoding="utf-8",
    )
    parallel = tmp_path / "src" / "repro" / "eval" / "parallel.py"
    parallel.parent.mkdir(parents=True)
    parallel.write_text(
        "try:\n    pass\nexcept (OSError, RuntimeError):  # safe: degrade to serial\n"
        "    pass\n",
        encoding="utf-8",
    )
    (tmp_path / "src" / "repro" / "eval" / "match.py").write_text(
        "run(naive=True)\n", encoding="utf-8"
    )
    corpus = tmp_path / "tests" / "fuzz" / "corpus"
    corpus.mkdir(parents=True)
    from repro.config import DEFAULT_CONFIG, NAIVE_CONFIG
    from repro.fuzz import Counterexample

    Counterexample(
        seed=0,
        query="SELECT n.firstName AS a MATCH (n:Person)",
        params={},
        configs=[NAIVE_CONFIG.to_json(), DEFAULT_CONFIG.to_json()],
        expected={},
        actual={},
        kind="rows",
        note="synthetic clean entry for the gate tests",
    ).save(corpus / "0001-clean.json")
    return tmp_path


class TestLintRepoSynthetic:
    def test_clean_fake_repo(self, fake_repo):
        assert lint_repo.run_lint(fake_repo) == []

    def test_error_class_missing_http_status(self, fake_repo):
        errors = fake_repo / "src" / "repro" / "errors.py"
        errors.write_text(
            errors.read_text(encoding="utf-8")
            + "\n\nclass BrokenError(GCoreError):\n    code = 'broken'\n",
            encoding="utf-8",
        )
        problems = lint_repo.run_lint(fake_repo)
        assert len(problems) == 1
        assert "BrokenError" in problems[0]
        assert "http_status" in problems[0]

    def test_indirect_subclass_is_covered(self, fake_repo):
        errors = fake_repo / "src" / "repro" / "errors.py"
        errors.write_text(
            errors.read_text(encoding="utf-8")
            + "\n\nclass Mid(GCoreError):\n"
            "    code = 'mid'\n    http_status = 400\n"
            "\n\nclass Leaf(Mid):\n    pass\n",
            encoding="utf-8",
        )
        problems = lint_repo.run_lint(fake_repo)
        assert {p.split("class ")[1].split(" ")[0] for p in problems} == {
            "Leaf"
        }

    def test_unrelated_class_not_checked(self, fake_repo):
        errors = fake_repo / "src" / "repro" / "errors.py"
        errors.write_text(
            errors.read_text(encoding="utf-8")
            + "\n\nclass NotAnError:\n    pass\n",
            encoding="utf-8",
        )
        assert lint_repo.run_lint(fake_repo) == []

    def test_new_naive_callsite_flagged(self, fake_repo):
        rogue = fake_repo / "src" / "repro" / "rogue.py"
        rogue.write_text("engine.run(q, naive=True)\n", encoding="utf-8")
        problems = lint_repo.run_lint(fake_repo)
        assert len(problems) == 1
        assert "naive=True" in problems[0]

    def test_allowlisted_naive_callsite_ok(self, fake_repo):
        # fake_repo's match.py already passes naive=True: no violation.
        assert lint_repo.run_lint(fake_repo) == []

    def test_uncommented_fallback_flagged(self, fake_repo):
        parallel = fake_repo / "src" / "repro" / "eval" / "parallel.py"
        parallel.write_text(
            "try:\n    pass\nexcept OSError:\n    pass\n",
            encoding="utf-8",
        )
        problems = lint_repo.run_lint(fake_repo)
        assert len(problems) == 1
        assert "justifying comment" in problems[0]

    def test_comment_on_next_line_accepted(self, fake_repo):
        parallel = fake_repo / "src" / "repro" / "eval" / "parallel.py"
        parallel.write_text(
            "try:\n    pass\nexcept OSError:\n"
            "    # workers fall back to the serial path\n    pass\n",
            encoding="utf-8",
        )
        assert lint_repo.run_lint(fake_repo) == []

    def test_blanket_except_exception_flagged_even_with_comment(self, fake_repo):
        parallel = fake_repo / "src" / "repro" / "eval" / "parallel.py"
        parallel.write_text(
            "try:\n    pass\nexcept Exception:  # safe: degrade to serial\n"
            "    pass\n",
            encoding="utf-8",
        )
        problems = lint_repo.run_lint(fake_repo)
        assert len(problems) == 1
        assert "blanket" in problems[0]
        assert "POOL_FALLBACK_EXCEPTIONS" in problems[0]

    def test_bare_except_flagged(self, fake_repo):
        parallel = fake_repo / "src" / "repro" / "eval" / "parallel.py"
        parallel.write_text(
            "try:\n    pass\nexcept:  # anything\n    pass\n",
            encoding="utf-8",
        )
        problems = lint_repo.run_lint(fake_repo)
        assert len(problems) == 1
        assert "blanket" in problems[0]

    def test_missing_corpus_dir_flagged(self, fake_repo):
        corpus = fake_repo / "tests" / "fuzz" / "corpus"
        (corpus / "0001-clean.json").unlink()
        corpus.rmdir()
        problems = lint_repo.run_lint(fake_repo)
        assert len(problems) == 1
        assert "corpus directory missing" in problems[0]

    def test_empty_corpus_flagged(self, fake_repo):
        (fake_repo / "tests" / "fuzz" / "corpus" / "0001-clean.json").unlink()
        problems = lint_repo.run_lint(fake_repo)
        assert len(problems) == 1
        assert "corpus is empty" in problems[0]

    def test_unloadable_corpus_entry_flagged(self, fake_repo):
        corpus = fake_repo / "tests" / "fuzz" / "corpus"
        (corpus / "0002-broken.json").write_text("{not json", encoding="utf-8")
        problems = lint_repo.run_lint(fake_repo)
        assert len(problems) == 1
        assert "0002-broken.json" in problems[0]
        assert "not a loadable counterexample" in problems[0]

    def test_unparseable_corpus_query_flagged(self, fake_repo):
        import json

        corpus = fake_repo / "tests" / "fuzz" / "corpus"
        entry = json.loads(
            (corpus / "0001-clean.json").read_text(encoding="utf-8")
        )
        entry["query"] = "SELECT 1 +"
        (corpus / "0003-syntax.json").write_text(
            json.dumps(entry), encoding="utf-8"
        )
        problems = lint_repo.run_lint(fake_repo)
        assert len(problems) == 1
        assert "0003-syntax.json" in problems[0]
        assert "does not parse" in problems[0]

    def test_rediverging_corpus_entry_flagged(self, fake_repo, monkeypatch):
        import repro.fuzz as fuzz_pkg

        monkeypatch.setattr(
            fuzz_pkg,
            "replay_counterexample",
            lambda entry, engine=None: entry,
        )
        problems = lint_repo.run_lint(fake_repo)
        assert len(problems) == 1
        assert "replay diverges again" in problems[0]


class TestMypyGateLogic:
    GLOBS = ["src/repro/engine.py", "src/repro/eval/*"]

    def test_is_baselined(self):
        assert run_mypy.is_baselined("src/repro/engine.py", self.GLOBS)
        assert run_mypy.is_baselined("src/repro/eval/match.py", self.GLOBS)
        assert not run_mypy.is_baselined(
            "src/repro/analysis/analyzer.py", self.GLOBS
        )

    def test_split_report_buckets_by_path(self):
        output = (
            "src/repro/engine.py:10: error: boom  [misc]\n"
            "src/repro/engine.py:10: note: see docs\n"
            "src/repro/analysis/analyzer.py:5: error: real problem  [misc]\n"
            "Found 2 errors in 2 files (checked 40 source files)\n"
        )
        blocking, baselined = run_mypy.split_report(output, self.GLOBS)
        assert any("real problem" in line for line in blocking)
        assert all("engine.py" not in line for line in blocking)
        assert any("boom" in line for line in baselined)
        assert any("note" in line for line in baselined)

    def test_split_report_clean_run(self):
        blocking, baselined = run_mypy.split_report(
            "Success: no issues found in 40 source files\n", self.GLOBS
        )
        assert blocking == []
        assert baselined == []

    def test_committed_baseline_parses(self):
        globs = run_mypy.load_baseline()
        assert globs, "baseline file should list legacy module globs"
        assert all(not g.startswith("#") for g in globs)
        # the analysis package must never be baselined
        assert not any("analysis" in g for g in globs)
