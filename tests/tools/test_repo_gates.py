"""The CI gate scripts: ``tools/lint_repo.py`` and ``tools/run_mypy.py``.

Both are plain scripts (not part of the ``repro`` package), so they are
loaded by file path. The live repo must pass the repo lint; the
synthetic cases prove each invariant actually detects its violation.
"""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_tool(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


lint_repo = load_tool("lint_repo")
run_mypy = load_tool("run_mypy")


class TestLintRepoLive:
    def test_the_repo_is_clean(self):
        assert lint_repo.run_lint(REPO_ROOT) == []

    def test_main_exit_code(self, capsys):
        assert lint_repo.main(["--root", str(REPO_ROOT)]) == 0
        assert "lint_repo: clean" in capsys.readouterr().out


@pytest.fixture()
def fake_repo(tmp_path):
    """A minimal tree satisfying every lint invariant."""
    errors = tmp_path / "src" / "repro" / "errors.py"
    errors.parent.mkdir(parents=True)
    errors.write_text(
        "class GCoreError(Exception):\n"
        '    code = "internal"\n'
        "    http_status = 500\n",
        encoding="utf-8",
    )
    protocol = tmp_path / "src" / "repro" / "server" / "protocol.py"
    protocol.parent.mkdir(parents=True)
    protocol.write_text(
        "class ApiError(Exception):\n"
        '    code = "api"\n'
        "    http_status = 500\n",
        encoding="utf-8",
    )
    parallel = tmp_path / "src" / "repro" / "eval" / "parallel.py"
    parallel.parent.mkdir(parents=True)
    parallel.write_text(
        "try:\n    pass\nexcept Exception:  # safe: degrade to serial\n"
        "    pass\n",
        encoding="utf-8",
    )
    (tmp_path / "src" / "repro" / "eval" / "match.py").write_text(
        "run(naive=True)\n", encoding="utf-8"
    )
    return tmp_path


class TestLintRepoSynthetic:
    def test_clean_fake_repo(self, fake_repo):
        assert lint_repo.run_lint(fake_repo) == []

    def test_error_class_missing_http_status(self, fake_repo):
        errors = fake_repo / "src" / "repro" / "errors.py"
        errors.write_text(
            errors.read_text(encoding="utf-8")
            + "\n\nclass BrokenError(GCoreError):\n    code = 'broken'\n",
            encoding="utf-8",
        )
        problems = lint_repo.run_lint(fake_repo)
        assert len(problems) == 1
        assert "BrokenError" in problems[0]
        assert "http_status" in problems[0]

    def test_indirect_subclass_is_covered(self, fake_repo):
        errors = fake_repo / "src" / "repro" / "errors.py"
        errors.write_text(
            errors.read_text(encoding="utf-8")
            + "\n\nclass Mid(GCoreError):\n"
            "    code = 'mid'\n    http_status = 400\n"
            "\n\nclass Leaf(Mid):\n    pass\n",
            encoding="utf-8",
        )
        problems = lint_repo.run_lint(fake_repo)
        assert {p.split("class ")[1].split(" ")[0] for p in problems} == {
            "Leaf"
        }

    def test_unrelated_class_not_checked(self, fake_repo):
        errors = fake_repo / "src" / "repro" / "errors.py"
        errors.write_text(
            errors.read_text(encoding="utf-8")
            + "\n\nclass NotAnError:\n    pass\n",
            encoding="utf-8",
        )
        assert lint_repo.run_lint(fake_repo) == []

    def test_new_naive_callsite_flagged(self, fake_repo):
        rogue = fake_repo / "src" / "repro" / "rogue.py"
        rogue.write_text("engine.run(q, naive=True)\n", encoding="utf-8")
        problems = lint_repo.run_lint(fake_repo)
        assert len(problems) == 1
        assert "naive=True" in problems[0]

    def test_allowlisted_naive_callsite_ok(self, fake_repo):
        # fake_repo's match.py already passes naive=True: no violation.
        assert lint_repo.run_lint(fake_repo) == []

    def test_uncommented_fallback_flagged(self, fake_repo):
        parallel = fake_repo / "src" / "repro" / "eval" / "parallel.py"
        parallel.write_text(
            "try:\n    pass\nexcept Exception:\n    pass\n",
            encoding="utf-8",
        )
        problems = lint_repo.run_lint(fake_repo)
        assert len(problems) == 1
        assert "except Exception" in problems[0]

    def test_comment_on_next_line_accepted(self, fake_repo):
        parallel = fake_repo / "src" / "repro" / "eval" / "parallel.py"
        parallel.write_text(
            "try:\n    pass\nexcept Exception:\n"
            "    # workers fall back to the serial path\n    pass\n",
            encoding="utf-8",
        )
        assert lint_repo.run_lint(fake_repo) == []


class TestMypyGateLogic:
    GLOBS = ["src/repro/engine.py", "src/repro/eval/*"]

    def test_is_baselined(self):
        assert run_mypy.is_baselined("src/repro/engine.py", self.GLOBS)
        assert run_mypy.is_baselined("src/repro/eval/match.py", self.GLOBS)
        assert not run_mypy.is_baselined(
            "src/repro/analysis/analyzer.py", self.GLOBS
        )

    def test_split_report_buckets_by_path(self):
        output = (
            "src/repro/engine.py:10: error: boom  [misc]\n"
            "src/repro/engine.py:10: note: see docs\n"
            "src/repro/analysis/analyzer.py:5: error: real problem  [misc]\n"
            "Found 2 errors in 2 files (checked 40 source files)\n"
        )
        blocking, baselined = run_mypy.split_report(output, self.GLOBS)
        assert any("real problem" in line for line in blocking)
        assert all("engine.py" not in line for line in blocking)
        assert any("boom" in line for line in baselined)
        assert any("note" in line for line in baselined)

    def test_split_report_clean_run(self):
        blocking, baselined = run_mypy.split_report(
            "Success: no issues found in 40 source files\n", self.GLOBS
        )
        assert blocking == []
        assert baselined == []

    def test_committed_baseline_parses(self):
        globs = run_mypy.load_baseline()
        assert globs, "baseline file should list legacy module globs"
        assert all(not g.startswith("#") for g in globs)
        # the analysis package must never be baselined
        assert not any("analysis" in g for g in globs)
