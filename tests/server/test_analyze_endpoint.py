"""``POST /analyze`` and the ``strict`` flag of ``POST /query``.

Boots a real server on an ephemeral port (same harness as
``test_server.py``) and checks the wire format documented in
``docs/analysis.md``.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro import GCoreEngine
from repro.datasets import social_graph
from repro.model.schema import snb_schema
from repro.server import ServerConfig, run_in_thread


def http(url, payload=None, timeout=30):
    if payload is None:
        request = urllib.request.Request(url)
    else:
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture(scope="module")
def server():
    engine = GCoreEngine()
    engine.register_graph(
        "social_graph", social_graph(), default=True, schema=snb_schema()
    )
    handle = run_in_thread(engine, ServerConfig(port=0))
    try:
        yield handle
    finally:
        handle.stop()


def analyze(server, query):
    return http(f"{server.url}/analyze", {"query": query})


#: ≥8 distinct codes observable over the wire (the acceptance bar).
WIRE_CASES = {
    "GC001": "CONSTRUCT (",
    "GC101": "CONSTRUCT (n) MATCH (n) ON missing_graph",
    "GC103": "CONSTRUCT (n) MATCH (n:Persn)",
    "GC104": "CONSTRUCT (n) MATCH (n) WHERE n.agee = 1",
    "GC201": "CONSTRUCT (x) MATCH (x)-[x]->(m)",
    "GC204": "CONSTRUCT (n) MATCH (n) WHERE m.name = 'Alice'",
    "GC205": "CONSTRUCT (n) MATCH (n) WHERE TRUE < 2",
    "GC301": (
        "SELECT n.name MATCH (n:Person) "
        "WHERE n.employer = 'Acme' AND n.employer = 'HAL'"
    ),
    "GC302": "CONSTRUCT (c) MATCH (c:Company)",
    "GC401": "CONSTRUCT (n) MATCH (n), (m)",
}


@pytest.mark.parametrize("code", sorted(WIRE_CASES))
def test_analyze_reports_code_over_the_wire(server, code):
    status, body = analyze(server, WIRE_CASES[code])
    assert status == 200
    assert code in [d["code"] for d in body["diagnostics"]]


def test_analyze_envelope_shape(server):
    status, body = analyze(server, WIRE_CASES["GC204"])
    assert status == 200
    assert body["ok"] is False
    assert body["error_count"] == 1
    assert body["warning_count"] == 0
    assert body["info_count"] == 0
    assert "elapsed_ms" in body
    (diagnostic,) = body["diagnostics"]
    assert diagnostic["code"] == "GC204"
    assert diagnostic["name"] == "unbound-variable"
    assert diagnostic["severity"] == "error"
    assert diagnostic["line"] == 1
    assert diagnostic["column"] > 1
    assert "message" in diagnostic and "hint" in diagnostic


def test_analyze_clean_query(server):
    status, body = analyze(
        server, "SELECT n.name MATCH (n:Person) ORDER BY n.name"
    )
    assert status == 200
    assert body["ok"] is True
    assert body["diagnostics"] == []


def test_analyze_unparseable_is_still_200(server):
    status, body = analyze(server, "this is not a query")
    assert status == 200
    assert [d["code"] for d in body["diagnostics"]] == ["GC001"]


def test_analyze_rejects_missing_query(server):
    status, body = http(f"{server.url}/analyze", {})
    assert status == 400
    assert body["error"]["code"] == "bad_request"


def test_query_strict_blocks_error_diagnostics(server):
    status, body = http(
        f"{server.url}/query",
        {"query": WIRE_CASES["GC204"], "strict": True},
    )
    assert status == 400
    assert body["error"]["code"] == "analysis_error"
    assert "GC204" in body["error"]["message"]


def test_query_strict_allows_warnings(server):
    status, body = http(
        f"{server.url}/query",
        {"query": "SELECT n.name MATCH (n:Person), (m:Post)", "strict": True},
    )
    assert status == 200


def test_query_without_strict_still_runs(server):
    status, body = http(f"{server.url}/query", {"query": WIRE_CASES["GC204"]})
    assert status == 200


def test_query_strict_must_be_boolean(server):
    status, body = http(
        f"{server.url}/query", {"query": "SELECT 1 FROM t", "strict": "yes"}
    )
    assert status == 400
    assert body["error"]["code"] == "bad_request"
