"""HTTP server: endpoint behavior, error envelopes, admission edge cases.

Each test boots a real server on an ephemeral port
(:func:`repro.server.run_in_thread`) and talks plain HTTP through
urllib — the same wire a curl client sees, documented in
``docs/http-api.md``.
"""

import json
import threading
import time
import urllib.error
import urllib.request
from urllib.parse import quote

import pytest

from repro import GCoreEngine, GraphBuilder
from repro.server import ServerConfig, run_in_thread

PERSON_QUERY = "SELECT n.name MATCH (n:Person) ON g ORDER BY n.name"


def small_graph(n=6):
    b = GraphBuilder(name="g")
    for i in range(n):
        b.add_node(f"p{i}", labels=["Person"], properties={"name": f"p{i}"})
    for i in range(n - 1):
        b.add_edge(f"p{i}", f"p{i + 1}", edge_id=f"e{i}", labels=["knows"])
    return b.build()


def make_engine(engine_cls=GCoreEngine):
    engine = engine_cls()
    engine.register_graph("g", small_graph(), default=True)
    return engine


def http(url, payload=None, timeout=30):
    """POST *payload* (or GET when None); returns (status, body_dict)."""
    if payload is None:
        request = urllib.request.Request(url)
    else:
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def http_raw(url, body, timeout=30):
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture()
def server():
    handle = run_in_thread(make_engine(), ServerConfig(port=0))
    try:
        yield handle
    finally:
        handle.stop()


class SlowQueryEngine(GCoreEngine):
    """Every evaluation sleeps first — deterministic slow queries."""

    delay = 0.6

    def _evaluate(self, statement, params, plans, config, catalog):
        time.sleep(self.delay)
        return super()._evaluate(statement, params, plans, config, catalog)


class SlowUpdateEngine(GCoreEngine):
    """apply_update holds the engine write lock for a while."""

    delay = 0.8

    def apply_update(self, graph, delta, schema=None):
        with self._lock:
            time.sleep(self.delay)
            return super().apply_update(graph, delta, schema)


class TestQueryEndpoints:
    def test_query_roundtrip(self, server):
        status, body = http(server.url + "/query", {"query": PERSON_QUERY})
        assert status == 200
        assert body["kind"] == "table"
        assert body["columns"] == ["n.name"]
        assert body["rows"] == [[f"p{i}"] for i in range(6)]
        assert body["row_count"] == 6
        assert body["truncated"] is False
        assert body["epochs"]["g"] >= 1

    def test_construct_returns_graph_payload(self, server):
        status, body = http(
            server.url + "/query",
            {"query": "CONSTRUCT (n) MATCH (n:Person) ON g"},
        )
        assert status == 200
        assert body["kind"] == "graph"
        assert body["node_count"] == 6
        assert len(body["graph"]["nodes"]) == 6

    def test_row_limit_sets_truncated_flag(self, server):
        status, body = http(
            server.url + "/query", {"query": PERSON_QUERY, "max_rows": 2}
        )
        assert status == 200
        assert len(body["rows"]) == 2
        assert body["row_count"] == 6  # full size still reported
        assert body["truncated"] is True

    def test_prepare_execute_flow(self, server):
        status, prepared = http(
            server.url + "/prepare",
            {"query": "SELECT n.name MATCH (n:Person) ON g "
                      "WHERE n.name = $who"},
        )
        assert status == 200
        assert prepared["params"] == ["who"]
        statement_id = prepared["statement_id"]
        status, body = http(
            server.url + "/execute",
            {"statement_id": statement_id, "params": {"who": "p3"}},
        )
        assert status == 200
        assert body["rows"] == [["p3"]]
        assert body["statement_id"] == statement_id

    def test_execute_unknown_statement_is_404(self, server):
        status, body = http(
            server.url + "/execute", {"statement_id": "stmt-404"}
        )
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_execute_missing_param_is_400(self, server):
        _status, prepared = http(
            server.url + "/prepare",
            {"query": "SELECT n.name MATCH (n:Person) ON g "
                      "WHERE n.name = $who"},
        )
        status, body = http(
            server.url + "/execute",
            {"statement_id": prepared["statement_id"]},
        )
        assert status == 400
        assert body["error"]["code"] == "evaluation_error"
        assert "who" in body["error"]["message"]

    def test_update_bumps_epoch_and_is_visible(self, server):
        status, body = http(
            server.url + "/update",
            {"graph": "g", "ops": [
                {"op": "add_node", "id": "p9", "labels": ["Person"],
                 "properties": {"name": "p9"}},
            ]},
        )
        assert status == 200
        assert body["epoch"] == 2
        assert body["node_count"] == 7
        status, after = http(server.url + "/query", {"query": PERSON_QUERY})
        assert ["p9"] in after["rows"]
        assert after["epochs"]["g"] == 2

    def test_explain_endpoint(self, server):
        status, body = http(
            server.url + "/explain?query=" + quote(PERSON_QUERY)
        )
        assert status == 200
        assert isinstance(body["explain"], str) and body["explain"]

    def test_stats_endpoint_shape(self, server):
        http(server.url + "/query", {"query": PERSON_QUERY})
        status, body = http(server.url + "/stats")
        assert status == 200
        assert {"plan_cache", "mvcc", "graphs", "admission",
                "requests_total", "timeouts_total"} <= set(body)
        assert body["mvcc"] == {"active_snapshots": 0,
                                "retained_versions": 0}
        (entry,) = body["graphs"]
        assert entry["name"] == "g" and entry["kind"] == "base"


class TestExecutionConfigWire:
    """The ``config`` request field on /query, /prepare and /execute."""

    def test_query_accepts_config(self, server):
        reference = http(server.url + "/query", {"query": PERSON_QUERY})[1]
        for config in (
            {"parallelism": 2},
            {"planner": "naive", "executor": "reference"},
            {"parallelism": "serial"},
        ):
            status, body = http(
                server.url + "/query",
                {"query": PERSON_QUERY, "config": config},
            )
            assert status == 200
            assert body["rows"] == reference["rows"]

    def test_unknown_config_key_is_422(self, server):
        status, body = http(
            server.url + "/query",
            {"query": PERSON_QUERY, "config": {"bogus": 1}},
        )
        assert status == 422
        assert body["error"]["code"] == "validation_error"
        assert "bogus" in body["error"]["message"]

    def test_invalid_config_value_is_422(self, server):
        status, body = http(
            server.url + "/query",
            {"query": PERSON_QUERY, "config": {"parallelism": 0}},
        )
        assert status == 422
        assert body["error"]["code"] == "validation_error"

    def test_prepare_pins_config_and_execute_overrides(self, server):
        status, prepared = http(
            server.url + "/prepare",
            {"query": PERSON_QUERY, "config": {"planner": "greedy"}},
        )
        assert status == 200
        statement_id = prepared["statement_id"]
        reference = http(server.url + "/query", {"query": PERSON_QUERY})[1]
        # pinned config applies...
        status, body = http(
            server.url + "/execute", {"statement_id": statement_id}
        )
        assert status == 200
        assert body["rows"] == reference["rows"]
        # ...and a per-execute config overrides the pin
        status, body = http(
            server.url + "/execute",
            {"statement_id": statement_id,
             "config": {"executor": "reference"}},
        )
        assert status == 200
        assert body["rows"] == reference["rows"]

    def test_prepare_rejects_bad_config_upfront(self, server):
        status, body = http(
            server.url + "/prepare",
            {"query": PERSON_QUERY, "config": {"planner": "bogus"}},
        )
        assert status == 422
        assert body["error"]["code"] == "validation_error"

    def test_concurrent_parallel_queries(self, monkeypatch):
        """Many clients, each query itself morsel-parallel: the pool is
        shared process-wide, so concurrent snapshot readers must not
        corrupt each other's results."""
        from repro.eval import parallel

        monkeypatch.setattr(parallel, "MIN_PARALLEL_ROWS", 1)
        monkeypatch.setattr(parallel, "MIN_PARALLEL_FILTER_ROWS", 1)
        monkeypatch.setattr(parallel, "DEFAULT_BACKEND", "thread")
        handle = run_in_thread(
            make_engine(), ServerConfig(port=0, workers=2)
        )
        try:
            reference = http(
                handle.url + "/query", {"query": PERSON_QUERY}
            )[1]["rows"]
            results = [None] * 8
            def worker(index):
                results[index] = http(
                    handle.url + "/query",
                    {"query": PERSON_QUERY,
                     "config": {"parallelism": 2}},
                )
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(results))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for status, body in results:
                assert status == 200
                assert body["rows"] == reference
        finally:
            handle.stop()

    def test_server_workers_default_applies_without_request_config(
        self, monkeypatch
    ):
        """ServerConfig.workers > 1 parallelizes config-less requests."""
        from repro.eval import parallel

        monkeypatch.setattr(parallel, "MIN_PARALLEL_ROWS", 1)
        monkeypatch.setattr(parallel, "DEFAULT_BACKEND", "thread")
        handle = run_in_thread(
            make_engine(), ServerConfig(port=0, workers=2)
        )
        try:
            status, body = http(
                handle.url + "/query", {"query": PERSON_QUERY}
            )
            assert status == 200
            assert body["rows"] == [[f"p{i}"] for i in range(6)]
        finally:
            handle.stop()


class TestErrorEnvelopes:
    def test_malformed_json_is_400_bad_request(self, server):
        status, body = http_raw(server.url + "/query", b"{not json")
        assert status == 400
        assert body["error"]["code"] == "bad_request"
        assert body["error"]["status"] == 400

    def test_non_object_body_is_400(self, server):
        status, body = http_raw(server.url + "/query", b"[1, 2]")
        assert status == 400
        assert body["error"]["code"] == "bad_request"

    def test_unknown_graph_is_404_with_stable_code(self, server):
        status, body = http(
            server.url + "/query",
            {"query": "SELECT n.name MATCH (n) ON nope"},
        )
        assert status == 404
        assert body["error"]["code"] == "unknown_graph"

    def test_parse_error_code(self, server):
        status, body = http(server.url + "/query", {"query": "SELEC oops"})
        assert status == 400
        assert body["error"]["code"] == "parse_error"

    def test_unknown_route_and_wrong_method(self, server):
        status, body = http(server.url + "/nope")
        assert status == 404
        assert body["error"]["code"] == "not_found"
        status, body = http(server.url + "/query")  # GET on a POST route
        assert status == 405
        assert body["error"]["code"] == "method_not_allowed"

    def test_bad_update_op_rejected_before_apply(self, server):
        status, body = http(
            server.url + "/update",
            {"graph": "g", "ops": [{"op": "warp_core_breach"}]},
        )
        assert status == 400
        assert body["error"]["code"] == "bad_request"
        status, after = http(server.url + "/query", {"query": PERSON_QUERY})
        assert after["epochs"]["g"] == 1  # nothing half-applied

    def test_delta_conflict_maps_to_409(self, server):
        status, body = http(
            server.url + "/update",
            {"graph": "g", "ops": [{"op": "remove_node", "id": "ghost"}]},
        )
        assert status == 409
        assert body["error"]["code"] == "delta_error"

    def test_invalid_timeout_and_row_limit_values(self, server):
        for payload in (
            {"query": PERSON_QUERY, "timeout_ms": 0},
            {"query": PERSON_QUERY, "timeout_ms": "fast"},
            {"query": PERSON_QUERY, "max_rows": 0},
            {"query": PERSON_QUERY, "max_rows": True},
        ):
            status, body = http(server.url + "/query", payload)
            assert status == 400
            assert body["error"]["code"] == "bad_request"


class TestAdmissionAndTimeouts:
    def test_timeout_expiry_mid_query_is_408(self):
        handle = run_in_thread(
            make_engine(SlowQueryEngine), ServerConfig(port=0)
        )
        try:
            status, body = http(
                handle.url + "/query",
                {"query": PERSON_QUERY, "timeout_ms": 100},
            )
            assert status == 408
            assert body["error"]["code"] == "timeout"
            # the abandoned worker finishes and frees its slot; the
            # server keeps serving afterwards
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                _status, health = http(handle.url + "/health")
                if health["in_flight"] == 0:
                    break
                time.sleep(0.05)
            assert health["in_flight"] == 0
            status, body = http(
                handle.url + "/query",
                {"query": PERSON_QUERY, "timeout_ms": 30_000},
            )
            assert status == 200
            _status, stats = http(handle.url + "/stats")
            assert stats["timeouts_total"] == 1
        finally:
            handle.stop()

    def test_load_shedding_returns_503(self):
        handle = run_in_thread(
            make_engine(SlowQueryEngine),
            ServerConfig(port=0, max_in_flight=1, max_queue=0),
        )
        try:
            results = []

            def slow_query():
                results.append(
                    http(handle.url + "/query", {"query": PERSON_QUERY})
                )

            occupant = threading.Thread(target=slow_query)
            occupant.start()
            # wait for the slow query to take the only slot
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                _status, health = http(handle.url + "/health")
                if health["in_flight"] == 1:
                    break
                time.sleep(0.02)
            assert health["in_flight"] == 1

            status, body = http(
                handle.url + "/query", {"query": PERSON_QUERY}
            )
            assert status == 503
            assert body["error"]["code"] == "overloaded"

            occupant.join(timeout=30)
            assert results[0][0] == 200  # the occupant still succeeded
            _status, stats = http(handle.url + "/stats")
            assert stats["admission"]["shed_total"] == 1
            # capacity is back
            status, _body = http(
                handle.url + "/query", {"query": PERSON_QUERY}
            )
            assert status == 200
        finally:
            handle.stop()

    def test_health_stays_responsive_during_long_update(self):
        handle = run_in_thread(
            make_engine(SlowUpdateEngine), ServerConfig(port=0)
        )
        try:
            update_result = []

            def long_update():
                update_result.append(http(
                    handle.url + "/update",
                    {"graph": "g", "ops": [
                        {"op": "add_node", "id": "slow", "labels": ["Person"],
                         "properties": {"name": "slow"}},
                    ]},
                ))

            updater = threading.Thread(target=long_update)
            updater.start()
            # probe /health while the update holds the engine write lock
            deadline = time.monotonic() + 10
            probed = 0
            while updater.is_alive() and time.monotonic() < deadline:
                started = time.monotonic()
                status, body = http(handle.url + "/health", timeout=2)
                elapsed = time.monotonic() - started
                assert status == 200 and body["status"] == "ok"
                assert elapsed < 1.0, "health blocked behind the update"
                probed += 1
            updater.join(timeout=30)
            assert probed >= 1
            assert update_result[0][0] == 200
        finally:
            handle.stop()
