"""MVCC: snapshot isolation, refcount pruning, concurrent consistency.

Grown from the interleaved-update stress suite
(``tests/integration/test_update_consistency.py``): where that suite
checks that *sequential* update/query interleavings stay fresh, this one
checks the opposite guarantee for *concurrent* readers — a snapshot
pinned before an update keeps answering from its own catalog version
(repeatable reads, never torn, never stale beyond the pin), and the
superseded graph versions it pins are refcount-pruned the moment the
last reader releases. See ``docs/consistency.md`` for the model.
"""

import random
import threading

import pytest

from repro import GCoreEngine, GraphBuilder, GraphDelta
from repro.errors import SemanticError

# Workload mirrors tests/integration/test_update_consistency.py (tests
# are not an importable package, so the helpers are restated here).
SELECT_QUERY = (
    "SELECT a.name, b.name MATCH (a:Person)-[e:knows]->(b:Person) "
    "WHERE a.score = $s ORDER BY a.name, b.name"
)


def seed_graph(n=12, rng=None):
    rng = rng or random.Random(7)
    b = GraphBuilder(name="g")
    names = [f"p{i}" for i in range(n)]
    for i, node in enumerate(names):
        b.add_node(node, labels=["Person"],
                   properties={"name": node, "score": i % 3})
    for j in range(2 * n):
        b.add_edge(rng.choice(names), rng.choice(names), edge_id=f"e{j}",
                   labels=["knows"])
    return b.build()


def random_delta(rng, graph, tag):
    nodes = sorted(graph.nodes, key=str)
    edges = sorted(graph.edges, key=str)
    delta = GraphDelta()
    kind = rng.choice(["grow", "shrink", "mutate"])
    if kind == "grow" or not edges:
        delta.add_node(f"q{tag}", labels=["Person"],
                       properties={"name": f"q{tag}",
                                   "score": rng.randint(0, 2)})
        delta.add_edge(f"k{tag}", f"q{tag}", rng.choice(nodes),
                       labels=["knows"])
    elif kind == "shrink":
        if rng.random() < 0.5 and len(nodes) > 4:
            delta.remove_node(rng.choice(nodes))
        else:
            delta.remove_edge(rng.choice(edges))
    else:
        delta.set_property(rng.choice(nodes), "score", rng.randint(0, 2))
    return delta


COUNT_QUERY = "SELECT COUNT(*) AS n MATCH (a:Person) ON g"
EDGE_QUERY = (
    "SELECT a.name, b.name MATCH (a:Person)-[e:knows]->(b:Person) ON g "
    "ORDER BY a.name, b.name"
)


def make_engine(seed=7):
    engine = GCoreEngine()
    engine.register_graph("g", seed_graph(rng=random.Random(seed)),
                          default=True)
    return engine


class TestSnapshotIsolation:
    def test_snapshot_pins_graph_version_across_updates(self):
        engine = make_engine()
        with engine.snapshot() as snap:
            pinned_graph = snap.graph("g")
            pinned_epoch = snap.epoch("g")
            before = snap.run(COUNT_QUERY).rows
            engine.apply_update(
                "g", GraphDelta().add_node("zz", labels=["Person"],
                                           properties={"name": "zz"}))
            # the engine moved on ...
            assert engine.catalog.epoch("g") == pinned_epoch + 1
            assert "zz" in engine.graph("g").nodes
            # ... the snapshot did not
            assert snap.graph("g") is pinned_graph
            assert snap.epoch("g") == pinned_epoch
            assert snap.run(COUNT_QUERY).rows == before
        # a fresh snapshot sees the new version
        with engine.snapshot() as snap2:
            assert "zz" in snap2.graph("g").nodes
            assert snap2.epoch("g") == pinned_epoch + 1

    def test_retained_versions_pruned_at_refcount_zero(self):
        engine = make_engine()
        assert engine.catalog.retained_version_count() == 0
        snap = engine.snapshot()
        engine.apply_update(
            "g", GraphDelta().add_node("r1", labels=["Person"],
                                       properties={"name": "r1"}))
        # the superseded version is retained while the reader holds it
        assert engine.catalog.retained_version_count("g") == 1
        assert engine.mvcc_info() == {"active_snapshots": 1,
                                      "retained_versions": 1}
        snap.release()
        assert engine.catalog.retained_version_count() == 0
        assert engine.mvcc_info() == {"active_snapshots": 0,
                                      "retained_versions": 0}

    def test_release_is_idempotent(self):
        engine = make_engine()
        snap = engine.snapshot()
        snap.release()
        snap.release()
        assert engine.mvcc_info()["active_snapshots"] == 0
        # reads remain usable after release (references still held)
        assert snap.run(COUNT_QUERY).rows

    def test_overlapping_snapshots_pin_distinct_epochs(self):
        engine = make_engine()
        snaps = []
        for step in range(4):
            snaps.append(engine.snapshot())
            engine.apply_update(
                "g", GraphDelta().add_node(f"s{step}", labels=["Person"],
                                           properties={"name": f"s{step}"}))
        epochs = [snap.epoch("g") for snap in snaps]
        assert epochs == sorted(epochs) and len(set(epochs)) == 4
        counts = [snap.run(COUNT_QUERY).rows[0][0] for snap in snaps]
        assert counts == [counts[0] + i for i in range(4)]
        # every snapshot was followed by an update, so all four pinned
        # versions are superseded and retained
        assert engine.catalog.retained_version_count("g") == 4
        for snap in snaps:
            snap.release()
        assert engine.catalog.retained_version_count() == 0

    def test_shared_epoch_pruned_only_after_last_reader(self):
        engine = make_engine()
        first = engine.snapshot()
        second = engine.snapshot()
        engine.apply_update(
            "g", GraphDelta().add_node("x1", labels=["Person"],
                                       properties={"name": "x1"}))
        assert engine.catalog.retained_version_count("g") == 1
        first.release()
        assert engine.catalog.retained_version_count("g") == 1
        second.release()
        assert engine.catalog.retained_version_count("g") == 0

    def test_snapshot_rejects_catalog_writes(self):
        engine = make_engine()
        with engine.snapshot() as snap:
            with pytest.raises(SemanticError):
                snap.run("GRAPH VIEW v AS (CONSTRUCT (n) MATCH (n:Person))")

    def test_snapshot_explain_matches_engine_explain(self):
        engine = make_engine()
        with engine.snapshot() as snap:
            assert snap.explain(EDGE_QUERY) == engine.explain(EDGE_QUERY)


class TestPreparedUnderSupersede:
    def test_prepared_query_on_pinned_snapshot_survives_update(self):
        """Regression: a reader executing a prepared query while
        ``apply_update`` supersedes its graph must serve the pinned
        epoch — not error, not see the new data."""
        engine = make_engine()
        prepared = engine.prepare(SELECT_QUERY)
        snap = engine.snapshot()
        baseline = {
            s: snap.execute_prepared(prepared, params={"s": s}).rows
            for s in (0, 1, 2)
        }
        # supersede the pinned graph; purges the prepared query's plan
        # memos for the old graph object
        engine.apply_update(
            "g", GraphDelta().add_node("q0", labels=["Person"],
                                       properties={"name": "q0", "score": 0}))
        engine.run(SELECT_QUERY, params={"s": 0})  # replan on new graph
        for s in (0, 1, 2):
            again = snap.execute_prepared(prepared, params={"s": s}).rows
            assert again == baseline[s], f"s={s} drifted after update"
        snap.release()
        # and the current engine sees the new node
        fresh = engine.run(SELECT_QUERY, params={"s": 0})
        assert fresh.rows != baseline[0] or "q0" not in str(baseline[0])

    def test_plan_cache_purge_concurrent_with_readers(self):
        """PlanCache.purge_graph racing reader lookups must never drop a
        reader into an error: misses re-plan against the pinned graph."""
        engine = make_engine()
        prepared = engine.prepare(EDGE_QUERY)
        stop = threading.Event()
        errors = []

        def reader():
            with engine.snapshot() as snap:
                expected = snap.execute_prepared(prepared).rows
                while not stop.is_set():
                    try:
                        got = snap.execute_prepared(prepared).rows
                    except Exception as error:  # noqa: BLE001 - recorded
                        errors.append(repr(error))
                        return
                    if got != expected:
                        errors.append("pinned result drifted")
                        return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        rng = random.Random(13)
        try:
            for step in range(30):
                delta = random_delta(rng, engine.graph("g"), step)
                engine.apply_update("g", delta)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors, errors
        assert engine.catalog.retained_version_count() == 0


class TestConcurrentConsistencyHarness:
    """The multi-client harness: N readers vs. M writers, cross-checked."""

    READERS = 4
    WRITERS = 2
    STEPS = 15

    def test_readers_never_see_torn_or_stale_beyond_pin_snapshots(self):
        engine = make_engine(seed=23)
        engine.prepare(EDGE_QUERY)
        start = threading.Barrier(self.READERS + self.WRITERS)
        done_writing = threading.Event()
        failures = []

        def reader(index):
            rng = random.Random(1000 + index)
            start.wait()
            while not done_writing.is_set() or rng.random() < 0.5:
                with engine.snapshot() as snap:
                    pinned = snap.graph("g")
                    epoch = snap.epoch("g")
                    # two reads inside one snapshot must agree with each
                    # other and with an oracle over the pinned graph
                    first = snap.run(EDGE_QUERY).rows
                    second = snap.run(EDGE_QUERY).rows
                    if first != second:
                        failures.append(f"reader {index}: torn read")
                        return
                    oracle = GCoreEngine()
                    oracle.register_graph("g", pinned, default=True)
                    expected = oracle.run(EDGE_QUERY).rows
                    if first != expected:
                        failures.append(
                            f"reader {index}: snapshot at epoch {epoch} "
                            f"disagrees with its own pinned graph"
                        )
                        return
                    if snap.graph("g") is not pinned:
                        failures.append(f"reader {index}: pin moved")
                        return
                if done_writing.is_set():
                    return

        def writer(index):
            rng = random.Random(2000 + index)
            start.wait()
            for step in range(self.STEPS):
                tag = f"{index}_{step}"
                for attempt in range(20):
                    delta = random_delta(rng, engine.graph("g"), tag)
                    try:
                        engine.apply_update("g", delta)
                        break
                    except Exception:
                        # concurrent writer removed our chosen node/edge
                        # between graph() and apply; retry with a fresh
                        # view of the graph
                        continue

        threads = [
            threading.Thread(target=reader, args=(i,), name=f"reader-{i}")
            for i in range(self.READERS)
        ] + [
            threading.Thread(target=writer, args=(i,), name=f"writer-{i}")
            for i in range(self.WRITERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            if thread.name.startswith("writer"):
                thread.join(timeout=120)
        done_writing.set()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads)
        assert not failures, failures

        # every reader released: all retained versions pruned
        assert engine.mvcc_info() == {"active_snapshots": 0,
                                      "retained_versions": 0}
        # and the final graph is coherent with a from-scratch oracle
        oracle = GCoreEngine()
        oracle.register_graph("g", engine.graph("g"), default=True)
        assert engine.run(EDGE_QUERY).rows == oracle.run(EDGE_QUERY).rows
