"""Smoke tests for the interactive shell (python -m repro)."""

import subprocess
import sys


def run_shell(script: str) -> str:
    process = subprocess.run(
        [sys.executable, "-m", "repro"],
        input=script,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert process.returncode == 0, process.stderr
    return process.stdout


class TestShell:
    def test_query_and_composability(self):
        out = run_shell(
            "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'\n"
            "SELECT n.firstName AS f MATCH (n) ON last ORDER BY f\n"
            ".quit\n"
        )
        assert "alice" in out and "john" in out
        assert "Alice" in out and "John" in out

    def test_dot_graphs(self):
        out = run_shell(".graphs\n.quit\n")
        assert "social_graph" in out and "orders" in out

    def test_error_reported_not_fatal(self):
        out = run_shell("CONSTRUCT MATCH\nSELECT 1 AS one MATCH (n:Tag)\n.quit\n")
        assert "error:" in out
        assert "one" in out  # the shell kept going

    def test_multiline_continuation(self):
        out = run_shell(
            "CONSTRUCT (n) \\\nMATCH (n:Tag)\n.quit\n"
        )
        assert "wagner" in out

    def test_explain_command(self):
        out = run_shell(".explain CONSTRUCT (n) MATCH (n:Person)\n.quit\n")
        assert "CONSTRUCT" in out and "MATCH" in out

    def test_view_registration(self):
        out = run_shell(
            "GRAPH VIEW v AS (CONSTRUCT (t) MATCH (t:Tag))\n"
            ".show v\n.quit\n"
        )
        assert "view v registered" in out
        assert "wagner" in out
