"""EXP-T1 / EXP-F4 / EXP-F5: the complete guided tour of Section 3.

Every numbered query of the paper is executed against the reconstructed
Figure 4 instance, and every result the paper spells out — binding
tables, result graphs, view contents, stored paths, the final
:wagnerFriend edge — is asserted exactly.
"""

import pytest

from repro import GCoreEngine
from repro.datasets import company_graph, orders_table, social_graph


@pytest.fixture()
def tour():
    eng = GCoreEngine()
    eng.register_graph("social_graph", social_graph(), default=True)
    eng.register_graph("company_graph", company_graph())
    eng.register_table("orders", orders_table())
    return eng


class TestAlwaysReturningAGraph:
    """Lines 1-4: the simplest G-CORE query."""

    def test_acme_employees(self, tour):
        g = tour.run(
            "CONSTRUCT (n) MATCH (n:Person) ON social_graph "
            "WHERE n.employer = 'Acme'"
        )
        assert g.nodes == {"john", "alice"}
        assert g.edges == frozenset() and g.paths == frozenset()

    def test_labels_and_properties_preserved(self, tour):
        g = tour.run(
            "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'"
        )
        assert g.has_label("john", "Person")
        assert g.property("john", "firstName") == {"John"}
        assert g.property("john", "lastName") == {"Doe"}
        assert g.property("alice", "employer") == {"Acme"}


class TestMultiGraphJoins:
    """Lines 5-19: data integration across two graphs."""

    def test_equi_join_binding_table(self, tour):
        # The paper's 3-row table: (#Acme,#Alice), (#HAL,#Celine),
        # (#Acme,#John). Frank fails the join; Peter has no employer.
        table = tour.bindings(
            "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
            "WHERE c.name = n.employer"
        )
        assert {(r["c"], r["n"]) for r in table} == {
            ("acme", "alice"), ("hal", "celine"), ("acme", "john"),
        }

    def test_cartesian_product_is_20_rows(self, tour):
        table = tour.bindings(
            "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph"
        )
        assert len(table) == 20  # 4 companies x 5 persons

    def test_in_rescues_frank(self, tour):
        table = tour.bindings(
            "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
            "WHERE c.name IN n.employer"
        )
        assert {(r["c"], r["n"]) for r in table} == {
            ("acme", "alice"), ("hal", "celine"), ("acme", "john"),
            ("cwi", "frank"), ("mit", "frank"),
        }

    def test_unrolled_binding_table(self, tour):
        # The paper's 5-row table with value variable e.
        table = tour.bindings(
            "MATCH (c:Company) ON company_graph, "
            "(n:Person {employer=e}) ON social_graph WHERE c.name = e"
        )
        assert {(r["c"], r["n"], r["e"]) for r in table} == {
            ("mit", "frank", "MIT"),
            ("cwi", "frank", "CWI"),
            ("acme", "alice", "Acme"),
            ("hal", "celine", "HAL"),
            ("acme", "john", "Acme"),
        }

    def test_worksat_union_graph(self, tour):
        g = tour.run(
            "CONSTRUCT (c)<-[:worksAt]-(n) "
            "MATCH (c:Company) ON company_graph, "
            "(n:Person) ON social_graph WHERE c.name IN n.employer "
            "UNION social_graph"
        )
        worksat = [e for e in g.edges if g.has_label(e, "worksAt")]
        assert len(worksat) == 5
        # the original graph is fully contained
        base = social_graph()
        assert base.nodes <= g.nodes and base.edges <= g.edges
        # Frank has exactly two worksAt edges, to CWI and MIT
        frank = {g.endpoints(e)[1] for e in worksat
                 if g.endpoints(e)[0] == "frank"}
        assert frank == {"cwi", "mit"}


class TestGraphAggregation:
    """Lines 20-22: GROUP creates one company per employer value."""

    def test_one_company_per_name(self, tour):
        g = tour.run(
            "CONSTRUCT social_graph, "
            "(x GROUP e :Company {name:=e})<-[y:worksAt]-(n) "
            "MATCH (n:Person {employer=e})"
        )
        companies = [n for n in g.nodes if g.has_label(n, "Company")]
        assert len(companies) == 4
        names = {next(iter(g.property(c, "name"))) for c in companies}
        assert names == {"Acme", "HAL", "CWI", "MIT"}

    def test_five_worksat_edges(self, tour):
        g = tour.run(
            "CONSTRUCT social_graph, "
            "(x GROUP e :Company {name:=e})<-[y:worksAt]-(n) "
            "MATCH (n:Person {employer=e})"
        )
        worksat = [e for e in g.edges if g.has_label(e, "worksAt")]
        assert len(worksat) == 5

    def test_without_group_one_company_per_binding(self, tour):
        # Footnote 2's warning: an unbound x without GROUP creates one
        # company per binding (5 bindings -> 5 nodes).
        g = tour.run(
            "CONSTRUCT (n)-[y:worksAt]->(x:Company {name:=e}) "
            "MATCH (n:Person {employer=e})"
        )
        companies = [n for n in g.nodes if g.has_label(n, "Company")]
        assert len(companies) == 5


class TestStoredPaths:
    """Lines 23-27: @p stores shortest paths with labels and properties."""

    def test_three_shortest_stored(self, tour):
        g = tour.run(
            "CONSTRUCT (n)-/@p:localPeople{distance:=c}/->(m) "
            "MATCH (n)-/3 SHORTEST p<:knows*> COST c/->(m) "
            "WHERE (n:Person) AND (m:Person) AND n.firstName = 'John' "
            "AND n.lastName = 'Doe' "
            "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)"
        )
        # every stored path carries the label and its hop-count distance
        assert g.paths
        for pid in g.paths:
            assert g.has_label(pid, "localPeople")
            (distance,) = g.property(pid, "distance")
            assert distance == g.path_length(pid)
        # at most 3 paths per (source, destination) pair
        from collections import Counter

        per_pair = Counter(
            (g.path_nodes(p)[0], g.path_nodes(p)[-1]) for p in g.paths
        )
        assert all(count <= 3 for count in per_pair.values())
        # John reaches Peter and Alice directly: shortest distance 1
        direct = [
            p for p in g.paths
            if g.path_nodes(p) == ("john", "peter")
        ]
        assert any(g.path_length(p) == 1 for p in direct)

    def test_result_is_projection_of_stored_paths(self, tour):
        g = tour.run(
            "CONSTRUCT (n)-/@p:localPeople/->(m) "
            "MATCH (n)-/p<:knows*>/->(m) "
            "WHERE (n:Person) AND (m:Person) AND n.firstName = 'John' "
            "AND n.lastName = 'Doe' "
            "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)"
        )
        # only nodes/edges on stored paths are present
        on_paths = set()
        for pid in g.paths:
            on_paths.update(g.path_nodes(pid))
            on_paths.update(g.path_edges(pid))
        assert g.nodes | g.edges == on_paths


class TestReachabilityAndAllPaths:
    """Lines 28-35."""

    def test_reachability(self, tour):
        g = tour.run(
            "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) "
            "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
            "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)"
        )
        assert g.nodes == {"john", "alice", "peter", "celine", "frank"}

    def test_all_paths_projection(self, tour):
        g = tour.run(
            "CONSTRUCT (n)-/p/->(m) "
            "MATCH (n:Person)-/ALL p<:knows*>/->(m:Person) "
            "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
            "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)"
        )
        # all knows edges lie on some John->person walk
        knows = {e for e in g.edges if g.has_label(e, "knows")}
        assert len(knows) == 10
        assert g.paths == frozenset()


class TestExistentialSubqueries:
    """Lines 36-38: implicit and explicit existentials agree."""

    def test_equivalence(self, tour):
        implicit = tour.bindings(
            "MATCH (n:Person), (m:Person) "
            "WHERE (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)"
        )
        explicit = tour.bindings(
            "MATCH (n:Person), (m:Person) WHERE EXISTS ("
            "CONSTRUCT () "
            "MATCH (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m))"
        )
        assert implicit == explicit
        assert len(implicit) == 25


class TestFigure5Views:
    """Lines 39-47 and 57-66: social_graph1 and social_graph2."""

    EXPECTED_NR_MESSAGES = {
        ("john", "peter"): 2, ("peter", "john"): 2,
        ("peter", "frank"): 3, ("frank", "peter"): 3,
        ("peter", "celine"): 1, ("celine", "peter"): 1,
        ("celine", "frank"): 1, ("frank", "celine"): 1,
        ("john", "alice"): 0, ("alice", "john"): 0,
    }

    def define_view1(self, tour):
        tour.run(
            "GRAPH VIEW social_graph1 AS ("
            "CONSTRUCT social_graph, (n)-[e]->(m) "
            "SET e.nr_messages := COUNT(*) "
            "MATCH (n)-[e:knows]->(m) WHERE (n:Person) AND (m:Person) "
            "OPTIONAL (n)<-[c1]-(msg1:Post|Comment), "
            "(msg1)-[:reply_of]-(msg2), (msg2:Post|Comment)-[c2]->(m) "
            "WHERE (c1:has_creator) AND (c2:has_creator))"
        )
        return tour.graph("social_graph1")

    def define_view2(self, tour):
        self.define_view1(tour)
        tour.run(
            "GRAPH VIEW social_graph2 AS ("
            "PATH wKnows = (x)-[e:knows]->(y) "
            "WHERE NOT 'Acme' IN y.employer "
            "COST 1 / (1 + e.nr_messages) "
            "CONSTRUCT social_graph1, (n)-/@p:toWagner/->(m) "
            "MATCH (n:Person)-/p<~wKnows*>/->(m:Person) ON social_graph1 "
            "WHERE (m)-[:hasInterest]->(:Tag {name='Wagner'}) "
            "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) "
            "AND n.firstName = 'John' AND n.lastName = 'Doe')"
        )
        return tour.graph("social_graph2")

    def test_nr_messages_values(self, tour):
        g1 = self.define_view1(tour)
        for edge in g1.edges_with_label("knows"):
            src, dst = g1.endpoints(edge)
            expected = self.EXPECTED_NR_MESSAGES[(src, dst)]
            assert g1.property(edge, "nr_messages") == {expected}, (src, dst)

    def test_view1_contains_base_graph(self, tour):
        g1 = self.define_view1(tour)
        base = social_graph()
        assert base.nodes <= g1.nodes and base.edges <= g1.edges

    def test_view1_does_not_modify_base(self, tour):
        self.define_view1(tour)
        base = tour.graph("social_graph")
        for edge in base.edges_with_label("knows"):
            assert base.property(edge, "nr_messages") == frozenset()

    def test_two_toWagner_paths_via_peter(self, tour):
        g2 = self.define_view2(tour)
        paths = g2.paths_with_label("toWagner")
        assert len(paths) == 2
        sequences = {g2.path_nodes(p) for p in paths}
        assert sequences == {
            ("john", "peter", "celine"),
            ("john", "peter", "frank"),
        }

    def test_final_wagner_friend_query(self, tour):
        """Lines 67-71: single :wagnerFriend edge John->Peter, score 2."""
        self.define_view2(tour)
        g = tour.run(
            "CONSTRUCT (n)-[e:wagnerFriend {score:=COUNT(*)}]->(m) "
            "WHEN e.score > 0 "
            "MATCH (n:Person)-/@p:toWagner/->(), (m:Person) ON social_graph2 "
            "WHERE m = nodes(p)[1]"
        )
        assert len(g.edges) == 1
        (edge,) = g.edges
        assert g.endpoints(edge) == ("john", "peter")
        assert g.has_label(edge, "wagnerFriend")
        assert g.property(edge, "score") == {2}
        assert g.nodes == {"john", "peter"}

    def test_paper_literal_where_yields_empty(self, tour):
        """The literal line 71 (n = nodes(p)[1]) yields the empty graph —
        the documented typo in DESIGN.md."""
        self.define_view2(tour)
        g = tour.run(
            "CONSTRUCT (n)-[e:wagnerFriend {score:=COUNT(*)}]->(m) "
            "WHEN e.score > 0 "
            "MATCH (n:Person)-/@p:toWagner/->(), (m:Person) ON social_graph2 "
            "WHERE n = nodes(p)[1]"
        )
        assert g.is_empty()


class TestTabularExtensions:
    """Lines 72-85 (Section 5)."""

    def test_select_friend_names(self, tour):
        t = tour.run(
            "SELECT m.lastName + ', ' + m.firstName AS friendName "
            "MATCH (n:Person)-/<:knows*>/->(m:Person) "
            "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
            "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)"
        )
        assert t.columns == ("friendName",)
        assert set(t.column("friendName")) == {
            "Doe, John", "Hall, Alice", "Smith, Peter",
            "Mayer, Celine", "Gold, Frank",
        }

    def test_from_orders(self, tour):
        g = tour.run(
            "CONSTRUCT (cust GROUP custName :Customer {name:=custName}), "
            "(prod GROUP prodCode :Product {code:=prodCode}), "
            "(cust)-[:bought]->(prod) FROM orders"
        )
        assert len([n for n in g.nodes if g.has_label(n, "Customer")]) == 3
        assert len([n for n in g.nodes if g.has_label(n, "Product")]) == 3
        assert len(g.edges) == 6

    def test_on_orders(self, tour):
        g = tour.run(
            "CONSTRUCT (cust GROUP o.custName :Customer {name:=o.custName}), "
            "(prod GROUP o.prodCode :Product {code:=o.prodCode}), "
            "(cust)-[:bought]->(prod) MATCH (o) ON orders"
        )
        assert len([n for n in g.nodes if g.has_label(n, "Customer")]) == 3
        assert len(g.edges) == 6
