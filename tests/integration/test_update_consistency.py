"""Stress: interleaved apply_update / prepared-query traffic stays fresh.

The streaming-update contract: ``apply_update`` must keep every consumer
coherent — prepared queries (which stay cached across deltas) must see
the new graph, per-graph plan memos must never replay against the
superseded graph object, incrementally-adjusted statistics must match a
full rebuild on the exact fields, and materialized views must either
refresh correctly or loudly report staleness. Every iteration
cross-checks against a fresh engine built from the current graph, so any
stale cache anywhere shows up as a result difference.
"""

import random

import pytest

from repro import GCoreEngine, GraphBuilder, GraphDelta
from repro.model.statistics import GraphStatistics

SELECT_QUERY = (
    "SELECT a.name, b.name MATCH (a:Person)-[e:knows]->(b:Person) "
    "WHERE a.score = $s ORDER BY a.name, b.name"
)
CONSTRUCT_QUERY = "CONSTRUCT (a)-[e]->(b) MATCH (a:Person)-[e:knows]->(b)"
VIEW_TEXT = f"GRAPH VIEW vk AS ({CONSTRUCT_QUERY})"


def seed_graph(n=12, rng=None):
    rng = rng or random.Random(7)
    b = GraphBuilder(name="g")
    names = [f"p{i}" for i in range(n)]
    for i, node in enumerate(names):
        b.add_node(node, labels=["Person"],
                   properties={"name": node, "score": i % 3})
    for j in range(2 * n):
        b.add_edge(rng.choice(names), rng.choice(names), edge_id=f"e{j}",
                   labels=["knows"])
    return b.build()


def random_delta(rng, graph, tag):
    nodes = sorted(graph.nodes, key=str)
    edges = sorted(graph.edges, key=str)
    delta = GraphDelta()
    kind = rng.choice(["grow", "shrink", "mutate"])
    if kind == "grow" or not edges:
        delta.add_node(f"q{tag}", labels=["Person"],
                       properties={"name": f"q{tag}", "score": rng.randint(0, 2)})
        delta.add_edge(f"k{tag}", f"q{tag}", rng.choice(nodes), labels=["knows"])
    elif kind == "shrink":
        if rng.random() < 0.5 and len(nodes) > 4:
            delta.remove_node(rng.choice(nodes))
        else:
            delta.remove_edge(rng.choice(edges))
    else:
        delta.set_property(rng.choice(nodes), "score", rng.randint(0, 2))
    return delta


class TestInterleavedUpdates:
    def test_prepared_queries_never_serve_stale_results(self):
        rng = random.Random(99)
        engine = GCoreEngine()
        engine.register_graph("g", seed_graph(rng=rng), default=True)
        engine.graph("g").statistics()  # warm so deltas adjust incrementally
        prepared = engine.prepare(SELECT_QUERY)
        engine.run(CONSTRUCT_QUERY)  # prime the prepared-query LRU too

        for step in range(25):
            delta = random_delta(rng, engine.graph("g"), step)
            engine.apply_update("g", delta)

            # the prepared statement object stayed cached...
            assert engine.prepare(SELECT_QUERY) is prepared
            assert engine.is_plan_cached(CONSTRUCT_QUERY)

            # ...and still answers against the *current* graph
            oracle = GCoreEngine()
            oracle.register_graph("g", engine.graph("g"), default=True)
            for s in (0, 1, 2):
                got = prepared.run(params={"s": s})
                expected = oracle.run(SELECT_QUERY, params={"s": s})
                assert got.rows == expected.rows, f"step {step} s={s}"
            got_graph = engine.run(CONSTRUCT_QUERY)
            assert got_graph == oracle.run(CONSTRUCT_QUERY), f"step {step}"

    def test_statistics_track_deltas_exactly(self):
        rng = random.Random(3)
        engine = GCoreEngine()
        engine.register_graph("g", seed_graph(rng=rng), default=True)
        engine.graph("g").statistics()
        for step in range(20):
            engine.apply_update("g", random_delta(rng, engine.graph("g"), step))
            adjusted = engine.graph("g").statistics()
            rebuilt = GraphStatistics(engine.graph("g"))
            assert adjusted.node_count == rebuilt.node_count, step
            assert adjusted.edge_count == rebuilt.edge_count, step
            assert adjusted.node_label_counts == rebuilt.node_label_counts
            assert adjusted.edge_label_counts == rebuilt.edge_label_counts
        # the adjusted statistics object is the cached one (no rebuild ran)
        assert engine.graph("g").cached_statistics() is adjusted

    def test_views_interleaved_with_updates_and_queries(self):
        rng = random.Random(41)
        engine = GCoreEngine()
        engine.register_graph("g", seed_graph(rng=rng), default=True)
        engine.run(VIEW_TEXT)
        prepared = engine.prepare("SELECT x.name MATCH (x:Person) ON vk "
                                  "ORDER BY x.name")
        for step in range(15):
            engine.apply_update("g", random_delta(rng, engine.graph("g"), step))
            assert engine.catalog.is_view_stale("vk")
            refreshed = engine.refresh_view("vk")
            assert not engine.catalog.is_view_stale("vk")

            oracle = GCoreEngine()
            oracle.register_graph("g", engine.graph("g"), default=True)
            assert refreshed == oracle.run(CONSTRUCT_QUERY), f"step {step}"

            oracle.register_graph("vk2", refreshed)
            got = prepared.run()
            expected = oracle.run(
                "SELECT x.name MATCH (x:Person) ON vk2 ORDER BY x.name"
            )
            assert got.rows == expected.rows, f"step {step}"

    def test_plan_memos_never_replay_against_old_graph(self):
        rng = random.Random(17)
        engine = GCoreEngine()
        engine.register_graph("g", seed_graph(rng=rng), default=True)
        prepared = engine.prepare(CONSTRUCT_QUERY)
        prepared.run()
        assert len(prepared.plans) > 0
        old_graph = engine.graph("g")
        engine.apply_update(
            "g", GraphDelta().add_node("zz", labels=["Person"],
                                       properties={"name": "zz"})
        )
        # orderings planned against the superseded graph object are gone
        assert prepared.plans.purge_graph(old_graph) == 0
        prepared.run()
        assert len(prepared.plans) > 0

    def test_schema_gate_rejects_invalid_updates(self):
        from repro import GraphSchema
        from repro.errors import ValidationError
        from repro.model.schema import EdgeType

        schema = GraphSchema(
            node_properties={"Person": frozenset({"name", "score"})},
            edge_types={"knows": EdgeType("knows",
                                          frozenset({("Person", "Person")}))},
        )
        engine = GCoreEngine()
        engine.register_graph("g", seed_graph(), default=True, schema=schema)
        before = engine.graph("g")
        with pytest.raises(ValidationError):
            engine.apply_update(
                "g", GraphDelta().add_node("bad", labels=["Alien"])
            )
        # a rejected update must not half-apply
        assert engine.graph("g") is before
        engine.apply_update(
            "g",
            GraphDelta().add_node("ok", labels=["Person"],
                                  properties={"name": "ok"}),
        )
        assert "ok" in engine.graph("g").nodes

    def test_schema_gate_rechecks_incident_edges_on_relabel(self):
        """Regression: relabeling a node must re-validate its incident
        edges — edge admissibility depends on endpoint labels, so the
        scoped check cannot stop at the objects the delta named."""
        from repro import GraphSchema
        from repro.errors import ValidationError
        from repro.model.schema import EdgeType

        schema = GraphSchema(
            node_properties={
                "Person": frozenset({"name", "score"}),
                "Bot": frozenset({"name", "score"}),
            },
            edge_types={"knows": EdgeType("knows",
                                          frozenset({("Person", "Person")}))},
        )
        engine = GCoreEngine()
        engine.register_graph("g", seed_graph(), default=True, schema=schema)
        victim = sorted(engine.graph("g").edges, key=str)[0]
        endpoint = engine.graph("g").endpoints(victim)[0]
        with pytest.raises(ValidationError):
            engine.apply_update(
                "g",
                GraphDelta()
                .remove_label(endpoint, "Person")
                .add_label(endpoint, "Bot"),
            )
