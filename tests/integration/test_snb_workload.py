"""LDBC-SNB-Interactive-inspired workload over the generated graph.

The paper motivates G-CORE with LDBC benchmark workloads (Section 3 uses
the SNB schema throughout). These tests translate the *shapes* of several
SNB Interactive reads into G-CORE and run them on the deterministic
generator — end-to-end coverage of realistic query mixes.
"""

import pytest

from repro import GCoreEngine
from repro.datasets.generator import (
    SnbParameters,
    generate_company_graph,
    generate_snb_graph,
)


@pytest.fixture(scope="module")
def snb():
    eng = GCoreEngine()
    params = SnbParameters(persons=80, seed=99)
    eng.register_graph("snb", generate_snb_graph(params), default=True)
    eng.register_graph("companies", generate_company_graph(params))
    return eng


class TestInteractiveReads:
    def test_ic1_friends_up_to_3_hops_with_name(self, snb):
        """IC1 shape: friends of friends (<=3 hops) with a given name."""
        table = snb.run(
            "SELECT m.lastName AS last, c AS distance "
            "MATCH (n:Person)-/p<:knows{1,3}> COST c/->(m:Person) "
            "WHERE n.firstName = 'John' AND m.firstName = $name "
            "ORDER BY distance, last",
            params={"name": "Alice"},
        )
        assert all(1 <= row[1] <= 3 for row in table.rows)

    def test_ic13_shortest_path_length(self, snb):
        """IC13 shape: shortest knows-path length between two persons."""
        table = snb.bindings(
            "MATCH (a:Person {firstName='John'})-/p<:knows*> COST c/->"
            "(b:Person {firstName='Zoe'})"
        )
        if table:  # the generator's ring guarantees connectivity
            costs = {row["c"] for row in table}
            assert all(isinstance(c, int) and c >= 0 for c in costs)

    def test_ic5_groups_by_interest(self, snb):
        """Aggregation shape: tag popularity among a person's circle."""
        result = snb.run(
            "SELECT t.name AS tag, COUNT(*) AS fans "
            "MATCH (n:Person)-[:knows]->(m:Person)-[:hasInterest]->(t:Tag) "
            "WHERE n.firstName = 'John' GROUP BY tag ORDER BY fans DESC, tag"
        )
        counts = [row[1] for row in result.rows]
        assert counts == sorted(counts, reverse=True)

    def test_message_thread_depth(self, snb):
        """Recursive shape: reply chains are walks over reply_of."""
        g = snb.run(
            "CONSTRUCT (m1)-[e:inThread {depth := c}]->(root) "
            "MATCH (m1:Comment)-/p<:reply_of+> COST c/->(root:Post)"
        )
        for edge in g.edges:
            (depth,) = g.property(edge, "depth")
            assert depth >= 1

    def test_company_enrichment_pipeline(self, snb):
        """The Section 3 data-integration pipeline at generator scale."""
        enriched = snb.run(
            "CONSTRUCT snb, (c)<-[:worksAt]-(n) "
            "MATCH (c:Company) ON companies, (n:Person) ON snb "
            "WHERE c.name IN n.employer"
        )
        snb.register_graph("enriched", enriched)
        table = snb.run(
            "SELECT c.name AS company, COUNT(*) AS staff "
            "MATCH (n:Person)-[:worksAt]->(c:Company) ON enriched "
            "GROUP BY company ORDER BY staff DESC, company"
        )
        assert len(table) >= 1
        total = sum(row[1] for row in table.rows)
        employed = sum(
            1
            for n in enriched.nodes_with_label("Person")
            for _ in enriched.property(n, "employer")
        )
        assert total == employed

    def test_expert_finding_generalizes(self, snb):
        """The Wagner pipeline runs unchanged on generated data."""
        snb.run(
            "GRAPH VIEW gen1 AS (CONSTRUCT snb, (n)-[e]->(m) "
            "SET e.nr_messages := COUNT(*) "
            "MATCH (n)-[e:knows]->(m) WHERE (n:Person) AND (m:Person) "
            "OPTIONAL (n)<-[c1]-(m1:Post|Comment), (m1)-[:reply_of]-(m2), "
            "(m2:Post|Comment)-[c2]->(m) "
            "WHERE (c1:has_creator) AND (c2:has_creator))"
        )
        result = snb.run(
            "PATH wk = (x)-[e:knows]->(y) COST 1 / (1 + e.nr_messages) "
            "CONSTRUCT (n)-/@p:toFan/->(m) "
            "MATCH (n:Person)-/p<~wk*>/->(m:Person) ON gen1 "
            "WHERE n.firstName = 'John' "
            "AND (m)-[:hasInterest]->(:Tag {name='Wagner'})"
        )
        # every stored path starts at a John and ends at a Wagner fan
        for pid in result.paths:
            nodes = result.path_nodes(pid)
            assert result.property(nodes[0], "firstName") == {"John"}
