"""EXP-A1: the worked examples of Appendix A.

* A.2's MATCH example over the Figure 2 graph must produce exactly the
  single binding {x -> 105, y -> 102, w -> 106, z -> 301}.
* A.3's CONSTRUCT example (the worksAt graph with grouped companies).
"""

import pytest

from repro import GCoreEngine
from repro.datasets import company_graph, figure2_graph, social_graph


@pytest.fixture()
def fig2():
    eng = GCoreEngine()
    eng.register_graph("figure2", figure2_graph(), default=True)
    return eng


class TestMatchExample:
    """Appendix A.2's example:  x -locatedIn-> w, y -locatedIn-> w,
    x @z in (knows+knows-)* y  WHERE w.name = Houston."""

    QUERY = (
        "MATCH (x)-[:isLocatedIn]->(w), (y)-[:isLocatedIn]->(w), "
        "(x)-/@z/->(y) WHERE w.name = 'Houston'"
    )

    def test_single_binding(self, fig2):
        table = fig2.bindings(self.QUERY)
        assert len(table) == 1
        row = table.rows[0]
        assert row["x"] == 105
        assert row["y"] == 102
        assert row["w"] == 106
        assert row["z"] == 301

    def test_intermediate_located_in_join(self, fig2):
        # Jx -locatedIn-> wK = {{x105,w106},{x102,w106},{x103,w104}}
        table = fig2.bindings("MATCH (x)-[:isLocatedIn]->(w)")
        assert {(r["x"], r["w"]) for r in table} == {
            (105, 106), (102, 106), (103, 104),
        }

    def test_without_where_same_single_binding(self, fig2):
        # In the example the Houston filter happens to keep the only row.
        unfiltered = fig2.bindings(
            "MATCH (x)-[:isLocatedIn]->(w), (y)-[:isLocatedIn]->(w), "
            "(x)-/@z/->(y)"
        )
        assert len(unfiltered) == 1

    def test_computed_variant_matches_regex(self, fig2):
        # The same endpoints are connected by a (knows|knows^)* walk.
        table = fig2.bindings(
            "MATCH (x {firstName='Erik'})-/<(:knows|:knows^)*>/->(y {firstName='Clara'})"
        )
        assert len(table) == 1


class TestConstructExample:
    """Appendix A.3's example: f = (x GROUP e; +x:Company, +x.name=e),
    g = (n GROUP n), h = edge worksAt — evaluated over Figure 4 data."""

    @pytest.fixture()
    def eng(self):
        eng = GCoreEngine()
        eng.register_graph("social_graph", social_graph(), default=True)
        eng.register_graph("company_graph", company_graph())
        return eng

    def test_resulting_graph_shape(self, eng):
        g = eng.run(
            "CONSTRUCT (x GROUP e :Company {name:=e})<-[y:worksAt]-(n) "
            "MATCH (n:Person {employer=e})"
        )
        companies = {n for n in g.nodes if g.has_label(n, "Company")}
        persons = g.nodes - companies
        assert len(companies) == 4
        assert persons == {"john", "alice", "celine", "frank"}
        assert len(g.edges) == 5

    def test_person_labels_and_props_carried(self, eng):
        g = eng.run(
            "CONSTRUCT (x GROUP e :Company {name:=e})<-[y:worksAt]-(n) "
            "MATCH (n:Person {employer=e})"
        )
        assert g.has_label("john", "Person")
        assert g.property("john", "firstName") == {"John"}

    def test_company_names(self, eng):
        g = eng.run(
            "CONSTRUCT (x GROUP e :Company {name:=e})<-[y:worksAt]-(n) "
            "MATCH (n:Person {employer=e})"
        )
        names = sorted(
            next(iter(g.property(n, "name")))
            for n in g.nodes if g.has_label(n, "Company")
        )
        assert names == ["Acme", "CWI", "HAL", "MIT"]

    def test_frank_connects_to_both(self, eng):
        g = eng.run(
            "CONSTRUCT (x GROUP e :Company {name:=e})<-[y:worksAt]-(n) "
            "MATCH (n:Person {employer=e})"
        )
        frank_targets = {
            next(iter(g.property(g.endpoints(e)[1], "name")))
            for e in g.edges if g.endpoints(e)[0] == "frank"
        }
        assert frank_targets == {"CWI", "MIT"}
