"""Smoke tests for the experiment harness (python -m repro.bench)."""

import pytest

from repro.bench.harness import (
    EXPERIMENTS,
    report_complexity,
    report_figure1,
    report_figure2,
    report_figure4,
    report_figure5,
    report_table1,
    run_experiment,
)


class TestReports:
    def test_figure1_contains_survey_and_witnesses(self):
        text = report_figure1()
        assert "graph reachability" in text and "36" in text
        assert "ms]" in text

    def test_figure2_contains_formal_components(self):
        text = report_figure2()
        assert "N = [101, 102, 103, 104, 105, 106]" in text
        assert "delta = {301 -> [105, 207, 103, 202, 102]}" in text

    def test_figure4_reproduces_tables(self):
        text = report_figure4()
        assert '"acme" | "alice"' in text.replace("  ", " ") or "acme" in text
        assert "20 rows" in text

    def test_figure5_final_result(self):
        text = report_figure5()
        assert "john -> peter -> celine" in text
        assert "score: 2" in text

    def test_table1_all_rows_ok(self):
        text = report_table1()
        assert "MISMATCH" not in text and "FAIL" not in text
        assert text.count(" OK ") >= 20

    def test_complexity_small_sizes(self):
        text = report_complexity(sizes=(10, 20))
        assert "slope" in text and "simple paths" in text

    def test_registry_and_dispatch(self):
        assert set(EXPERIMENTS) == {
            "figure1", "figure2", "figure4", "figure5", "table1",
            "complexity",
        }
        with pytest.raises(KeyError):
            run_experiment("figure99")
