"""Tests for the analytics companion module and view refresh."""

import pytest

from repro import GCoreEngine, GraphBuilder, UnknownGraphError
from repro.algorithms import (
    component_of,
    connected_components,
    degree_histogram,
    graph_summary,
    label_histogram,
)
from repro.datasets import social_graph


class TestComponents:
    def test_single_component_social(self, social):
        # persons + city + tag + messages all hang together
        components = connected_components(social)
        assert len(components) == 1

    def test_label_restricted_components(self, social):
        components = connected_components(social, labels=frozenset({"knows"}))
        # knows edges connect the 5 persons; everything else is isolated
        sizes = sorted(len(c) for c in components)
        assert max(sizes) == 5

    def test_two_islands(self):
        b = GraphBuilder()
        for n in "abcd":
            b.add_node(n)
        b.add_edge("a", "b", labels=["x"])
        b.add_edge("c", "d", labels=["x"])
        components = connected_components(b.build())
        assert [sorted(map(str, c)) for c in components] == [
            ["a", "b"], ["c", "d"],
        ]

    def test_component_of(self, social):
        assert "peter" in component_of(
            social, "john", labels=frozenset({"knows"})
        )
        assert "wagner" not in component_of(
            social, "john", labels=frozenset({"knows"})
        )

    def test_deterministic_order(self, social):
        assert connected_components(social) == connected_components(social)


class TestHistograms:
    def test_degree_histogram(self):
        b = GraphBuilder()
        for n in "abc":
            b.add_node(n)
        b.add_edge("a", "b")
        hist = degree_histogram(b.build())
        assert hist == {0: 1, 1: 2}

    def test_label_histogram(self, social):
        hist = label_histogram(social)
        assert hist["Person"] == 5
        assert hist["knows"] == 10

    def test_summary_mentions_counts(self, social):
        text = graph_summary(social)
        assert "nodes" in text and "Person x5" in text


class TestViewRefresh:
    def test_refresh_picks_up_new_base(self):
        engine = GCoreEngine()
        engine.register_graph("base", social_graph(), default=True)
        engine.run("GRAPH VIEW persons AS (CONSTRUCT (n) MATCH (n:Person) ON base)")
        assert len(engine.graph("persons").nodes) == 5

        # Re-register a shrunken base; the view is stale until refreshed.
        shrunk = engine.run(
            "CONSTRUCT (n) MATCH (n:Person) ON base WHERE n.employer = 'Acme'"
        )
        engine.register_graph("base", shrunk)
        assert len(engine.graph("persons").nodes) == 5  # stale
        refreshed = engine.refresh_view("persons")
        assert len(refreshed.nodes) == 2
        assert len(engine.graph("persons").nodes) == 2

    def test_refresh_unknown_view(self, engine):
        with pytest.raises(UnknownGraphError):
            engine.refresh_view("mystery")

    def test_refresh_view_over_view(self):
        engine = GCoreEngine()
        engine.register_graph("base", social_graph(), default=True)
        engine.run("GRAPH VIEW v1 AS (CONSTRUCT (n) MATCH (n:Person) ON base)")
        engine.run("GRAPH VIEW v2 AS (CONSTRUCT (n) MATCH (n) ON v1 "
                   "WHERE n.employer = 'HAL')")
        assert engine.graph("v2").nodes == {"celine"}
        refreshed = engine.refresh_view("v2")
        assert refreshed.nodes == {"celine"}
