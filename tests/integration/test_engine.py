"""Engine-level integration tests: scripts, composability, explain."""

import pytest

from repro import GCoreEngine, GraphBuilder, ParseError, UnknownGraphError
from repro.datasets import social_graph
from repro.eval.query import ViewResult
from repro.model.io import dumps_graph, loads_graph


class TestEngineBasics:
    def test_first_graph_becomes_default(self):
        eng = GCoreEngine()
        b = GraphBuilder()
        b.add_node("n", labels=["X"])
        eng.register_graph("g1", b.build())
        table = eng.bindings("MATCH (n:X)")
        assert len(table) == 1

    def test_default_flag_overrides(self, engine):
        engine.set_default_graph("company_graph")
        g = engine.run("CONSTRUCT (c) MATCH (c:Company)")
        assert len(g.nodes) == 4

    def test_set_default_unknown(self, engine):
        with pytest.raises(UnknownGraphError):
            engine.set_default_graph("mystery")

    def test_run_accepts_parsed_statement(self, engine):
        statement = engine.parse("CONSTRUCT (n) MATCH (n:Tag)")
        g = engine.run(statement)
        assert g.nodes == {"wagner"}

    def test_graph_lookup(self, engine):
        assert engine.graph("social_graph").name == "social_graph"
        assert engine.table("orders").name == "orders"

    def test_parse_error_propagates(self, engine):
        with pytest.raises(ParseError):
            engine.run("CONSTRUCT MATCH")


class TestRunScript:
    def test_semicolon_separated(self, engine):
        results = engine.run_script(
            "GRAPH VIEW persons AS (CONSTRUCT (n) MATCH (n:Person)); "
            "CONSTRUCT (m) MATCH (m) ON persons WHERE m.employer = 'HAL'"
        )
        assert len(results) == 2
        assert isinstance(results[0], ViewResult)
        assert results[1].nodes == {"celine"}

    def test_single_statement_no_semicolon(self, engine):
        results = engine.run_script("CONSTRUCT (n) MATCH (n:Tag)")
        assert len(results) == 1


class TestComposabilityPipeline:
    """The paper's core claim: graphs in, graphs out, plug and play."""

    def test_three_stage_pipeline(self, engine):
        stage1 = engine.run(
            "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'"
        )
        engine.register_graph("stage1", stage1)
        stage2 = engine.run(
            "CONSTRUCT (n {flag := TRUE}) MATCH (n) ON stage1"
        )
        engine.register_graph("stage2", stage2)
        stage3 = engine.run(
            "SELECT n.firstName AS f MATCH (n) ON stage2 "
            "WHERE n.flag = TRUE ORDER BY f"
        )
        assert list(stage3.column("f")) == ["Alice", "John"]

    def test_roundtrip_through_json(self, engine):
        g = engine.run("CONSTRUCT (n) MATCH (n:Person)")
        restored = loads_graph(dumps_graph(g))
        engine.register_graph("restored", restored)
        assert len(engine.bindings("MATCH (x) ON restored")) == 5

    def test_query_result_equals_inline_subquery(self, engine):
        twostep = engine.run(
            "CONSTRUCT (m) MATCH (m) ON "
            "(CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme')"
        )
        direct = engine.run(
            "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'"
        )
        assert twostep == direct


class TestExplain:
    def test_explain_mentions_clauses(self, engine):
        text = engine.explain(
            "CONSTRUCT (c)<-[:worksAt]-(n) "
            "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
            "WHERE c.name IN n.employer"
        )
        assert "CONSTRUCT" in text
        assert "MATCH" in text
        assert "company_graph" in text

    def test_explain_view_statement(self, engine):
        text = engine.explain(
            "GRAPH VIEW v AS (CONSTRUCT (n) MATCH (n:Person))"
        )
        assert "CONSTRUCT" in text

    def test_explain_path_clause(self, engine):
        text = engine.explain(
            "PATH w = (x)-[e:knows]->(y) CONSTRUCT (n) MATCH (n)"
        )
        assert "PATH VIEW w" in text
