"""EXP-F2: Figure 2 / Example 2.2 — the formal PPG components."""

import pytest

from repro.datasets import figure2_graph


@pytest.fixture(scope="module")
def g():
    return figure2_graph()


class TestExample22:
    """Every component stated in Example 2.2 of the paper."""

    def test_node_identifiers(self, g):
        assert g.nodes == {101, 102, 103, 104, 105, 106}

    def test_edge_identifiers(self, g):
        assert g.edges == {201, 202, 203, 204, 205, 206, 207}

    def test_path_identifiers(self, g):
        assert g.paths == {301}

    def test_rho_endpoints_stated_in_paper(self, g):
        assert g.endpoints(201) == (102, 101)
        assert g.endpoints(207) == (105, 103)

    def test_delta_301(self, g):
        assert g.path_sequence(301) == (105, 207, 103, 202, 102)

    def test_lambda_assignments(self, g):
        assert g.labels(101) == {"Tag"}
        assert g.labels(102) == {"Person", "Manager"}
        assert g.labels(201) == {"hasInterest"}
        assert g.labels(301) == {"toWagner"}

    def test_sigma_assignments(self, g):
        assert g.property(101, "name") == {"Wagner"}
        assert g.property(205, "since") == {"1/12/2014"}
        assert g.property(301, "trust") == {0.95}

    def test_nodes_and_edges_functions(self, g):
        # Section 2: nodes(301) = [102,103,105]-as-list [105,103,102] in
        # traversal order; edges(301) = [207, 202].
        assert g.path_nodes(301) == (105, 103, 102)
        assert g.path_edges(301) == (207, 202)

    def test_houston_city(self, g):
        assert g.property(106, "name") == {"Houston"}
        assert g.labels(106) == {"City"}

    def test_located_in_edges(self, g):
        # The appendix example requires 102 and 105 located in 106.
        assert g.endpoints(203) == (102, 106)
        assert g.endpoints(204) == (105, 106)
