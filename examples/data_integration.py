#!/usr/bin/env python3
"""Data integration — the multi-graph worksAt scenario of Section 3.

Company nodes live in one graph, people in another; the queries below
join across graphs, handle Frank Gold's multi-valued employer property,
aggregate companies out of property values with GROUP, and finally build
a single enriched graph — reproducing lines 5-22 of the paper plus the
Section 5 tabular imports.

Run:  python examples/data_integration.py
"""

from repro import GCoreEngine
from repro.datasets import company_graph, orders_table, social_graph


def main() -> None:
    engine = GCoreEngine()
    engine.register_graph("social_graph", social_graph(), default=True)
    engine.register_graph("company_graph", company_graph())
    engine.register_table("orders", orders_table())

    print("The equi-join fails for Frank (employer is the SET {CWI, MIT}):")
    table = engine.bindings(
        "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
        "WHERE c.name = n.employer"
    )
    print(table.pretty())

    print("\nIN fixes it (set membership, Section 3):")
    table = engine.bindings(
        "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
        "WHERE c.name IN n.employer"
    )
    print(table.pretty())

    print("\n...or unroll the multi-valued property with {employer=e}:")
    table = engine.bindings(
        "MATCH (c:Company) ON company_graph, "
        "(n:Person {employer=e}) ON social_graph WHERE c.name = e"
    )
    print(table.pretty())

    print("\nGraph aggregation: build companies from property values")
    print("(one node per distinct employer, thanks to GROUP):")
    enriched = engine.run(
        """
        CONSTRUCT social_graph,
          (x GROUP e :Company {name := e})<-[y:worksAt]-(n)
        MATCH (n:Person {employer=e})
        """
    )
    for edge in sorted(enriched.edges, key=str):
        if enriched.has_label(edge, "worksAt"):
            src, dst = enriched.endpoints(edge)
            (name,) = enriched.property(dst, "name")
            print(f"  {src} -worksAt-> {name}")

    print("\nImporting tables (Section 5): CONSTRUCT ... FROM orders")
    shop = engine.run(
        """
        CONSTRUCT (cust GROUP custName :Customer {name := custName}),
                  (prod GROUP prodCode :Product {code := prodCode}),
                  (cust)-[:bought]->(prod)
        FROM orders
        """
    )
    print(f"  built {shop.order()} nodes and {shop.size()} bought-edges "
          f"from {len(engine.table('orders'))} order rows")

    print("\nThe enriched graph is itself queryable (composability):")
    engine.register_graph("enriched", enriched)
    answer = engine.run(
        "SELECT c.name AS company, COUNT(*) AS employees "
        "MATCH (n:Person)-[:worksAt]->(c:Company) ON enriched "
        "GROUP BY company ORDER BY employees DESC, company"
    )
    print(answer.pretty())


if __name__ == "__main__":
    main()
