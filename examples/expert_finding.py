#!/usr/bin/env python3
"""Expert finding — the full Wagner scenario of Section 3 (lines 39-71).

John Doe wants an introduction to a Wagner lover in his city, preferring
chains of friends who actually talk to each other. The pipeline:

1. ``social_graph1``: annotate every ``knows`` edge with ``nr_messages``
   (messages actually exchanged), using OPTIONAL + COUNT(*).
2. ``social_graph2``: define the weighted ``wKnows`` path view with cost
   ``1 / (1 + nr_messages)`` (excluding Acme employees — John's
   preference must stay unknown at work), and store the weighted
   shortest paths to every Wagner lover as ``:toWagner`` paths.
3. Score John's direct friends by how many ``:toWagner`` paths start
   through them — producing the single ``:wagnerFriend`` edge
   John -> Peter with score 2, exactly the paper's result.

Run:  python examples/expert_finding.py
"""

from repro import GCoreEngine
from repro.datasets import social_graph


def main() -> None:
    engine = GCoreEngine()
    engine.register_graph("social_graph", social_graph(), default=True)

    print("Step 1: message-intensity view (lines 39-47)")
    engine.run(
        """
        GRAPH VIEW social_graph1 AS (
          CONSTRUCT social_graph,
            (n)-[e]->(m) SET e.nr_messages := COUNT(*)
          MATCH (n)-[e:knows]->(m)
          WHERE (n:Person) AND (m:Person)
          OPTIONAL (n)<-[c1]-(msg1:Post|Comment),
                   (msg1)-[:reply_of]-(msg2),
                   (msg2:Post|Comment)-[c2]->(m)
          WHERE (c1:has_creator) AND (c2:has_creator) )
        """
    )
    g1 = engine.graph("social_graph1")
    for edge in sorted(g1.edges_with_label("knows"), key=str):
        src, dst = g1.endpoints(edge)
        (count,) = g1.property(edge, "nr_messages")
        print(f"  {src:>7} knows {dst:<7} nr_messages = {count}")

    print("\nStep 2: weighted shortest paths to Wagner lovers (lines 57-66)")
    engine.run(
        """
        GRAPH VIEW social_graph2 AS (
          PATH wKnows = (x)-[e:knows]->(y)
            WHERE NOT 'Acme' IN y.employer
            COST 1 / (1 + e.nr_messages)
          CONSTRUCT social_graph1, (n)-/@p:toWagner/->(m)
          MATCH (n:Person)-/p<~wKnows*>/->(m:Person) ON social_graph1
          WHERE (m)-[:hasInterest]->(:Tag {name='Wagner'})
            AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)
            AND n.firstName = 'John' AND n.lastName = 'Doe')
        """
    )
    g2 = engine.graph("social_graph2")
    for pid in sorted(g2.paths_with_label("toWagner"), key=str):
        nodes = " -> ".join(str(n) for n in g2.path_nodes(pid))
        print(f"  :toWagner path: {nodes}")

    print("\nStep 3: score John's friends (lines 67-71)")
    result = engine.run(
        """
        CONSTRUCT (n)-[e:wagnerFriend {score := COUNT(*)}]->(m)
          WHEN e.score > 0
        MATCH (n:Person)-/@p:toWagner/->(), (m:Person) ON social_graph2
        WHERE m = nodes(p)[1]
        """
    )
    for edge in result.edges:
        src, dst = result.endpoints(edge)
        (score,) = result.property(edge, "score")
        print(f"  {src} -[:wagnerFriend {{score: {score}}}]-> {dst}")
    print("\n==> John should ask Peter — both Wagner lovers are best reached "
          "through him.")


if __name__ == "__main__":
    main()
