#!/usr/bin/env python3
"""Round-tripping between tables and graphs (Section 5, both directions).

A relational order table enters the graph world (``FROM orders`` /
``MATCH ... ON orders``), gets enriched with graph-only analysis
(co-purchase edges via pattern matching), and the result is projected
back out as a table (``SELECT``) — the full multi-sorted pipeline the
paper sketches as the natural extension of a closed graph language.

Run:  python examples/tabular_integration.py
"""

from repro import GCoreEngine, Table


def main() -> None:
    engine = GCoreEngine()
    engine.register_table(
        "orders",
        Table(
            ("custName", "prodCode", "qty"),
            [
                ("Alice", "P100", 2), ("Alice", "P200", 1),
                ("Bob", "P100", 5), ("Bob", "P300", 1),
                ("Carol", "P100", 1), ("Carol", "P300", 2),
                ("Dave", "P200", 3),
            ],
            name="orders",
        ),
    )

    print("Step 1: table -> graph (CONSTRUCT ... FROM orders)")
    shop = engine.run(
        """
        CONSTRUCT (cust GROUP custName :Customer {name := custName}),
                  (prod GROUP prodCode :Product {code := prodCode}),
                  (cust)-[b:bought {qty := SUM(qty)}]->(prod)
        FROM orders
        """
    )
    engine.register_graph("shop", shop, default=True)
    print(f"  {shop.order()} nodes, {shop.size()} edges")

    print("\nStep 2: graph-only enrichment — co-purchase pattern")
    copurchase = engine.run(
        """
        CONSTRUCT shop, (a)-[e:alsoBought]->(b)
        MATCH (a:Customer)-[:bought]->(p:Product)<-[:bought]-(b:Customer)
        WHERE a.name <> b.name
        """
    )
    engine.register_graph("enriched", copurchase)
    pairs = sorted(
        (str(copurchase.endpoints(e)[0]), str(copurchase.endpoints(e)[1]))
        for e in copurchase.edges if copurchase.has_label(e, "alsoBought")
    )
    print(f"  {len(pairs)} alsoBought edges")

    print("\nStep 3: graph -> table (SELECT over the enriched graph)")
    report = engine.run(
        """
        SELECT a.name AS customer, COUNT(*) AS neighbours
        MATCH (a:Customer)-[:alsoBought]->(b) ON enriched
        GROUP BY customer ORDER BY neighbours DESC, customer
        """
    )
    print(report.pretty())

    print("\nStep 4: tables as graphs — the ON-a-table interpretation")
    heavy = engine.run(
        "SELECT o.custName AS c, o.qty AS q MATCH (o) ON orders "
        "WHERE o.qty > 1 ORDER BY q DESC"
    )
    print(heavy.pretty())


if __name__ == "__main__":
    main()
