#!/usr/bin/env python3
"""Analyzing databases of stored paths at scale.

"A unique capability of G-CORE is to query and analyze databases of
potentially many stored paths" (Section 3). This example materializes
hundreds of shortest paths over a generated SNB-like graph, stores them
as first-class path objects, and then runs analytics *over the paths
themselves*: length histograms, most-traversed hubs, reachability
structure.

Run:  python examples/path_analytics.py
"""

from collections import Counter

from repro import GCoreEngine
from repro.datasets.generator import SnbParameters, generate_snb_graph


def main() -> None:
    engine = GCoreEngine()
    params = SnbParameters(persons=60, seed=2026, knows_chords=0.7)
    engine.register_graph("snb", generate_snb_graph(params), default=True)

    print("Materializing shortest knows-paths from every Verdi fan ...")
    paths_graph = engine.run(
        """
        CONSTRUCT (n)-/@p:fanRoute {hops := c}/->(m)
        MATCH (n:Person)-/p<:knows*> COST c/->(m:Person)
        WHERE (n)-[:hasInterest]->(:Tag {name='Verdi'})
          AND (m)-[:hasInterest]->(:Tag {name='Wagner'})
        """
    )
    print(f"  stored {len(paths_graph.paths)} :fanRoute paths "
          f"({paths_graph.order()} nodes, {paths_graph.size()} edges in the "
          f"projection)")
    engine.register_graph("routes", paths_graph)

    print("\nLength histogram (SELECT over stored paths):")
    histogram = engine.run(
        "SELECT c AS hops, COUNT(*) AS routes "
        "MATCH (a)-/@p:fanRoute COST c/->(b) ON routes "
        "GROUP BY hops ORDER BY hops"
    )
    print(histogram.pretty())

    print("\nMost-traversed intermediate persons (path post-processing):")
    hubs = Counter()
    for pid in paths_graph.paths:
        for node in paths_graph.path_nodes(pid)[1:-1]:
            hubs[node] += 1
    for node, count in hubs.most_common(5):
        first = next(iter(paths_graph.property(node, "firstName")), "?")
        print(f"  {node} ({first}): on {count} shortest routes")

    print("\nRoutes longer than 2 hops, via the stored-path pattern:")
    long_routes = engine.run(
        "CONSTRUCT (a)-[e:farFan {hops := h}]->(b) "
        "MATCH (a)-/@p:fanRoute COST h/->(b) ON routes WHERE h > 2"
    )
    print(f"  {len(long_routes.edges)} far-fan pairs")

    print("\nk-shortest variety: 3 SHORTEST alternatives for one pair:")
    pairs = sorted(
        (paths_graph.path_nodes(p)[0], paths_graph.path_nodes(p)[-1])
        for p in paths_graph.paths
        if paths_graph.path_length(p) >= 2
    )
    if pairs:
        alternatives = engine.run(
            "CONSTRUCT (a)-/@q:alt {hops := c}/->(b) "
            "MATCH (a)-/3 SHORTEST q<:knows*> COST c/->(b) ON snb "
            "WHERE (a)-[:hasInterest]->(:Tag {name='Verdi'}) "
            "AND (b)-[:hasInterest]->(:Tag {name='Wagner'})"
        )
        per_pair = Counter(
            (alternatives.path_nodes(p)[0], alternatives.path_nodes(p)[-1])
            for p in alternatives.paths
        )
        multi = [pair for pair, n in per_pair.items() if n > 1]
        print(f"  {len(multi)} pairs have 2+ distinct shortest alternatives")


if __name__ == "__main__":
    main()
