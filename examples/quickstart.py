#!/usr/bin/env python3
"""Quickstart: your first G-CORE queries.

Loads the paper's toy social network (Figure 4), runs the very first
query of the guided tour, and demonstrates the two pillars of G-CORE:
*composability* (the result of a query is a graph you can query again)
and *paths as first-class citizens* (queries can store paths into their
result graphs).

Run:  python examples/quickstart.py
"""

from repro import GCoreEngine
from repro.datasets import social_graph


def main() -> None:
    engine = GCoreEngine()
    engine.register_graph("social_graph", social_graph(), default=True)

    print("=" * 72)
    print("1. Every query returns a graph (Section 3, lines 1-4)")
    print("=" * 72)
    acme = engine.run(
        """
        CONSTRUCT (n)
        MATCH (n:Person) ON social_graph
        WHERE n.employer = 'Acme'
        """
    )
    print(acme.describe())

    print()
    print("=" * 72)
    print("2. Composability: register the result, query it again")
    print("=" * 72)
    engine.register_graph("acme_people", acme)
    first_names = engine.run(
        "SELECT n.firstName AS first MATCH (n) ON acme_people ORDER BY first"
    )
    print(first_names.pretty())

    print()
    print("=" * 72)
    print("3. Paths as first-class citizens: store shortest paths")
    print("=" * 72)
    routes = engine.run(
        """
        CONSTRUCT (n)-/@p:friendRoute {distance := c}/->(m)
        MATCH (n)-/p<:knows*> COST c/->(m)
        WHERE (n:Person) AND (m:Person)
          AND n.firstName = 'John' AND m.firstName = 'Frank'
        """
    )
    for pid in sorted(routes.paths, key=str):
        nodes = " -> ".join(str(n) for n in routes.path_nodes(pid))
        (distance,) = routes.property(pid, "distance")
        print(f"stored path {pid}: {nodes}   (distance {distance})")

    print()
    print("=" * 72)
    print("4. The stored path is data: match it like any other object")
    print("=" * 72)
    engine.register_graph("routes", routes)
    table = engine.bindings("MATCH (a)-/@p:friendRoute/->(b) ON routes")
    print(table.pretty())


if __name__ == "__main__":
    main()
