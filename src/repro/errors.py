"""Exception hierarchy for the G-CORE reproduction.

Every error raised by the library derives from :class:`GCoreError`, so
applications can catch a single base class. Parse-time errors carry source
positions; evaluation errors carry enough context to identify the failing
clause.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple


def _closest(name: str, candidates: Tuple[str, ...]) -> Optional[str]:
    """The best did-you-mean candidate for *name*, if any is close."""
    import difflib

    matches = difflib.get_close_matches(name, candidates, n=1, cutoff=0.6)
    return matches[0] if matches else None


class GCoreError(Exception):
    """Base class for all errors raised by this library.

    Every subclass carries a stable machine-readable ``code`` and a
    default ``http_status`` — the contract of the HTTP query server's
    JSON error envelope (:mod:`repro.server`, ``docs/http-api.md``).
    """

    #: stable wire identifier used by the server's error envelope
    code = "gcore_error"
    #: default HTTP status the server maps this error class to
    http_status = 400


class GraphModelError(GCoreError):
    """Raised when a Path Property Graph violates Definition 2.1.

    Examples: an edge whose endpoints are not nodes of the graph, a stored
    path whose edge sequence is not a concatenation of adjacent edges, or
    overlapping node/edge/path identifier namespaces.
    """

    code = "graph_model_error"
    http_status = 400


class LexerError(GCoreError):
    """Raised when the query text contains an unrecognizable token."""

    code = "parse_error"
    http_status = 400

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (at line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(GCoreError):
    """Raised when the query text does not conform to the G-CORE grammar."""

    code = "parse_error"
    http_status = 400

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        if line:
            super().__init__(f"{message} (at line {line}, column {column})")
        else:
            super().__init__(message)
        self.line = line
        self.column = column


class SemanticError(GCoreError):
    """Raised for statically detectable semantic violations.

    Examples: using a node variable where an edge variable is required,
    binding an ALL-paths variable outside a graph projection, or an edge
    construct over a bound edge whose endpoint variables are unbound.
    """

    code = "semantic_error"
    http_status = 400


class AnalysisError(SemanticError):
    """Raised in strict mode when the analyzer finds error diagnostics.

    Carries the full :class:`~repro.analysis.AnalysisResult` on
    ``result`` so callers (and the HTTP server's error envelope) can
    surface every finding, not just the first.
    """

    code = "analysis_error"
    http_status = 400

    def __init__(self, result) -> None:
        errors = result.errors
        lead = errors[0].describe() if errors else "analysis failed"
        extra = f" (+{len(errors) - 1} more)" if len(errors) > 1 else ""
        super().__init__(f"strict mode: {lead}{extra}")
        self.result = result


class UnknownNameError(SemanticError):
    """Base for run-time unknown-name errors (graph, table, path view).

    These mirror the analyzer's GC101/GC102/GC105 diagnostics so the two
    paths stay structurally comparable: each subclass pins the analyzer
    ``diagnostic_code`` it corresponds to, carries a ``hint`` (upgraded
    to a did-you-mean when the raise site supplies the catalog's
    candidate names), and renders itself as a
    :class:`~repro.analysis.Diagnostic` via :meth:`to_diagnostic`.
    """

    code = "unknown_name"
    http_status = 404
    #: the analyzer diagnostic this error mirrors (GC101/GC102/GC105)
    diagnostic_code = "GC101"
    #: human noun for the name kind ("graph", "table", "path view")
    kind = "name"
    #: hint used when no candidate is close enough for a did-you-mean
    default_hint = "check the spelling"

    def __init__(self, name: str, candidates: Iterable[str] = ()) -> None:
        self.name = name
        self.candidates = tuple(sorted(set(candidates)))
        suggestion = _closest(name, self.candidates)
        if suggestion is not None:
            self.hint: str = f"did you mean {suggestion!r}?"
        else:
            self.hint = self.default_hint
        super().__init__(f"unknown {self.kind}: {name!r} ({self.hint})")

    def to_diagnostic(self):
        """This error as an analyzer-grade :class:`Diagnostic`.

        Positions are ``None``: the raise sites sit behind the planner,
        where the offending AST node no longer knows its source span.
        """
        from .analysis.diagnostics import Diagnostic

        return Diagnostic(
            code=self.diagnostic_code,
            severity="error",
            message=f"unknown {self.kind}: {self.name!r}",
            hint=self.hint,
        )


class UnknownGraphError(UnknownNameError):
    """Raised when a query references a graph name not in the catalog."""

    code = "unknown_graph"
    http_status = 404
    diagnostic_code = "GC101"
    kind = "graph"
    default_hint = "register the graph or check the spelling"


class UnknownTableError(UnknownNameError):
    """Raised when a query references a table name not in the catalog."""

    code = "unknown_table"
    http_status = 404
    diagnostic_code = "GC102"
    kind = "table"
    default_hint = "register the table or check the spelling"


class UnknownPathViewError(UnknownNameError):
    """Raised when a regular path expression references an undefined view."""

    code = "unknown_path_view"
    http_status = 404
    diagnostic_code = "GC105"
    kind = "path view"
    default_hint = "define it with a PATH clause or register it as a PATH view"


class EvaluationError(GCoreError):
    """Raised when an expression or clause fails at evaluation time."""

    code = "evaluation_error"
    http_status = 400


class CostError(EvaluationError):
    """Raised when a PATH ... COST expression is non-numeric or not > 0.

    Section 3 of the paper: "The specified cost must be numerical, and
    larger than zero (otherwise a run-time error will be raised)".
    """

    code = "cost_error"
    http_status = 400


class ValidationError(GCoreError):
    """Raised when schema validation of a graph fails."""

    code = "validation_error"
    http_status = 422


class DeltaError(GCoreError):
    """Raised when a :class:`~repro.model.delta.GraphDelta` operation is
    invalid against the graph it is applied to.

    Examples: adding a node under an identifier that already exists,
    adding an edge whose endpoints are not nodes, or removing an unknown
    object.
    """

    code = "delta_error"
    http_status = 409


class SnapshotFormatError(GCoreError):
    """Raised when a binary snapshot file cannot be decoded.

    Examples: a file that does not start with the snapshot magic, a
    truncated header or section, a section whose CRC-32 does not match
    the stored checksum, or an identifier/value whose type the format
    cannot represent at save time.
    """

    code = "snapshot_format_error"
    http_status = 422


class SnapshotVersionError(SnapshotFormatError):
    """Raised when a snapshot's format version is not supported.

    The snapshot header carries a format version number; readers refuse
    files written by a newer (or retired) format rather than risk a
    silent misread of the section layout.
    """

    code = "snapshot_version_error"
    http_status = 422

    def __init__(self, found: int, supported: int) -> None:
        super().__init__(
            f"snapshot format version {found} is not supported "
            f"(this build reads version {supported})"
        )
        self.found = found
        self.supported = supported


class StaleViewError(GCoreError):
    """Raised by the strict accessor :meth:`GCoreEngine.get_graph` when a
    materialized view's base graphs changed since it was materialized.

    Call :meth:`GCoreEngine.refresh_view` to bring the view up to date,
    or pass ``allow_stale=True`` to read the old materialization anyway.
    """

    code = "stale_view"
    http_status = 409

    def __init__(self, name: str) -> None:
        super().__init__(
            f"view {name!r} is stale (a base graph changed since "
            f"materialization); refresh_view({name!r}) brings it up to date"
        )
        self.name = name
