"""A recursive-descent parser for the full G-CORE surface syntax.

Covers every construct used in the paper (all 85 numbered query lines of
the guided tour), the formal grammar of Section 4 / Appendix A, and the
Section 5 tabular extensions:

* ``CONSTRUCT ... MATCH ... ON ... WHERE ... OPTIONAL ...``
* graph union shorthand (graph names inside the CONSTRUCT list)
* node/edge/path patterns with labels, property tests/bindings, GROUP
  grouping sets, ``@`` stored paths, copy patterns ``(=n)`` / ``-[=y]-``
* ``k SHORTEST`` / ``ALL`` / reachability path patterns with regular
  path expressions ``<:knows*>`` and path-view references ``<~wKnows*>``
* ``PATH name = ... WHERE ... COST ...`` and ``GRAPH [VIEW] name AS (...)``
* ``UNION / INTERSECT / MINUS`` over full graph queries
* ``EXISTS (subquery)`` and implicit existential patterns in WHERE
* ``SELECT ... [AS alias] MATCH ...`` with DISTINCT / GROUP BY / ORDER BY /
  LIMIT / OFFSET, and ``CONSTRUCT ... FROM <table>``

The grammar needs limited backtracking in exactly one spot — deciding
whether a parenthesized term in an expression is a sub-expression, a label
test, or an implicit existential pattern — implemented by speculative
parsing with token-position restore.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple, Union

from ..errors import ParseError
from . import ast
from .lexer import Token, tokenize

__all__ = ["parse_statement", "parse_query", "parse_expression", "Parser"]


def parse_statement(text: str) -> ast.Statement:
    """Parse a complete G-CORE statement (query or GRAPH VIEW definition)."""
    parser = Parser(tokenize(text))
    statement = parser.statement()
    parser.expect_eof()
    return statement


def parse_query(text: str) -> ast.Query:
    """Parse a G-CORE query; raises ParseError for view statements."""
    statement = parse_statement(text)
    if not isinstance(statement, ast.Query):
        raise ParseError("expected a query, found a GRAPH VIEW statement")
    return statement


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone expression (used by tests and the REPL helpers)."""
    parser = Parser(tokenize(text))
    expr = parser.expression()
    parser.expect_eof()
    return expr


_COMPARISON_OPS = {"EQ": "=", "NEQ": "<>", "LT": "<", "LE": "<=", "GT": ">", "GE": ">="}

# Keywords that can directly follow a CONSTRUCT graph-name item or end a
# clause; used to tell `CONSTRUCT social_graph , ...` from a pattern.
_CLAUSE_KEYWORDS = (
    "MATCH", "FROM", "UNION", "INTERSECT", "MINUS", "WHEN", "SET", "REMOVE",
    "CONSTRUCT", "SELECT", "GRAPH", "PATH", "WHERE", "OPTIONAL", "ON",
    "GROUP", "ORDER", "LIMIT", "OFFSET",
)


class Parser:
    """Token-stream parser with single-token lookahead plus backtracking."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _check(self, kind: str) -> bool:
        return self._peek().kind == kind

    def _check_keyword(self, *names: str) -> bool:
        return self._peek().is_keyword(*names)

    def _accept(self, kind: str) -> Optional[Token]:
        if self._check(kind):
            return self._advance()
        return None

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self._check_keyword(*names):
            return self._advance()
        return None

    def _expect(self, kind: str, what: str = "") -> Token:
        token = self._peek()
        if token.kind != kind:
            raise self._error(f"expected {what or kind}, found {token.text!r}")
        return self._advance()

    def _expect_keyword(self, name: str) -> Token:
        token = self._peek()
        if not token.is_keyword(name):
            raise self._error(f"expected {name}, found {token.text!r}")
        return self._advance()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    def expect_eof(self) -> None:
        token = self._peek()
        if token.kind != "EOF":
            raise self._error(f"unexpected trailing input: {token.text!r}")

    def _save(self) -> int:
        return self._pos

    def _restore(self, position: int) -> None:
        self._pos = position

    def _ident_like(self) -> str:
        """Accept an identifier (variable, graph or view name)."""
        token = self._peek()
        if token.kind == "IDENT":
            self._advance()
            return token.text
        raise self._error(f"expected identifier, found {token.text!r}")

    def _name_like(self) -> str:
        """Accept a label or property-key name; keywords are allowed here.

        Labels such as ``End`` or ``Set`` collide with G-CORE keywords but
        are perfectly good label names; in label/key positions the grammar
        is unambiguous, so keywords are admitted (with their original
        spelling preserved via the token's raw text for identifiers).
        """
        token = self._peek()
        if token.kind in ("IDENT", "KEYWORD"):
            self._advance()
            return str(token.value) if token.value is not None else token.text
        raise self._error(f"expected a name, found {token.text!r}")

    # ------------------------------------------------------------------
    # Statements and queries
    # ------------------------------------------------------------------
    def statement(self) -> ast.Statement:
        """statement := graphViewStmt | query"""
        if self._check_keyword("GRAPH") and self._peek(1).is_keyword("VIEW"):
            save = self._save()
            self._advance()  # GRAPH
            self._advance()  # VIEW
            name = self._ident_like()
            self._expect_keyword("AS")
            self._expect("LPAREN")
            query = self.query()
            self._expect("RPAREN")
            if self._peek().kind in ("EOF", "SEMI"):
                return ast.GraphViewStmt(name, query)
            # A view definition followed by more input is not valid; a
            # query-local binding must use GRAPH name AS (...) instead.
            self._restore(save)
        return self.query()

    def query(self) -> ast.Query:
        """query := (pathClause | graphClause)* fullGraphQuery"""
        heads: List[Union[ast.PathClause, ast.GraphClause]] = []
        while True:
            if self._check_keyword("PATH"):
                heads.append(self._path_clause())
            elif self._check_keyword("GRAPH") and not self._peek(1).is_keyword("VIEW"):
                heads.append(self._graph_clause())
            else:
                break
        body = self._full_graph_query()
        return ast.Query(tuple(heads), body)

    def _path_clause(self) -> ast.PathClause:
        self._expect_keyword("PATH")
        name = self._ident_like()
        self._expect("EQ", "'=' after PATH name")
        chains = [self.pattern_chain(construct=False)]
        while self._accept("COMMA"):
            chains.append(self.pattern_chain(construct=False))
        where: Optional[ast.Expr] = None
        cost: Optional[ast.Expr] = None
        # WHERE and COST may appear in either order (the paper writes
        # WHERE-then-COST; the formal grammar writes COST-then-WHERE).
        for _ in range(2):
            if where is None and self._accept_keyword("WHERE"):
                where = self.expression()
            elif cost is None and self._accept_keyword("COST"):
                cost = self.expression()
        return ast.PathClause(name, tuple(chains), where, cost)

    def _graph_clause(self) -> ast.GraphClause:
        self._expect_keyword("GRAPH")
        name = self._ident_like()
        self._expect_keyword("AS")
        self._expect("LPAREN")
        query = self.query()
        self._expect("RPAREN")
        return ast.GraphClause(name, query)

    def _full_graph_query(self) -> ast.QueryBody:
        left = self._graph_query_operand()
        while self._check_keyword("UNION", "INTERSECT", "MINUS"):
            op = self._advance().text.lower()
            right = self._graph_query_operand()
            left = ast.SetOpQuery(op, left, right)
        return left

    def _graph_query_operand(self) -> ast.QueryBody:
        if self._check_keyword("CONSTRUCT") or self._check_keyword("SELECT"):
            return self._basic_query()
        if self._check("LPAREN"):
            save = self._save()
            self._advance()
            try:
                inner = self._full_graph_query()
                self._expect("RPAREN")
                return inner
            except ParseError:
                self._restore(save)
        if self._check("IDENT"):
            return ast.GraphRefQuery(self._advance().text)
        raise self._error("expected CONSTRUCT, SELECT, a graph name, or '('")

    def _basic_query(self) -> ast.BasicQuery:
        if self._check_keyword("SELECT"):
            return self._select_query()
        construct = self._construct_clause()
        match: Optional[ast.MatchClause] = None
        from_table: Optional[str] = None
        if self._accept_keyword("FROM"):
            from_table = self._ident_like()
        elif self._check_keyword("MATCH"):
            match = self._match_clause()
        return ast.BasicQuery(construct, match, from_table)

    # ------------------------------------------------------------------
    # SELECT (Section 5 extension)
    # ------------------------------------------------------------------
    def _select_query(self) -> ast.BasicQuery:
        self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        items = [self._select_item()]
        while self._accept("COMMA"):
            items.append(self._select_item())
        match: Optional[ast.MatchClause] = None
        from_table: Optional[str] = None
        if self._accept_keyword("FROM"):
            from_table = self._ident_like()
        elif self._check_keyword("MATCH"):
            match = self._match_clause()
        group_by: Tuple[ast.Expr, ...] = ()
        order_by: List[Tuple[ast.Expr, bool]] = []
        limit = offset = None
        if self._check_keyword("GROUP") and self._peek(1).is_keyword("BY"):
            self._advance()
            self._advance()
            exprs = [self.expression()]
            while self._accept("COMMA"):
                exprs.append(self.expression())
            group_by = tuple(exprs)
        if self._check_keyword("ORDER") and self._peek(1).is_keyword("BY"):
            self._advance()
            self._advance()
            while True:
                expr = self.expression()
                ascending = True
                if self._accept_keyword("DESC"):
                    ascending = False
                else:
                    self._accept_keyword("ASC")
                order_by.append((expr, ascending))
                if not self._accept("COMMA"):
                    break
        if self._accept_keyword("LIMIT"):
            limit = int(self._expect("NUMBER").value)
        if self._accept_keyword("OFFSET"):
            offset = int(self._expect("NUMBER").value)
        select = ast.SelectClause(
            tuple(items), distinct, group_by, tuple(order_by), limit, offset
        )
        return ast.BasicQuery(select, match, from_table)

    def _select_item(self) -> ast.SelectItem:
        expr = self.expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._ident_like()
        return ast.SelectItem(expr, alias)

    # ------------------------------------------------------------------
    # CONSTRUCT
    # ------------------------------------------------------------------
    def _construct_clause(self) -> ast.ConstructClause:
        self._expect_keyword("CONSTRUCT")
        items = [self._construct_item()]
        while self._accept("COMMA"):
            items.append(self._construct_item())
        return ast.ConstructClause(tuple(items))

    def _construct_item(self) -> Union[ast.GraphRefItem, ast.PatternItem]:
        token = self._peek()
        if token.kind == "IDENT":
            follower = self._peek(1)
            if follower.kind in ("COMMA", "EOF", "RPAREN") or follower.is_keyword(
                *_CLAUSE_KEYWORDS
            ):
                self._advance()
                return ast.GraphRefItem(token.text)
        chain = self.pattern_chain(construct=True)
        when: Optional[ast.Expr] = None
        sets: List[ast.SetAssign] = []
        removes: List[ast.RemoveAssign] = []
        while True:
            if self._accept_keyword("WHEN"):
                when = self.expression()
            elif self._accept_keyword("SET"):
                sets.append(self._set_assignment())
            elif self._accept_keyword("REMOVE"):
                removes.append(self._remove_assignment())
            else:
                break
        return ast.PatternItem(chain, when, tuple(sets), tuple(removes))

    def _set_assignment(self) -> ast.SetAssign:
        var = self._ident_like()
        if self._accept("DOT"):
            key = self._name_like()
            self._expect("ASSIGN", "':=' in SET assignment")
            return ast.SetAssign(var, key=key, expr=self.expression())
        if self._accept("COLON"):
            return ast.SetAssign(var, label=self._name_like())
        raise self._error("expected '.' or ':' after SET variable")

    def _remove_assignment(self) -> ast.RemoveAssign:
        var = self._ident_like()
        if self._accept("DOT"):
            return ast.RemoveAssign(var, key=self._name_like())
        if self._accept("COLON"):
            return ast.RemoveAssign(var, label=self._name_like())
        raise self._error("expected '.' or ':' after REMOVE variable")

    # ------------------------------------------------------------------
    # MATCH
    # ------------------------------------------------------------------
    def _match_clause(self) -> ast.MatchClause:
        self._expect_keyword("MATCH")
        block = self._match_block()
        optionals: List[ast.MatchBlock] = []
        while self._accept_keyword("OPTIONAL"):
            optionals.append(self._match_block())
        return ast.MatchClause(block, tuple(optionals))

    def _match_block(self) -> ast.MatchBlock:
        patterns = [self._pattern_location()]
        while self._accept("COMMA"):
            patterns.append(self._pattern_location())
        where: Optional[ast.Expr] = None
        if self._accept_keyword("WHERE"):
            where = self.expression()
        return ast.MatchBlock(tuple(patterns), where)

    def _pattern_location(self) -> ast.PatternLocation:
        chain = self.pattern_chain(construct=False)
        on: Optional[Union[str, ast.Query]] = None
        if self._accept_keyword("ON"):
            if self._accept("LPAREN"):
                on = self.query()
                self._expect("RPAREN")
            else:
                on = self._ident_like()
        return ast.PatternLocation(chain, on)

    # ------------------------------------------------------------------
    # Patterns
    # ------------------------------------------------------------------
    def pattern_chain(self, construct: bool) -> ast.Chain:
        """chain := nodePattern (connector nodePattern)*"""
        elements: List[object] = [self._node_pattern(construct)]
        while True:
            connector = self._try_connector(construct)
            if connector is None:
                break
            elements.append(connector)
            elements.append(self._node_pattern(construct))
        return ast.Chain(tuple(elements))

    def _starts_connector(self) -> bool:
        token = self._peek()
        if token.kind == "DASH":
            return True
        if token.kind == "LT" and self._peek(1).kind == "DASH":
            return True
        return False

    def _try_connector(self, construct: bool):
        if not self._starts_connector():
            return None
        save = self._save()
        try:
            return self._connector(construct)
        except ParseError:
            self._restore(save)
            return None

    def _connector(self, construct: bool):
        """connector := -[...]-> | <-[...]-  | -/.../-> | <-/.../-  | -> | <- | -"""
        incoming = False
        if self._accept("LT"):
            self._expect("DASH")
            incoming = True
        else:
            self._expect("DASH")
        if self._accept("LBRACKET"):
            pattern = self._edge_contents(construct)
            self._expect("RBRACKET")
            self._expect("DASH")
            outgoing = bool(self._accept("GT"))
            return replace(pattern, direction=self._direction(incoming, outgoing))
        if self._accept("SLASH"):
            pattern = self._path_contents(construct)
            self._expect("SLASH")
            self._expect("DASH")
            outgoing = bool(self._accept("GT"))
            return replace(pattern, direction=self._direction(incoming, outgoing))
        # Bare connectors: ->, <-, -
        if not incoming and self._accept("GT"):
            return ast.EdgePattern(direction=ast.OUT)
        if self._check("LPAREN"):
            direction = ast.IN if incoming else ast.UNDIRECTED
            return ast.EdgePattern(direction=direction)
        raise self._error("malformed edge/path connector")

    @staticmethod
    def _direction(incoming: bool, outgoing: bool) -> str:
        if incoming and outgoing:
            raise ParseError("an edge cannot point both ways")
        if incoming:
            return ast.IN
        if outgoing:
            return ast.OUT
        return ast.UNDIRECTED

    def _node_pattern(self, construct: bool) -> ast.NodePattern:
        self._expect("LPAREN", "'(' starting a node pattern")
        pattern = self._element_contents(construct, node=True)
        self._expect("RPAREN", "')' closing a node pattern")
        return ast.NodePattern(
            var=pattern["var"],
            labels=pattern["labels"],
            prop_tests=pattern["tests"],
            prop_binds=pattern["binds"],
            copy_of=pattern["copy_of"],
            group=pattern["group"],
            assignments=pattern["assignments"],
        )

    def _edge_contents(self, construct: bool) -> ast.EdgePattern:
        pattern = self._element_contents(construct, node=False)
        return ast.EdgePattern(
            var=pattern["var"],
            labels=pattern["labels"],
            prop_tests=pattern["tests"],
            prop_binds=pattern["binds"],
            copy_of=pattern["copy_of"],
            group=pattern["group"],
            assignments=pattern["assignments"],
        )

    def _element_contents(self, construct: bool, node: bool) -> dict:
        """Shared contents of (...) node and [...] edge patterns."""
        var: Optional[str] = None
        copy_of: Optional[str] = None
        group: Optional[Tuple[ast.Expr, ...]] = None
        labels: Tuple[Tuple[str, ...], ...] = ()
        tests: List[Tuple[str, ast.Expr]] = []
        binds: List[Tuple[str, str]] = []
        assignments: List[Tuple[str, ast.Expr]] = []

        # Copy patterns are written (=n) / -[=y]- (Section 3); a named
        # variant `x = y` would be ambiguous with equality in WHERE.
        if self._accept("EQ"):
            copy_of = self._ident_like()
        elif self._check("IDENT"):
            var = self._advance().text
        if self._accept_keyword("GROUP"):
            exprs = [self._group_expr()]
            while self._accept("COMMA"):
                exprs.append(self._group_expr())
            group = tuple(exprs)
        if self._check("COLON"):
            labels = self._label_groups()
        if self._accept("LBRACE"):
            first = True
            while not self._check("RBRACE"):
                if not first:
                    self._expect("COMMA", "',' between property entries")
                first = False
                key = self._name_like()
                if self._accept("ASSIGN"):
                    assignments.append((key, self.expression()))
                elif self._accept("EQ") or self._accept("COLON"):
                    # `{employer = e}` binds; `{name = 'Wagner'}` tests.
                    if (
                        self._check("IDENT")
                        and self._peek(1).kind in ("COMMA", "RBRACE")
                    ):
                        binds.append((key, self._advance().text))
                    else:
                        tests.append((key, self.expression()))
                else:
                    raise self._error("expected '=', ':' or ':=' after property key")
            self._expect("RBRACE")
        return {
            "var": var,
            "copy_of": copy_of,
            "group": group,
            "labels": labels,
            "tests": tuple(tests),
            "binds": tuple(binds),
            "assignments": tuple(assignments),
        }

    def _group_expr(self) -> ast.Expr:
        """A grouping-set entry: a variable or a property access."""
        name = self._ident_like()
        expr: ast.Expr = ast.Var(name)
        while self._accept("DOT"):
            expr = ast.Prop(expr, self._name_like())
        return expr

    def _label_groups(self) -> Tuple[Tuple[str, ...], ...]:
        """`:A|B:C` — conjunction of disjunction groups."""
        groups: List[Tuple[str, ...]] = []
        while self._accept("COLON"):
            alternatives = [self._name_like()]
            while self._accept("PIPE"):
                alternatives.append(self._name_like())
            groups.append(tuple(alternatives))
        return tuple(groups)

    # ------------------------------------------------------------------
    # Path pattern contents:  -/ ... /-
    # ------------------------------------------------------------------
    def _path_contents(self, construct: bool) -> ast.PathPatternElem:
        count = 1
        mode = "shortest"
        explicit_mode = False
        stored = False
        var: Optional[str] = None
        labels: Tuple[Tuple[str, ...], ...] = ()
        assignments: List[Tuple[str, ast.Expr]] = []
        regex: Optional[ast.RegexExpr] = None
        cost_var: Optional[str] = None

        if self._check("NUMBER"):
            count = int(self._advance().value)
            self._expect_keyword("SHORTEST")
            explicit_mode = True
        elif self._accept_keyword("SHORTEST"):
            explicit_mode = True
        elif self._accept_keyword("ALL"):
            mode = "all"
            explicit_mode = True

        if self._accept("AT"):
            stored = True
            var = self._ident_like()
        elif self._check("IDENT"):
            var = self._advance().text

        if self._check("COLON"):
            labels = self._label_groups()
        if self._accept("LBRACE"):
            first = True
            while not self._check("RBRACE"):
                if not first:
                    self._expect("COMMA")
                first = False
                key = self._name_like()
                if self._accept("ASSIGN"):
                    assignments.append((key, self.expression()))
                elif self._accept("EQ"):
                    assignments.append((key, self.expression()))
                else:
                    raise self._error("expected ':=' in path property list")
            self._expect("RBRACE")

        if self._accept("LT"):
            regex = self._regex_alternation()
            self._expect("GT", "'>' closing the path expression")

        if self._accept_keyword("COST"):
            cost_var = self._ident_like()

        if regex is not None and var is None and not explicit_mode:
            mode = "reach"
        return ast.PathPatternElem(
            var=var,
            stored=stored,
            mode=mode,
            count=count,
            regex=regex,
            cost_var=cost_var,
            labels=labels,
            assignments=tuple(assignments),
        )

    # ------------------------------------------------------------------
    # Regular path expressions
    # ------------------------------------------------------------------
    def _regex_alternation(self) -> ast.RegexExpr:
        items = [self._regex_sequence()]
        while self._accept("PIPE"):
            items.append(self._regex_sequence())
        if len(items) == 1:
            return items[0]
        return ast.RAlt(tuple(items))

    def _regex_sequence(self) -> ast.RegexExpr:
        items: List[ast.RegexExpr] = []
        while self._regex_atom_starts():
            items.append(self._regex_postfix())
        if not items:
            return ast.REps()
        if len(items) == 1:
            return items[0]
        return ast.RConcat(tuple(items))

    def _regex_atom_starts(self) -> bool:
        token = self._peek()
        return token.kind in ("COLON", "TILDE", "BANG", "LPAREN") or (
            token.kind == "IDENT" and token.text == "_"
        )

    def _regex_postfix(self) -> ast.RegexExpr:
        atom = self._regex_atom()
        while True:
            if self._accept("STAR"):
                atom = ast.RStar(atom)
            elif self._accept("PLUS"):
                atom = ast.RPlus(atom)
            elif self._accept("QUESTION"):
                atom = ast.ROpt(atom)
            elif self._check("LBRACE") and self._peek(1).kind == "NUMBER":
                self._advance()
                low = int(self._expect("NUMBER").value)
                high: Optional[int] = low
                if self._accept("COMMA"):
                    high = None
                    if self._check("NUMBER"):
                        high = int(self._advance().value)
                self._expect("RBRACE", "'}' closing the repetition bound")
                if high is not None and high < low:
                    raise self._error("repetition upper bound below lower")
                atom = ast.RRepeat(atom, low, high)
            else:
                return atom

    def _regex_atom(self) -> ast.RegexExpr:
        if self._accept("COLON"):
            label = self._name_like()
            inverse = bool(self._accept("CARET"))
            return ast.RLabel(label, inverse)
        if self._accept("TILDE"):
            return ast.RView(self._ident_like())
        if self._accept("BANG"):
            return ast.RNodeTest(self._name_like())
        if self._check("IDENT") and self._peek().text == "_":
            self._advance()
            inverse = bool(self._accept("CARET"))
            return ast.RAnyEdge(inverse)
        if self._accept("LPAREN"):
            inner = self._regex_alternation()
            self._expect("RPAREN")
            return inner
        raise self._error("malformed regular path expression")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def expression(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self._check_keyword("OR", "XOR"):
            op = self._advance().text.lower()
            left = ast.Binary(op, left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self._accept_keyword("AND"):
            left = ast.Binary("and", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.Unary("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        token = self._peek()
        if token.kind in _COMPARISON_OPS:
            self._advance()
            return ast.Binary(_COMPARISON_OPS[token.kind], left, self._additive())
        if token.is_keyword("IN"):
            self._advance()
            return ast.Binary("in", left, self._additive())
        if token.is_keyword("SUBSET"):
            self._advance()
            self._accept_keyword("OF")
            return ast.Binary("subset", left, self._additive())
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while self._peek().kind in ("PLUS", "DASH"):
            op = "+" if self._advance().kind == "PLUS" else "-"
            left = ast.Binary(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while self._peek().kind in ("STAR", "SLASH", "PERCENT"):
            kind = self._advance().kind
            op = {"STAR": "*", "SLASH": "/", "PERCENT": "%"}[kind]
            left = ast.Binary(op, left, self._unary())
        return left

    def _unary(self) -> ast.Expr:
        if self._accept("DASH"):
            return ast.Unary("-", self._unary())
        if self._accept("PLUS"):
            return ast.Unary("+", self._unary())
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while True:
            if self._accept("DOT"):
                expr = ast.Prop(expr, self._name_like())
            elif self._accept("LBRACKET"):
                index = self.expression()
                self._expect("RBRACKET")
                expr = ast.Index(expr, index)
            elif (
                self._check("COLON")
                and isinstance(expr, ast.Var)
                and self._peek(1).kind == "IDENT"
            ):
                groups = self._label_groups()
                expr = self._label_groups_to_expr(expr.name, groups)
            else:
                return expr

    @staticmethod
    def _label_groups_to_expr(
        var: str, groups: Tuple[Tuple[str, ...], ...]
    ) -> ast.Expr:
        tests: List[ast.Expr] = [ast.LabelTest(var, group) for group in groups]
        expr = tests[0]
        for test in tests[1:]:
            expr = ast.Binary("and", expr, test)
        return expr

    def _primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            return ast.Literal(token.value)
        if token.kind == "STRING":
            self._advance()
            return ast.Literal(token.value)
        if token.kind == "PARAM":
            self._advance()
            return ast.Param(token.value)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("CASE"):
            return self._case_expression()
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect("LPAREN")
            query = self.query()
            self._expect("RPAREN")
            return ast.ExistsQuery(query)
        if token.kind == "IDENT":
            if self._peek(1).kind == "LPAREN":
                return self._function_call()
            self._advance()
            return ast.Var(token.text)
        if (
            token.kind == "KEYWORD"
            and self._peek(1).kind == "LPAREN"
            and not token.is_keyword("EXISTS", "CASE", "NOT", "AND", "OR",
                                     "XOR", "IN", "WHERE", "MATCH")
        ):
            # Keyword-named built-ins such as COST(p) or SET-like labels.
            return self._function_call()
        if token.kind == "LBRACKET":
            self._advance()
            items: List[ast.Expr] = []
            if not self._check("RBRACKET"):
                items.append(self.expression())
                while self._accept("COMMA"):
                    items.append(self.expression())
            self._expect("RBRACKET")
            return ast.ListLiteral(tuple(items))
        if token.kind == "LPAREN":
            return self._paren_or_pattern()
        raise self._error(f"unexpected token in expression: {token.text!r}")

    def _function_call(self) -> ast.Expr:
        token = self._advance()
        name = str(token.value) if token.value is not None else token.text
        self._expect("LPAREN")
        if self._accept("STAR"):
            self._expect("RPAREN")
            return ast.FuncCall(name, (), star=True)
        distinct = bool(self._accept_keyword("DISTINCT"))
        args: List[ast.Expr] = []
        if not self._check("RPAREN"):
            args.append(self.expression())
            while self._accept("COMMA"):
                args.append(self.expression())
        self._expect("RPAREN")
        return ast.FuncCall(name, tuple(args), distinct=distinct)

    def _case_expression(self) -> ast.Expr:
        self._expect_keyword("CASE")
        whens: List[Tuple[ast.Expr, ast.Expr]] = []
        while self._accept_keyword("WHEN"):
            condition = self.expression()
            self._expect_keyword("THEN")
            whens.append((condition, self.expression()))
        if not whens:
            raise self._error("CASE requires at least one WHEN branch")
        default: Optional[ast.Expr] = None
        if self._accept_keyword("ELSE"):
            default = self.expression()
        self._expect_keyword("END")
        return ast.CaseExpr(tuple(whens), default)

    def _paren_or_pattern(self) -> ast.Expr:
        """Disambiguate '(' in an expression.

        A parenthesized term can be (a) an implicit existential pattern
        (Section 3), (b) a label test like ``(n:Person)``, or (c) an
        ordinary sub-expression. We speculatively parse a pattern chain;
        failure backtracks to expression parsing.
        """
        save = self._save()
        try:
            chain = self.pattern_chain(construct=False)
        except ParseError:
            chain = None
            self._restore(save)
        if chain is not None:
            if len(chain.elements) > 1:
                return ast.ExistsPattern(chain)
            node = chain.elements[0]
            plain = (
                not node.prop_tests
                and not node.prop_binds
                and node.copy_of is None
                and node.group is None
                and not node.assignments
            )
            if node.var is not None and plain and node.labels:
                return self._label_groups_to_expr(node.var, node.labels)
            if node.var is not None and plain and not node.labels:
                return ast.Var(node.var)
            return ast.ExistsPattern(chain)
        self._expect("LPAREN")
        inner = self.expression()
        self._expect("RPAREN")
        return inner
