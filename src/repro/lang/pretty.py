"""An unparser: render G-CORE ASTs back to concrete syntax.

``parse(pretty(ast)) == ast`` is a tested invariant (property-based tests
generate random ASTs and round-trip them), which pins down both the parser
and this printer. The output is canonical: keywords upper-case, single
spaces, parentheses only where precedence requires them.
"""

from __future__ import annotations

from typing import List, Union

from . import ast

__all__ = ["pretty_statement", "pretty_query", "pretty_expr", "pretty_chain"]

_PRECEDENCE = {
    "or": 1, "xor": 1,
    "and": 2,
    "=": 4, "<>": 4, "<": 4, "<=": 4, ">": 4, ">=": 4, "in": 4, "subset": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}


def pretty_statement(statement: ast.Statement) -> str:
    """Render a full statement."""
    if isinstance(statement, ast.GraphViewStmt):
        return (
            f"GRAPH VIEW {statement.name} AS ({pretty_query(statement.query)})"
        )
    return pretty_query(statement)


def pretty_query(query: ast.Query) -> str:
    """Render a query (head clauses + body)."""
    parts: List[str] = []
    for head in query.heads:
        if isinstance(head, ast.PathClause):
            chains = ", ".join(pretty_chain(c) for c in head.chains)
            text = f"PATH {head.name} = {chains}"
            if head.where is not None:
                text += f" WHERE {pretty_expr(head.where)}"
            if head.cost is not None:
                text += f" COST {pretty_expr(head.cost)}"
            parts.append(text)
        else:
            parts.append(f"GRAPH {head.name} AS ({pretty_query(head.query)})")
    parts.append(_pretty_body(query.body))
    return " ".join(parts)


def _pretty_body(body: ast.QueryBody) -> str:
    if isinstance(body, ast.SetOpQuery):
        left = _pretty_body(body.left)
        right = _pretty_body(body.right)
        if isinstance(body.right, ast.SetOpQuery):
            right = f"({right})"
        return f"{left} {body.op.upper()} {right}"
    if isinstance(body, ast.GraphRefQuery):
        return body.name
    return _pretty_basic(body)


def _pretty_basic(query: ast.BasicQuery) -> str:
    parts: List[str] = []
    if isinstance(query.head, ast.SelectClause):
        parts.append(_pretty_select(query.head))
    else:
        parts.append(_pretty_construct(query.head))
    if query.from_table is not None:
        parts.append(f"FROM {query.from_table}")
    elif query.match is not None:
        parts.append(_pretty_match(query.match))
    if isinstance(query.head, ast.SelectClause):
        parts.append(_pretty_select_tail(query.head))
    return " ".join(p for p in parts if p)


def _pretty_select(select: ast.SelectClause) -> str:
    items = ", ".join(
        pretty_expr(item.expr) + (f" AS {item.alias}" if item.alias else "")
        for item in select.items
    )
    distinct = "DISTINCT " if select.distinct else ""
    return f"SELECT {distinct}{items}"


def _pretty_select_tail(select: ast.SelectClause) -> str:
    parts: List[str] = []
    if select.group_by:
        parts.append(
            "GROUP BY " + ", ".join(pretty_expr(e) for e in select.group_by)
        )
    if select.order_by:
        rendered = []
        for expr, ascending in select.order_by:
            rendered.append(pretty_expr(expr) + ("" if ascending else " DESC"))
        parts.append("ORDER BY " + ", ".join(rendered))
    if select.limit is not None:
        parts.append(f"LIMIT {select.limit}")
    if select.offset is not None:
        parts.append(f"OFFSET {select.offset}")
    return " ".join(parts)


def _pretty_construct(construct: ast.ConstructClause) -> str:
    rendered: List[str] = []
    for item in construct.items:
        if isinstance(item, ast.GraphRefItem):
            rendered.append(item.name)
            continue
        text = pretty_chain(item.chain, construct=True)
        if item.when is not None:
            text += f" WHEN {pretty_expr(item.when)}"
        for assign in item.sets:
            if assign.key is not None:
                text += f" SET {assign.var}.{assign.key} := {pretty_expr(assign.expr)}"
            else:
                text += f" SET {assign.var}:{assign.label}"
        for removal in item.removes:
            if removal.key is not None:
                text += f" REMOVE {removal.var}.{removal.key}"
            else:
                text += f" REMOVE {removal.var}:{removal.label}"
        rendered.append(text)
    return "CONSTRUCT " + ", ".join(rendered)


def _pretty_match(match: ast.MatchClause) -> str:
    parts = ["MATCH " + _pretty_block(match.block)]
    for optional in match.optionals:
        parts.append("OPTIONAL " + _pretty_block(optional))
    return " ".join(parts)


def _pretty_block(block: ast.MatchBlock) -> str:
    rendered: List[str] = []
    for location in block.patterns:
        text = pretty_chain(location.chain)
        if isinstance(location.on, str):
            text += f" ON {location.on}"
        elif location.on is not None:
            text += f" ON ({pretty_query(location.on)})"
        rendered.append(text)
    result = ", ".join(rendered)
    if block.where is not None:
        result += f" WHERE {pretty_expr(block.where)}"
    return result


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------

def pretty_chain(chain: ast.Chain, construct: bool = False) -> str:
    """Render a pattern chain."""
    parts: List[str] = []
    elements = list(chain.elements)
    parts.append(_pretty_node(elements[0]))
    index = 1
    while index < len(elements):
        connector = elements[index]
        node = elements[index + 1]
        if isinstance(connector, ast.EdgePattern):
            parts.append(_pretty_edge_connector(connector))
        else:
            parts.append(_pretty_path_connector(connector))
        parts.append(_pretty_node(node))
        index += 2
    return "".join(parts)


def _pretty_labels(labels) -> str:
    return "".join(":" + "|".join(group) for group in labels)


def _pretty_element_body(pattern: Union[ast.NodePattern, ast.EdgePattern]) -> str:
    text = ""
    if pattern.var is not None:
        text += pattern.var
    if pattern.copy_of is not None:
        text += f"={pattern.copy_of}"
    if pattern.group is not None:
        text += " GROUP " + ", ".join(pretty_expr(e) for e in pattern.group)
    if pattern.labels:
        text += _pretty_labels(pattern.labels)
    entries: List[str] = []
    for key, expr in pattern.prop_tests:
        entries.append(f"{key} = {pretty_expr(expr)}")
    for key, var in pattern.prop_binds:
        entries.append(f"{key} = {var}")
    for key, expr in pattern.assignments:
        entries.append(f"{key} := {pretty_expr(expr)}")
    if entries:
        text += " {" + ", ".join(entries) + "}"
    return text


def _pretty_node(pattern: ast.NodePattern) -> str:
    return "(" + _pretty_element_body(pattern) + ")"


def _pretty_edge_connector(pattern: ast.EdgePattern) -> str:
    body = _pretty_element_body(pattern)
    bare = (
        pattern.var is None
        and not pattern.labels
        and not pattern.prop_tests
        and not pattern.prop_binds
        and pattern.copy_of is None
        and pattern.group is None
        and not pattern.assignments
    )
    if bare:
        if pattern.direction == ast.OUT:
            return "->"
        if pattern.direction == ast.IN:
            return "<-"
        return "-"
    if pattern.direction == ast.OUT:
        return f"-[{body}]->"
    if pattern.direction == ast.IN:
        return f"<-[{body}]-"
    return f"-[{body}]-"


def _pretty_path_connector(pattern: ast.PathPatternElem) -> str:
    inner = ""
    if pattern.mode == "all":
        inner += "ALL "
    elif pattern.mode == "shortest" and pattern.count != 1:
        inner += f"{pattern.count} SHORTEST "
    if pattern.stored:
        inner += "@"
    if pattern.var is not None:
        inner += pattern.var
    if pattern.labels:
        inner += _pretty_labels(pattern.labels)
    if pattern.assignments:
        entries = ", ".join(
            f"{key} := {pretty_expr(expr)}" for key, expr in pattern.assignments
        )
        inner += " {" + entries + "}"
    if pattern.regex is not None:
        inner += f" <{pretty_regex(pattern.regex)}>"
    if pattern.cost_var is not None:
        inner += f" COST {pattern.cost_var}"
    inner = inner.strip()
    if pattern.direction == ast.IN:
        return f"<-/{inner}/-"
    if pattern.direction == ast.UNDIRECTED:
        return f"-/{inner}/-"
    return f"-/{inner}/->"


# ---------------------------------------------------------------------------
# Regular path expressions
# ---------------------------------------------------------------------------

def pretty_regex(regex: ast.RegexExpr) -> str:
    """Render a regular path expression."""
    return _regex_alt(regex)


def _regex_alt(regex: ast.RegexExpr) -> str:
    if isinstance(regex, ast.RAlt):
        return "|".join(_regex_seq(item) for item in regex.items)
    return _regex_seq(regex)


def _regex_seq(regex: ast.RegexExpr) -> str:
    if isinstance(regex, ast.RConcat):
        return " ".join(_regex_postfix(item) for item in regex.items)
    return _regex_postfix(regex)


def _regex_postfix(regex: ast.RegexExpr) -> str:
    if isinstance(regex, ast.RStar):
        return _regex_atom(regex.item) + "*"
    if isinstance(regex, ast.RPlus):
        return _regex_atom(regex.item) + "+"
    if isinstance(regex, ast.ROpt):
        return _regex_atom(regex.item) + "?"
    if isinstance(regex, ast.RRepeat):
        if regex.high is None:
            return _regex_atom(regex.item) + "{" + str(regex.low) + ",}"
        if regex.high == regex.low:
            return _regex_atom(regex.item) + "{" + str(regex.low) + "}"
        return (_regex_atom(regex.item) + "{" + str(regex.low) + ","
                + str(regex.high) + "}")
    return _regex_atom(regex)


def _regex_atom(regex: ast.RegexExpr) -> str:
    if isinstance(regex, ast.RLabel):
        return f":{regex.label}" + ("^" if regex.inverse else "")
    if isinstance(regex, ast.RAnyEdge):
        return "_" + ("^" if regex.inverse else "")
    if isinstance(regex, ast.RNodeTest):
        return f"!{regex.label}"
    if isinstance(regex, ast.RView):
        return f"~{regex.name}"
    if isinstance(regex, ast.REps):
        return "()"
    return "(" + _regex_alt(regex) + ")"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

def pretty_expr(expr: ast.Expr, parent_precedence: int = 0) -> str:
    """Render an expression, inserting parentheses only when required."""
    if isinstance(expr, ast.Literal):
        return _pretty_literal(expr.value)
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.Param):
        return f"${expr.name}"
    if isinstance(expr, ast.Prop):
        return f"{pretty_expr(expr.base, 9)}.{expr.key}"
    if isinstance(expr, ast.LabelTest):
        return f"({expr.var}:{'|'.join(expr.labels)})"
    if isinstance(expr, ast.Unary):
        if expr.op == "not":
            # NOT binds between AND and the comparisons: parenthesize when
            # embedded under a tighter operator.
            text = f"NOT {pretty_expr(expr.operand, 3)}"
            if parent_precedence > 3:
                return f"({text})"
            return text
        return f"{expr.op}{pretty_expr(expr.operand, 7)}"
    if isinstance(expr, ast.Binary):
        precedence = _PRECEDENCE[expr.op]
        op_text = {"in": "IN", "subset": "SUBSET OF", "and": "AND",
                   "or": "OR", "xor": "XOR"}.get(expr.op, expr.op)
        # Comparisons are non-associative: both operands must bind tighter.
        left_floor = precedence + 1 if precedence == 4 else precedence
        left = pretty_expr(expr.left, left_floor)
        right = pretty_expr(expr.right, precedence + 1)
        text = f"{left} {op_text} {right}"
        if precedence < parent_precedence:
            return f"({text})"
        return text
    if isinstance(expr, ast.FuncCall):
        if expr.star:
            return f"{expr.name}(*)"
        distinct = "DISTINCT " if expr.distinct else ""
        args = ", ".join(pretty_expr(a) for a in expr.args)
        return f"{expr.name}({distinct}{args})"
    if isinstance(expr, ast.CaseExpr):
        parts = ["CASE"]
        for condition, result in expr.whens:
            parts.append(f"WHEN {pretty_expr(condition)} THEN {pretty_expr(result)}")
        if expr.default is not None:
            parts.append(f"ELSE {pretty_expr(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, ast.Index):
        return f"{pretty_expr(expr.base, 9)}[{pretty_expr(expr.index)}]"
    if isinstance(expr, ast.ListLiteral):
        return "[" + ", ".join(pretty_expr(item) for item in expr.items) + "]"
    if isinstance(expr, ast.ExistsQuery):
        return f"EXISTS ({pretty_query(expr.query)})"
    if isinstance(expr, ast.ExistsPattern):
        return pretty_chain(expr.chain)
    raise TypeError(f"cannot pretty-print {expr!r}")


def _pretty_literal(value) -> str:
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    return str(value)
