"""The G-CORE language frontend: lexer, AST, parser and pretty-printer."""

from . import ast
from .lexer import Token, tokenize
from .parser import parse_expression, parse_query, parse_statement
from .pretty import pretty_expr, pretty_query, pretty_statement

__all__ = [
    "ast",
    "Token",
    "tokenize",
    "parse_expression",
    "parse_query",
    "parse_statement",
    "pretty_expr",
    "pretty_query",
    "pretty_statement",
]
