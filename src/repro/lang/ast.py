"""Abstract syntax trees for G-CORE.

The node classes mirror the top-down grammar of Section 4 and Appendix A:

* a *statement* is a :class:`GraphViewStmt` or a :class:`Query`;
* a :class:`Query` is a sequence of head clauses (:class:`PathClause`,
  :class:`GraphClause`) followed by a full graph query — a tree of
  :class:`SetOpQuery` over :class:`BasicQuery` / :class:`GraphRefQuery`;
* a :class:`BasicQuery` is a CONSTRUCT (or SELECT, Section 5) head over a
  MATCH clause (or a FROM table import, Section 5).

All nodes are frozen dataclasses: hashable, comparable, and safe to share
between the parser, the planner and the evaluator. Regular path
expressions (Appendix A.1) live here too so the paths engine does not
depend on the parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple, Union

__all__ = [
    # expressions
    "Expr", "Literal", "Param", "Var", "Prop", "LabelTest", "Unary", "Binary",
    "FuncCall", "CaseExpr", "Index", "ExistsQuery", "ExistsPattern",
    "ListLiteral",
    # regular path expressions
    "RegexExpr", "REps", "RLabel", "RAnyEdge", "RNodeTest", "RView",
    "RConcat", "RAlt", "RStar", "RPlus", "ROpt", "RRepeat",
    # patterns
    "NodePattern", "EdgePattern", "PathPatternElem", "Chain",
    "OUT", "IN", "UNDIRECTED",
    # clauses
    "PatternLocation", "MatchBlock", "MatchClause",
    "SetAssign", "RemoveAssign",
    "GraphRefItem", "PatternItem", "ConstructClause",
    "SelectItem", "SelectClause",
    "BasicQuery", "GraphRefQuery", "SetOpQuery",
    "PathClause", "GraphClause", "Query", "GraphViewStmt",
    "Statement", "QueryBody",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class for all expression nodes (Appendix A.1)."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    """A literal scalar value (string, number, boolean, date)."""

    value: Any


@dataclass(frozen=True)
class Param(Expr):
    """A query parameter ``$name``, supplied at execution time."""

    name: str


@dataclass(frozen=True)
class ListLiteral(Expr):
    """A literal list of expressions, e.g. ``[1, 2, 3]`` (extension)."""

    items: Tuple[Expr, ...]


@dataclass(frozen=True)
class Var(Expr):
    """A variable reference ``x``."""

    name: str


@dataclass(frozen=True)
class Prop(Expr):
    """A property access ``x.k`` (or, generally, ``<expr>.k``)."""

    base: Expr
    key: str


@dataclass(frozen=True)
class LabelTest(Expr):
    """A label test ``x:A|B`` — true iff x carries one of the alternatives."""

    var: str
    labels: Tuple[str, ...]


@dataclass(frozen=True)
class Unary(Expr):
    """Unary operators: ``not``, ``-``, ``+``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    """Binary operators.

    ``op`` is one of ``and or = <> < <= > >= in subset + - * / %``.
    """

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class FuncCall(Expr):
    """A built-in function or aggregate call.

    ``star`` marks ``COUNT(*)``; ``distinct`` marks ``COUNT(DISTINCT e)``.
    """

    name: str
    args: Tuple[Expr, ...] = ()
    star: bool = False
    distinct: bool = False


@dataclass(frozen=True)
class CaseExpr(Expr):
    """``CASE WHEN c THEN v ... ELSE d END`` — the paper's coalescing tool."""

    whens: Tuple[Tuple[Expr, Expr], ...]
    default: Optional[Expr] = None


@dataclass(frozen=True)
class Index(Expr):
    """List indexing ``base[i]`` — e.g. ``nodes(p)[1]`` (0-based, Section 3)."""

    base: Expr
    index: Expr


@dataclass(frozen=True)
class ExistsQuery(Expr):
    """``EXISTS (subquery)`` — true iff the subquery graph is non-empty."""

    query: "Query"


@dataclass(frozen=True)
class ExistsPattern(Expr):
    """An implicit existential pattern predicate in WHERE (Section 3)."""

    chain: "Chain"


# ---------------------------------------------------------------------------
# Regular path expressions (Appendix A.1)
# ---------------------------------------------------------------------------

class RegexExpr:
    """Base class of regular path expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class REps(RegexExpr):
    """The empty word."""


@dataclass(frozen=True)
class RLabel(RegexExpr):
    """An edge label ``l`` or its inverse ``l-``."""

    label: str
    inverse: bool = False


@dataclass(frozen=True)
class RAnyEdge(RegexExpr):
    """The wildcard ``_`` — any edge, either direction forward."""

    inverse: bool = False


@dataclass(frozen=True)
class RNodeTest(RegexExpr):
    """A node label test ``!l`` — checks the current node, consumes no edge."""

    label: str


@dataclass(frozen=True)
class RView(RegexExpr):
    """A reference ``~name`` to a PATH-clause view (weighted segment)."""

    name: str


@dataclass(frozen=True)
class RConcat(RegexExpr):
    """Concatenation ``r1 r2 ... rn``."""

    items: Tuple[RegexExpr, ...]


@dataclass(frozen=True)
class RAlt(RegexExpr):
    """Alternation ``r1 | r2 | ... | rn``."""

    items: Tuple[RegexExpr, ...]


@dataclass(frozen=True)
class RStar(RegexExpr):
    """Kleene star ``r*``."""

    item: RegexExpr


@dataclass(frozen=True)
class RPlus(RegexExpr):
    """One-or-more ``r+``."""

    item: RegexExpr


@dataclass(frozen=True)
class ROpt(RegexExpr):
    """Zero-or-one ``r?``."""

    item: RegexExpr


@dataclass(frozen=True)
class RRepeat(RegexExpr):
    """Bounded repetition ``r{m,n}`` (``n=None`` means unbounded).

    The paper notes (Section 6) that path length restrictions "although
    can be simulated using regular expressions, improve the succinctness
    of the language" — this node is that convenience.
    """

    item: RegexExpr
    low: int
    high: Optional[int]


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------

OUT = "out"
IN = "in"
UNDIRECTED = "undirected"


@dataclass(frozen=True)
class NodePattern:
    """A node pattern ``(x:L1|L2 {k=v, k2=var})`` or construct node.

    * ``labels`` is a conjunction of disjunction groups: ``:A|B:C`` means
      (A or B) and C.
    * ``prop_tests`` are equality tests against expression values;
      ``prop_binds`` unroll a (multi-valued) property into a value
      variable (Section 3, ``{employer=e}``).
    * ``group`` is the explicit CONSTRUCT grouping set (GROUP ...);
      ``assignments`` are construct-time ``{k := expr}`` property setters;
      ``copy_of`` implements the ``(=n)`` copy syntax.
    """

    var: Optional[str] = None
    labels: Tuple[Tuple[str, ...], ...] = ()
    prop_tests: Tuple[Tuple[str, Expr], ...] = ()
    prop_binds: Tuple[Tuple[str, str], ...] = ()
    copy_of: Optional[str] = None
    group: Optional[Tuple[Expr, ...]] = None
    assignments: Tuple[Tuple[str, Expr], ...] = ()


@dataclass(frozen=True)
class EdgePattern:
    """An edge pattern ``-[e:knows {since=d}]->`` (or construct edge)."""

    var: Optional[str] = None
    direction: str = OUT
    labels: Tuple[Tuple[str, ...], ...] = ()
    prop_tests: Tuple[Tuple[str, Expr], ...] = ()
    prop_binds: Tuple[Tuple[str, str], ...] = ()
    copy_of: Optional[str] = None
    group: Optional[Tuple[Expr, ...]] = None
    assignments: Tuple[Tuple[str, Expr], ...] = ()


@dataclass(frozen=True)
class PathPatternElem:
    """A path pattern ``-/3 SHORTEST p <:knows*> COST c/->`` and friends.

    ``mode`` is one of:

    * ``"shortest"`` — k-shortest semantics (k = ``count``; default 1),
    * ``"all"``      — ALL paths (only valid for graph projection),
    * ``"reach"``    — a pure reachability test (no path variable).

    ``stored`` marks the ``@p`` forms: in MATCH, matching *stored* paths of
    the graph (optionally filtered by ``labels``); in CONSTRUCT, storing
    the bound path into the result graph. ``assignments`` carry construct
    ``{k := expr}`` setters; ``cost_var`` binds the path cost.
    """

    var: Optional[str] = None
    direction: str = OUT
    stored: bool = False
    mode: str = "shortest"
    count: int = 1
    regex: Optional[RegexExpr] = None
    cost_var: Optional[str] = None
    labels: Tuple[Tuple[str, ...], ...] = ()
    assignments: Tuple[Tuple[str, Expr], ...] = ()


@dataclass(frozen=True)
class Chain:
    """An alternating sequence node, connector, node, connector, ..., node."""

    elements: Tuple[Any, ...]

    def nodes(self) -> Tuple[NodePattern, ...]:
        """The node patterns at even positions."""
        return tuple(self.elements[0::2])

    def connectors(self) -> Tuple[Any, ...]:
        """The edge/path patterns at odd positions."""
        return tuple(self.elements[1::2])


# ---------------------------------------------------------------------------
# Clauses
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PatternLocation:
    """A pattern with an optional ``ON`` location (graph name or subquery)."""

    chain: Chain
    on: Optional[Union[str, "Query"]] = None


@dataclass(frozen=True)
class MatchBlock:
    """A comma-separated pattern list with its own WHERE condition."""

    patterns: Tuple[PatternLocation, ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class MatchClause:
    """``MATCH <block> (OPTIONAL <block>)*`` (Appendix A.2)."""

    block: MatchBlock
    optionals: Tuple[MatchBlock, ...] = ()


@dataclass(frozen=True)
class SetAssign:
    """``SET x.k := expr`` or ``SET x:Label`` on a construct pattern."""

    var: str
    key: Optional[str] = None
    label: Optional[str] = None
    expr: Optional[Expr] = None


@dataclass(frozen=True)
class RemoveAssign:
    """``REMOVE x.k`` or ``REMOVE x:Label`` on a construct pattern."""

    var: str
    key: Optional[str] = None
    label: Optional[str] = None


@dataclass(frozen=True)
class GraphRefItem:
    """A bare graph name in a CONSTRUCT list — union shorthand (Section 3)."""

    name: str


@dataclass(frozen=True)
class PatternItem:
    """One construct pattern with its WHEN / SET / REMOVE sub-clauses."""

    chain: Chain
    when: Optional[Expr] = None
    sets: Tuple[SetAssign, ...] = ()
    removes: Tuple[RemoveAssign, ...] = ()


@dataclass(frozen=True)
class ConstructClause:
    """``CONSTRUCT item, item, ...`` (Appendix A.3)."""

    items: Tuple[Union[GraphRefItem, PatternItem], ...]


@dataclass(frozen=True)
class SelectItem:
    """One ``expr AS alias`` projection of the SELECT extension."""

    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class SelectClause:
    """The tabular projection extension of Section 5."""

    items: Tuple[SelectItem, ...]
    distinct: bool = False
    group_by: Tuple[Expr, ...] = ()
    order_by: Tuple[Tuple[Expr, bool], ...] = ()  # (expr, ascending)
    limit: Optional[int] = None
    offset: Optional[int] = None


@dataclass(frozen=True)
class BasicQuery:
    """A CONSTRUCT/SELECT head over a MATCH clause or a FROM table import."""

    head: Union[ConstructClause, SelectClause]
    match: Optional[MatchClause] = None
    from_table: Optional[str] = None


@dataclass(frozen=True)
class GraphRefQuery:
    """A graph name used as a full graph query operand (e.g. UNION g)."""

    name: str


@dataclass(frozen=True)
class SetOpQuery:
    """``q1 UNION|INTERSECT|MINUS q2`` over full graph queries."""

    op: str
    left: "QueryBody"
    right: "QueryBody"


QueryBody = Union[BasicQuery, GraphRefQuery, SetOpQuery]


@dataclass(frozen=True)
class PathClause:
    """``PATH name = <chains> [WHERE cond] [COST expr]`` (Appendix A.4).

    The first chain is the walk pattern whose first and last nodes are the
    segment endpoints; additional chains are existential constraints that
    may bind variables used by the COST expression (footnote 3).
    """

    name: str
    chains: Tuple[Chain, ...]
    where: Optional[Expr] = None
    cost: Optional[Expr] = None


@dataclass(frozen=True)
class GraphClause:
    """``GRAPH name AS (query)`` — a query-local graph binding (A.6)."""

    name: str
    query: "Query"


@dataclass(frozen=True)
class Query:
    """A full G-CORE query: head clauses + a full graph query body."""

    heads: Tuple[Union[PathClause, GraphClause], ...]
    body: QueryBody


@dataclass(frozen=True)
class GraphViewStmt:
    """``GRAPH VIEW name AS (query)`` — registers a persistent view (A.6)."""

    name: str
    query: Query


Statement = Union[Query, GraphViewStmt]
