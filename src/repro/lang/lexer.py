"""A hand-written lexer for G-CORE.

The LDBC reference grammar is an ANTLR artifact; offline we tokenize by
hand. The lexer is deliberately *atomic*: ASCII-art arrows such as
``-[`` ``]->`` ``-/`` ``/->`` are **not** fused into multi-character
tokens, because the same characters mean subtraction, division and
comparisons inside expressions. The parser reassembles arrows from atoms,
which is unambiguous because pattern and expression contexts never
overlap. Only ``:=``, ``<>``, ``!=``, ``<=`` and ``>=`` are fused — no
legal G-CORE text puts those adjacent characters together with another
meaning.

Keywords are case-insensitive (the paper writes them upper-case);
identifiers are case-sensitive. ``#`` starts a line comment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import LexerError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "CONSTRUCT", "MATCH", "WHERE", "ON", "OPTIONAL",
        "UNION", "INTERSECT", "MINUS",
        "GRAPH", "VIEW", "AS", "PATH", "COST", "SHORTEST", "ALL",
        "EXISTS", "NOT", "AND", "OR", "XOR", "IN", "SUBSET", "OF",
        "SET", "REMOVE", "WHEN", "GROUP",
        "CASE", "THEN", "ELSE", "END",
        "TRUE", "FALSE",
        "SELECT", "FROM", "DISTINCT", "ORDER", "BY", "ASC", "DESC",
        "LIMIT", "OFFSET",
    }
)

_PUNCT_TWO = {":=": "ASSIGN", "<>": "NEQ", "!=": "NEQ", "<=": "LE", ">=": "GE"}
_PUNCT_ONE = {
    "(": "LPAREN", ")": "RPAREN",
    "[": "LBRACKET", "]": "RBRACKET",
    "{": "LBRACE", "}": "RBRACE",
    "<": "LT", ">": "GT",
    "=": "EQ", ",": "COMMA", ".": "DOT",
    ":": "COLON", ";": "SEMI", "@": "AT", "~": "TILDE",
    "|": "PIPE", "*": "STAR", "+": "PLUS", "-": "DASH",
    "/": "SLASH", "!": "BANG", "?": "QUESTION", "%": "PERCENT",
    "^": "CARET",
}


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position (1-based line/column)."""

    kind: str        # 'KEYWORD' | 'IDENT' | 'NUMBER' | 'STRING' | punct kind | 'EOF'
    text: str        # canonical text (keywords upper-cased)
    line: int
    column: int
    value: object = None  # parsed value for NUMBER/STRING

    def is_keyword(self, *names: str) -> bool:
        """True iff this token is one of the given keywords."""
        return self.kind == "KEYWORD" and self.text in names

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(text: str) -> List[Token]:
    """Tokenize *text* into a list ending with an EOF token."""
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(text)

    def error(message: str) -> LexerError:
        return LexerError(message, line, column)

    while index < length:
        char = text[index]

        # Whitespace ----------------------------------------------------
        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue

        # Comments ------------------------------------------------------
        if char == "#":
            while index < length and text[index] != "\n":
                index += 1
            continue

        start_line, start_column = line, column

        # Strings ---------------------------------------------------------
        if char in "'\"":
            quote = char
            index += 1
            column += 1
            chars: List[str] = []
            closed = False
            while index < length:
                current = text[index]
                if current == "\\" and index + 1 < length:
                    escape = text[index + 1]
                    mapping = {"n": "\n", "t": "\t", "\\": "\\", "'": "'", '"': '"'}
                    chars.append(mapping.get(escape, escape))
                    index += 2
                    column += 2
                    continue
                if current == quote:
                    # '' inside a '-quoted string is an escaped quote
                    if index + 1 < length and text[index + 1] == quote:
                        chars.append(quote)
                        index += 2
                        column += 2
                        continue
                    index += 1
                    column += 1
                    closed = True
                    break
                if current == "\n":
                    raise error("unterminated string literal")
                chars.append(current)
                index += 1
                column += 1
            if not closed:
                raise error("unterminated string literal")
            literal = "".join(chars)
            tokens.append(
                Token("STRING", literal, start_line, start_column, literal)
            )
            continue

        # Numbers -----------------------------------------------------------
        if char.isdigit():
            end = index
            while end < length and text[end].isdigit():
                end += 1
            is_float = False
            if (
                end < length
                and text[end] == "."
                and end + 1 < length
                and text[end + 1].isdigit()
            ):
                is_float = True
                end += 1
                while end < length and text[end].isdigit():
                    end += 1
            if end < length and text[end] in "eE":
                peek = end + 1
                if peek < length and text[peek] in "+-":
                    peek += 1
                if peek < length and text[peek].isdigit():
                    is_float = True
                    end = peek
                    while end < length and text[end].isdigit():
                        end += 1
            raw = text[index:end]
            value = float(raw) if is_float else int(raw)
            tokens.append(Token("NUMBER", raw, start_line, start_column, value))
            column += end - index
            index = end
            continue

        # Identifiers and keywords ------------------------------------------
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            raw = text[index:end]
            upper = raw.upper()
            if upper in KEYWORDS:
                # Keyword tokens keep the raw spelling in .value so that
                # keyword-named labels (e.g. :End) survive verbatim.
                tokens.append(Token("KEYWORD", upper, start_line, start_column, raw))
            else:
                tokens.append(Token("IDENT", raw, start_line, start_column, raw))
            column += end - index
            index = end
            continue

        # Backtick-quoted identifiers (labels with spaces etc.) -------------
        if char == "`":
            end = index + 1
            while end < length and text[end] != "`":
                if text[end] == "\n":
                    raise error("unterminated quoted identifier")
                end += 1
            if end >= length:
                raise error("unterminated quoted identifier")
            raw = text[index + 1 : end]
            tokens.append(Token("IDENT", raw, start_line, start_column, raw))
            column += end - index + 1
            index = end + 1
            continue

        # Query parameters ($name) -------------------------------------------
        if char == "$":
            end = index + 1
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            if end == index + 1:
                raise error("expected a parameter name after '$'")
            raw = text[index + 1 : end]
            tokens.append(Token("PARAM", raw, start_line, start_column, raw))
            column += end - index
            index = end
            continue

        # Two-character punctuation ------------------------------------------
        pair = text[index : index + 2]
        if pair in _PUNCT_TWO:
            tokens.append(Token(_PUNCT_TWO[pair], pair, start_line, start_column))
            index += 2
            column += 2
            continue

        # One-character punctuation ------------------------------------------
        if char in _PUNCT_ONE:
            tokens.append(Token(_PUNCT_ONE[char], char, start_line, start_column))
            index += 1
            column += 1
            continue

        raise error(f"unexpected character {char!r}")

    tokens.append(Token("EOF", "", line, column))
    return tokens
