"""An interactive G-CORE shell:  ``python -m repro [graph.json ...]``.

Loads the paper's toy instances by default (or JSON graph files given on
the command line) and evaluates G-CORE statements read from stdin.
Dot-commands:

  .graphs              list catalog graphs / views / tables
  .views               list materialized views with freshness (a view is
                       STALE when a base graph changed since it was
                       materialized) and maintenance strategy
  .default <name>      set the default graph
  .show <name>         describe a graph
  .stats <name>        planner statistics of a graph (counts, degrees,
                       property selectivities)
  .explain <query>     show the evaluation sketch (planner order with
                       estimated cardinalities, plan-cache status, the
                       active execution config)
  .lint <query>        static analysis only: print the analyzer's typed
                       diagnostics (stable GCxxx codes with severity,
                       span and fix hint) without executing anything
  .config [k=v ...]    show the active ExecutionConfig, or set axes for
                       the session (e.g. ``.config parallelism=4
                       planner=greedy``; ``.config reset`` restores the
                       defaults)
  .cache               prepared-query plan cache hit/miss counters
  .load <file.json>    load and register a JSON graph
  .help                this text
  .quit                exit

Any other input is executed as a G-CORE statement; graph results are
described, tables pretty-printed, and every result graph is registered
as ``last`` so it can be queried again (composability at the prompt).
"""

from __future__ import annotations

import sys

from typing import Optional

from .config import DEFAULT_CONFIG, ExecutionConfig
from .datasets import company_graph, orders_table, social_graph
from .engine import GCoreEngine
from .errors import GCoreError, ValidationError
from .eval.query import ViewResult
from .model.graph import PathPropertyGraph
from .model.io import load_graph
from .table import Table

PROMPT = "gcore> "


class ShellState:
    """Mutable session state: the ExecutionConfig queries run at."""

    def __init__(self) -> None:
        self.config: ExecutionConfig = DEFAULT_CONFIG


def _parse_config_args(
    current: ExecutionConfig, argument: str
) -> ExecutionConfig:
    """Apply ``key=value`` assignments from a ``.config`` command line."""
    if argument == "reset":
        return DEFAULT_CONFIG
    changes: dict = {}
    for token in argument.split():
        key, eq, value = token.partition("=")
        if not eq or not key or not value:
            raise ValidationError(f"expected key=value, got {token!r}")
        if key == "parallelism" and value != "serial":
            try:
                changes[key] = int(value)
            except ValueError:
                changes[key] = value  # let the config validation report it
        else:
            changes[key] = value
    try:
        return current.with_(**changes)
    except TypeError:
        from dataclasses import fields

        known = ", ".join(f.name for f in fields(ExecutionConfig))
        raise ValidationError(
            f"unknown config axis in {argument!r}; expected one of {known}"
        ) from None


def make_engine(paths: list) -> GCoreEngine:
    engine = GCoreEngine()
    if paths:
        for path in paths:
            graph = load_graph(path)
            name = graph.name or path.rsplit("/", 1)[-1].split(".")[0]
            engine.register_graph(name, graph)
            print(f"loaded {name}: {graph!r}")
    else:
        engine.register_graph("social_graph", social_graph(), default=True)
        engine.register_graph("company_graph", company_graph())
        engine.register_table("orders", orders_table())
        print("loaded the paper's toy instances: social_graph (default), "
              "company_graph, orders")
    return engine


def handle_command(
    engine: GCoreEngine, line: str, state: Optional[ShellState] = None
) -> bool:
    """Handle a dot-command; returns False when the shell should exit."""
    if state is None:
        state = ShellState()
    parts = line.split(None, 1)
    command = parts[0]
    argument = parts[1].strip() if len(parts) > 1 else ""
    if command in (".quit", ".exit"):
        return False
    if command == ".help":
        print(__doc__)
    elif command == ".graphs":
        print("graphs:", ", ".join(engine.catalog.graph_names()) or "-")
        print("tables:", ", ".join(engine.catalog.table_names()) or "-")
        print("path views:",
              ", ".join(engine.catalog.path_view_names()) or "-")
        print("default:", engine.catalog.default_graph_name)
    elif command == ".views":
        names = engine.catalog.view_names()
        if not names:
            print("no materialized views")
        for name in names:
            from .eval.maintenance import analyze_view, describe_strategy

            meta = engine.catalog.view_meta(name)
            plan = meta.plan if meta is not None and meta.plan is not None else None
            if plan is None:
                plan = analyze_view(engine.catalog.view_query(name),
                                    engine.catalog)
            status = "STALE" if engine.catalog.is_view_stale(name) else "fresh"
            graph = engine.graph(name)
            print(
                f"  {name}: {len(graph.nodes)} nodes, {len(graph.edges)} "
                f"edges [{status}] maintenance={describe_strategy(plan)}"
            )
    elif command == ".default" and argument:
        engine.set_default_graph(argument)
        print(f"default graph is now {argument}")
    elif command == ".show" and argument:
        print(engine.graph(argument).describe())
    elif command == ".stats" and argument:
        print(engine.graph(argument).statistics().describe())
    elif command == ".cache":
        info = engine.plan_cache_info()
        print(
            f"plan cache: {info['size']}/{info['maxsize']} entries, "
            f"{info['hits']} hits, {info['misses']} misses"
        )
    elif command == ".explain" and argument:
        print(engine.explain(argument, config=state.config))
    elif command == ".lint" and argument:
        result = engine.analyze(argument)
        print(result.describe())
    elif command == ".config":
        if argument:
            state.config = _parse_config_args(state.config, argument)
        print(f"config: {state.config.describe()}")
    elif command == ".load" and argument:
        graph = load_graph(argument)
        name = graph.name or argument.rsplit("/", 1)[-1].split(".")[0]
        engine.register_graph(name, graph)
        print(f"registered {name}: {graph!r}")
    else:
        print(f"unknown command {command!r}; try .help")
    return True


def execute(
    engine: GCoreEngine, text: str, state: Optional[ShellState] = None
) -> None:
    config = None
    if state is not None and state.config != DEFAULT_CONFIG:
        config = state.config
    result = engine.run(text, config=config)
    if isinstance(result, ViewResult):
        print(f"view {result.name} registered: {result.graph!r}")
    elif isinstance(result, PathPropertyGraph):
        print(result.describe())
        engine.register_graph("last", result)
    elif isinstance(result, Table):
        print(result.pretty())


def main(argv: list) -> int:
    engine = make_engine(argv)
    state = ShellState()
    print("G-CORE shell — enter a query, or .help")
    buffer: list = []
    while True:
        try:
            prompt = PROMPT if not buffer else "   ... "
            line = input(prompt)
        except EOFError:
            print()
            return 0
        except KeyboardInterrupt:
            print()
            buffer.clear()
            continue
        stripped = line.strip()
        if not stripped and not buffer:
            continue
        if stripped.startswith(".") and not buffer:
            try:
                if not handle_command(engine, stripped, state):
                    return 0
            except GCoreError as exc:
                print(f"error: {exc}")
            continue
        # Multi-line input: a trailing backslash continues the statement.
        if stripped.endswith("\\"):
            buffer.append(stripped[:-1])
            continue
        buffer.append(stripped)
        statement = " ".join(buffer)
        buffer.clear()
        try:
            execute(engine, statement, state)
        except GCoreError as exc:
            print(f"error: {exc}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
