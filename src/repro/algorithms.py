"""Graph analytics over Path Property Graphs.

The Figure 1 survey lists *graph clustering* among the features
practitioners need; while G-CORE expresses community grouping through
CONSTRUCT aggregation, bulk analytics (components, degree profiles,
label histograms) are a natural library companion. Everything here works
directly on :class:`~repro.model.graph.PathPropertyGraph` and composes
with query results.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Dict, FrozenSet, List, Optional

from .model.graph import ObjectId, PathPropertyGraph

__all__ = [
    "connected_components",
    "component_of",
    "degree_histogram",
    "label_histogram",
    "graph_summary",
]


def connected_components(
    graph: PathPropertyGraph, labels: Optional[FrozenSet[str]] = None
) -> List[FrozenSet[ObjectId]]:
    """Weakly connected components (optionally restricted to edge labels).

    Returns components sorted by decreasing size, then by smallest member,
    so the output is deterministic.
    """
    seen: set = set()
    components: List[FrozenSet[ObjectId]] = []
    for start in sorted(graph.nodes, key=str):
        if start in seen:
            continue
        component = set()
        queue = deque([start])
        seen.add(start)
        while queue:
            node = queue.popleft()
            component.add(node)
            neighbours = []
            for edge in graph.out_edges(node):
                if labels is None or graph.labels(edge) & labels:
                    neighbours.append(graph.endpoints(edge)[1])
            for edge in graph.in_edges(node):
                if labels is None or graph.labels(edge) & labels:
                    neighbours.append(graph.endpoints(edge)[0])
            for neighbour in neighbours:
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        components.append(frozenset(component))
    components.sort(key=lambda c: (-len(c), min(map(str, c))))
    return components


def component_of(
    graph: PathPropertyGraph,
    node: ObjectId,
    labels: Optional[FrozenSet[str]] = None,
) -> FrozenSet[ObjectId]:
    """The weakly connected component containing *node*."""
    for component in connected_components(graph, labels):
        if node in component:
            return component
    return frozenset()


def degree_histogram(graph: PathPropertyGraph) -> Dict[int, int]:
    """How many nodes have each total degree."""
    counts = Counter(graph.degree(node) for node in graph.nodes)
    return dict(sorted(counts.items()))


def label_histogram(graph: PathPropertyGraph) -> Dict[str, int]:
    """How many objects carry each label (nodes, edges and paths)."""
    counts: Counter = Counter()
    for obj in graph.objects():
        for label in graph.labels(obj):
            counts[label] += 1
    return dict(sorted(counts.items()))


def graph_summary(graph: PathPropertyGraph) -> str:
    """A one-screen statistical summary of a graph."""
    components = connected_components(graph)
    histogram = degree_histogram(graph)
    max_degree = max(histogram) if histogram else 0
    lines = [
        f"graph {graph.name or '<anonymous>'}: {graph.order()} nodes, "
        f"{graph.size()} edges, {len(graph.paths)} stored paths",
        f"components: {len(components)}"
        + (f" (largest {len(components[0])})" if components else ""),
        f"max degree: {max_degree}",
        "labels: " + ", ".join(
            f"{label} x{count}"
            for label, count in label_histogram(graph).items()
        ),
    ]
    return "\n".join(lines)
