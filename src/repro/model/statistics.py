"""Graph summary statistics for cost-based MATCH planning.

:class:`GraphStatistics` condenses a :class:`~repro.model.graph.PathPropertyGraph`
into the counts a cardinality estimator needs:

* node / edge / path totals and per-label counts,
* average out- and in-degree per edge label (edges of that label divided
  by the node count — the expected fan from a uniformly chosen node),
* property-key selectivity per object kind: the expected fraction of
  objects satisfying an equality test ``{key = const}``, computed as
  (objects carrying the key / objects) x (1 / distinct values of the key).

Graphs are immutable, so the statistics are computed once per graph and
cached on it (see :meth:`PathPropertyGraph.statistics`); building them is
a single O(N + E + P) pass over the public accessors.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .graph import ObjectId, PathPropertyGraph

__all__ = ["GraphStatistics"]

#: Selectivity assumed for an equality test on a key we have no data for.
DEFAULT_SELECTIVITY = 0.1

#: Fraction of the node set assumed reachable by a regular-path search
#: whose edge labels cannot be bounded statically (any-edge wildcards,
#: PATH-view arcs, bare ``-/p/->`` patterns).
DEFAULT_REACH_FRACTION = 0.5


class GraphStatistics:
    """Immutable summary statistics of one :class:`PathPropertyGraph`."""

    __slots__ = (
        "node_count",
        "edge_count",
        "path_count",
        "node_label_counts",
        "edge_label_counts",
        "path_label_counts",
        "edge_label_sources",
        "edge_label_targets",
        "_node_prop_sel",
        "_edge_prop_sel",
        "_path_prop_sel",
    )

    def __init__(self, graph: "PathPropertyGraph") -> None:
        self.node_count = len(graph.nodes)
        self.edge_count = len(graph.edges)
        self.path_count = len(graph.paths)

        node_labels: Dict[str, int] = {}
        edge_labels: Dict[str, int] = {}
        path_labels: Dict[str, int] = {}
        sources: Dict[str, Set["ObjectId"]] = {}
        targets: Dict[str, Set["ObjectId"]] = {}
        for node in graph.nodes:
            for label in graph.labels(node):
                node_labels[label] = node_labels.get(label, 0) + 1
        for edge in graph.edges:
            src, dst = graph.endpoints(edge)
            for label in graph.labels(edge):
                edge_labels[label] = edge_labels.get(label, 0) + 1
                sources.setdefault(label, set()).add(src)
                targets.setdefault(label, set()).add(dst)
        for pid in graph.paths:
            for label in graph.labels(pid):
                path_labels[label] = path_labels.get(label, 0) + 1
        self.node_label_counts = node_labels
        self.edge_label_counts = edge_labels
        self.path_label_counts = path_labels
        self.edge_label_sources = {l: len(s) for l, s in sources.items()}
        self.edge_label_targets = {l: len(s) for l, s in targets.items()}

        self._node_prop_sel = self._property_selectivities(graph, graph.nodes)
        self._edge_prop_sel = self._property_selectivities(graph, graph.edges)
        self._path_prop_sel = self._property_selectivities(graph, graph.paths)

    @staticmethod
    def _property_selectivities(
        graph: "PathPropertyGraph", objects: Iterable["ObjectId"]
    ) -> Dict[str, float]:
        carriers: Dict[str, int] = {}
        distinct: Dict[str, Set[object]] = {}
        total = 0
        for obj in objects:
            total += 1
            for key, values in graph.properties(obj).items():
                carriers[key] = carriers.get(key, 0) + 1
                distinct.setdefault(key, set()).update(values)
        if not total:
            return {}
        return {
            key: (count / total) / max(len(distinct[key]), 1)
            for key, count in carriers.items()
        }

    # ------------------------------------------------------------------
    # Incremental adjustment (graph deltas)
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        old_graph: "PathPropertyGraph",
        new_graph: "PathPropertyGraph",
        effects,
    ) -> "GraphStatistics":
        """Statistics for *new_graph*, adjusted from these in O(|delta|).

        ``effects`` is the :class:`~repro.model.delta.DeltaEffects` of the
        applied update. Totals and per-label counts are adjusted
        *exactly* by diffing only the touched objects between the two
        graphs. The distinct-endpoint counts behind :meth:`fan_out` /
        :meth:`label_reach_fraction` are scaled proportionally (clamped
        to the label count and node total), and property selectivities
        are carried over unchanged — both are planner estimates whose
        drift under small deltas is negligible compared to an O(N + E)
        rebuild per update.
        """
        stats = GraphStatistics.__new__(GraphStatistics)
        stats.node_count = len(new_graph.nodes)
        stats.edge_count = len(new_graph.edges)
        stats.path_count = len(new_graph.paths)

        node_labels = dict(self.node_label_counts)
        edge_labels = dict(self.edge_label_counts)
        path_labels = dict(self.path_label_counts)

        def adjust(counts: Dict[str, int], labels, amount: int) -> None:
            for label in labels:
                updated = counts.get(label, 0) + amount
                if updated > 0:
                    counts[label] = updated
                else:
                    counts.pop(label, None)

        for node in effects.removed_nodes:
            adjust(node_labels, old_graph.labels(node), -1)
        for node in effects.added_nodes:
            adjust(node_labels, new_graph.labels(node), +1)
        for edge in effects.removed_edges:
            adjust(edge_labels, old_graph.labels(edge), -1)
        for edge in effects.added_edges:
            adjust(edge_labels, new_graph.labels(edge), +1)
        for pid in effects.removed_paths:
            adjust(path_labels, old_graph.labels(pid), -1)
        for obj in effects.modified:
            if obj in new_graph.nodes:
                counts = node_labels
            elif obj in new_graph.edges:
                counts = edge_labels
            else:
                counts = path_labels
            before = old_graph.labels(obj) if obj in old_graph else frozenset()
            after = new_graph.labels(obj)
            adjust(counts, before - after, -1)
            adjust(counts, after - before, +1)
        stats.node_label_counts = node_labels
        stats.edge_label_counts = edge_labels
        stats.path_label_counts = path_labels

        sources: Dict[str, int] = {}
        targets: Dict[str, int] = {}
        for label, count in edge_labels.items():
            old_count = self.edge_label_counts.get(label, 0)
            for table, store in (
                (self.edge_label_sources, sources),
                (self.edge_label_targets, targets),
            ):
                old_distinct = table.get(label, 0)
                if old_count:
                    estimate = round(old_distinct * count / old_count)
                else:
                    estimate = count  # a fresh label: assume distinct ends
                store[label] = max(1, min(estimate, count, stats.node_count))
        stats.edge_label_sources = sources
        stats.edge_label_targets = targets

        stats._node_prop_sel = self._node_prop_sel
        stats._edge_prop_sel = self._edge_prop_sel
        stats._path_prop_sel = self._path_prop_sel
        return stats

    # ------------------------------------------------------------------
    # Label counts
    # ------------------------------------------------------------------
    def node_label_count(self, label: str) -> int:
        """Number of nodes carrying *label*."""
        return self.node_label_counts.get(label, 0)

    def edge_label_count(self, label: str) -> int:
        """Number of edges carrying *label*."""
        return self.edge_label_counts.get(label, 0)

    def path_label_count(self, label: str) -> int:
        """Number of stored paths carrying *label*."""
        return self.path_label_counts.get(label, 0)

    # ------------------------------------------------------------------
    # Degrees
    # ------------------------------------------------------------------
    def avg_out_degree(self, label: Optional[str] = None) -> float:
        """Expected number of outgoing *label* edges of a random node."""
        count = self.edge_count if label is None else self.edge_label_count(label)
        return count / max(self.node_count, 1)

    def avg_in_degree(self, label: Optional[str] = None) -> float:
        """Expected number of incoming *label* edges of a random node."""
        return self.avg_out_degree(label)

    def fan_out(self, label: str) -> float:
        """Average *label* out-degree over nodes that have one at all."""
        count = self.edge_label_count(label)
        return count / max(self.edge_label_sources.get(label, 0), 1)

    def fan_in(self, label: str) -> float:
        """Average *label* in-degree over nodes that have one at all."""
        count = self.edge_label_count(label)
        return count / max(self.edge_label_targets.get(label, 0), 1)

    # ------------------------------------------------------------------
    # Reachability (path-pattern cost model)
    # ------------------------------------------------------------------
    def label_reach_fraction(self, label: str) -> float:
        """Fraction of nodes that can be *entered* over a *label* edge.

        The set of targets of ``label`` edges upper-bounds everything a
        regular path built from that label can reach (beyond the source
        itself), so ``|targets(label)| / |nodes|`` is the planner's
        per-label reachability estimate.
        """
        if not self.node_count:
            return 0.0
        return min(
            self.edge_label_targets.get(label, 0) / self.node_count, 1.0
        )

    def reachability_estimate(
        self, labels: Optional[Iterable[str]] = None
    ) -> float:
        """Expected number of nodes reachable from a bound source.

        *labels* is the statically-known edge-label set of the path's
        regular expression (:func:`repro.paths.automaton.regex_edge_labels`):
        ``None`` means unbounded (any-edge wildcard or view arcs — fall
        back to :data:`DEFAULT_REACH_FRACTION` of the graph), the empty
        set means the regex traverses no edges at all (only the source
        itself is reachable). Never below 1 so downstream products stay
        monotone.
        """
        if labels is None:
            return max(self.node_count * DEFAULT_REACH_FRACTION, 1.0)
        label_list = list(labels)
        if not label_list:
            return 1.0
        fraction = max(
            (self.label_reach_fraction(label) for label in label_list),
            default=0.0,
        )
        return max(self.node_count * fraction, 1.0)

    # ------------------------------------------------------------------
    # Selectivities
    # ------------------------------------------------------------------
    def label_selectivity(
        self, kind: str, labels: Tuple[Tuple[str, ...], ...]
    ) -> float:
        """Fraction of *kind* objects satisfying a label conjunction.

        ``labels`` follows the pattern convention: a conjunction of
        disjunction groups (``:A|B:C`` means (A or B) and C). Groups are
        assumed independent; each contributes ``matched / total``.
        """
        total, counts = {
            "node": (self.node_count, self.node_label_counts),
            "edge": (self.edge_count, self.edge_label_counts),
            "path": (self.path_count, self.path_label_counts),
        }[kind]
        if not labels:
            return 1.0
        if not total:
            return 0.0
        selectivity = 1.0
        for group in labels:
            matched = min(sum(counts.get(l, 0) for l in group), total)
            selectivity *= matched / total
        return selectivity

    def property_selectivity(self, kind: str, key: str) -> float:
        """Expected fraction of *kind* objects matching ``{key = const}``."""
        table = {
            "node": self._node_prop_sel,
            "edge": self._edge_prop_sel,
            "path": self._path_prop_sel,
        }[kind]
        return table.get(key, DEFAULT_SELECTIVITY)

    def property_tests_selectivity(self, kind: str, keys: Iterable[str]) -> float:
        """Combined (independence-assumption) selectivity of equality tests."""
        selectivity = 1.0
        for key in keys:
            selectivity *= self.property_selectivity(kind, key)
        return selectivity

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """A deterministic multi-line dump (REPL ``.stats`` command)."""
        lines = [
            f"nodes={self.node_count} edges={self.edge_count} "
            f"paths={self.path_count}"
        ]
        for title, counts in (
            ("node labels", self.node_label_counts),
            ("edge labels", self.edge_label_counts),
            ("path labels", self.path_label_counts),
        ):
            if counts:
                body = ", ".join(
                    f"{label}={counts[label]}" for label in sorted(counts)
                )
                lines.append(f"  {title}: {body}")
        if self.edge_label_counts:
            degrees = ", ".join(
                f"{label}={self.avg_out_degree(label):.2f}"
                for label in sorted(self.edge_label_counts)
            )
            lines.append(f"  avg out-degree: {degrees}")
        for title, table in (
            ("node key selectivity", self._node_prop_sel),
            ("edge key selectivity", self._edge_prop_sel),
        ):
            if table:
                body = ", ".join(
                    f"{key}={table[key]:.3f}" for key in sorted(table)
                )
                lines.append(f"  {title}: {body}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<GraphStatistics: {self.node_count} nodes, "
            f"{self.edge_count} edges, {self.path_count} paths>"
        )
