"""JSON (de)serialization of Path Property Graphs.

The on-disk format is a stable, human-readable JSON document:

.. code-block:: json

    {
      "name": "social_graph",
      "nodes": [{"id": "john", "labels": ["Person"],
                 "properties": {"employer": ["Acme"]}}],
      "edges": [{"id": "e1", "source": "john", "target": "peter",
                 "labels": ["knows"], "properties": {}}],
      "paths": [{"id": "p1", "sequence": ["john", "e1", "peter"],
                 "labels": ["toWagner"], "properties": {"trust": [0.95]}}]
    }

Scalars serialize natively except :class:`~repro.model.values.Date`,
which is tagged as ``{"$date": "YYYY-MM-DD"}``. Round-tripping preserves
graphs exactly (structural equality).
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Union

from ..errors import GraphModelError
from .graph import ObjectId, PathPropertyGraph
from .values import Date, Scalar

__all__ = ["graph_to_dict", "graph_from_dict", "dump_graph", "load_graph",
           "dumps_graph", "loads_graph"]


def _encode_scalar(value: Scalar) -> Any:
    if isinstance(value, Date):
        return {"$date": str(value)}
    return value


def _decode_scalar(value: Any) -> Scalar:
    if isinstance(value, dict):
        if set(value) == {"$date"}:
            return Date.parse(value["$date"])
        raise GraphModelError(f"unrecognized scalar encoding: {value!r}")
    return value


def _sorted_scalars(values) -> List[Any]:
    return sorted(
        (_encode_scalar(v) for v in values), key=lambda v: (str(type(v)), str(v))
    )


def _encode_object(graph: PathPropertyGraph, obj: ObjectId) -> Dict[str, Any]:
    return {
        "labels": sorted(graph.labels(obj)),
        "properties": {
            key: _sorted_scalars(values)
            for key, values in sorted(graph.properties(obj).items())
        },
    }


def graph_to_dict(graph: PathPropertyGraph) -> Dict[str, Any]:
    """Convert *graph* to a JSON-serializable dictionary."""
    nodes = []
    for node in sorted(graph.nodes, key=str):
        entry = {"id": node}
        entry.update(_encode_object(graph, node))
        nodes.append(entry)
    edges = []
    for edge in sorted(graph.edges, key=str):
        src, dst = graph.endpoints(edge)
        entry = {"id": edge, "source": src, "target": dst}
        entry.update(_encode_object(graph, edge))
        edges.append(entry)
    paths = []
    for pid in sorted(graph.paths, key=str):
        entry = {"id": pid, "sequence": list(graph.path_sequence(pid))}
        entry.update(_encode_object(graph, pid))
        paths.append(entry)
    return {"name": graph.name, "nodes": nodes, "edges": edges, "paths": paths}


def graph_from_dict(data: Dict[str, Any]) -> PathPropertyGraph:
    """Reconstruct a PPG from the dictionary produced by :func:`graph_to_dict`."""
    labels: Dict[ObjectId, List[str]] = {}
    props: Dict[ObjectId, Dict[str, frozenset]] = {}

    def register(entry: Dict[str, Any]) -> None:
        obj = entry["id"]
        if entry.get("labels"):
            labels[obj] = list(entry["labels"])
        if entry.get("properties"):
            props[obj] = {
                key: frozenset(_decode_scalar(v) for v in values)
                for key, values in entry["properties"].items()
            }

    nodes = []
    for entry in data.get("nodes", []):
        nodes.append(entry["id"])
        register(entry)
    edges = {}
    for entry in data.get("edges", []):
        edges[entry["id"]] = (entry["source"], entry["target"])
        register(entry)
    paths = {}
    for entry in data.get("paths", []):
        paths[entry["id"]] = tuple(entry["sequence"])
        register(entry)
    return PathPropertyGraph(
        nodes=nodes,
        edges=edges,
        paths=paths,
        labels=labels,
        properties=props,
        name=data.get("name", ""),
    )


def dumps_graph(graph: PathPropertyGraph, indent: int = 2) -> str:
    """Serialize *graph* to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent, sort_keys=False)


def loads_graph(text: str) -> PathPropertyGraph:
    """Deserialize a graph from a JSON string."""
    return graph_from_dict(json.loads(text))


def dump_graph(graph: PathPropertyGraph, fp: Union[str, IO[str]]) -> None:
    """Write *graph* as JSON to a path or file object."""
    if isinstance(fp, str):
        with open(fp, "w", encoding="utf-8") as handle:
            handle.write(dumps_graph(graph))
    else:
        fp.write(dumps_graph(graph))


def load_graph(fp: Union[str, IO[str]]) -> PathPropertyGraph:
    """Read a graph from a JSON path or file object."""
    if isinstance(fp, str):
        with open(fp, "r", encoding="utf-8") as handle:
            return loads_graph(handle.read())
    return loads_graph(fp.read())
