"""Graph deltas — the mutation layer over immutable Path Property Graphs.

:class:`PathPropertyGraph` is immutable (queries produce new graphs), so
"updating" a graph means producing a *new* graph that shares identifiers
with the old one. :class:`GraphDelta` is the description of such an
update: an ordered list of node/edge/label/property insertions and
removals, built with a chainable API::

    delta = (GraphDelta()
             .add_node("dave", labels=["Person"], properties={"score": 3})
             .add_edge("k9", "dave", "alice", labels=["knows"])
             .set_property("alice", "score", 7)
             .remove_edge("k3"))
    new_graph, effects = apply_delta(graph, delta)

:func:`apply_delta` validates every operation against the evolving graph
(unknown identifiers, endpoint existence, identifier-namespace clashes)
and raises :class:`~repro.errors.DeltaError` on the first violation.
Removing a node cascades to its incident edges and to stored paths
through it; removing an edge cascades to stored paths using it — the
result always satisfies Definition 2.1 without re-validation.

The returned :class:`DeltaEffects` summarizes what actually changed —
added/removed/modified object sets and the *touched node* closure
(modified nodes plus the endpoints of every touched edge) that the
incremental view-maintenance engine (:mod:`repro.eval.maintenance`) and
the statistics adjuster (:meth:`GraphStatistics.apply_delta
<repro.model.statistics.GraphStatistics.apply_delta>`) consume.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from ..errors import DeltaError
from .graph import ObjectId, PathPropertyGraph
from .values import ValueSet, as_value_set

__all__ = ["GraphDelta", "DeltaEffects", "apply_delta"]


class GraphDelta:
    """An ordered batch of mutations against one base graph.

    Operations are recorded, not applied; :func:`apply_delta` (usually
    via :meth:`GCoreEngine.apply_update <repro.engine.GCoreEngine.apply_update>`)
    replays them against a graph. All builder methods return ``self`` so
    deltas can be written fluently.
    """

    __slots__ = ("ops",)

    def __init__(self) -> None:
        self.ops: List[Tuple[Any, ...]] = []

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: ObjectId,
        labels: Iterable[str] = (),
        properties: Optional[Mapping[str, Any]] = None,
    ) -> "GraphDelta":
        """Insert a fresh node with optional labels and properties."""
        self.ops.append(
            ("add_node", node_id, tuple(labels), dict(properties or {}))
        )
        return self

    def remove_node(self, node_id: ObjectId) -> "GraphDelta":
        """Remove a node, cascading to incident edges and paths through it."""
        self.ops.append(("remove_node", node_id))
        return self

    def add_edge(
        self,
        edge_id: ObjectId,
        source: ObjectId,
        target: ObjectId,
        labels: Iterable[str] = (),
        properties: Optional[Mapping[str, Any]] = None,
    ) -> "GraphDelta":
        """Insert a fresh edge between two existing nodes."""
        self.ops.append(
            ("add_edge", edge_id, source, target, tuple(labels),
             dict(properties or {}))
        )
        return self

    def remove_edge(self, edge_id: ObjectId) -> "GraphDelta":
        """Remove an edge, cascading to stored paths that use it."""
        self.ops.append(("remove_edge", edge_id))
        return self

    # ------------------------------------------------------------------
    # Label and property operations
    # ------------------------------------------------------------------
    def add_label(self, obj: ObjectId, label: str) -> "GraphDelta":
        """Attach *label* to an existing object."""
        self.ops.append(("add_label", obj, label))
        return self

    def remove_label(self, obj: ObjectId, label: str) -> "GraphDelta":
        """Detach *label* from an existing object (no-op when absent)."""
        self.ops.append(("remove_label", obj, label))
        return self

    def set_property(self, obj: ObjectId, key: str, value: Any) -> "GraphDelta":
        """Replace the value set of one property of an existing object."""
        self.ops.append(("set_property", obj, key, value))
        return self

    def remove_property(self, obj: ObjectId, key: str) -> "GraphDelta":
        """Drop one property of an existing object (no-op when absent)."""
        self.ops.append(("remove_property", obj, key))
        return self

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ops)

    def __bool__(self) -> bool:
        return bool(self.ops)

    def __repr__(self) -> str:
        kinds: Dict[str, int] = {}
        for op in self.ops:
            kinds[op[0]] = kinds.get(op[0], 0) + 1
        inner = ", ".join(f"{kind}x{kinds[kind]}" for kind in sorted(kinds))
        return f"<GraphDelta {len(self.ops)} ops: {inner or '-'}>"


class DeltaEffects:
    """What one applied delta actually changed (consumed by maintenance).

    ``touched`` is every object id whose existence, labels or properties
    differ between the old and new graph (cascaded removals included);
    ``touched_nodes`` additionally closes over edge endpoints — every
    binding row affected by the delta binds at least one touched node,
    which is what the incremental view-maintenance seeding relies on.
    """

    __slots__ = (
        "added_nodes",
        "removed_nodes",
        "added_edges",
        "removed_edges",
        "removed_paths",
        "modified",
        "touched",
        "touched_nodes",
    )

    def __init__(self) -> None:
        self.added_nodes: Set[ObjectId] = set()
        self.removed_nodes: Set[ObjectId] = set()
        self.added_edges: Dict[ObjectId, Tuple[ObjectId, ObjectId]] = {}
        self.removed_edges: Dict[ObjectId, Tuple[ObjectId, ObjectId]] = {}
        self.removed_paths: Set[ObjectId] = set()
        self.modified: Set[ObjectId] = set()
        self.touched: FrozenSet[ObjectId] = frozenset()
        self.touched_nodes: FrozenSet[ObjectId] = frozenset()

    def _finalize(
        self, edge_endpoints: Mapping[ObjectId, Tuple[ObjectId, ObjectId]]
    ) -> None:
        """Compute the touched closures (*edge_endpoints* covers modified
        edges still present in the new graph)."""
        touched: Set[ObjectId] = set()
        touched |= self.added_nodes | self.removed_nodes | self.modified
        touched |= set(self.added_edges) | set(self.removed_edges)
        touched |= self.removed_paths
        nodes: Set[ObjectId] = set(
            self.added_nodes | self.removed_nodes
        )
        nodes |= {obj for obj in self.modified if obj not in edge_endpoints}
        for endpoints in self.added_edges.values():
            nodes.update(endpoints)
        for endpoints in self.removed_edges.values():
            nodes.update(endpoints)
        for obj in self.modified:
            endpoints = edge_endpoints.get(obj)
            if endpoints is not None:
                nodes.update(endpoints)
        self.touched = frozenset(touched)
        self.touched_nodes = frozenset(nodes)

    def validation_targets(
        self, graph: Optional[PathPropertyGraph] = None
    ) -> FrozenSet[ObjectId]:
        """Objects a schema should re-check: added or modified survivors.

        With the post-delta *graph*, the set closes over the incident
        edges of added/modified nodes — an edge's schema admissibility
        depends on its endpoints' labels, so relabeling a node can
        invalidate edges the delta never named.
        """
        targets = set(
            self.added_nodes | set(self.added_edges) | self.modified
        )
        if graph is not None:
            for obj in list(targets):
                if obj in graph.nodes:
                    targets.update(graph.out_edges(obj))
                    targets.update(graph.in_edges(obj))
        return frozenset(targets)

    def __repr__(self) -> str:
        return (
            f"<DeltaEffects +{len(self.added_nodes)}n/+"
            f"{len(self.added_edges)}e -{len(self.removed_nodes)}n/-"
            f"{len(self.removed_edges)}e ~{len(self.modified)}>"
        )


def apply_delta(
    graph: PathPropertyGraph, delta: GraphDelta
) -> Tuple[PathPropertyGraph, DeltaEffects]:
    """Apply *delta* to *graph*, returning the new graph and its effects.

    Operations apply in order against the evolving state; the first
    invalid operation raises :class:`~repro.errors.DeltaError` (the input
    graph is never modified — graphs are immutable). The result is
    assembled through the normalized fast path: every operation preserves
    Definition 2.1 by construction, so no re-validation pass runs.
    """
    nodes: Set[ObjectId] = set(graph.nodes)
    rho: Dict[ObjectId, Tuple[ObjectId, ObjectId]] = dict(graph.rho)
    paths: Dict[ObjectId, Tuple[ObjectId, ...]] = dict(graph.delta)
    labels: Dict[ObjectId, FrozenSet[str]] = graph.label_map()
    props: Dict[ObjectId, Dict[str, ValueSet]] = graph.property_map()
    effects = DeltaEffects()
    modified_edge_endpoints: Dict[ObjectId, Tuple[ObjectId, ObjectId]] = {}
    # Cascade indexes, built once on the first structural removal and
    # maintained through the delta — k removals cost O(E + P + k*deg)
    # instead of a full edge/path scan per operation.
    incident: Optional[Dict[ObjectId, Set[ObjectId]]] = None
    paths_by_member: Optional[Dict[ObjectId, Set[ObjectId]]] = None

    def removal_indexes():
        nonlocal incident, paths_by_member
        if incident is None:
            incident = {}
            for edge, (src, dst) in rho.items():
                incident.setdefault(src, set()).add(edge)
                incident.setdefault(dst, set()).add(edge)
            paths_by_member = {}
            for pid, seq in paths.items():
                for member in set(seq):
                    paths_by_member.setdefault(member, set()).add(pid)
        return incident, paths_by_member

    def known(obj: ObjectId) -> bool:
        return obj in nodes or obj in rho or obj in paths

    def mark_modified(obj: ObjectId) -> None:
        if obj in effects.added_nodes or obj in effects.added_edges:
            return  # additions already carry their final labels/properties
        effects.modified.add(obj)
        if obj in rho:
            modified_edge_endpoints[obj] = rho[obj]

    def drop_object_annotations(obj: ObjectId) -> None:
        labels.pop(obj, None)
        props.pop(obj, None)
        effects.modified.discard(obj)
        modified_edge_endpoints.pop(obj, None)

    def drop_edge(edge: ObjectId) -> None:
        by_node, by_member = removal_indexes()
        endpoints = rho.pop(edge)
        for endpoint in endpoints:
            bucket = by_node.get(endpoint)
            if bucket is not None:
                bucket.discard(edge)
        if edge in effects.added_edges:
            del effects.added_edges[edge]
        else:
            effects.removed_edges[edge] = endpoints
        drop_object_annotations(edge)
        for pid in sorted(by_member.get(edge, ()), key=str):
            if pid in paths:
                drop_path(pid)

    def drop_path(pid: ObjectId) -> None:
        _, by_member = removal_indexes()
        for member in set(paths[pid]):
            bucket = by_member.get(member)
            if bucket is not None:
                bucket.discard(pid)
        del paths[pid]
        effects.removed_paths.add(pid)
        drop_object_annotations(pid)

    for op in delta.ops:
        kind = op[0]
        if kind == "add_node":
            _, node_id, node_labels, node_props = op
            if known(node_id):
                raise DeltaError(
                    f"add_node: identifier {node_id!r} already exists"
                )
            nodes.add(node_id)
            effects.added_nodes.add(node_id)
            if node_labels:
                labels[node_id] = frozenset(node_labels)
            normalized = _normalize_props(node_props)
            if normalized:
                props[node_id] = normalized
        elif kind == "remove_node":
            _, node_id = op
            if node_id not in nodes:
                raise DeltaError(f"remove_node: unknown node {node_id!r}")
            by_node, by_member = removal_indexes()
            for edge in sorted(by_node.pop(node_id, ()), key=str):
                if edge in rho:
                    drop_edge(edge)
            for pid in sorted(by_member.get(node_id, ()), key=str):
                if pid in paths:
                    drop_path(pid)
            nodes.remove(node_id)
            if node_id in effects.added_nodes:
                effects.added_nodes.remove(node_id)
            else:
                effects.removed_nodes.add(node_id)
            drop_object_annotations(node_id)
        elif kind == "add_edge":
            _, edge_id, source, target, edge_labels, edge_props = op
            if known(edge_id):
                raise DeltaError(
                    f"add_edge: identifier {edge_id!r} already exists"
                )
            if source not in nodes or target not in nodes:
                raise DeltaError(
                    f"add_edge: endpoints must be existing nodes: "
                    f"{(source, target)!r}"
                )
            rho[edge_id] = (source, target)
            if incident is not None:
                incident.setdefault(source, set()).add(edge_id)
                incident.setdefault(target, set()).add(edge_id)
            effects.added_edges[edge_id] = (source, target)
            if edge_labels:
                labels[edge_id] = frozenset(edge_labels)
            normalized = _normalize_props(edge_props)
            if normalized:
                props[edge_id] = normalized
        elif kind == "remove_edge":
            _, edge_id = op
            if edge_id not in rho:
                raise DeltaError(f"remove_edge: unknown edge {edge_id!r}")
            drop_edge(edge_id)
        elif kind == "add_label":
            _, obj, label = op
            if not known(obj):
                raise DeltaError(f"add_label: unknown identifier {obj!r}")
            labels[obj] = labels.get(obj, frozenset()) | {label}
            mark_modified(obj)
        elif kind == "remove_label":
            _, obj, label = op
            if not known(obj):
                raise DeltaError(f"remove_label: unknown identifier {obj!r}")
            current = labels.get(obj, frozenset())
            if label in current:
                remaining = current - {label}
                if remaining:
                    labels[obj] = remaining
                else:
                    labels.pop(obj, None)
            mark_modified(obj)
        elif kind == "set_property":
            _, obj, key, value = op
            if not known(obj):
                raise DeltaError(f"set_property: unknown identifier {obj!r}")
            values = as_value_set(value)
            store = props.setdefault(obj, {})
            if values:
                store[key] = values
            else:
                store.pop(key, None)
            if not store:
                props.pop(obj, None)
            mark_modified(obj)
        elif kind == "remove_property":
            _, obj, key = op
            if not known(obj):
                raise DeltaError(
                    f"remove_property: unknown identifier {obj!r}"
                )
            store = props.get(obj)
            if store is not None:
                store.pop(key, None)
                if not store:
                    props.pop(obj, None)
            mark_modified(obj)
        else:  # pragma: no cover - builder methods are the only writers
            raise DeltaError(f"unknown delta operation: {kind!r}")

    props = {obj: mapping for obj, mapping in props.items() if mapping}
    effects._finalize(modified_edge_endpoints)
    new_graph = PathPropertyGraph._assemble_normalized(
        frozenset(nodes), rho, paths, labels, props, name=graph.name
    )
    return new_graph, effects


def _normalize_props(mapping: Mapping[str, Any]) -> Dict[str, ValueSet]:
    normalized: Dict[str, ValueSet] = {}
    for key, value in mapping.items():
        values = as_value_set(value)
        if values:
            normalized[key] = values
    return normalized
