"""A mutable builder for :class:`~repro.model.graph.PathPropertyGraph`.

The graph class itself is immutable (queries produce new graphs); this
builder is the single mutation point used by applications, the datasets
package and the CONSTRUCT evaluator.

Example
-------
>>> from repro.model.builder import GraphBuilder
>>> b = GraphBuilder()
>>> alice = b.add_node(labels=["Person"], properties={"name": "Alice"})
>>> bob = b.add_node(labels=["Person"], properties={"name": "Bob"})
>>> e = b.add_edge(alice, bob, labels=["knows"])
>>> g = b.build()
>>> g.has_label(alice, "Person")
True
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import GraphModelError
from .graph import ObjectId, PathPropertyGraph
from .values import as_value_set

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates nodes, edges and stored paths, then freezes into a PPG."""

    def __init__(self, name: str = "") -> None:
        self._name = name
        self._nodes: List[ObjectId] = []
        self._node_set: set = set()
        self._edges: Dict[ObjectId, Tuple[ObjectId, ObjectId]] = {}
        self._paths: Dict[ObjectId, Tuple[ObjectId, ...]] = {}
        self._labels: Dict[ObjectId, set] = {}
        self._props: Dict[ObjectId, Dict[str, frozenset]] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    def _fresh_id(self, prefix: str) -> str:
        while True:
            self._counter += 1
            candidate = f"{prefix}{self._counter}"
            if (
                candidate not in self._node_set
                and candidate not in self._edges
                and candidate not in self._paths
            ):
                return candidate

    def _register_labels(self, obj: ObjectId, labels: Iterable[str]) -> None:
        if labels:
            self._labels.setdefault(obj, set()).update(labels)

    def _register_props(self, obj: ObjectId, properties: Mapping[str, Any]) -> None:
        if not properties:
            return
        store = self._props.setdefault(obj, {})
        for key, value in properties.items():
            values = as_value_set(value)
            if values:
                store[key] = store.get(key, frozenset()) | values

    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: Optional[ObjectId] = None,
        labels: Iterable[str] = (),
        properties: Optional[Mapping[str, Any]] = None,
        **prop_kwargs: Any,
    ) -> ObjectId:
        """Add a node and return its identifier.

        ``properties`` and keyword arguments are merged; values may be
        scalars or collections (multi-valued properties).
        """
        if node_id is None:
            node_id = self._fresh_id("n")
        if node_id in self._edges or node_id in self._paths:
            raise GraphModelError(f"identifier {node_id!r} already used by an edge/path")
        if node_id not in self._node_set:
            self._node_set.add(node_id)
            self._nodes.append(node_id)
        self._register_labels(node_id, labels)
        merged = dict(properties or {})
        merged.update(prop_kwargs)
        self._register_props(node_id, merged)
        return node_id

    def add_edge(
        self,
        source: ObjectId,
        target: ObjectId,
        edge_id: Optional[ObjectId] = None,
        labels: Iterable[str] = (),
        properties: Optional[Mapping[str, Any]] = None,
        **prop_kwargs: Any,
    ) -> ObjectId:
        """Add an edge ``source -> target`` and return its identifier.

        Endpoints must have been added already; multiple parallel edges
        between the same endpoints are allowed (Definition 2.1).
        """
        if source not in self._node_set or target not in self._node_set:
            raise GraphModelError(
                f"edge endpoints must be existing nodes: {(source, target)!r}"
            )
        if edge_id is None:
            edge_id = self._fresh_id("e")
        if edge_id in self._node_set or edge_id in self._paths:
            raise GraphModelError(f"identifier {edge_id!r} already used by a node/path")
        if edge_id in self._edges and self._edges[edge_id] != (source, target):
            raise GraphModelError(
                f"edge {edge_id!r} re-added with different endpoints"
            )
        self._edges[edge_id] = (source, target)
        self._register_labels(edge_id, labels)
        merged = dict(properties or {})
        merged.update(prop_kwargs)
        self._register_props(edge_id, merged)
        return edge_id

    def add_path(
        self,
        sequence: Sequence[ObjectId],
        path_id: Optional[ObjectId] = None,
        labels: Iterable[str] = (),
        properties: Optional[Mapping[str, Any]] = None,
        **prop_kwargs: Any,
    ) -> ObjectId:
        """Add a stored path over existing nodes/edges and return its id.

        *sequence* is the alternating ``[a1, e1, a2, ..., en, an+1]`` list;
        adjacency is validated when the graph is built.
        """
        if path_id is None:
            path_id = self._fresh_id("p")
        if path_id in self._node_set or path_id in self._edges:
            raise GraphModelError(f"identifier {path_id!r} already used by a node/edge")
        self._paths[path_id] = tuple(sequence)
        self._register_labels(path_id, labels)
        merged = dict(properties or {})
        merged.update(prop_kwargs)
        self._register_props(path_id, merged)
        return path_id

    # ------------------------------------------------------------------
    def set_label(self, obj: ObjectId, *labels: str) -> None:
        """Attach additional labels to an existing object."""
        if not self._known(obj):
            raise GraphModelError(f"unknown identifier: {obj!r}")
        self._register_labels(obj, labels)

    def set_property(self, obj: ObjectId, key: str, value: Any) -> None:
        """Replace the value set of one property of an existing object."""
        if not self._known(obj):
            raise GraphModelError(f"unknown identifier: {obj!r}")
        values = as_value_set(value)
        store = self._props.setdefault(obj, {})
        if values:
            store[key] = values
        else:
            store.pop(key, None)

    def merge_graph(self, graph: PathPropertyGraph) -> None:
        """Copy every object of *graph* into the builder (identity-preserving)."""
        for node in graph.nodes:
            self.add_node(node)
        for edge in graph.edges:
            src, dst = graph.endpoints(edge)
            self.add_edge(src, dst, edge_id=edge)
        for pid in graph.paths:
            self.add_path(graph.path_sequence(pid), path_id=pid)
        for obj in graph.objects():
            self._register_labels(obj, graph.labels(obj))
            self._register_props(obj, graph.properties(obj))

    def _known(self, obj: ObjectId) -> bool:
        return obj in self._node_set or obj in self._edges or obj in self._paths

    def __contains__(self, obj: ObjectId) -> bool:
        return self._known(obj)

    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> PathPropertyGraph:
        """Freeze the builder into an immutable, validated PPG."""
        return PathPropertyGraph(
            nodes=self._nodes,
            edges=self._edges,
            paths=self._paths,
            labels={obj: frozenset(lbls) for obj, lbls in self._labels.items()},
            properties=self._props,
            name=self._name,
            validate=validate,
        )
