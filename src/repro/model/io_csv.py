"""CSV import/export for Path Property Graphs.

Graph datasets in the wild (including the official LDBC SNB generator's
output) ship as node/edge CSV files; this module bridges them into the
PPG model:

* :func:`load_graph_csv` reads a node file (``id``, ``labels``, property
  columns) and an edge file (``id``, ``source``, ``target``, ``labels``,
  property columns) — labels are ``;``-separated, multi-valued property
  cells too;
* :func:`dump_graph_csv` writes the same format back (stored paths,
  which CSV cannot express, round-trip through the JSON format instead);
* :func:`load_table_csv` reads a plain CSV into a
  :class:`~repro.table.Table` for the Section 5 tabular extensions.

Cells are type-inferred: integers, floats, booleans (``true``/``false``)
and ISO dates are recognized; everything else stays a string. Empty
cells mean "property absent".
"""

from __future__ import annotations

import csv
import io
from typing import Any, Dict, IO, List, Optional, Union

from ..errors import GraphModelError
from ..table import Table
from .builder import GraphBuilder
from .graph import PathPropertyGraph
from .values import Date

__all__ = [
    "load_graph_csv",
    "dump_graph_csv",
    "load_table_csv",
    "dump_table_csv",
    "parse_cell",
    "format_cell",
]

_RESERVED_NODE = ("id", "labels")
_RESERVED_EDGE = ("id", "source", "target", "labels")
_MULTI_SEP = ";"


def parse_cell(text: str) -> Optional[Any]:
    """Infer a scalar (or multi-valued set) from a CSV cell."""
    if text == "":
        return None
    if _MULTI_SEP in text:
        values = [parse_cell(part) for part in text.split(_MULTI_SEP)]
        return frozenset(v for v in values if v is not None)
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    try:
        return Date.parse(text)
    except ValueError:
        pass
    return text


def format_cell(value: Any) -> str:
    """Render a scalar or value set back into a CSV cell."""
    if value is None:
        return ""
    if isinstance(value, frozenset):
        return _MULTI_SEP.join(
            sorted(format_cell(v) for v in value)
        )
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _open(source: Union[str, IO[str]], mode: str = "r"):
    if isinstance(source, str):
        return open(source, mode, encoding="utf-8", newline="")
    return None


def _rows(source: Union[str, IO[str]]) -> List[Dict[str, str]]:
    handle = _open(source)
    try:
        reader = csv.DictReader(handle if handle is not None else source)
        return [dict(row) for row in reader]
    finally:
        if handle is not None:
            handle.close()


def load_graph_csv(
    nodes: Union[str, IO[str]],
    edges: Optional[Union[str, IO[str]]] = None,
    name: str = "",
) -> PathPropertyGraph:
    """Build a PPG from node/edge CSV files (paths or file objects)."""
    builder = GraphBuilder(name=name)
    for row in _rows(nodes):
        if "id" not in row or row["id"] in (None, ""):
            raise GraphModelError("node CSV rows need a non-empty 'id'")
        labels = [
            label for label in (row.get("labels") or "").split(_MULTI_SEP)
            if label
        ]
        properties = {
            key: parse_cell(value or "")
            for key, value in row.items()
            if key not in _RESERVED_NODE and value not in (None, "")
        }
        builder.add_node(row["id"], labels=labels, properties=properties)
    if edges is not None:
        for row in _rows(edges):
            for column in ("source", "target"):
                if row.get(column) in (None, ""):
                    raise GraphModelError(
                        f"edge CSV rows need a non-empty {column!r}"
                    )
            labels = [
                label for label in (row.get("labels") or "").split(_MULTI_SEP)
                if label
            ]
            properties = {
                key: parse_cell(value or "")
                for key, value in row.items()
                if key not in _RESERVED_EDGE and value not in (None, "")
            }
            builder.add_edge(
                row["source"],
                row["target"],
                edge_id=row.get("id") or None,
                labels=labels,
                properties=properties,
            )
    return builder.build()


def dump_graph_csv(
    graph: PathPropertyGraph,
    nodes: Union[str, IO[str]],
    edges: Union[str, IO[str]],
) -> None:
    """Write *graph* as node/edge CSVs (stored paths are not representable).

    Raises :class:`~repro.errors.GraphModelError` if the graph has stored
    paths — use the JSON format for full fidelity.
    """
    if graph.paths:
        raise GraphModelError(
            "CSV cannot express stored paths; use repro.model.io (JSON)"
        )
    node_keys = sorted(
        {key for node in graph.nodes for key in graph.properties(node)}
    )
    edge_keys = sorted(
        {key for edge in graph.edges for key in graph.properties(edge)}
    )

    def write(target, header, rows):
        handle = _open(target, "w")
        out = handle if handle is not None else target
        try:
            writer = csv.writer(out)
            writer.writerow(header)
            writer.writerows(rows)
        finally:
            if handle is not None:
                handle.close()

    node_rows = []
    for node in sorted(graph.nodes, key=str):
        row = [str(node), _MULTI_SEP.join(sorted(graph.labels(node)))]
        for key in node_keys:
            row.append(format_cell(graph.property(node, key) or None))
        node_rows.append(row)
    write(nodes, list(_RESERVED_NODE) + node_keys, node_rows)

    edge_rows = []
    for edge in sorted(graph.edges, key=str):
        src, dst = graph.endpoints(edge)
        row = [str(edge), str(src), str(dst),
               _MULTI_SEP.join(sorted(graph.labels(edge)))]
        for key in edge_keys:
            row.append(format_cell(graph.property(edge, key) or None))
        edge_rows.append(row)
    write(edges, list(_RESERVED_EDGE) + edge_keys, edge_rows)


def load_table_csv(source: Union[str, IO[str]], name: str = "") -> Table:
    """Read a plain CSV into a Table (cells type-inferred)."""
    records = _rows(source)
    if not records:
        return Table((), (), name=name)
    columns = list(records[0].keys())
    rows = [
        tuple(parse_cell(record.get(column) or "") for column in columns)
        for record in records
    ]
    return Table(columns, rows, name=name)


def dump_table_csv(table: Table, target: Union[str, IO[str]]) -> None:
    """Write a Table as CSV."""
    handle = _open(target, "w")
    out = handle if handle is not None else target
    try:
        writer = csv.writer(out)
        writer.writerow(table.columns)
        for row in table.rows:
            writer.writerow([format_cell(value) for value in row])
    finally:
        if handle is not None:
            handle.close()
