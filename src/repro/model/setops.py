"""Full-graph set operations — Appendix A.5 of the paper.

UNION, INTERSECT and MINUS are defined over whole PPGs in terms of object
*identity*. Union and intersection require the operands to be *consistent*
(shared edges agree on endpoints, shared paths on sequences); inconsistent
operands yield the empty graph, exactly as A.5 prescribes. Difference keeps
only edges whose endpoints survive and paths whose constituents survive, so
the result is always a well-formed PPG.
"""

from __future__ import annotations

from typing import Dict

from ..errors import GraphModelError
from .graph import ObjectId, PathPropertyGraph, path_edges, path_nodes

__all__ = ["graph_union", "graph_intersect", "graph_difference", "empty_graph"]


def empty_graph(name: str = "") -> PathPropertyGraph:
    """The empty PPG (used for inconsistent unions and false WHENs)."""
    return PathPropertyGraph(name=name)


def _is_bare_empty(graph: PathPropertyGraph) -> bool:
    return graph.is_empty() and not graph.paths


def graph_union(
    left: PathPropertyGraph, right: PathPropertyGraph
) -> PathPropertyGraph:
    """``G1 UNION G2`` per A.5: union of components, labels and properties.

    Shared identifiers merge their label sets and property value sets.
    Returns the empty graph when the operands are inconsistent. Unions
    with an empty operand (every CONSTRUCT starts from one) short-circuit
    to the other operand; the general case merges the internal stores and
    assembles the result without re-validation — both operands are valid
    graphs, and a consistent union of valid graphs is valid.
    """
    if _is_bare_empty(left):
        return right if not right.name else right.with_name("")
    if _is_bare_empty(right):
        return left if not left.name else left.with_name("")
    if not left.consistent_with(right):
        return empty_graph()
    # Definition 2.1 disjointness across the operands (consistency only
    # covers shared edges/paths agreeing): an identifier must not be a
    # node in one operand and an edge/path in the other, or the union's
    # identifier sets would overlap. The validating constructor used to
    # catch this; the assembling path checks it explicitly.
    if (
        left.nodes & (right.edges | right.paths)
        or left.edges & (right.nodes | right.paths)
        or left.paths & (right.nodes | right.edges)
    ):
        raise GraphModelError(
            "node/edge/path identifier sets must be disjoint"
        )
    edges: Dict[ObjectId, tuple] = dict(left._rho)
    edges.update(right._rho)
    paths: Dict[ObjectId, tuple] = dict(left._delta)
    paths.update(right._delta)
    labels: Dict[ObjectId, frozenset] = dict(left._labels)
    for obj, obj_labels in right._labels.items():
        current = labels.get(obj)
        labels[obj] = obj_labels if current is None else current | obj_labels
    props: Dict[ObjectId, Dict[str, frozenset]] = {
        obj: dict(mapping) for obj, mapping in left._props.items()
    }
    for obj, mapping in right._props.items():
        store = props.get(obj)
        if store is None:
            props[obj] = dict(mapping)
        else:
            for key, values in mapping.items():
                current = store.get(key)
                store[key] = values if current is None else current | values
    return PathPropertyGraph._assemble_normalized(
        left.nodes | right.nodes, edges, paths, labels, props
    )


def graph_intersect(
    left: PathPropertyGraph, right: PathPropertyGraph
) -> PathPropertyGraph:
    """``G1 INTERSECT G2`` per A.5: intersection of identifiers.

    Labels and property value sets are intersected pointwise. Returns the
    empty graph when the operands are inconsistent.
    """
    if not left.consistent_with(right):
        return empty_graph()
    nodes = left.nodes & right.nodes
    edges = {e: left.endpoints(e) for e in left.edges & right.edges}
    paths = {p: left.path_sequence(p) for p in left.paths & right.paths}
    shared = nodes | set(edges) | set(paths)
    labels: Dict[ObjectId, frozenset] = {}
    props: Dict[ObjectId, Dict[str, frozenset]] = {}
    for obj in shared:
        both = left.labels(obj) & right.labels(obj)
        if both:
            labels[obj] = both
        left_props = left.properties(obj)
        right_props = right.properties(obj)
        for key in set(left_props) & set(right_props):
            values = left_props[key] & right_props[key]
            if values:
                props.setdefault(obj, {})[key] = values
    return PathPropertyGraph._assemble_normalized(
        nodes, edges, paths, labels, props
    )


def graph_difference(
    left: PathPropertyGraph, right: PathPropertyGraph
) -> PathPropertyGraph:
    """``G1 MINUS G2`` per A.5.

    Nodes of the right operand are removed; edges survive only if both
    endpoints survive; paths survive only if all their nodes and edges do.
    Labels/properties restrict to the surviving objects.
    """
    nodes = left.nodes - right.nodes
    edges = {
        e: left.endpoints(e)
        for e in left.edges - right.edges
        if left.endpoints(e)[0] in nodes and left.endpoints(e)[1] in nodes
    }
    paths = {}
    for pid in left.paths - right.paths:
        seq = left.path_sequence(pid)
        if all(n in nodes for n in path_nodes(seq)) and all(
            e in edges for e in path_edges(seq)
        ):
            paths[pid] = seq
    survivors = nodes | set(edges) | set(paths)
    labels = {
        obj: left.labels(obj) for obj in survivors if left.labels(obj)
    }
    props = {
        obj: left.properties(obj) for obj in survivors if left.properties(obj)
    }
    return PathPropertyGraph._assemble_normalized(
        nodes, edges, paths, labels, props
    )
