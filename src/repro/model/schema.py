"""Graph schemas and the LDBC SNB schema of Figure 3.

G-CORE itself is schema-optional; the paper's examples run over the LDBC
Social Network Benchmark whose (simplified) schema is Figure 3. This module
provides a lightweight structural schema — which node labels exist, which
edge labels connect which node labels, and which properties each label may
carry — plus a validator used by the dataset generator's tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..errors import ValidationError
from .graph import PathPropertyGraph

__all__ = ["EdgeType", "GraphSchema", "snb_schema"]


@dataclass(frozen=True)
class EdgeType:
    """An edge label with its allowed (source-label, target-label) pairs."""

    label: str
    connections: FrozenSet[Tuple[str, str]]
    properties: FrozenSet[str] = frozenset()


@dataclass
class GraphSchema:
    """A structural schema for property graphs.

    ``node_properties`` maps node label -> allowed property keys; edges are
    described by :class:`EdgeType`. Objects with multiple labels must
    satisfy at least one of their labels' declarations.
    """

    node_properties: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    edge_types: Dict[str, EdgeType] = field(default_factory=dict)

    def node_labels(self) -> FrozenSet[str]:
        """All declared node labels."""
        return frozenset(self.node_properties)

    def edge_labels(self) -> FrozenSet[str]:
        """All declared edge labels."""
        return frozenset(self.edge_types)

    # ------------------------------------------------------------------
    def _node_problems(self, graph: PathPropertyGraph, node) -> List[str]:
        problems: List[str] = []
        labels = graph.labels(node) & self.node_labels()
        if not labels:
            problems.append(f"node {node!r} has no declared label: "
                            f"{sorted(graph.labels(node))}")
            return problems
        allowed: Set[str] = set()
        for label in labels:
            allowed |= self.node_properties[label]
        for key in graph.properties(node):
            if key not in allowed:
                problems.append(
                    f"node {node!r} ({sorted(labels)}) has undeclared "
                    f"property {key!r}"
                )
        return problems

    def _edge_problems(self, graph: PathPropertyGraph, edge) -> List[str]:
        problems: List[str] = []
        labels = graph.labels(edge) & self.edge_labels()
        if not labels:
            problems.append(f"edge {edge!r} has no declared label: "
                            f"{sorted(graph.labels(edge))}")
            return problems
        src, dst = graph.endpoints(edge)
        src_labels = graph.labels(src)
        dst_labels = graph.labels(dst)
        for label in labels:
            edge_type = self.edge_types[label]
            ok = any(
                s in src_labels and t in dst_labels
                for s, t in edge_type.connections
            )
            if not ok:
                problems.append(
                    f"edge {edge!r}:{label} connects "
                    f"{sorted(src_labels)} -> {sorted(dst_labels)}, "
                    f"not allowed by schema"
                )
            for key in graph.properties(edge):
                if key not in edge_type.properties:
                    problems.append(
                        f"edge {edge!r}:{label} has undeclared "
                        f"property {key!r}"
                    )
        return problems

    def validate(self, graph: PathPropertyGraph, strict: bool = True) -> List[str]:
        """Check *graph* against the schema.

        Returns the list of violation messages. With ``strict=True`` a
        non-empty list raises :class:`~repro.errors.ValidationError`.
        Stored paths are not constrained by schemas (they are query
        artifacts, not base data).
        """
        problems: List[str] = []
        for node in graph.nodes:
            problems.extend(self._node_problems(graph, node))
        for edge in graph.edges:
            problems.extend(self._edge_problems(graph, edge))
        if strict and problems:
            raise ValidationError("; ".join(problems))
        return problems

    def validate_objects(
        self,
        graph: PathPropertyGraph,
        objects,
        strict: bool = True,
    ) -> List[str]:
        """Check only *objects* of *graph* against the schema.

        The scoped counterpart of :meth:`validate` used by
        :meth:`GCoreEngine.apply_update <repro.engine.GCoreEngine.apply_update>`:
        after a :class:`~repro.model.delta.GraphDelta` only the added and
        modified objects need re-checking, keeping validation O(|delta|)
        instead of O(N + E) per update. Identifiers not present in the
        graph (e.g. removed by the same delta) are skipped; stored paths
        are not constrained by schemas.
        """
        problems: List[str] = []
        for obj in sorted(objects, key=str):
            if obj in graph.nodes:
                problems.extend(self._node_problems(graph, obj))
            elif obj in graph.edges:
                problems.extend(self._edge_problems(graph, obj))
        if strict and problems:
            raise ValidationError("; ".join(problems))
        return problems


def snb_schema() -> GraphSchema:
    """The simplified LDBC SNB schema of Figure 3.

    Node labels: Person (also Manager), Tag, City, Country, Company, Post,
    Comment. Edge labels: knows, hasInterest, isLocatedIn, worksAt,
    has_creator, reply_of, isPartOf.
    """
    message_sources = ("Post", "Comment")
    return GraphSchema(
        node_properties={
            "Person": frozenset({"firstName", "lastName", "employer", "since"}),
            "Manager": frozenset({"firstName", "lastName", "employer"}),
            "Tag": frozenset({"name"}),
            "City": frozenset({"name"}),
            "Country": frozenset({"name"}),
            "Company": frozenset({"name"}),
            "Post": frozenset({"content", "creationDate", "language"}),
            "Comment": frozenset({"content", "creationDate"}),
        },
        edge_types={
            "knows": EdgeType(
                "knows",
                frozenset({("Person", "Person")}),
                frozenset({"since", "nr_messages"}),
            ),
            "hasInterest": EdgeType(
                "hasInterest", frozenset({("Person", "Tag")})
            ),
            "isLocatedIn": EdgeType(
                "isLocatedIn",
                frozenset({("Person", "City"), ("Company", "City")}),
            ),
            "worksAt": EdgeType(
                "worksAt", frozenset({("Person", "Company")}), frozenset({"since"})
            ),
            "has_creator": EdgeType(
                "has_creator",
                frozenset((m, "Person") for m in message_sources),
            ),
            "reply_of": EdgeType(
                "reply_of",
                frozenset(
                    (m1, m2) for m1 in ("Comment",) for m2 in message_sources
                ),
            ),
            "isPartOf": EdgeType(
                "isPartOf", frozenset({("City", "Country")})
            ),
        },
    )
