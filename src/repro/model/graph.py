"""The Path Property Graph (PPG) — Definition 2.1 of the paper.

A PPG is a tuple ``G = (N, E, P, rho, delta, lambda, sigma)`` where

* ``N``, ``E``, ``P`` are pairwise-disjoint finite sets of node, edge and
  path identifiers,
* ``rho : E -> N x N`` assigns endpoints to edges,
* ``delta : P -> FLIST(N u E)`` assigns to each stored path an alternating
  sequence ``[a1, e1, a2, ..., an, en, an+1]`` of adjacent nodes and edges,
* ``lambda`` assigns a finite set of labels to every node, edge and path,
* ``sigma`` assigns a finite set of literal values to every
  (object, property-key) pair.

Instances of :class:`PathPropertyGraph` are immutable once constructed:
all query operations produce *new* graphs that may share identifiers with
their inputs — exactly the identity-respecting composability G-CORE
builds on (Section 3, "Construction that respects identities").
Use :class:`repro.model.builder.GraphBuilder` to assemble graphs.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import GraphModelError
from .values import ValueSet, as_value_set, format_value_set

__all__ = ["ObjectId", "PathPropertyGraph", "path_nodes", "path_edges"]

ObjectId = Hashable
PropertyMap = Mapping[str, ValueSet]


def path_nodes(sequence: Sequence[ObjectId]) -> Tuple[ObjectId, ...]:
    """The ``nodes(p)`` list of a path sequence (positions 0, 2, 4, ...)."""
    return tuple(sequence[0::2])


def path_edges(sequence: Sequence[ObjectId]) -> Tuple[ObjectId, ...]:
    """The ``edges(p)`` list of a path sequence (positions 1, 3, 5, ...)."""
    return tuple(sequence[1::2])


class PathPropertyGraph:
    """An immutable Path Property Graph.

    Parameters mirror Definition 2.1. ``labels`` and ``properties`` may
    mention only identifiers present in ``nodes | edges | paths``; property
    values are normalized to frozensets via
    :func:`repro.model.values.as_value_set`.
    """

    __slots__ = (
        "_nodes",
        "_edges",
        "_paths",
        "_rho",
        "_delta",
        "_labels",
        "_props",
        "_name",
        "_out_index",
        "_in_index",
        "_node_label_index",
        "_edge_label_index",
        "_path_label_index",
        "_adjacency_cache",
        "_statistics",
    )

    def __init__(
        self,
        nodes: Iterable[ObjectId] = (),
        edges: Mapping[ObjectId, Tuple[ObjectId, ObjectId]] = None,
        paths: Mapping[ObjectId, Sequence[ObjectId]] = None,
        labels: Mapping[ObjectId, Iterable[str]] = None,
        properties: Mapping[ObjectId, Mapping[str, Any]] = None,
        name: str = "",
        validate: bool = True,
    ) -> None:
        self._nodes: FrozenSet[ObjectId] = frozenset(nodes)
        self._rho: Dict[ObjectId, Tuple[ObjectId, ObjectId]] = dict(edges or {})
        self._edges: FrozenSet[ObjectId] = frozenset(self._rho)
        self._delta: Dict[ObjectId, Tuple[ObjectId, ...]] = {
            pid: tuple(seq) for pid, seq in (paths or {}).items()
        }
        self._paths: FrozenSet[ObjectId] = frozenset(self._delta)
        self._labels: Dict[ObjectId, FrozenSet[str]] = {
            obj: frozenset(lbls) for obj, lbls in (labels or {}).items() if lbls
        }
        self._props: Dict[ObjectId, Dict[str, ValueSet]] = {}
        for obj, mapping in (properties or {}).items():
            normalized = {}
            for key, value in mapping.items():
                value_set = as_value_set(value)
                if value_set:
                    normalized[key] = value_set
            if normalized:
                self._props[obj] = normalized
        self._name = name
        self._out_index: Optional[Dict[ObjectId, Tuple[ObjectId, ...]]] = None
        self._in_index: Optional[Dict[ObjectId, Tuple[ObjectId, ...]]] = None
        self._node_label_index: Optional[Dict[str, FrozenSet[ObjectId]]] = None
        self._edge_label_index: Optional[Dict[str, FrozenSet[ObjectId]]] = None
        self._path_label_index: Optional[Dict[str, FrozenSet[ObjectId]]] = None
        self._adjacency_cache: Dict[
            Tuple[str, Optional[str]], Dict[ObjectId, Tuple[ObjectId, ...]]
        ] = {}
        self._statistics = None
        if validate:
            self._check_invariants()

    @classmethod
    def _assemble_normalized(
        cls,
        nodes: FrozenSet[ObjectId],
        edges: Dict[ObjectId, Tuple[ObjectId, ObjectId]],
        paths: Dict[ObjectId, Tuple[ObjectId, ...]],
        labels: Dict[ObjectId, FrozenSet[str]],
        props: Dict[ObjectId, Dict[str, ValueSet]],
        name: str = "",
    ) -> "PathPropertyGraph":
        """Assemble a graph from already-normalized, already-valid parts.

        Used by the set operations in :mod:`repro.model.setops`, whose
        inputs are existing (hence valid) graphs: unions/intersections/
        differences of valid graphs cannot violate Definition 2.1, and
        their label/property stores are already frozensets — skipping
        re-validation and re-normalization keeps CONSTRUCT's output
        assembly off the hot path. The argument dicts are adopted.
        """
        graph = cls.__new__(cls)
        graph._nodes = frozenset(nodes)
        graph._rho = edges
        graph._edges = frozenset(edges)
        graph._delta = paths
        graph._paths = frozenset(paths)
        graph._labels = {obj: lbls for obj, lbls in labels.items() if lbls}
        graph._props = props
        graph._name = name
        graph._out_index = None
        graph._in_index = None
        graph._node_label_index = None
        graph._edge_label_index = None
        graph._path_label_index = None
        graph._adjacency_cache = {}
        graph._statistics = None
        return graph

    # ------------------------------------------------------------------
    # Invariants (Definition 2.1)
    # ------------------------------------------------------------------
    def _check_invariants(self) -> None:
        if self._nodes & self._edges or self._nodes & self._paths or (
            self._edges & self._paths
        ):
            raise GraphModelError("node/edge/path identifier sets must be disjoint")
        for edge, (src, dst) in self._rho.items():
            if src not in self._nodes or dst not in self._nodes:
                raise GraphModelError(
                    f"edge {edge!r} has endpoint outside the node set: {(src, dst)!r}"
                )
        for pid, seq in self._delta.items():
            self._check_path_sequence(pid, seq)
        known = self._nodes | self._edges | self._paths
        for obj in self._labels:
            if obj not in known:
                raise GraphModelError(f"label assigned to unknown identifier {obj!r}")
        for obj in self._props:
            if obj not in known:
                raise GraphModelError(
                    f"property assigned to unknown identifier {obj!r}"
                )

    def _check_path_sequence(self, pid: ObjectId, seq: Tuple[ObjectId, ...]) -> None:
        if len(seq) % 2 == 0 or not seq:
            raise GraphModelError(
                f"path {pid!r} must alternate nodes and edges and start/end "
                f"with a node; got length {len(seq)}"
            )
        for position, obj in enumerate(seq):
            if position % 2 == 0:
                if obj not in self._nodes:
                    raise GraphModelError(
                        f"path {pid!r} position {position}: {obj!r} is not a node"
                    )
            else:
                if obj not in self._edges:
                    raise GraphModelError(
                        f"path {pid!r} position {position}: {obj!r} is not an edge"
                    )
        for j in range(1, len(seq), 2):
            edge = seq[j]
            before, after = seq[j - 1], seq[j + 1]
            src, dst = self._rho[edge]
            if (src, dst) != (before, after) and (src, dst) != (after, before):
                raise GraphModelError(
                    f"path {pid!r}: edge {edge!r} does not connect "
                    f"{before!r} and {after!r}"
                )

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The catalog name this graph was registered under (may be '')."""
        return self._name

    @property
    def nodes(self) -> FrozenSet[ObjectId]:
        """The node identifier set ``N``."""
        return self._nodes

    @property
    def edges(self) -> FrozenSet[ObjectId]:
        """The edge identifier set ``E``."""
        return self._edges

    @property
    def paths(self) -> FrozenSet[ObjectId]:
        """The stored-path identifier set ``P``."""
        return self._paths

    @property
    def rho(self) -> Mapping[ObjectId, Tuple[ObjectId, ObjectId]]:
        """The endpoint assignment ``rho`` as a read-only mapping."""
        return dict(self._rho)

    @property
    def delta(self) -> Mapping[ObjectId, Tuple[ObjectId, ...]]:
        """The path assignment ``delta`` as a read-only mapping."""
        return dict(self._delta)

    def endpoints(self, edge: ObjectId) -> Tuple[ObjectId, ObjectId]:
        """``rho(edge)`` — the (source, target) pair of an edge."""
        try:
            return self._rho[edge]
        except KeyError:
            raise GraphModelError(f"unknown edge: {edge!r}") from None

    def source(self, edge: ObjectId) -> ObjectId:
        """The starting node of *edge*."""
        return self.endpoints(edge)[0]

    def target(self, edge: ObjectId) -> ObjectId:
        """The ending node of *edge*."""
        return self.endpoints(edge)[1]

    def path_sequence(self, path: ObjectId) -> Tuple[ObjectId, ...]:
        """``delta(path)`` — the alternating node/edge sequence."""
        try:
            return self._delta[path]
        except KeyError:
            raise GraphModelError(f"unknown path: {path!r}") from None

    def path_nodes(self, path: ObjectId) -> Tuple[ObjectId, ...]:
        """``nodes(path)`` as defined in Section 2."""
        return path_nodes(self.path_sequence(path))

    def path_edges(self, path: ObjectId) -> Tuple[ObjectId, ...]:
        """``edges(path)`` as defined in Section 2."""
        return path_edges(self.path_sequence(path))

    def path_length(self, path: ObjectId) -> int:
        """The number of edges of a stored path."""
        return len(self.path_edges(path))

    # ------------------------------------------------------------------
    # Labels and properties
    # ------------------------------------------------------------------
    def labels(self, obj: ObjectId) -> FrozenSet[str]:
        """``lambda(obj)`` — the (possibly empty) label set of an object."""
        return self._labels.get(obj, frozenset())

    def has_label(self, obj: ObjectId, label: str) -> bool:
        """True iff *label* is one of ``lambda(obj)``."""
        return label in self._labels.get(obj, frozenset())

    def properties(self, obj: ObjectId) -> Dict[str, ValueSet]:
        """All defined properties of *obj* as ``{key: value-set}``."""
        return dict(self._props.get(obj, {}))

    def property(self, obj: ObjectId, key: str) -> ValueSet:
        """``sigma(obj, key)``; the empty set when the property is absent."""
        return self._props.get(obj, {}).get(key, frozenset())

    def label_map(self) -> Dict[ObjectId, FrozenSet[str]]:
        """A copy of the full ``lambda`` assignment (non-empty entries)."""
        return dict(self._labels)

    def property_map(self) -> Dict[ObjectId, Dict[str, ValueSet]]:
        """A copy of the full ``sigma`` assignment (non-empty entries)."""
        return {obj: dict(props) for obj, props in self._props.items()}

    # ------------------------------------------------------------------
    # Derived indexes (built lazily; the graph is immutable)
    # ------------------------------------------------------------------
    def _build_adjacency(self) -> None:
        out_index: Dict[ObjectId, List[ObjectId]] = {n: [] for n in self._nodes}
        in_index: Dict[ObjectId, List[ObjectId]] = {n: [] for n in self._nodes}
        for edge, (src, dst) in self._rho.items():
            out_index[src].append(edge)
            in_index[dst].append(edge)
        self._out_index = {n: tuple(es) for n, es in out_index.items()}
        self._in_index = {n: tuple(es) for n, es in in_index.items()}

    def out_edges(self, node: ObjectId) -> Tuple[ObjectId, ...]:
        """Edges whose source is *node*."""
        if self._out_index is None:
            self._build_adjacency()
        return self._out_index.get(node, ())

    def in_edges(self, node: ObjectId) -> Tuple[ObjectId, ...]:
        """Edges whose target is *node*."""
        if self._in_index is None:
            self._build_adjacency()
        return self._in_index.get(node, ())

    def degree(self, node: ObjectId) -> int:
        """Total degree (in + out) of *node*."""
        return len(self.out_edges(node)) + len(self.in_edges(node))

    def out_adjacency(
        self, label: Optional[str] = None
    ) -> Dict[ObjectId, Tuple[ObjectId, ...]]:
        """Label-bucketed forward adjacency: ``{node: (edges...)}``.

        With a *label*, only edges carrying it appear; with None, all
        edges. Edge lists are sorted by identifier string, so columnar
        expansion emits candidates in the same deterministic order the
        row-at-a-time reference executor produces via per-row sorting.
        Buckets are built lazily once per (direction, label) and cached —
        the graph is immutable. Nodes without matching edges are omitted
        (probe with ``.get(node, ())``).
        """
        return self._adjacency(True, label)

    def in_adjacency(
        self, label: Optional[str] = None
    ) -> Dict[ObjectId, Tuple[ObjectId, ...]]:
        """Label-bucketed reverse adjacency: ``{node: (edges...)}``."""
        return self._adjacency(False, label)

    def _adjacency(
        self, forward: bool, label: Optional[str]
    ) -> Dict[ObjectId, Tuple[ObjectId, ...]]:
        key = ("out" if forward else "in", label)
        cached = self._adjacency_cache.get(key)
        if cached is not None:
            return cached
        if label is None:
            edges: Iterable[ObjectId] = self._edges
        else:
            edges = self.edges_with_label(label)
        buckets: Dict[ObjectId, List[ObjectId]] = {}
        for edge in edges:
            src, dst = self._rho[edge]
            endpoint = src if forward else dst
            buckets.setdefault(endpoint, []).append(edge)
        index = {
            node: tuple(sorted(bucket, key=str))
            for node, bucket in buckets.items()
        }
        self._adjacency_cache[key] = index
        return index

    def _build_label_indexes(self) -> None:
        node_idx: Dict[str, set] = {}
        edge_idx: Dict[str, set] = {}
        path_idx: Dict[str, set] = {}
        for obj, lbls in self._labels.items():
            if obj in self._nodes:
                target = node_idx
            elif obj in self._edges:
                target = edge_idx
            else:
                target = path_idx
            for label in lbls:
                target.setdefault(label, set()).add(obj)
        self._node_label_index = {l: frozenset(s) for l, s in node_idx.items()}
        self._edge_label_index = {l: frozenset(s) for l, s in edge_idx.items()}
        self._path_label_index = {l: frozenset(s) for l, s in path_idx.items()}

    def nodes_with_label(self, label: str) -> FrozenSet[ObjectId]:
        """All nodes carrying *label* (indexed)."""
        if self._node_label_index is None:
            self._build_label_indexes()
        return self._node_label_index.get(label, frozenset())

    def edges_with_label(self, label: str) -> FrozenSet[ObjectId]:
        """All edges carrying *label* (indexed)."""
        if self._edge_label_index is None:
            self._build_label_indexes()
        return self._edge_label_index.get(label, frozenset())

    def paths_with_label(self, label: str) -> FrozenSet[ObjectId]:
        """All stored paths carrying *label* (indexed)."""
        if self._path_label_index is None:
            self._build_label_indexes()
        return self._path_label_index.get(label, frozenset())

    def statistics(self):
        """Summary statistics for cost-based planning (lazily cached).

        Returns a :class:`~repro.model.statistics.GraphStatistics`; the
        graph is immutable, so the first call computes it and later calls
        are O(1). The planner consults these counts to estimate atom
        cardinalities (see :mod:`repro.eval.planner`).
        """
        if self._statistics is None:
            from .statistics import GraphStatistics  # local import: cycle

            self._statistics = GraphStatistics(self)
        return self._statistics

    def cached_statistics(self):
        """The statistics if already computed, else None (no side effect).

        The delta layer uses this to decide whether incremental
        statistics adjustment is worthwhile: a graph that never computed
        statistics keeps its lazy slot empty and pays the full build only
        if the planner ever asks.
        """
        return self._statistics

    def adopt_statistics(self, statistics) -> None:
        """Install precomputed statistics (the incremental-adjustment hook).

        Caller contract: *statistics* must describe exactly this graph —
        :meth:`GraphStatistics.apply_delta
        <repro.model.statistics.GraphStatistics.apply_delta>` results
        only.
        """
        self._statistics = statistics

    # ------------------------------------------------------------------
    # Whole-graph views
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True iff the graph has no nodes (hence no edges or paths)."""
        return not self._nodes

    def order(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    def size(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def with_name(self, name: str) -> "PathPropertyGraph":
        """A shallow copy of this graph carrying a catalog *name*."""
        clone = PathPropertyGraph.__new__(PathPropertyGraph)
        for slot in PathPropertyGraph.__slots__:
            setattr(clone, slot, getattr(self, slot))
        clone._name = name
        return clone

    def consistent_with(self, other: "PathPropertyGraph") -> bool:
        """The consistency condition of Appendix A.5.

        Two graphs are consistent when shared edges agree on endpoints and
        shared paths agree on their sequences.
        """
        for edge in self._edges & other._edges:
            if self._rho[edge] != other._rho[edge]:
                return False
        for pid in self._paths & other._paths:
            if self._delta[pid] != other._delta[pid]:
                return False
        return True

    def objects(self) -> Iterator[ObjectId]:
        """Iterate over every identifier of the graph (nodes, edges, paths)."""
        yield from self._nodes
        yield from self._edges
        yield from self._paths

    def __contains__(self, obj: ObjectId) -> bool:
        return obj in self._nodes or obj in self._edges or obj in self._paths

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathPropertyGraph):
            return NotImplemented
        return (
            self._nodes == other._nodes
            and self._rho == other._rho
            and self._delta == other._delta
            and self._labels == other._labels
            and self._props == other._props
        )

    def __hash__(self) -> int:  # identity hashing; structural eq is explicit
        return id(self)

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return (
            f"<PathPropertyGraph{label}: {len(self._nodes)} nodes, "
            f"{len(self._edges)} edges, {len(self._paths)} paths>"
        )

    def describe(self) -> str:
        """A multi-line, deterministic dump used by tests and examples."""
        lines = [repr(self)]
        for node in sorted(self._nodes, key=str):
            lines.append(f"  node {node!r} {self._format_obj(node)}")
        for edge in sorted(self._edges, key=str):
            src, dst = self._rho[edge]
            lines.append(
                f"  edge {edge!r} ({src!r})->({dst!r}) {self._format_obj(edge)}"
            )
        for pid in sorted(self._paths, key=str):
            lines.append(
                f"  path {pid!r} {list(self._delta[pid])!r} {self._format_obj(pid)}"
            )
        return "\n".join(lines)

    def _format_obj(self, obj: ObjectId) -> str:
        labels = ":".join(sorted(self.labels(obj)))
        props = ", ".join(
            f"{key}={format_value_set(values)}"
            for key, values in sorted(self.properties(obj).items())
        )
        parts = []
        if labels:
            parts.append(f":{labels}")
        if props:
            parts.append("{" + props + "}")
        return " ".join(parts)
