"""Literal values and set-valued property semantics of the PPG model.

Definition 2.1 of the paper makes the property assignment
``sigma : (N u E u P) x K -> FSET(V)`` — i.e. every property maps to a
*finite set* of literal values, and an absent property is the empty set.
Section 3 ("Dealing with Multi-Valued properties") then fixes the
comparison semantics we implement here:

* ``=`` compares value sets; a scalar stands for its singleton set, so
  ``"MIT" = {"CWI","MIT"}`` is false while ``"MIT" = {"MIT"}`` is true.
* ``IN`` tests membership of a (singleton) value in a set.
* ``SUBSET OF`` tests set containment.
* Comparisons against an absent property (the empty set) are false; a
  length test (``SIZE``) can detect absence.

Literals are Python ``bool``, ``int``, ``float``, ``str`` and
:class:`Date`. Value sets are plain ``frozenset`` instances.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, FrozenSet, Union

__all__ = [
    "Date",
    "Scalar",
    "ValueSet",
    "EMPTY_SET",
    "is_scalar",
    "as_value_set",
    "as_scalar",
    "singleton_or_none",
    "format_scalar",
    "format_value_set",
    "gcore_equals",
    "gcore_compare",
    "gcore_in",
    "gcore_subset",
    "normalize_scalar",
    "distinct_key",
    "truthy",
]


@dataclass(frozen=True, order=True)
class Date:
    """A calendar date literal.

    The paper's toy instance stores ``since = 1/12/2014``; we parse both the
    paper's day/month/year form and ISO ``YYYY-MM-DD``.
    """

    year: int
    month: int
    day: int

    _DMY = re.compile(r"^(\d{1,2})/(\d{1,2})/(\d{4})$")
    _ISO = re.compile(r"^(\d{4})-(\d{2})-(\d{2})$")

    @classmethod
    def parse(cls, text: str) -> "Date":
        """Parse a date from ``d/m/yyyy`` or ``yyyy-mm-dd`` text."""
        match = cls._DMY.match(text)
        if match:
            day, month, year = match.groups()
            return cls(int(year), int(month), int(day))
        match = cls._ISO.match(text)
        if match:
            year, month, day = match.groups()
            return cls(int(year), int(month), int(day))
        raise ValueError(f"unrecognized date literal: {text!r}")

    def __str__(self) -> str:
        return f"{self.year:04d}-{self.month:02d}-{self.day:02d}"


Scalar = Union[bool, int, float, str, Date]
ValueSet = FrozenSet[Scalar]

EMPTY_SET: ValueSet = frozenset()


def is_scalar(value: Any) -> bool:
    """Return True if *value* is a legal PPG literal."""
    return isinstance(value, (bool, int, float, str, Date))


def as_value_set(value: Any) -> ValueSet:
    """Normalize *value* into a value set.

    Scalars become singletons, ``None`` becomes the empty set, and any
    iterable of scalars becomes a frozenset. Raises ``TypeError`` for
    non-literal content so property stores never hold opaque objects.
    """
    if value is None:
        return EMPTY_SET
    if is_scalar(value):
        return frozenset({value})
    if isinstance(value, frozenset):
        for item in value:
            if not is_scalar(item):
                raise TypeError(f"non-literal value in property set: {item!r}")
        return value
    if isinstance(value, (set, list, tuple)):
        return as_value_set(frozenset(value))
    raise TypeError(f"cannot use {value!r} as a property value")


def as_scalar(value: Any) -> Any:
    """Unwrap singleton value sets to their scalar; pass through otherwise."""
    if isinstance(value, frozenset) and len(value) == 1:
        return next(iter(value))
    return value


def singleton_or_none(values: ValueSet) -> Any:
    """Return the single element of *values*, or None if not a singleton."""
    if len(values) == 1:
        return next(iter(values))
    return None


def _sort_key(value: Scalar) -> tuple:
    """A total order over heterogeneous scalars, used only for display."""
    return (type(value).__name__, str(value))


def format_scalar(value: Scalar) -> str:
    """Render a scalar the way the paper prints it (strings quoted)."""
    if isinstance(value, str):
        return f'"{value}"'
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    return str(value)


def format_value_set(values: ValueSet) -> str:
    """Render a value set; singletons print without braces, as in Section 3."""
    if not values:
        return "{}"
    if len(values) == 1:
        return format_scalar(next(iter(values)))
    inner = ", ".join(format_scalar(v) for v in sorted(values, key=_sort_key))
    return "{" + inner + "}"


def _normalize_number(value: Any) -> Any:
    """Make 1 and 1.0 compare equal without conflating bools and ints.

    Python's ``True == 1`` (and ``hash(True) == hash(1)``) would otherwise
    leak through set comparisons, so scalars are tagged with a type class.
    """
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, (int, float)):
        return ("num", float(value))
    return (type(value).__name__, value)


#: Public name of the scalar-normalization policy shared by ``=``, ``IN``,
#: ``SUBSET OF``, ordered comparisons and DISTINCT deduplication.
normalize_scalar = _normalize_number


def distinct_key(value: Any) -> Any:
    """The deduplication key DISTINCT aggregates use for *value*.

    Scalars key through :func:`normalize_scalar`, so ``TRUE`` and ``1``
    (whose Python hashes collide) stay distinct while ``1`` and ``1.0``
    collapse. Value sets and lists key element-wise; anything else falls
    back to its ``repr``.
    """
    if is_scalar(value):
        return _normalize_number(value)
    if isinstance(value, frozenset):
        return frozenset(_normalize_number(v) for v in value)
    if isinstance(value, tuple):
        return ("tuple", tuple(distinct_key(v) for v in value))
    return repr(value)


def gcore_equals(left: Any, right: Any) -> bool:
    """The paper's ``=`` over literals and value sets.

    Both sides are normalized to value sets (scalar => singleton) and
    compared as sets; ``"MIT" = {"CWI","MIT"}`` is false.
    """
    left_set = as_value_set(left)
    right_set = as_value_set(right)
    return {_normalize_number(v) for v in left_set} == {
        _normalize_number(v) for v in right_set
    }


def gcore_compare(op: str, left: Any, right: Any) -> bool:
    """Ordered comparison (``<``, ``<=``, ``>``, ``>=``) on scalars.

    Each side must be a scalar or a singleton set; comparisons involving an
    empty or multi-valued set are false (absence of a property is not an
    error, per Section 3). Mixed-type comparisons are false rather than
    raising, matching the tolerant behaviour of the paper's examples.
    Booleans are *not* numbers here, mirroring :func:`normalize_scalar`:
    ``TRUE < 2`` is false, never a 1-vs-2 comparison.
    """
    left_scalar = as_scalar(as_value_set(left)) if left is not None else None
    right_scalar = as_scalar(as_value_set(right)) if right is not None else None
    if isinstance(left_scalar, frozenset) or isinstance(right_scalar, frozenset):
        return False
    if left_scalar is None or right_scalar is None:
        return False
    comparable_numbers = (
        isinstance(left_scalar, (int, float))
        and isinstance(right_scalar, (int, float))
        and not isinstance(left_scalar, bool)
        and not isinstance(right_scalar, bool)
    )
    same_type = type(left_scalar) is type(right_scalar)
    if not (comparable_numbers or same_type):
        return False
    if op == "<":
        return left_scalar < right_scalar
    if op == "<=":
        return left_scalar <= right_scalar
    if op == ">":
        return left_scalar > right_scalar
    if op == ">=":
        return left_scalar >= right_scalar
    raise ValueError(f"unknown comparison operator: {op}")


def gcore_in(left: Any, right: Any) -> bool:
    """The paper's ``IN``: is the (singleton) left value in the right set?"""
    left_scalar = as_scalar(as_value_set(left))
    if isinstance(left_scalar, frozenset):
        return False
    right_set = as_value_set(right)
    normalized = {_normalize_number(v) for v in right_set}
    return _normalize_number(left_scalar) in normalized


def gcore_subset(left: Any, right: Any) -> bool:
    """The paper's ``SUBSET OF``: set containment of value sets."""
    left_set = {_normalize_number(v) for v in as_value_set(left)}
    right_set = {_normalize_number(v) for v in as_value_set(right)}
    return left_set <= right_set


def truthy(value: Any) -> bool:
    """Coerce an expression result to the paper's truth values.

    Booleans pass through; a singleton set of a boolean unwraps; anything
    else (including absent values) is false. This keeps WHERE filters total
    without a three-valued logic, matching the examples in Section 3.
    """
    value = as_scalar(value) if not isinstance(value, bool) else value
    if isinstance(value, frozenset):
        return False
    return value is True
