"""The Path Property Graph data model (Section 2 of the paper).

Public surface:

* :class:`~repro.model.graph.PathPropertyGraph` — the immutable PPG.
* :class:`~repro.model.builder.GraphBuilder` — the mutation point.
* :mod:`~repro.model.values` — literals, value sets, comparison semantics.
* :mod:`~repro.model.setops` — UNION / INTERSECT / MINUS on whole graphs.
* :mod:`~repro.model.io` — JSON round-tripping.
* :mod:`~repro.model.schema` — structural schemas; the SNB schema (Fig. 3).
* :mod:`~repro.model.statistics` — summary statistics for cost-based
  planning (``graph.statistics()``).
"""

from .builder import GraphBuilder
from .graph import ObjectId, PathPropertyGraph, path_edges, path_nodes
from .setops import empty_graph, graph_difference, graph_intersect, graph_union
from .statistics import GraphStatistics
from .values import Date, ValueSet, as_value_set

__all__ = [
    "GraphStatistics",
    "GraphBuilder",
    "ObjectId",
    "PathPropertyGraph",
    "path_edges",
    "path_nodes",
    "empty_graph",
    "graph_difference",
    "graph_intersect",
    "graph_union",
    "Date",
    "ValueSet",
    "as_value_set",
]
