"""Plain tables for the tabular extensions of Section 5.

G-CORE proper is closed over graphs; Section 5 sketches a multi-sorted
extension with (a) ``SELECT`` projecting a table out of the binding set and
(b) two ways to *import* tables (``FROM <table>`` and ``MATCH .. ON
<table>``). :class:`Table` is the value those extensions exchange with the
host application: an ordered list of named columns over literal rows.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .errors import EvaluationError
from .model.values import format_value_set

__all__ = ["Table"]


class Table:
    """An immutable table of literal values."""

    __slots__ = ("_columns", "_rows", "_name")

    def __init__(
        self,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]] = (),
        name: str = "",
    ) -> None:
        self._columns: Tuple[str, ...] = tuple(columns)
        normalized: List[Tuple[Any, ...]] = []
        for row in rows:
            row = tuple(row)
            if len(row) != len(self._columns):
                raise EvaluationError(
                    f"row width {len(row)} does not match "
                    f"{len(self._columns)} columns"
                )
            normalized.append(row)
        self._rows: Tuple[Tuple[Any, ...], ...] = tuple(normalized)
        self._name = name

    # ------------------------------------------------------------------
    @classmethod
    def from_dicts(
        cls,
        records: Iterable[Mapping[str, Any]],
        columns: Optional[Sequence[str]] = None,
        name: str = "",
    ) -> "Table":
        """Build a table from dict records; columns default to first-seen order.

        Column inference is a full scan over *records* — the union of all
        keys, in first-appearance order — never just the first record, so
        an empty or partial leading record cannot silently drop columns
        that later records introduce. Cells a record does not mention are
        None.
        """
        records = list(records)  # tolerate one-shot iterators: two passes
        if columns is None:
            seen: Dict[str, None] = {}
            for record in records:
                for key in record:
                    seen.setdefault(key, None)
            columns = list(seen)
        rows = [tuple(record.get(col) for col in columns) for record in records]
        return cls(columns, rows, name=name)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """The rows as dictionaries keyed by column name."""
        return [dict(zip(self._columns, row)) for row in self._rows]

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def columns(self) -> Tuple[str, ...]:
        return self._columns

    @property
    def rows(self) -> Tuple[Tuple[Any, ...], ...]:
        return self._rows

    def column(self, name: str) -> Tuple[Any, ...]:
        """All values of one column, in row order."""
        try:
            index = self._columns.index(name)
        except ValueError:
            raise EvaluationError(f"unknown column: {name!r}") from None
        return tuple(row[index] for row in self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self._columns == other._columns and self._rows == other._rows

    def __repr__(self) -> str:
        return f"<Table {list(self._columns)} with {len(self._rows)} rows>"

    def with_name(self, name: str) -> "Table":
        return Table(self._columns, self._rows, name=name)

    # ------------------------------------------------------------------
    def pretty(self, limit: int = 50) -> str:
        """Fixed-width rendering, matching the paper's result tables."""

        def cell(value: Any) -> str:
            if value is None:
                return ""
            if isinstance(value, frozenset):
                return format_value_set(value)
            if isinstance(value, str):
                return value
            if isinstance(value, tuple):
                return "[" + ", ".join(cell(v) for v in value) + "]"
            return str(value)

        widths = {c: len(c) for c in self._columns}
        rendered = []
        for row in self._rows[:limit]:
            cells = [cell(v) for v in row]
            for column, text in zip(self._columns, cells):
                widths[column] = max(widths[column], len(text))
            rendered.append(cells)
        header = " | ".join(c.ljust(widths[c]) for c in self._columns)
        separator = "-+-".join("-" * widths[c] for c in self._columns)
        lines = [header, separator]
        for cells in rendered:
            lines.append(
                " | ".join(
                    text.ljust(widths[column])
                    for column, text in zip(self._columns, cells)
                )
            )
        if len(self._rows) > limit:
            lines.append(f"... ({len(self._rows) - limit} more rows)")
        return "\n".join(lines)
