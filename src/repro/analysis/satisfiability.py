"""Pass 3b — predicate satisfiability (``GC301 always-false-predicate``).

A cheap, sound unsatisfiability check over the AND-conjuncts of a
WHERE/WHEN condition plus the inline property tests of the pattern it
guards. Three families of proofs, each conservative (no false
positives):

* **constant folding** — a conjunct made of literals that folds to
  false under the Section 3 comparison semantics (``WHERE 1 = 2``);
* **contradictory equalities** — two conjuncts pin the same ``var.key``
  to different literals (``n.age = 1 AND n.age = 2`` — ``=`` compares
  the full value *set*, so both cannot hold), or one pins and one
  excludes the same literal (``n.age = 1 AND n.age <> 1``), including
  pattern tests like ``(n {age: 1})`` against the WHERE clause;
* **domain emptiness** — with a catalog, ``var.key = literal`` where no
  object of the variable's graph carries *literal* in its ``key``
  value set (the statistics-aware check of the issue).

Negated/positive label-test pairs (``x:A AND NOT x:A``) round out the
contradiction check.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, TYPE_CHECKING, Tuple

from ..lang import ast
from ..model.values import Date, Scalar
from .scopes import Scope

if TYPE_CHECKING:  # pragma: no cover
    from .analyzer import Analyzer

__all__ = ["check_satisfiability", "conjuncts"]

_FoldableOps = frozenset({"=", "<>", "<", "<=", ">", ">="})


def conjuncts(expr: Optional[ast.Expr]) -> Iterator[ast.Expr]:
    """The AND-conjuncts of *expr* (the whole expr when not an AND)."""
    if expr is None:
        return
    if isinstance(expr, ast.Binary) and expr.op == "and":
        yield from conjuncts(expr.left)
        yield from conjuncts(expr.right)
    else:
        yield expr


def _scalar(value: object) -> bool:
    return isinstance(value, (bool, int, float, str, Date))


def _fold_comparison(op: str, left: Scalar, right: Scalar) -> Optional[bool]:
    """Fold ``left op right`` under G-CORE semantics, None when unknown.

    Only same-type comparisons fold here — cross-type operands are
    GC205's business and folding them too would double-report.
    """
    both_num = isinstance(left, (int, float)) and not isinstance(
        left, bool
    ) and isinstance(right, (int, float)) and not isinstance(right, bool)
    same_type = type(left) is type(right) or both_num
    if not same_type:
        return None
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if isinstance(left, bool):
        return None  # booleans have no order
    try:
        if op == "<":
            return left < right  # type: ignore[operator]
        if op == "<=":
            return left <= right  # type: ignore[operator]
        if op == ">":
            return left > right  # type: ignore[operator]
        if op == ">=":
            return left >= right  # type: ignore[operator]
    except TypeError:  # pragma: no cover - same_type guards this
        return None
    return None


def _prop_equality(
    conjunct: ast.Expr,
) -> Optional[Tuple[str, str, str, Scalar]]:
    """Decompose ``var.key = literal`` (either side) into its parts.

    Returns ``(op, var, key, value)`` with op in {'=', '<>'}, or None.
    """
    if not isinstance(conjunct, ast.Binary) or conjunct.op not in ("=", "<>"):
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(right, ast.Prop) and isinstance(left, ast.Literal):
        left, right = right, left
    if (
        isinstance(left, ast.Prop)
        and isinstance(left.base, ast.Var)
        and isinstance(right, ast.Literal)
        and _scalar(right.value)
    ):
        return (conjunct.op, left.base.name, left.key, right.value)
    return None


def _label_fact(conjunct: ast.Expr) -> Optional[Tuple[bool, str, Tuple[str, ...]]]:
    """Decompose ``x:A|B`` / ``NOT x:A|B`` into (positive, var, labels)."""
    if isinstance(conjunct, ast.LabelTest):
        return (True, conjunct.var, tuple(sorted(conjunct.labels)))
    if (
        isinstance(conjunct, ast.Unary)
        and conjunct.op == "not"
        and isinstance(conjunct.operand, ast.LabelTest)
    ):
        operand = conjunct.operand
        return (False, operand.var, tuple(sorted(operand.labels)))
    return None


def check_satisfiability(
    ctx: "Analyzer",
    scope: Scope,
    where: Optional[ast.Expr],
    pattern_facts: Optional[List[Tuple[str, str, Scalar]]] = None,
    clause: str = "WHERE",
) -> None:
    """Emit GC301 for each provably-false conjunct/conjunct pair.

    *pattern_facts* are ``(var, key, value)`` equalities implied by
    inline property tests of the guarded pattern, e.g. ``(n {age: 1})``.
    """
    # (var, key) -> pinned literal values ('=' facts)
    pinned: Dict[Tuple[str, str], Set[Scalar]] = {}
    # (var, key) -> excluded literal values ('<>' facts)
    excluded: Dict[Tuple[str, str], Set[Scalar]] = {}
    label_facts: Dict[Tuple[str, Tuple[str, ...]], bool] = {}

    for var, key, value in pattern_facts or ():
        pinned.setdefault((var, key), set()).add(value)
        _check_domain(ctx, scope, var, key, value)

    for conjunct in conjuncts(where):
        # 1. literal constant folding
        if isinstance(conjunct, ast.Literal) and conjunct.value is False:
            ctx.emit(
                "GC301",
                f"{clause} contains the constant FALSE",
                hint="remove the clause or the always-false conjunct",
            )
            continue
        if (
            isinstance(conjunct, ast.Binary)
            and conjunct.op in _FoldableOps
            and isinstance(conjunct.left, ast.Literal)
            and isinstance(conjunct.right, ast.Literal)
            and _scalar(conjunct.left.value)
            and _scalar(conjunct.right.value)
        ):
            folded = _fold_comparison(
                conjunct.op, conjunct.left.value, conjunct.right.value
            )
            if folded is False:
                ctx.emit(
                    "GC301",
                    f"{clause} conjunct "
                    f"{conjunct.left.value!r} {conjunct.op} "
                    f"{conjunct.right.value!r} is constantly false",
                    hint="remove the always-false conjunct",
                )
            continue

        # 2. var.key (=|<>) literal facts
        fact = _prop_equality(conjunct)
        if fact is not None:
            op, var, key, value = fact
            if op == "=":
                pinned.setdefault((var, key), set()).add(value)
                _check_domain(ctx, scope, var, key, value)
            else:
                excluded.setdefault((var, key), set()).add(value)
            continue

        # 3. (negated) label tests
        label = _label_fact(conjunct)
        if label is not None:
            positive, var, labels = label
            previous = label_facts.get((var, labels))
            if previous is not None and previous != positive:
                ctx.emit(
                    "GC301",
                    f"{clause} both requires and excludes label test "
                    f"{var}:{'|'.join(labels)}",
                    anchor=var,
                )
            else:
                label_facts[(var, labels)] = positive

    for (var, key), values in pinned.items():
        if len(values) > 1:
            rendered = ", ".join(repr(v) for v in sorted(values, key=repr))
            ctx.emit(
                "GC301",
                f"{var}.{key} is pinned to contradictory values "
                f"({rendered}); the predicate is unsatisfiable",
                anchor=var,
                hint="property equality compares the full value set — "
                "use IN for membership tests",
            )
        clash = values & excluded.get((var, key), set())
        for value in sorted(clash, key=repr):
            ctx.emit(
                "GC301",
                f"{var}.{key} = {value!r} contradicts "
                f"{var}.{key} <> {value!r}",
                anchor=var,
            )


def _check_domain(ctx: "Analyzer", scope: Scope, var: str, key: str, value: Scalar) -> None:
    """GC301 when *value* is outside the graph's domain for ``var.key``."""
    domain = ctx.property_domain(scope, var, key)
    if domain is not None and value not in domain:
        ctx.emit(
            "GC301",
            f"no object of the target graph has {value!r} in its "
            f"{key!r} property; {var}.{key} = {value!r} never holds",
            anchor=var,
            hint="check the literal against the graph's data "
            "(statistics-derived domain)",
        )
