"""Pass 1 — variable scopes and sorts over full queries.

Generalizes the MATCH-only inference of :func:`repro.eval.analysis.
analyze_match` to every variable-binding position of a statement —
MATCH blocks (including OPTIONAL), CONSTRUCT bodies, EXISTS patterns,
PATH-clause chains and FROM table imports — and reports violations of
the paper's static restrictions as :class:`~repro.analysis.diagnostics.
Diagnostic` values instead of raising:

* ``GC201 sort-clash`` — a variable occupies positions of two sorts
  ("it would be illegal to use n (a node) in the place of y (an edge)",
  Section 3);
* ``GC202 all-paths-projection`` — an ``ALL``-paths variable escapes
  graph projection (Section 3);
* ``GC203 optional-shared-variable`` — OPTIONAL blocks share a variable
  absent from the enclosing pattern (Section 3, citing Pérez et al.).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, TYPE_CHECKING

from ..lang import ast

if TYPE_CHECKING:  # pragma: no cover
    from .analyzer import Analyzer

__all__ = [
    "Scope",
    "collect_chain_sorts",
    "collect_match_scope",
    "collect_construct_sorts",
    "check_optional_restriction",
]

#: variable name -> 'node' | 'edge' | 'path' | 'value'
Sorts = Dict[str, str]


class Scope:
    """The variables visible inside one basic query.

    ``sorts`` covers every declared variable; ``all_path_vars`` are the
    ALL-mode path variables (legal only in graph-projection positions);
    ``outer`` names variables inherited from an enclosing query
    (correlated EXISTS subqueries see their parent's bindings).
    """

    def __init__(self, outer: Optional["Scope"] = None) -> None:
        self.sorts: Sorts = {}
        self.all_path_vars: Set[str] = set()
        self.outer = outer
        #: True when the scope may bind names the analyzer cannot see
        #: (e.g. a FROM import of a table whose columns are unknown);
        #: suppresses GC204 unbound-variable findings.
        self.open = False

    # ------------------------------------------------------------------
    def sort_of(self, name: str) -> Optional[str]:
        """The sort of *name*, searching enclosing scopes."""
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.sorts:
                return scope.sorts[name]
            scope = scope.outer
        return None

    def is_bound(self, name: str) -> bool:
        return self.sort_of(name) is not None

    def is_open(self) -> bool:
        scope: Optional[Scope] = self
        while scope is not None:
            if scope.open:
                return True
            scope = scope.outer
        return False

    def is_all_paths(self, name: str) -> bool:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.all_path_vars:
                return True
            scope = scope.outer
        return False

    def bound_names(self) -> FrozenSet[str]:
        names: Set[str] = set()
        scope: Optional[Scope] = self
        while scope is not None:
            names |= set(scope.sorts)
            scope = scope.outer
        return frozenset(names)


def _assign(ctx: "Analyzer", scope: Scope, name: Optional[str], sort: str) -> None:
    """Record *name* at *sort*, emitting GC201 on a clash.

    Clashes against an *enclosing* scope count too: a correlated
    subquery reusing an outer node variable as an edge is exactly the
    Section 3 illegality.
    """
    if not name:
        return
    existing = scope.sort_of(name)
    if existing is not None and existing != sort:
        ctx.emit(
            "GC201",
            f"variable {name!r} is used both as {existing} and as {sort}",
            anchor=name,
            hint=f"rename one of the {name!r} occurrences",
        )
        return
    scope.sorts[name] = sort


def collect_chain_sorts(ctx: "Analyzer", scope: Scope, chain: ast.Chain) -> None:
    """Fold one pattern chain's declarations into *scope*."""
    for element in chain.elements:
        if isinstance(element, ast.NodePattern):
            _assign(ctx, scope, element.var, "node")
            for _key, bind_var in element.prop_binds:
                _assign(ctx, scope, bind_var, "value")
        elif isinstance(element, ast.EdgePattern):
            _assign(ctx, scope, element.var, "edge")
            for _key, bind_var in element.prop_binds:
                _assign(ctx, scope, bind_var, "value")
        elif isinstance(element, ast.PathPatternElem):
            _assign(ctx, scope, element.var, "path")
            _assign(ctx, scope, element.cost_var, "value")
            if element.var and element.mode == "all":
                scope.all_path_vars.add(element.var)


def collect_match_scope(
    ctx: "Analyzer", match: Optional[ast.MatchClause], outer: Optional[Scope] = None
) -> Scope:
    """The scope declared by a MATCH clause (all blocks), with checks."""
    scope = Scope(outer)
    if match is None:
        return scope
    for block in (match.block, *match.optionals):
        for location in block.patterns:
            collect_chain_sorts(ctx, scope, location.chain)
    check_optional_restriction(ctx, match)
    return scope


def collect_construct_sorts(
    ctx: "Analyzer", scope: Scope, construct: ast.ConstructClause
) -> None:
    """Fold CONSTRUCT pattern declarations into *scope*.

    Construct variables unbound by the MATCH introduce fresh objects
    (one per group) — legal; what this pass catches is a *bound*
    variable re-used at a different sort (``MATCH (n)-[e]->(m)
    CONSTRUCT (e)`` uses an edge as a node).
    """
    for item in construct.items:
        if isinstance(item, ast.GraphRefItem):
            continue
        collect_chain_sorts(ctx, scope, item.chain)


def _chain_variables(chain: ast.Chain) -> FrozenSet[str]:
    names: Set[str] = set()
    for element in chain.elements:
        var = getattr(element, "var", None)
        if var:
            names.add(var)
        for _key, bind_var in getattr(element, "prop_binds", ()):
            names.add(bind_var)
        cost_var = getattr(element, "cost_var", None)
        if cost_var:
            names.add(cost_var)
    return frozenset(names)


def check_optional_restriction(ctx: "Analyzer", match: ast.MatchClause) -> None:
    """GC203: OPTIONAL-shared variables must occur in the main pattern."""
    main_vars: Set[str] = set()
    for location in match.block.patterns:
        main_vars |= _chain_variables(location.chain)
    optional_vars: List[FrozenSet[str]] = [
        frozenset().union(
            *(_chain_variables(loc.chain) for loc in block.patterns)
        )
        if block.patterns
        else frozenset()
        for block in match.optionals
    ]
    for i in range(len(optional_vars)):
        for j in range(i + 1, len(optional_vars)):
            rogue = (optional_vars[i] & optional_vars[j]) - main_vars
            for name in sorted(rogue):
                ctx.emit(
                    "GC203",
                    f"variable {name!r} is shared by OPTIONAL blocks but "
                    f"does not appear in the enclosing pattern",
                    anchor=name,
                    hint="bind the variable in the main MATCH pattern so "
                    "OPTIONAL evaluation order cannot matter",
                )
