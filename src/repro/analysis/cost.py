"""Pass 4 — cost smells (warnings only, never blocking).

* ``GC401 cartesian-product`` — a MATCH block whose patterns fall into
  more than one variable-connected component: the planner has no join
  key between the components, so the block multiplies their
  cardinalities.
* ``GC402 unbounded-path`` — an ``ALL``-paths pattern whose regular
  expression contains unbounded repetition (``*``, ``+``, ``{m,}``).
  ALL-paths enumeration is exponential in the worst case; SHORTEST-mode
  stars are deliberately *not* flagged (every interesting shortest-path
  query uses one, and k-shortest enumeration is output-bounded).
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from ..lang import ast
from .scopes import Scope

if TYPE_CHECKING:  # pragma: no cover
    from .analyzer import Analyzer

__all__ = ["check_cartesian", "check_unbounded_paths"]


def _chain_vars(chain: ast.Chain) -> List[str]:
    names: List[str] = []
    for element in chain.elements:
        var = getattr(element, "var", None)
        if var:
            names.append(var)
        for _key, bind_var in getattr(element, "prop_binds", ()):
            names.append(bind_var)
    return names


def check_cartesian(ctx: "Analyzer", block: ast.MatchBlock) -> None:
    """GC401 when a block's patterns share no variables (per component)."""
    if len(block.patterns) < 2:
        return
    # Union-find over pattern indexes, joined through shared variables.
    parent = list(range(len(block.patterns)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    var_home: Dict[str, int] = {}
    for index, location in enumerate(block.patterns):
        for name in _chain_vars(location.chain):
            if name in var_home:
                parent[find(index)] = find(var_home[name])
            else:
                var_home[name] = index
    components = {find(i) for i in range(len(block.patterns))}
    if len(components) > 1:
        ctx.emit(
            "GC401",
            f"MATCH block has {len(components)} disconnected pattern "
            f"components; their cardinalities multiply (cartesian "
            f"product)",
            hint="connect the patterns through a shared variable, or "
            "split the query",
        )


def _unbounded(regex: ast.RegexExpr) -> bool:
    if isinstance(regex, (ast.RStar, ast.RPlus)):
        return True
    if isinstance(regex, ast.RRepeat) and regex.high is None:
        return True
    child = getattr(regex, "item", None)
    if isinstance(child, ast.RegexExpr) and _unbounded(child):
        return True
    return any(
        _unbounded(part)
        for part in getattr(regex, "items", ())
        if isinstance(part, ast.RegexExpr)
    )


def check_unbounded_paths(ctx: "Analyzer", scope: Scope, chain: ast.Chain) -> None:
    """GC402 for ALL-paths patterns with unbounded repetition."""
    for element in chain.elements:
        if (
            isinstance(element, ast.PathPatternElem)
            and element.mode == "all"
            and element.regex is not None
            and _unbounded(element.regex)
        ):
            ctx.emit(
                "GC402",
                "ALL-paths pattern with unbounded repetition may "
                "enumerate exponentially many paths",
                anchor=element.var,
                hint="bound the repetition ({m,n}) or use SHORTEST",
            )
