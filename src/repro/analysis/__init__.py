"""Static semantic analysis of G-CORE queries (pre-planning).

The analyzer walks the parsed AST — before any planning or execution —
and returns typed :class:`Diagnostic` findings with stable codes,
instead of the ad-hoc :class:`~repro.errors.SemanticError` raises of
the runtime checks in :mod:`repro.eval.analysis`. See
``docs/analysis.md`` for the code registry and the wire format.

Entry points:

* :func:`analyze` — text or AST in, :class:`AnalysisResult` out;
* ``GCoreEngine.analyze`` / ``EngineSnapshot.analyze`` — the same with
  the engine's catalog supplied automatically;
* ``python -m repro.analysis FILE...`` — batch linting of ``.gcore``
  files (exit code = rank of the worst finding);
* ``POST /analyze`` on the HTTP server.
"""

from .analyzer import Analyzer, analyze
from .diagnostics import (
    CODES,
    SEVERITIES,
    AnalysisResult,
    CodeInfo,
    Diagnostic,
    severity_rank,
)

__all__ = [
    "Analyzer",
    "analyze",
    "AnalysisResult",
    "Diagnostic",
    "CodeInfo",
    "CODES",
    "SEVERITIES",
    "severity_rank",
]
