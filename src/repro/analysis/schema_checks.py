"""Pass 3a — name resolution against the catalog, schema and statistics.

With a catalog the analyzer resolves every name a statement mentions:

* ``GC101 unknown-graph`` — ``ON g`` / graph operands / CONSTRUCT graph
  refs naming a graph absent from the catalog (and not bound by a
  query-local ``GRAPH g AS (...)`` head);
* ``GC102 unknown-table`` — ``FROM t`` naming an unregistered table;
* ``GC103 unknown-label`` — a label test naming a label that neither
  the target graph's statistics nor its schema know;
* ``GC104 unknown-property`` — a property key no object of the target
  graph carries (and the schema does not declare);
* ``GC105 unknown-path-view`` — ``<~view>`` in a path regex naming
  neither a registered PATH view nor a query-local ``PATH`` head;
* ``GC302 empty-label`` — the schema declares the label but zero
  objects carry it (matches are statically empty).

All checks degrade gracefully: with no catalog (or an unresolvable
graph, e.g. a stale view) the pass stays silent rather than guessing.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, Iterator, Optional, Set, TYPE_CHECKING

from ..lang import ast
from ..model.values import Scalar

if TYPE_CHECKING:  # pragma: no cover
    from .analyzer import Analyzer

__all__ = ["GraphFacts", "facts_for_graph", "check_chain_names", "regex_views"]


class GraphFacts:
    """Lazily-computed name sets of one resolved graph (+ schema)."""

    def __init__(self, graph: Any, schema: Any = None) -> None:
        self.graph = graph
        self.schema = schema
        self._labels: Optional[FrozenSet[str]] = None
        self._schema_labels: Optional[FrozenSet[str]] = None
        self._keys: Optional[FrozenSet[str]] = None
        self._domains: dict = {}

    # ------------------------------------------------------------------
    @property
    def data_labels(self) -> FrozenSet[str]:
        """Labels carried by at least one object (statistics-derived)."""
        if self._labels is None:
            stats = self.graph.statistics()
            self._labels = frozenset(
                {
                    *stats.node_label_counts,
                    *stats.edge_label_counts,
                    *stats.path_label_counts,
                }
            )
        return self._labels

    @property
    def schema_labels(self) -> FrozenSet[str]:
        if self._schema_labels is None:
            if self.schema is None:
                self._schema_labels = frozenset()
            else:
                self._schema_labels = (
                    self.schema.node_labels() | self.schema.edge_labels()
                )
        return self._schema_labels

    @property
    def known_labels(self) -> FrozenSet[str]:
        return self.data_labels | self.schema_labels

    @property
    def known_keys(self) -> FrozenSet[str]:
        """Property keys carried by some object or declared by the schema."""
        if self._keys is None:
            keys: Set[str] = set()
            for props in self.graph.property_map().values():
                keys |= set(props)
            if self.schema is not None:
                for allowed in self.schema.node_properties.values():
                    keys |= set(allowed)
                for edge_type in self.schema.edge_types.values():
                    keys |= set(edge_type.properties)
            self._keys = frozenset(keys)
        return self._keys

    def domain(self, key: str) -> FrozenSet[Scalar]:
        """Every scalar any object carries in its *key* value set."""
        if key not in self._domains:
            values: Set[Scalar] = set()
            for props in self.graph.property_map().values():
                values |= set(props.get(key, ()))
            self._domains[key] = frozenset(values)
        return self._domains[key]


def facts_for_graph(ctx: "Analyzer", name: Optional[str]) -> Optional["GraphFacts"]:
    """Resolve *name* (None = default graph) to cached :class:`GraphFacts`.

    Returns ``None`` when there is no catalog, the graph is query-local
    (its content is not known statically), or resolution fails (e.g. a
    stale view) — in all cases the schema checks simply stay silent.
    """
    catalog = ctx.catalog
    if catalog is None or name in ctx.local_graphs:
        return None
    cache = ctx.graph_facts_cache
    if name in cache:
        return cache[name]
    facts: Optional[GraphFacts] = None
    try:
        if name is None:
            graph = catalog.default_graph()
        elif catalog.has_graph(name):
            graph = catalog.graph(name)
        else:
            graph = None
        if graph is not None:
            schema = None
            schema_of = getattr(catalog, "schema", None)
            # None targets the default graph: resolve its registered
            # name so the attached schema is found too.
            effective = name
            if effective is None:
                effective = getattr(catalog, "default_graph_name", None)
            if effective is not None and callable(schema_of):
                schema = schema_of(effective)
            facts = GraphFacts(graph, schema)
    except Exception:  # stale view, unreadable snapshot: degrade silently
        facts = None
    cache[name] = facts
    return facts


def _check_label_groups(
    ctx: "Analyzer",
    facts: Optional[GraphFacts],
    labels: Iterable[Iterable[str]],
) -> None:
    """GC103/GC302 for one pattern's label conjunction groups."""
    if facts is None:
        return
    for group in labels:
        for label in group:
            if label not in facts.known_labels:
                ctx.emit(
                    "GC103",
                    f"label {label!r} does not occur in the target graph "
                    f"(or its schema)",
                    anchor=label,
                    hint="check the spelling against the graph's labels",
                )
            elif label not in facts.data_labels:
                ctx.emit(
                    "GC302",
                    f"label {label!r} is declared by the schema but "
                    f"matches zero objects",
                    anchor=label,
                )


def _check_property_key(ctx: "Analyzer", facts: Optional[GraphFacts], key: str) -> None:
    if facts is None:
        return
    if key not in facts.known_keys:
        ctx.emit(
            "GC104",
            f"no object of the target graph carries property {key!r}",
            anchor=key,
            hint="check the key against the graph's property map",
        )


def regex_views(regex: Optional[ast.RegexExpr]) -> Iterator[ast.RView]:
    """Yield every ``RView`` node of a path regular expression."""
    if regex is None:
        return
    if isinstance(regex, ast.RView):
        yield regex
    child = getattr(regex, "item", None)
    if isinstance(child, ast.RegexExpr):
        yield from regex_views(child)
    for part in getattr(regex, "items", ()):
        if isinstance(part, ast.RegexExpr):
            yield from regex_views(part)


def _regex_labels(regex: Optional[ast.RegexExpr]) -> Iterator[str]:
    if regex is None:
        return
    if isinstance(regex, (ast.RLabel, ast.RNodeTest)):
        yield regex.label
    child = getattr(regex, "item", None)
    if isinstance(child, ast.RegexExpr):
        yield from _regex_labels(child)
    for part in getattr(regex, "items", ()):
        if isinstance(part, ast.RegexExpr):
            yield from _regex_labels(part)


def check_chain_names(
    ctx: "Analyzer",
    facts: Optional[GraphFacts],
    chain: ast.Chain,
    construct: bool = False,
) -> None:
    """Resolve labels / property keys / path views of one pattern chain.

    CONSTRUCT chains (*construct* = True) skip label checks — they
    *introduce* labels into the result graph — but still resolve
    property keys read by tests and the path views of regexes.
    """
    for element in chain.elements:
        if isinstance(element, (ast.NodePattern, ast.EdgePattern)):
            if not construct:
                _check_label_groups(ctx, facts, element.labels)
            for key, _expr in element.prop_tests:
                _check_property_key(ctx, facts, key)
            for key, _var in element.prop_binds:
                _check_property_key(ctx, facts, key)
        elif isinstance(element, ast.PathPatternElem):
            if not construct and element.stored:
                _check_label_groups(ctx, facts, element.labels)
            for label in _regex_labels(element.regex):
                if facts is not None and label not in facts.known_labels:
                    ctx.emit(
                        "GC103",
                        f"label {label!r} does not occur in the target "
                        f"graph (or its schema)",
                        anchor=label,
                    )
            for view in regex_views(element.regex):
                ctx.check_path_view(view.name)
