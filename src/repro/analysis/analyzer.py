"""The semantic analyzer: one AST walk orchestrating all passes.

:func:`analyze` accepts query text or an already-parsed statement plus
an optional catalog (a :class:`~repro.catalog.Catalog` or a
:class:`~repro.catalog.CatalogSnapshot`) and returns an
:class:`~repro.analysis.diagnostics.AnalysisResult`. Analysis never
raises on a bad query — even unparseable text comes back as a ``GC001``
diagnostic — and never executes anything: it is a pure function of the
statement, the catalog metadata and the statistics of registered
graphs. In particular it is **config-independent**: the same statement
yields the same diagnostics under every
:class:`~repro.config.ExecutionConfig`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple, Union

from ..errors import GCoreError, LexerError, ParseError
from ..lang import ast
from ..lang.lexer import tokenize
from ..lang.parser import Parser
from ..model.values import Date, Scalar
from .cost import check_cartesian, check_unbounded_paths
from .diagnostics import CODES, AnalysisResult, Diagnostic
from .satisfiability import check_satisfiability
from .schema_checks import GraphFacts, check_chain_names, facts_for_graph
from .scopes import (
    Scope,
    collect_chain_sorts,
    collect_construct_sorts,
    collect_match_scope,
)
from .spans import SpanIndex
from .types import check_condition, infer_type

__all__ = ["Analyzer", "analyze"]

#: A pattern's resolution target when ``ON (subquery)`` makes the graph
#: statically unknown — suppresses schema checks for its variables.
_UNKNOWN = object()


class Analyzer:
    """One analysis run: diagnostic accumulator plus resolution state."""

    def __init__(
        self, catalog: Any = None, spans: Optional[SpanIndex] = None
    ) -> None:
        self.catalog = catalog
        self.spans = spans or SpanIndex()
        self.diagnostics: List[Diagnostic] = []
        #: graph names bound by query-local ``GRAPH g AS (...)`` heads
        self.local_graphs: Set[str] = set()
        #: path-view names bound by query-local ``PATH p = ...`` heads
        self.local_path_views: Set[str] = set()
        #: graph name (None = default) -> GraphFacts or None
        self.graph_facts_cache: Dict[Optional[str], Optional[GraphFacts]] = {}
        #: stack of var -> GraphFacts | None | _UNKNOWN frames
        self._frames: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # Diagnostic emission
    # ------------------------------------------------------------------
    def emit(
        self,
        code: str,
        message: str,
        anchor: Optional[str] = None,
        hint: Optional[str] = None,
        severity: Optional[str] = None,
    ) -> None:
        """Record one finding, anchored at *anchor*'s first occurrence."""
        span = self.spans.first(anchor)
        self.diagnostics.append(
            Diagnostic(
                code=code,
                severity=severity or CODES[code].severity,
                message=message,
                line=span[0] if span else None,
                column=span[1] if span else None,
                hint=hint,
            )
        )

    def result(self) -> AnalysisResult:
        return AnalysisResult(self.diagnostics)

    # ------------------------------------------------------------------
    # Resolution hooks used by the pass modules
    # ------------------------------------------------------------------
    def _facts_of_var(self, name: str) -> Optional[GraphFacts]:
        for frame in reversed(self._frames):
            if name in frame:
                facts = frame[name]
                return facts if isinstance(facts, GraphFacts) else None
        return None

    def note_property(self, scope: Scope, expr: ast.Prop) -> None:
        """GC104 for ``var.key`` reads against the variable's graph."""
        if not isinstance(expr.base, ast.Var):
            return
        facts = self._facts_of_var(expr.base.name)
        if facts is not None and expr.key not in facts.known_keys:
            self.emit(
                "GC104",
                f"no object of the target graph carries property "
                f"{expr.key!r}",
                anchor=expr.key,
                hint="check the key against the graph's property map",
            )

    def note_label_test(self, scope: Scope, expr: ast.LabelTest) -> None:
        """GC103/GC302 for ``var:A|B`` tests against the variable's graph."""
        facts = self._facts_of_var(expr.var)
        if facts is None:
            return
        for label in expr.labels:
            if label not in facts.known_labels:
                self.emit(
                    "GC103",
                    f"label {label!r} does not occur in the target graph "
                    f"(or its schema)",
                    anchor=label,
                    hint="check the spelling against the graph's labels",
                )
            elif label not in facts.data_labels:
                self.emit(
                    "GC302",
                    f"label {label!r} is declared by the schema but "
                    f"matches zero objects",
                    anchor=label,
                )

    def note_chain(self, scope: Scope, chain: ast.Chain) -> None:
        """Name checks for an inline EXISTS pattern (default graph)."""
        facts = facts_for_graph(self, None)
        check_chain_names(self, facts, chain)

    def property_domain(
        self, scope: Scope, var: str, key: str
    ) -> Optional[frozenset]:
        """The known value domain of ``var.key``, or None when unknown.

        Unknown *keys* return None too: GC104 already covers them, and a
        domain-based GC301 on top would be double-reporting.
        """
        facts = self._facts_of_var(var)
        if facts is None or key not in facts.known_keys:
            return None
        return facts.domain(key)

    def check_path_view(self, name: str) -> None:
        """GC105 unless *name* is a registered or query-local PATH view."""
        if name in self.local_path_views or self.catalog is None:
            return
        try:
            known = self.catalog.path_view(name) is not None
        except GCoreError:
            known = True  # resolution failure is not the query's fault
        if not known:
            self.emit(
                "GC105",
                f"path view {name!r} is not defined",
                anchor=name,
                hint="define it with a PATH clause or register it as a "
                "PATH view",
            )

    def check_graph_name(self, name: str) -> None:
        """GC101 unless *name* is a registered or query-local graph."""
        if name in self.local_graphs or self.catalog is None:
            return
        if not self.catalog.has_graph(name):
            self.emit(
                "GC101",
                f"graph {name!r} is not in the catalog",
                anchor=name,
                hint="register the graph or check the spelling",
            )

    # ------------------------------------------------------------------
    # Statement walk
    # ------------------------------------------------------------------
    def analyze_statement(self, statement: ast.Statement) -> None:
        if isinstance(statement, ast.GraphViewStmt):
            self.analyze_query(statement.query, None)
        else:
            self.analyze_query(statement, None)

    def analyze_query(self, query: ast.Query, outer: Optional[Scope]) -> None:
        # Heads bind names progressively: a PATH clause may reference
        # earlier PATH views, the body sees all of them.
        saved_graphs = set(self.local_graphs)
        saved_views = set(self.local_path_views)
        for head in query.heads:
            if isinstance(head, ast.PathClause):
                self._analyze_path_clause(head, outer)
                self.local_path_views.add(head.name)
            else:  # GraphClause
                self.analyze_query(head.query, outer)
                self.local_graphs.add(head.name)
        self._analyze_body(query.body, outer)
        self.local_graphs = saved_graphs
        self.local_path_views = saved_views

    def analyze_subquery(self, query: ast.Query, scope: Scope) -> None:
        """Hook for EXISTS (subquery) — correlated against *scope*."""
        self.analyze_query(query, scope)

    def _analyze_body(
        self, body: ast.QueryBody, outer: Optional[Scope]
    ) -> None:
        if isinstance(body, ast.GraphRefQuery):
            self.check_graph_name(body.name)
        elif isinstance(body, ast.SetOpQuery):
            self._analyze_body(body.left, outer)
            self._analyze_body(body.right, outer)
        else:
            self._analyze_basic(body, outer)

    def _analyze_path_clause(
        self, clause: ast.PathClause, outer: Optional[Scope]
    ) -> None:
        scope = Scope(outer)
        frame: Dict[str, object] = {}
        self._frames.append(frame)
        try:
            facts = facts_for_graph(self, None)
            for chain in clause.chains:
                collect_chain_sorts(self, scope, chain)
                check_chain_names(self, facts, chain)
                self._register_chain_vars(frame, chain, facts)
            check_condition(self, scope, clause.where, clause="WHERE")
            check_satisfiability(
                self, scope, clause.where,
                self._pattern_facts(clause.chains),
            )
            if clause.cost is not None:
                cost_type = infer_type(self, scope, clause.cost)
                if cost_type is not None and cost_type != "num":
                    self.emit(
                        "GC205",
                        f"COST expression has type {cost_type}, "
                        f"not numeric",
                    )
        finally:
            self._frames.pop()

    def _analyze_basic(
        self, basic: ast.BasicQuery, outer: Optional[Scope]
    ) -> None:
        frame: Dict[str, object] = {}
        self._frames.append(frame)
        try:
            scope = self._scope_for_basic(basic, outer, frame)
            if isinstance(basic.head, ast.ConstructClause):
                self._analyze_construct(basic.head, scope)
            else:
                self._analyze_select(basic.head, scope)
        finally:
            self._frames.pop()

    def _scope_for_basic(
        self,
        basic: ast.BasicQuery,
        outer: Optional[Scope],
        frame: Dict[str, object],
    ) -> Scope:
        if basic.from_table is not None:
            scope = Scope(outer)
            self._bind_table_columns(scope, basic.from_table)
            return scope

        scope = collect_match_scope(self, basic.match, outer)
        if basic.match is None:
            return scope
        blocks = (basic.match.block, *basic.match.optionals)
        for block in blocks:
            for location in block.patterns:
                facts = self._resolve_location(location, frame)
                check_chain_names(
                    self,
                    facts if isinstance(facts, GraphFacts) else None,
                    location.chain,
                )
                check_unbounded_paths(self, scope, location.chain)
            check_cartesian(self, block)
        for block in blocks:
            check_condition(self, scope, block.where, clause="WHERE")
            check_satisfiability(
                self,
                scope,
                block.where,
                self._pattern_facts(
                    location.chain for location in block.patterns
                ),
            )
        return scope

    def _resolve_location(
        self, location: ast.PatternLocation, frame: Dict[str, object]
    ) -> object:
        """The GraphFacts (or _UNKNOWN) a pattern's variables live in."""
        if isinstance(location.on, ast.Query):
            self.analyze_query(location.on, None)
            facts: object = _UNKNOWN
        elif isinstance(location.on, str):
            self.check_graph_name(location.on)
            facts = facts_for_graph(self, location.on)
        else:
            facts = facts_for_graph(self, None)
        self._register_chain_vars(frame, location.chain, facts)
        return facts

    def _register_chain_vars(
        self, frame: Dict[str, object], chain: ast.Chain, facts: object
    ) -> None:
        for element in chain.elements:
            var = getattr(element, "var", None)
            if var and var not in frame:
                frame[var] = facts

    def _bind_table_columns(self, scope: Scope, table_name: str) -> None:
        """FROM import: bind column names when the catalog knows them."""
        if self.catalog is None:
            scope.open = True
            return
        try:
            table = self.catalog.table(table_name)
        except GCoreError:
            self.emit(
                "GC102",
                f"table {table_name!r} is not in the catalog",
                anchor=table_name,
                hint="register the table or check the spelling",
            )
            scope.open = True
            return
        for column in table.columns:
            scope.sorts.setdefault(column, "value")

    @staticmethod
    def _pattern_facts(
        chains: Iterable[ast.Chain],
    ) -> List[Tuple[str, str, Scalar]]:
        """``(var, key, literal)`` equalities implied by property tests."""
        facts: List[Tuple[str, str, Scalar]] = []
        for chain in chains:
            for element in chain.elements:
                var = getattr(element, "var", None)
                if not var:
                    continue
                for key, expr in getattr(element, "prop_tests", ()):
                    if isinstance(expr, ast.Literal) and isinstance(
                        expr.value, (bool, int, float, str, Date)
                    ):
                        facts.append((var, key, expr.value))
        return facts

    # ------------------------------------------------------------------
    # Heads
    # ------------------------------------------------------------------
    def _analyze_construct(
        self, construct: ast.ConstructClause, scope: Scope
    ) -> None:
        collect_construct_sorts(self, scope, construct)
        facts = facts_for_graph(self, None)
        for item in construct.items:
            if isinstance(item, ast.GraphRefItem):
                self.check_graph_name(item.name)
                continue
            check_chain_names(self, facts, item.chain, construct=True)
            check_condition(self, scope, item.when, clause="WHEN")
            for assign in item.sets:
                if assign.expr is not None:
                    infer_type(
                        self, scope, assign.expr, allow_aggregates=True
                    )
            for element in item.chain.elements:
                for _key, expr in getattr(element, "assignments", ()):
                    infer_type(self, scope, expr, allow_aggregates=True)
                group = getattr(element, "group", None)
                for expr in group or ():
                    infer_type(self, scope, expr)

    def _analyze_select(self, select: ast.SelectClause, scope: Scope) -> None:
        for item in select.items:
            infer_type(self, scope, item.expr, allow_aggregates=True)
        for expr in select.group_by:
            infer_type(self, scope, expr)
        for expr, _ascending in select.order_by:
            infer_type(self, scope, expr, allow_aggregates=True)


def analyze(
    statement: Union[str, ast.Statement],
    catalog: Any = None,
) -> AnalysisResult:
    """Statically analyze *statement*, returning every diagnostic found.

    *statement* may be query text (diagnostics then carry source spans,
    and unparseable text yields a single ``GC001``) or a parsed
    :data:`~repro.lang.ast.Statement` (span-less diagnostics).
    *catalog* may be a :class:`~repro.catalog.Catalog`, a
    :class:`~repro.catalog.CatalogSnapshot`, or None to skip the
    catalog/schema/statistics checks.
    """
    spans: Optional[SpanIndex] = None
    if isinstance(statement, str):
        try:
            tokens = tokenize(statement)
            spans = SpanIndex(tokens)
            parser = Parser(tokens)
            parsed: ast.Statement = parser.statement()
            parser.expect_eof()
        except (LexerError, ParseError) as exc:
            line = getattr(exc, "line", 0) or None
            column = getattr(exc, "column", 0) or None
            return AnalysisResult(
                [
                    Diagnostic(
                        code="GC001",
                        severity="error",
                        message=str(exc),
                        line=line,
                        column=column,
                    )
                ]
            )
        statement = parsed
    analyzer = Analyzer(catalog=catalog, spans=spans)
    analyzer.analyze_statement(statement)
    return analyzer.result()
