"""Typed diagnostics: the stable vocabulary of the semantic analyzer.

Every finding of :mod:`repro.analysis` is a :class:`Diagnostic` carrying
a **stable machine-readable code** (``GC101``, ``GC201``, ...), a
severity, a human message, an optional source span (1-based line/column
from the lexer) and an optional fix hint. The codes are the wire
contract of ``POST /analyze`` and the exit-code contract of the batch
linter (``python -m repro.analysis``), mirroring how
:class:`~repro.errors.GCoreError` subclasses carry stable ``code``
values for the error envelope.

Code blocks, by the pass that emits them:

* ``GC0xx`` — the query does not lex/parse at all;
* ``GC1xx`` — name resolution against the catalog/schema/statistics
  (unknown graphs, tables, labels, properties, path views);
* ``GC2xx`` — variable sorts and expression types (Section 3 /
  Appendix A.1 static semantics);
* ``GC3xx`` — satisfiability (predicates provably false);
* ``GC4xx`` — cost smells (cartesian atoms, unbounded path patterns).

The registry (:data:`CODES`) is the single source of truth consumed by
``docs/analysis.md`` and the registry cross-check test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "SEVERITIES",
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "AnalysisResult",
    "severity_rank",
]

#: Severities, mildest first. The batch linter's exit code is the rank
#: of the worst finding (clean/info = 0, warning = 1, error = 2).
SEVERITIES: Tuple[str, ...] = ("info", "warning", "error")


def severity_rank(severity: str) -> int:
    """The numeric rank of *severity* (info=0, warning=1, error=2)."""
    return SEVERITIES.index(severity)


@dataclass(frozen=True)
class CodeInfo:
    """Registry metadata of one diagnostic code."""

    code: str
    name: str            # short kebab-case name, e.g. "unknown-label"
    severity: str        # default severity of the code
    summary: str         # one-line description for docs and tooling


#: The diagnostic-code registry. Codes are append-only and never reused;
#: ``docs/analysis.md`` documents one example query per code and a test
#: cross-checks the two (both directions).
CODES: Dict[str, CodeInfo] = {
    info.code: info
    for info in (
        CodeInfo("GC001", "parse-error", "error",
                 "the statement does not lex or parse"),
        CodeInfo("GC101", "unknown-graph", "error",
                 "the statement references a graph name not in the catalog"),
        CodeInfo("GC102", "unknown-table", "error",
                 "FROM references a table name not in the catalog"),
        CodeInfo("GC103", "unknown-label", "warning",
                 "a label test names a label absent from the target graph "
                 "(schema and statistics)"),
        CodeInfo("GC104", "unknown-property", "warning",
                 "a property access names a key no object of the target "
                 "graph carries"),
        CodeInfo("GC105", "unknown-path-view", "error",
                 "a regular path expression references an undefined PATH "
                 "view"),
        CodeInfo("GC201", "sort-clash", "error",
                 "a variable is used in positions of two different sorts "
                 "(node/edge/path/value)"),
        CodeInfo("GC202", "all-paths-projection", "error",
                 "an ALL-paths variable is used outside graph projection"),
        CodeInfo("GC203", "optional-shared-variable", "error",
                 "OPTIONAL blocks share a variable that does not occur in "
                 "the enclosing pattern"),
        CodeInfo("GC204", "unbound-variable", "error",
                 "an expression references a variable no pattern binds"),
        CodeInfo("GC205", "type-clash", "warning",
                 "a comparison or arithmetic mixes incompatible value types "
                 "(always false under Section 3 semantics)"),
        CodeInfo("GC206", "non-boolean-where", "error",
                 "a WHERE/WHEN condition cannot evaluate to a boolean"),
        CodeInfo("GC207", "aggregate-misuse", "error",
                 "an aggregate is used where no grouping context exists "
                 "(e.g. inside WHERE) or aggregates are nested"),
        CodeInfo("GC301", "always-false-predicate", "warning",
                 "a predicate is provably unsatisfiable (contradictory "
                 "conjuncts or constant-foldable to false)"),
        CodeInfo("GC302", "empty-label", "info",
                 "a label exists in the schema but matches zero objects of "
                 "the target graph"),
        CodeInfo("GC401", "cartesian-product", "warning",
                 "a MATCH block contains disconnected pattern components "
                 "(cartesian blow-up)"),
        CodeInfo("GC402", "unbounded-path", "warning",
                 "a path pattern's regular expression has unbounded "
                 "repetition (may traverse the whole graph)"),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, ready for the wire.

    ``line``/``column`` are 1-based lexer positions (``None`` when the
    analyzer ran over a bare AST with no source text, or when the
    finding has no anchoring token). ``hint`` is an optional one-line
    fix suggestion.
    """

    code: str
    severity: str
    message: str
    line: Optional[int] = None
    column: Optional[int] = None
    hint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code: {self.code!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity: {self.severity!r}")

    @property
    def name(self) -> str:
        """The registry name of this diagnostic's code."""
        return CODES[self.code].name

    def to_json(self) -> Dict[str, Any]:
        """The documented wire form (``docs/analysis.md``)."""
        payload: Dict[str, Any] = {
            "code": self.code,
            "name": self.name,
            "severity": self.severity,
            "message": self.message,
        }
        if self.line is not None:
            payload["line"] = self.line
            payload["column"] = self.column
        if self.hint is not None:
            payload["hint"] = self.hint
        return payload

    def describe(self) -> str:
        """One human-readable line (REPL ``.lint``, EXPLAIN, CLI)."""
        where = f" [{self.line}:{self.column}]" if self.line is not None else ""
        hint = f" (hint: {self.hint})" if self.hint else ""
        return f"{self.code} {self.severity}{where}: {self.message}{hint}"


@dataclass
class AnalysisResult:
    """The ordered findings of one analyzer run.

    Diagnostics are sorted worst-first (then by source position and
    code) so the leading entry is always the most severe. Iterable and
    indexable like a list.
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.diagnostics = sorted(
            self.diagnostics,
            key=lambda d: (
                -severity_rank(d.severity),
                d.line if d.line is not None else 1 << 30,
                d.column if d.column is not None else 1 << 30,
                d.code,
                d.message,
            ),
        )

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __getitem__(self, index: int) -> Diagnostic:
        return self.diagnostics[index]

    # ------------------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "info"]

    @property
    def ok(self) -> bool:
        """True iff no error-level diagnostic was found."""
        return not self.errors

    @property
    def max_severity(self) -> Optional[str]:
        """The worst severity present, or None for a clean result."""
        if not self.diagnostics:
            return None
        return self.diagnostics[0].severity

    def exit_code(self) -> int:
        """The batch linter's exit code: rank of the worst finding.

        Clean and info-only results exit 0, warnings 1, errors 2.
        """
        worst = self.max_severity
        if worst is None or worst == "info":
            return 0
        return severity_rank(worst)

    def codes(self) -> List[str]:
        """The distinct codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def to_json(self) -> Dict[str, Any]:
        """The documented ``POST /analyze`` response body."""
        return {
            "ok": self.ok,
            "error_count": len(self.errors),
            "warning_count": len(self.warnings),
            "info_count": len(self.infos),
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }

    def describe(self) -> str:
        """Multi-line human rendering (one ``describe()`` line each)."""
        if not self.diagnostics:
            return "no diagnostics"
        return "\n".join(d.describe() for d in self.diagnostics)
