"""Pass 2 — expression type inference over the value lattice.

A conservative abstract interpretation of expressions against the value
semantics of :mod:`repro.model.values`: every expression is assigned a
type from the small lattice ``bool | num | str | date | list | node |
edge | path | None`` where ``None`` is "unknown" (property reads and
parameters are untyped without a schema). The pass only speaks when a
*known* type makes a construct suspicious, so unknown types never
produce noise:

* ``GC204 unbound-variable`` — a referenced variable no pattern binds
  (the runtime silently evaluates it to the empty value set);
* ``GC205 type-clash`` — cross-type comparison or arithmetic
  (``TRUE < 2`` is *false*, never an error, under Section 3 semantics —
  almost certainly not what the author meant);
* ``GC206 non-boolean-where`` — a WHERE/WHEN condition whose type is
  known and not boolean (``truthy`` maps it to False: empty result);
* ``GC207 aggregate-misuse`` — an aggregate outside a grouping context
  or nested inside another aggregate;
* ``GC202 all-paths-projection`` — an ALL-paths variable referenced in
  WHERE (mirrors the runtime :class:`~repro.errors.SemanticError`).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..algebra.aggregates import AGGREGATE_NAMES
from ..lang import ast
from ..model.values import Date
from .scopes import Scope, collect_chain_sorts

if TYPE_CHECKING:  # pragma: no cover
    from .analyzer import Analyzer

__all__ = ["infer_type", "check_condition"]

#: Built-in (non-aggregate) function result types; None = depends on args.
_BUILTIN_TYPES = {
    "nodes": "list",
    "edges": "list",
    "labels": "list",
    "size": "num",
    "length": "num",
    "cost": "num",
    "id": "num",
    "tostring": "str",
    "tointeger": "num",
    "tofloat": "num",
    "abs": "num",
    "coalesce": None,
}

#: Builtins that only make sense over a path argument.
_PATH_FUNCS = frozenset({"nodes", "edges", "length", "cost"})

#: Types with a defined order relation among themselves.
_ORDERED = frozenset({"num", "str", "date"})

_ARITH_OPS = frozenset({"+", "-", "*", "/", "%"})
_ORDER_OPS = frozenset({"<", "<=", ">", ">="})


def _literal_type(value: object) -> Optional[str]:
    # bool is a subclass of int: test it first.
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "num"
    if isinstance(value, str):
        return "str"
    if isinstance(value, Date):
        return "date"
    return None


def infer_type(
    ctx: "Analyzer",
    scope: Scope,
    expr: Optional[ast.Expr],
    *,
    allow_aggregates: bool = False,
    in_aggregate: bool = False,
    in_where: bool = False,
) -> Optional[str]:
    """The lattice type of *expr*, emitting diagnostics along the way.

    ``allow_aggregates`` marks grouping contexts (SELECT items, ORDER
    BY, CONSTRUCT property assignments); ``in_aggregate`` marks being
    inside an aggregate call already (nesting is GC207); ``in_where``
    marks WHERE/WHEN subtrees, where ALL-paths variables are illegal.
    """
    if expr is None:
        return None

    if isinstance(expr, ast.Literal):
        return _literal_type(expr.value)

    if isinstance(expr, ast.Param):
        return None

    if isinstance(expr, ast.ListLiteral):
        for item in expr.items:
            infer_type(
                ctx, scope, item,
                allow_aggregates=allow_aggregates,
                in_aggregate=in_aggregate, in_where=in_where,
            )
        return "list"

    if isinstance(expr, ast.Var):
        sort = scope.sort_of(expr.name)
        if sort is None:
            if not scope.is_open():
                ctx.emit(
                    "GC204",
                    f"variable {expr.name!r} is not bound by any pattern",
                    anchor=expr.name,
                    hint="bind it in MATCH, or check the spelling",
                )
            return None
        if in_where and scope.is_all_paths(expr.name):
            ctx.emit(
                "GC202",
                f"ALL-paths variable {expr.name!r} may only be used for "
                f"graph projection",
                anchor=expr.name,
                hint="use a SHORTEST path or move the use into CONSTRUCT",
            )
        if sort == "value":
            return None
        return sort  # node | edge | path

    if isinstance(expr, ast.Prop):
        base = infer_type(
            ctx, scope, expr.base,
            allow_aggregates=allow_aggregates,
            in_aggregate=in_aggregate, in_where=in_where,
        )
        if base in ("bool", "num", "str", "date", "list"):
            ctx.emit(
                "GC205",
                f"property access .{expr.key} on a {base} value",
                anchor=expr.key,
            )
        ctx.note_property(scope, expr)
        return None

    if isinstance(expr, ast.LabelTest):
        if scope.sort_of(expr.var) is None:
            if not scope.is_open():
                ctx.emit(
                    "GC204",
                    f"variable {expr.var!r} is not bound by any pattern",
                    anchor=expr.var,
                    hint="bind it in MATCH, or check the spelling",
                )
        else:
            ctx.note_label_test(scope, expr)
        return "bool"

    if isinstance(expr, ast.Unary):
        operand = infer_type(
            ctx, scope, expr.operand,
            allow_aggregates=allow_aggregates,
            in_aggregate=in_aggregate, in_where=in_where,
        )
        if expr.op == "not":
            if operand is not None and operand != "bool":
                ctx.emit(
                    "GC205",
                    f"NOT applied to a {operand} operand "
                    f"(only TRUE is truthy; this is constantly false)",
                )
            return "bool"
        # unary +/-
        if operand is not None and operand != "num":
            ctx.emit(
                "GC205",
                f"unary {expr.op!r} applied to a {operand} operand",
            )
        return "num"

    if isinstance(expr, ast.Binary):
        return _infer_binary(
            ctx, scope, expr,
            allow_aggregates=allow_aggregates,
            in_aggregate=in_aggregate, in_where=in_where,
        )

    if isinstance(expr, ast.FuncCall):
        return _infer_call(
            ctx, scope, expr,
            allow_aggregates=allow_aggregates,
            in_aggregate=in_aggregate, in_where=in_where,
        )

    if isinstance(expr, ast.CaseExpr):
        branch_types = set()
        for condition, value in expr.whens:
            check_condition(
                ctx, scope, condition, clause="CASE WHEN",
                allow_aggregates=allow_aggregates, in_where=in_where,
            )
            branch_types.add(infer_type(
                ctx, scope, value,
                allow_aggregates=allow_aggregates,
                in_aggregate=in_aggregate, in_where=in_where,
            ))
        if expr.default is not None:
            branch_types.add(infer_type(
                ctx, scope, expr.default,
                allow_aggregates=allow_aggregates,
                in_aggregate=in_aggregate, in_where=in_where,
            ))
        if len(branch_types) == 1:
            return branch_types.pop()
        return None

    if isinstance(expr, ast.Index):
        base = infer_type(
            ctx, scope, expr.base,
            allow_aggregates=allow_aggregates,
            in_aggregate=in_aggregate, in_where=in_where,
        )
        index = infer_type(
            ctx, scope, expr.index,
            allow_aggregates=allow_aggregates,
            in_aggregate=in_aggregate, in_where=in_where,
        )
        if base is not None and base != "list":
            ctx.emit("GC205", f"indexing into a {base} value")
        if index is not None and index != "num":
            ctx.emit("GC205", f"list index of type {index}")
        return None

    if isinstance(expr, ast.ExistsQuery):
        ctx.analyze_subquery(expr.query, scope)
        return "bool"

    if isinstance(expr, ast.ExistsPattern):
        # The pattern shares variables with the enclosing scope; fold it
        # into a child scope so sort clashes against outer bindings are
        # caught without leaking new bindings outward.
        collect_chain_sorts(ctx, Scope(scope), expr.chain)
        ctx.note_chain(scope, expr.chain)
        return "bool"

    return None


def _infer_binary(
    ctx: "Analyzer", scope: Scope, expr: ast.Binary, *,
    allow_aggregates: bool, in_aggregate: bool, in_where: bool,
) -> Optional[str]:
    left = infer_type(
        ctx, scope, expr.left,
        allow_aggregates=allow_aggregates,
        in_aggregate=in_aggregate, in_where=in_where,
    )
    right = infer_type(
        ctx, scope, expr.right,
        allow_aggregates=allow_aggregates,
        in_aggregate=in_aggregate, in_where=in_where,
    )
    op = expr.op

    if op in ("and", "or"):
        for side, side_type in (("left", left), ("right", right)):
            if side_type is not None and side_type != "bool":
                ctx.emit(
                    "GC205",
                    f"{side} operand of {op.upper()} has type {side_type} "
                    f"(only TRUE is truthy; this operand is constantly "
                    f"false)",
                )
        return "bool"

    if op in ("=", "<>"):
        if left is not None and right is not None and left != right:
            ctx.emit(
                "GC205",
                f"comparison of {left} with {right} is always "
                f"{'false' if op == '=' else 'true'} "
                f"(cross-type equality never holds)",
            )
        return "bool"

    if op in _ORDER_OPS:
        clash = None
        if left is not None and right is not None and left != right:
            clash = f"ordered comparison of {left} with {right}"
        elif "bool" in (left, right):
            # TRUE < 2 and TRUE < FALSE alike: booleans have no order.
            clash = "ordered comparison involving a bool operand"
        elif (left is not None and left not in _ORDERED) or (
            right is not None and right not in _ORDERED
        ):
            clash = (
                f"ordered comparison over "
                f"{left or right} values (no order defined)"
            )
        if clash:
            ctx.emit(
                "GC205",
                f"{clash} is always false under Section 3 semantics",
            )
        return "bool"

    if op == "in":
        if right is not None and right != "list":
            ctx.emit("GC205", f"IN over a {right} value (expected a list)")
        return "bool"

    if op == "subset":
        return "bool"

    if op in _ARITH_OPS:
        if op == "+" and left == "str" and right == "str":
            return "str"
        for side_type in (left, right):
            if side_type is not None and side_type != "num":
                ctx.emit(
                    "GC205",
                    f"arithmetic {op!r} over a {side_type} operand "
                    f"(raises at evaluation time)",
                )
        return "num"

    return None


def _infer_call(
    ctx: "Analyzer", scope: Scope, expr: ast.FuncCall, *,
    allow_aggregates: bool, in_aggregate: bool, in_where: bool,
) -> Optional[str]:
    name = expr.name.lower()

    if name in AGGREGATE_NAMES:
        if in_aggregate:
            ctx.emit(
                "GC207",
                f"aggregate {name}() nested inside another aggregate",
                anchor=expr.name,
            )
        elif not allow_aggregates:
            ctx.emit(
                "GC207",
                f"aggregate {name}() used outside a grouping context",
                anchor=expr.name,
                hint="aggregates belong in SELECT items, ORDER BY or "
                "CONSTRUCT property assignments, not WHERE/GROUP BY",
            )
        for arg in expr.args:
            infer_type(
                ctx, scope, arg,
                allow_aggregates=allow_aggregates,
                in_aggregate=True, in_where=in_where,
            )
        if name == "collect":
            return "list"
        if name in ("count", "sum", "avg"):
            return "num"
        return None  # min/max: the argument's type

    arg_types = [
        infer_type(
            ctx, scope, arg,
            allow_aggregates=allow_aggregates,
            in_aggregate=in_aggregate, in_where=in_where,
        )
        for arg in expr.args
    ]
    if name in _PATH_FUNCS and arg_types:
        arg_type = arg_types[0]
        if arg_type in ("node", "edge"):
            ctx.emit(
                "GC201",
                f"{name}() expects a path but its argument is "
                f"a {arg_type} variable",
                hint=f"apply {name}() to a stored path variable",
            )
    return _BUILTIN_TYPES.get(name)


def check_condition(
    ctx: "Analyzer",
    scope: Scope,
    expr: Optional[ast.Expr],
    *,
    clause: str = "WHERE",
    allow_aggregates: bool = False,
    in_where: bool = True,
) -> None:
    """Type-check a boolean position (WHERE / WHEN / CASE WHEN)."""
    if expr is None:
        return
    inferred = infer_type(
        ctx, scope, expr,
        allow_aggregates=allow_aggregates,
        in_where=in_where,
    )
    if inferred is not None and inferred != "bool":
        ctx.emit(
            "GC206",
            f"{clause} condition has type {inferred}, not boolean "
            f"(it never holds: only TRUE is truthy)",
            hint="compare the value explicitly, e.g. `expr = TRUE` "
            "or `expr > 0`",
        )
