"""Source spans for diagnostics: a token-position index over query text.

The AST is made of frozen, position-free dataclasses (they are shared,
hashed and compared structurally by the planner and the plan caches), so
the analyzer cannot read spans off the nodes it visits. Instead, when
the analyzer is given the *source text*, it tokenizes it once and builds
an index from identifier spelling to the 1-based ``(line, column)`` of
its occurrences. A diagnostic about variable ``n`` or label ``Person``
then anchors at the first occurrence of that spelling — approximate for
repeated names, exact for the common case, and entirely optional (AST
input simply produces span-less diagnostics).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..lang.lexer import Token

__all__ = ["SpanIndex"]

Span = Tuple[int, int]


class SpanIndex:
    """Identifier spelling -> source positions, built from a token list."""

    def __init__(self, tokens: Sequence[Token] = ()) -> None:
        self._positions: Dict[str, List[Span]] = {}
        for token in tokens:
            if token.kind in ("IDENT", "PARAM"):
                text = token.text
            elif token.kind == "KEYWORD" and isinstance(token.value, str):
                # keyword-named labels (e.g. :End) keep their raw spelling
                # in .value; index both spellings.
                text = token.value
            else:
                continue
            self._positions.setdefault(text, []).append(
                (token.line, token.column)
            )

    def first(self, name: Optional[str]) -> Optional[Span]:
        """The first occurrence of *name*, or None when unindexed."""
        if not name:
            return None
        occurrences = self._positions.get(name)
        return occurrences[0] if occurrences else None

    def __bool__(self) -> bool:
        return bool(self._positions)
