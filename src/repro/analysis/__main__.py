"""Batch linting CLI: ``python -m repro.analysis FILE...``.

Each file may hold one statement or several separated by ``;``. Every
diagnostic prints as one ``file:line:col: CODE severity: message`` line;
the process exit code is the rank of the worst finding across all files
(0 = clean or info-only, 1 = warnings, 2 = errors), so the linter drops
straight into CI pipelines and pre-commit hooks.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, List, Optional, TextIO, Tuple

from .analyzer import analyze
from .diagnostics import AnalysisResult, Diagnostic


def split_statements(text: str) -> List[Tuple[int, str]]:
    """Split a corpus file on top-level ``;`` into ``(line, statement)``.

    Quote-aware (``'...'`` and ``"..."``) and comment-stripping
    (``# ...`` to end of line); *line* is the 1-based file line of the
    statement's first character, so diagnostics can be re-anchored to
    file positions.
    """
    statements: List[Tuple[int, str]] = []
    current: List[str] = []
    line = 1
    in_string: Optional[str] = None
    in_comment = False

    def flush() -> None:
        raw = "".join(current)
        stripped = raw.strip()
        if stripped:
            lead = len(raw) - len(raw.lstrip())
            start = line - raw.count("\n") + raw[:lead].count("\n")
            statements.append((start, stripped))
        current.clear()

    for ch in text:
        if ch == "\n":
            in_comment = False
            current.append(ch)
            line += 1
            continue
        if in_comment:
            continue
        if in_string is not None:
            if ch == in_string:
                in_string = None
            current.append(ch)
            continue
        if ch in ("'", '"'):
            in_string = ch
            current.append(ch)
        elif ch == "#":
            in_comment = True
        elif ch == ";":
            flush()
        else:
            current.append(ch)
    flush()
    return statements


def _render(path: str, start_line: int, diagnostic: Diagnostic) -> str:
    # Diagnostic spans are statement-relative; re-anchor to the file.
    line = start_line + (diagnostic.line - 1 if diagnostic.line else 0)
    column = diagnostic.column if diagnostic.column is not None else 1
    prefix = f"{path}:{line}:{column}"
    hint = f" (hint: {diagnostic.hint})" if diagnostic.hint else ""
    return (
        f"{prefix}: {diagnostic.code} {diagnostic.severity}: "
        f"{diagnostic.message}{hint}"
    )


def lint_paths(paths: Iterable[str], out: TextIO = sys.stdout) -> int:
    """Lint every statement of every file; returns the worst exit code."""
    worst = 0
    checked = 0
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            print(f"{path}: cannot read: {exc}", file=out)
            worst = max(worst, 2)
            continue
        for start_line, statement in split_statements(text):
            checked += 1
            result: AnalysisResult = analyze(statement)
            for diagnostic in result:
                print(_render(path, start_line, diagnostic), file=out)
            worst = max(worst, result.exit_code())
    print(
        f"checked {checked} statement(s); exit status {worst}",
        file=out,
    )
    return worst


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically lint G-CORE query files "
        "(exit code: 0 clean/info, 1 warnings, 2 errors).",
    )
    parser.add_argument(
        "files", nargs="+", metavar="FILE",
        help="query files; multiple statements separated by ';'",
    )
    args = parser.parse_args(argv)
    return lint_paths(args.files)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
