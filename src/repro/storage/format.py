"""The binary snapshot container: header, section table, primitives.

A snapshot file is a single self-describing container::

    +--------------------------------------------------------------+
    | header (28 bytes):                                           |
    |   magic "GCORSNAP" | u16 version | u16 flags                 |
    |   u64 directory offset | u32 directory length | u32 dir CRC  |
    +--------------------------------------------------------------+
    | section payloads, back to back (arbitrary binary)            |
    +--------------------------------------------------------------+
    | directory: JSON {"sections": {name: [offset, length, crc]},  |
    |                  "manifest": {...}}                          |
    +--------------------------------------------------------------+

All integers are little-endian. The directory lives at the *end* of the
file so section offsets never depend on the directory's own size; the
fixed-size header points at it. Every section (and the directory
itself) carries a CRC-32 which readers verify lazily — on the first
access of each section — so opening a large snapshot stays O(header),
while corruption is still caught before any decoded value is used.

:class:`SnapshotWriter` accumulates named sections and writes the
container; :class:`SnapshotReader` maps (or reads) a file and serves
``memoryview`` windows over it. The value/identifier entry encodings
shared by the graph sections live here too, so
:mod:`repro.storage.snapshot` (encode) and
:mod:`repro.storage.flatstore` (decode) agree on one wire form.
"""

from __future__ import annotations

import json
import mmap as mmap_module
import struct
import sys
import zlib
from array import array
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from ..errors import SnapshotFormatError, SnapshotVersionError
from ..model.values import Date

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "SnapshotReader",
    "SnapshotWriter",
    "decode_entry_table",
    "decode_id",
    "decode_scalar",
    "encode_entry_table",
    "encode_id",
    "encode_scalar",
    "pack_u32",
    "read_u32",
]

MAGIC = b"GCORSNAP"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sHHQII")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_DATE = struct.Struct("<qqq")
_U32_MAX = 0xFFFFFFFF


# ---------------------------------------------------------------------------
# Integer-array primitives
# ---------------------------------------------------------------------------

def pack_u32(values: Iterable[int]) -> bytes:
    """Little-endian ``u32`` array bytes for *values*."""
    arr = array("I", values)
    if arr.itemsize != 4:  # pragma: no cover - no 4-byte "I" on this host
        arr = array("L", values)
    if sys.byteorder == "big":  # pragma: no cover - LE hosts everywhere
        arr = array(arr.typecode, arr)
        arr.byteswap()
    return arr.tobytes()


def read_u32(buffer: memoryview) -> Sequence[int]:
    """An indexable ``u32`` view over little-endian *buffer*.

    On little-endian hosts this is a zero-copy ``memoryview.cast``
    straight over the mapped file; big-endian hosts fall back to a
    byte-swapped ``array`` copy.
    """
    if len(buffer) % 4:
        raise SnapshotFormatError(
            f"u32 section length {len(buffer)} is not a multiple of 4"
        )
    if sys.byteorder == "big":  # pragma: no cover - LE hosts everywhere
        arr = array("I")
        arr.frombytes(bytes(buffer))
        arr.byteswap()
        return arr
    return buffer.cast("I")


# ---------------------------------------------------------------------------
# Tagged entries: identifiers and literal scalars
# ---------------------------------------------------------------------------

def encode_id(value: Any) -> bytes:
    """One tagged identifier entry (``str`` or ``int``)."""
    if isinstance(value, bool):
        raise SnapshotFormatError(
            f"cannot snapshot identifier {value!r}: booleans are not "
            f"supported identifier types"
        )
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    if isinstance(value, int):
        if -(2**63) <= value < 2**63:
            return b"i" + _I64.pack(value)
        return b"I" + str(value).encode("ascii")
    raise SnapshotFormatError(
        f"cannot snapshot identifier {value!r}: only str and int "
        f"identifiers are supported"
    )


def decode_id(entry: memoryview) -> Any:
    tag = bytes(entry[:1])
    if tag == b"s":
        return str(entry[1:], "utf-8")
    if tag == b"i":
        return _I64.unpack(entry[1:9])[0]
    if tag == b"I":
        return int(bytes(entry[1:]))
    raise SnapshotFormatError(f"unknown identifier tag {tag!r}")


def encode_scalar(value: Any) -> bytes:
    """One tagged literal entry (the 5 PPG scalar types)."""
    if isinstance(value, bool):
        return b"b" + (b"\x01" if value else b"\x00")
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    if isinstance(value, int):
        if -(2**63) <= value < 2**63:
            return b"i" + _I64.pack(value)
        return b"I" + str(value).encode("ascii")
    if isinstance(value, float):
        return b"f" + _F64.pack(value)
    if isinstance(value, Date):
        return b"d" + _DATE.pack(value.year, value.month, value.day)
    raise SnapshotFormatError(
        f"cannot snapshot property value {value!r}: not a PPG literal"
    )


def decode_scalar(entry: memoryview) -> Any:
    tag = bytes(entry[:1])
    if tag == b"b":
        return entry[1] != 0
    if tag == b"s":
        return str(entry[1:], "utf-8")
    if tag == b"i":
        return _I64.unpack(entry[1:9])[0]
    if tag == b"I":
        return int(bytes(entry[1:]))
    if tag == b"f":
        return _F64.unpack(entry[1:9])[0]
    if tag == b"d":
        year, month, day = _DATE.unpack(entry[1:25])
        return Date(year, month, day)
    raise SnapshotFormatError(f"unknown scalar tag {tag!r}")


def encode_entry_table(entries: Sequence[bytes]) -> bytes:
    """``u32 count | u32 offsets[count+1] | blob`` of variable entries."""
    offsets = [0]
    for entry in entries:
        offsets.append(offsets[-1] + len(entry))
    return b"".join(
        (pack_u32([len(entries)]), pack_u32(offsets), *entries)
    )


def decode_entry_table(buffer: memoryview, decode_one) -> List[Any]:
    """Decode every entry of an :func:`encode_entry_table` section."""
    if len(buffer) < 4:
        raise SnapshotFormatError("entry table shorter than its count field")
    count = read_u32(buffer[:4])[0]
    table_end = 4 + 4 * (count + 1)
    if len(buffer) < table_end:
        raise SnapshotFormatError("entry table shorter than its offsets")
    offsets = read_u32(buffer[4:table_end])
    blob = buffer[table_end:]
    if count and offsets[count] > len(blob):
        raise SnapshotFormatError("entry table offsets exceed the blob")
    return [
        decode_one(blob[offsets[index]:offsets[index + 1]])
        for index in range(count)
    ]


# ---------------------------------------------------------------------------
# Container writer / reader
# ---------------------------------------------------------------------------

class SnapshotWriter:
    """Accumulates named sections and writes one snapshot container."""

    def __init__(self) -> None:
        self._sections: List[Tuple[str, bytes]] = []
        self._names: set = set()

    def add(self, name: str, payload: bytes) -> None:
        if name in self._names:
            raise SnapshotFormatError(f"duplicate snapshot section {name!r}")
        self._names.add(name)
        self._sections.append((name, payload))

    def write(self, path: str, manifest: Dict[str, Any]) -> None:
        directory: Dict[str, List[int]] = {}
        offset = _HEADER.size
        for name, payload in self._sections:
            directory[name] = [offset, len(payload), zlib.crc32(payload)]
            offset += len(payload)
        directory_blob = json.dumps(
            {"sections": directory, "manifest": manifest},
            separators=(",", ":"),
            sort_keys=True,
        ).encode("utf-8")
        header = _HEADER.pack(
            MAGIC,
            FORMAT_VERSION,
            0,
            offset,
            len(directory_blob),
            zlib.crc32(directory_blob),
        )
        with open(path, "wb") as handle:
            handle.write(header)
            for _name, payload in self._sections:
                handle.write(payload)
            handle.write(directory_blob)


class SnapshotReader:
    """A mapped (or loaded) snapshot container serving section views.

    With ``use_mmap=True`` (the default) the file is mapped read-only and
    every section is a zero-copy window into the mapping, shared between
    all processes that open the same path. ``use_mmap=False`` reads the
    file into one ``bytes`` object instead — same decode paths, no OS
    mapping (handy on filesystems where ``mmap`` is unavailable).
    Section CRCs verify on first access; :meth:`verify_all` forces a
    full pass (``tools``/tests).
    """

    def __init__(self, path: str, use_mmap: bool = True) -> None:
        self.path = path
        self._mmap = None
        self._closed = False
        with open(path, "rb") as handle:
            if use_mmap:
                try:
                    self._mmap = mmap_module.mmap(
                        handle.fileno(), 0, access=mmap_module.ACCESS_READ
                    )
                    data: Any = self._mmap
                except (ValueError, OSError):
                    # Empty file or a filesystem without mmap: fall back
                    # to an in-memory read; decoding is identical.
                    self._mmap = None
                    handle.seek(0)
                    data = handle.read()
            else:
                data = handle.read()
        self._buffer = memoryview(data)
        self._verified: set = set()
        try:
            self._read_directory()
        except SnapshotFormatError:
            self.close()
            raise

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Release the mapping (idempotent); section views go invalid.

        Graphs opened from this reader hold zero-copy views into the
        mapping; while any of those are alive the OS mapping cannot be
        torn down, so close degrades to "closed for new reads" and the
        mapping itself is released when the last view is collected.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._buffer.release()
        except BufferError:
            pass
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError:
                pass
            self._mmap = None

    def __enter__(self) -> "SnapshotReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def mapped(self) -> bool:
        """True when the file is served from an OS memory mapping."""
        return self._mmap is not None

    # -- decoding -------------------------------------------------------
    def _read_directory(self) -> None:
        if len(self._buffer) < _HEADER.size:
            raise SnapshotFormatError(
                f"{self.path}: file too short for a snapshot header"
            )
        magic, version, _flags, dir_offset, dir_len, dir_crc = _HEADER.unpack(
            self._buffer[: _HEADER.size]
        )
        if magic != MAGIC:
            raise SnapshotFormatError(
                f"{self.path}: not a G-CORE snapshot (bad magic {magic!r})"
            )
        if version != FORMAT_VERSION:
            raise SnapshotVersionError(version, FORMAT_VERSION)
        if dir_offset + dir_len > len(self._buffer):
            raise SnapshotFormatError(
                f"{self.path}: directory extends past end of file"
            )
        directory_blob = self._buffer[dir_offset : dir_offset + dir_len]
        if zlib.crc32(directory_blob) != dir_crc:
            raise SnapshotFormatError(
                f"{self.path}: directory checksum mismatch (corrupt file)"
            )
        try:
            decoded = json.loads(bytes(directory_blob))
            self._directory: Dict[str, List[int]] = decoded["sections"]
            self.manifest: Dict[str, Any] = decoded["manifest"]
        except (ValueError, KeyError, TypeError) as exc:
            raise SnapshotFormatError(
                f"{self.path}: undecodable directory ({exc})"
            ) from None

    def section_names(self) -> List[str]:
        return sorted(self._directory)

    def has_section(self, name: str) -> bool:
        return name in self._directory

    def section(self, name: str) -> memoryview:
        """The payload of section *name*; CRC-verified on first access."""
        entry = self._directory.get(name)
        if entry is None:
            raise SnapshotFormatError(
                f"{self.path}: missing snapshot section {name!r}"
            )
        offset, length, crc = entry
        if offset + length > len(self._buffer):
            raise SnapshotFormatError(
                f"{self.path}: section {name!r} extends past end of file"
            )
        view = self._buffer[offset : offset + length]
        if name not in self._verified:
            if zlib.crc32(view) != crc:
                raise SnapshotFormatError(
                    f"{self.path}: checksum mismatch in section {name!r} "
                    f"(corrupt file)"
                )
            self._verified.add(name)
        return view

    def verify_all(self) -> None:
        """Eagerly CRC-check every section (integrity sweep)."""
        for name in self._directory:
            self.section(name)
