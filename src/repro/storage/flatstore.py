"""Array-backed graph storage decoded from a mapped snapshot.

:class:`FlatGraphStore` is the read surface over one graph's snapshot
sections: identifier tables, ``u32`` endpoint/path arrays, per-label
bitsets, dictionary-encoded property columns, pre-sorted adjacency CSRs
and serialized planner statistics — all served as ``array``/
``memoryview`` reads over the reader's buffer, zero-copy under ``mmap``.

:class:`FlatPathPropertyGraph` plugs that store into the engine's
:class:`~repro.model.graph.PathPropertyGraph` contract. Everything is
lazy: the identifier tuples, the id -> position index and the node/
edge/path frozensets decode on first use (so opening a snapshot costs
the manifest, not the graph); ``rho``/``delta``/``lambda``/``sigma`` are lazy
:class:`~collections.abc.Mapping` implementations that decode per
object on demand and materialize a plain dict only when a consumer
genuinely needs the whole assignment (set operations, equality). The
derived indexes the columnar executor probes — label-bucketed adjacency
and label membership — decode straight from the stored CSRs and
bitsets, skipping the build-and-sort pass dict-backed graphs pay.

Flat graphs are **immutable snapshots**: :func:`repro.model.delta.apply_delta`
reads them through the public accessors and assembles a plain dict-backed
graph, so the first update copies-on-write out of the mapping and later
epochs live in the ordinary mutable store (the MVCC model is unchanged).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from collections.abc import Mapping
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from ..errors import SnapshotFormatError
from ..model.graph import ObjectId, PathPropertyGraph
from .format import (
    SnapshotReader,
    decode_entry_table,
    decode_id,
    decode_scalar,
    read_u32,
)

__all__ = ["FlatGraphStore", "FlatPathPropertyGraph"]


def _iter_bits(bits: memoryview):
    """Yield the set bit positions of a little-endian bitset."""
    for byte_index, byte in enumerate(bits):
        while byte:
            low = byte & -byte
            yield (byte_index << 3) + low.bit_length() - 1
            byte &= byte - 1


class FlatGraphStore:
    """Decoded section handles for one graph inside a snapshot."""

    __slots__ = (
        "reader",
        "name",
        "prefix",
        "node_count",
        "edge_count",
        "path_count",
        "_ids",
        "_index",
        "_rho_arrays",
        "_adj_out",
        "_adj_in",
        "_label_names",
        "_label_index",
        "_path_starts",
        "_path_seq",
        "_prop_keys",
        "_prop_values",
        "_prop_columns",
    )

    def __init__(self, reader: SnapshotReader, entry: Dict[str, Any]) -> None:
        self.reader = reader
        self.name: str = entry["name"]
        self.prefix: str = entry["prefix"]
        self.node_count: int = entry["nodes"]
        self.edge_count: int = entry["edges"]
        self.path_count: int = entry["paths"]
        # Construction never touches the data sections — opening a
        # snapshot is O(manifest), not O(graph); the cold-start bench
        # gates this. Identifier/endpoint decodes happen on first read.
        self._ids: Optional[Tuple[ObjectId, ...]] = None
        self._index: Optional[Dict[ObjectId, int]] = None
        self._rho_arrays = None
        self._adj_out = {
            key: None for key in entry.get("adj_out", ())
        }  # label-or-"*" -> decoded CSR dict (filled lazily)
        self._adj_in = {key: None for key in entry.get("adj_in", ())}
        self._label_names: Optional[Tuple[str, ...]] = None
        self._label_index: Optional[Dict[str, int]] = None
        self._path_starts = None
        self._path_seq = None
        self._prop_keys: Optional[Tuple[str, ...]] = None
        self._prop_values: Optional[List[Any]] = None
        self._prop_columns: Optional[List[Optional[tuple]]] = None

    # -- raw sections ---------------------------------------------------
    def section(self, suffix: str) -> memoryview:
        return self.reader.section(self.prefix + suffix)

    # -- identifiers ----------------------------------------------------
    @property
    def ids(self) -> Tuple[ObjectId, ...]:
        """All identifiers by table position (nodes, edges, paths)."""
        if self._ids is None:
            ids = decode_entry_table(self.section("ids"), decode_id)
            expected = self.node_count + self.edge_count + self.path_count
            if len(ids) != expected:
                raise SnapshotFormatError(
                    f"{self.reader.path}: graph {self.name!r} identifier "
                    f"table has {len(ids)} entries, manifest says {expected}"
                )
            self._ids = tuple(ids)
        return self._ids

    @property
    def index(self) -> Dict[ObjectId, int]:
        """Identifier -> table position (built on first membership test)."""
        if self._index is None:
            self._index = {
                obj: position for position, obj in enumerate(self.ids)
            }
        return self._index

    @property
    def node_ids(self) -> Tuple[ObjectId, ...]:
        return self.ids[: self.node_count]

    @property
    def edge_ids(self) -> Tuple[ObjectId, ...]:
        return self.ids[self.node_count : self.node_count + self.edge_count]

    @property
    def path_ids(self) -> Tuple[ObjectId, ...]:
        return self.ids[self.node_count + self.edge_count :]

    # -- endpoints ------------------------------------------------------
    def _rho(self):
        if self._rho_arrays is None:
            rho = read_u32(self.section("rho"))
            if len(rho) != 2 * self.edge_count:
                raise SnapshotFormatError(
                    f"{self.reader.path}: graph {self.name!r} endpoint "
                    f"array has {len(rho)} entries for "
                    f"{self.edge_count} edges"
                )
            self._rho_arrays = (
                rho[: self.edge_count],
                rho[self.edge_count :],
            )
        return self._rho_arrays

    def endpoints_at(self, edge_pos: int) -> Tuple[ObjectId, ObjectId]:
        """``rho`` of the edge at table position *edge_pos* (0-based)."""
        src, dst = self._rho()
        return (self.ids[src[edge_pos]], self.ids[dst[edge_pos]])

    def iter_rho(self):
        """Yield ``(edge, (source, target))`` in stored (insertion) order."""
        ids = self.ids
        src, dst = self._rho()
        base = self.node_count
        for position in range(self.edge_count):
            yield ids[base + position], (ids[src[position]], ids[dst[position]])

    # -- stored paths ---------------------------------------------------
    def _path_arrays(self):
        if self._path_starts is None:
            buffer = read_u32(self.section("paths"))
            count = self.path_count
            self._path_starts = buffer[: count + 1]
            self._path_seq = buffer[count + 1 :]
        return self._path_starts, self._path_seq

    def sequence_at(self, path_pos: int) -> Tuple[ObjectId, ...]:
        starts, seq = self._path_arrays()
        ids = self.ids
        return tuple(
            ids[seq[position]]
            for position in range(starts[path_pos], starts[path_pos + 1])
        )

    # -- labels ---------------------------------------------------------
    @property
    def label_names(self) -> Tuple[str, ...]:
        if self._label_names is None:
            self._label_names = tuple(
                decode_entry_table(
                    self.section("labelnames"),
                    lambda view: str(view, "utf-8"),
                )
            )
            self._label_index = {
                name: position
                for position, name in enumerate(self._label_names)
            }
        return self._label_names

    def label_position(self, label: str) -> Optional[int]:
        self.label_names
        return self._label_index.get(label)

    def label_bitset(self, label_pos: int) -> memoryview:
        stride = (len(self.ids) + 7) >> 3
        bits = self.section("labelbits")
        return bits[label_pos * stride : (label_pos + 1) * stride]

    def labels_at(self, position: int) -> FrozenSet[str]:
        names = self.label_names
        byte_index = position >> 3
        bit = 1 << (position & 7)
        found = [
            name
            for label_pos, name in enumerate(names)
            if self.label_bitset(label_pos)[byte_index] & bit
        ]
        return frozenset(found)

    def labeled_positions(self) -> List[int]:
        """Table positions of every object carrying at least one label."""
        stride = (len(self.ids) + 7) >> 3
        if not stride or not self.label_names:
            return []
        union = bytearray(stride)
        for label_pos in range(len(self.label_names)):
            bits = self.label_bitset(label_pos)
            for byte_index, byte in enumerate(bits):
                union[byte_index] |= byte
        return list(_iter_bits(memoryview(union)))

    # -- properties -----------------------------------------------------
    @property
    def prop_keys(self) -> Tuple[str, ...]:
        if self._prop_keys is None:
            self._prop_keys = tuple(
                decode_entry_table(
                    self.section("propkeys"),
                    lambda view: str(view, "utf-8"),
                )
            )
        return self._prop_keys

    def _prop_value(self, value_pos: int) -> Any:
        if self._prop_values is None:
            self._prop_values = decode_entry_table(
                self.section("propvals"), decode_scalar
            )
        return self._prop_values[value_pos]

    def prop_column(self, key_pos: int):
        """``(object_positions, value_starts, value_indexes)`` of one key.

        ``object_positions`` is ascending, so per-object lookups bisect;
        all three are ``u32`` views straight over the mapping.
        """
        if self._prop_columns is None:
            self._prop_columns = [None] * len(self.prop_keys)
        column = self._prop_columns[key_pos]
        if column is None:
            buffer = read_u32(self.section("propcols"))
            key_count = len(self.prop_keys)
            offsets = buffer[: key_count + 1]
            body = buffer[key_count + 1 :]
            start, stop = offsets[key_pos], offsets[key_pos + 1]
            entry_count = body[start]
            objects = body[start + 1 : start + 1 + entry_count]
            starts = body[
                start + 1 + entry_count : start + 2 + 2 * entry_count
            ]
            values = body[start + 2 + 2 * entry_count : stop]
            column = (objects, starts, values)
            self._prop_columns[key_pos] = column
        return column

    def props_at(self, position: int) -> Dict[str, FrozenSet[Any]]:
        result: Dict[str, FrozenSet[Any]] = {}
        for key_pos, key in enumerate(self.prop_keys):
            objects, starts, values = self.prop_column(key_pos)
            slot = bisect_left(objects, position)
            if slot < len(objects) and objects[slot] == position:
                result[key] = frozenset(
                    self._prop_value(values[value_pos])
                    for value_pos in range(starts[slot], starts[slot + 1])
                )
        return result

    def propertied_positions(self) -> List[int]:
        """Ascending table positions of objects with at least one property."""
        merged: set = set()
        for key_pos in range(len(self.prop_keys)):
            objects, _starts, _values = self.prop_column(key_pos)
            merged.update(objects)
        return sorted(merged)

    # -- adjacency ------------------------------------------------------
    def adjacency(
        self, forward: bool, label: Optional[str]
    ) -> Dict[ObjectId, Tuple[ObjectId, ...]]:
        """The stored (direction, label) CSR as ``{node: (edges...)}``.

        Buckets were sorted by edge-identifier string at save time, so
        the decoded dict is exactly what
        :meth:`PathPropertyGraph.out_adjacency` would build. A label
        with no stored bucket labels no edge — the empty index.
        """
        buckets = self._adj_out if forward else self._adj_in
        if label is None:
            key = "*"
        else:
            label_pos = self.label_position(label)
            if label_pos is None:
                return {}
            key = str(label_pos)
        if key not in buckets:
            return {}
        decoded = buckets[key]
        if decoded is None:
            suffix = f"adj:{'out' if forward else 'in'}:{key}"
            buffer = read_u32(self.section(suffix))
            node_count = buffer[0]
            nodes = buffer[2 : 2 + node_count]
            starts = buffer[2 + node_count : 3 + 2 * node_count]
            edges = buffer[3 + 2 * node_count :]
            ids = self.ids
            decoded = {
                ids[nodes[slot]]: tuple(
                    ids[edges[position]]
                    for position in range(starts[slot], starts[slot + 1])
                )
                for slot in range(node_count)
            }
            buckets[key] = decoded
        return decoded

    # -- statistics -----------------------------------------------------
    def statistics_payload(self) -> Optional[Dict[str, Any]]:
        if not self.reader.has_section(self.prefix + "stats"):
            return None
        try:
            return json.loads(bytes(self.section("stats")))
        except ValueError as exc:
            raise SnapshotFormatError(
                f"{self.reader.path}: undecodable statistics for graph "
                f"{self.name!r} ({exc})"
            ) from None


# ---------------------------------------------------------------------------
# Lazy mapping views over the store
# ---------------------------------------------------------------------------

class _LazyMapping(Mapping):
    """Base of the store-backed ``rho``/``delta``/``lambda``/``sigma`` views.

    Per-object reads decode on demand; iteration and equality fall back
    to a one-time full materialization (cached), which keeps plain-dict
    semantics everywhere the engine (or :mod:`repro.model.setops`, which
    reaches into the private slots) treats these as dicts.
    """

    __slots__ = ("_store", "_full")

    def __init__(self, store: FlatGraphStore) -> None:
        self._store = store
        self._full: Optional[dict] = None

    def _materialize(self) -> dict:
        raise NotImplementedError

    def _dict(self) -> dict:
        if self._full is None:
            self._full = self._materialize()
        return self._full

    def __iter__(self):
        return iter(self._dict())

    def __len__(self) -> int:
        return len(self._dict())

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if isinstance(other, _LazyMapping):
            return self._dict() == other._dict()
        if isinstance(other, Mapping):
            return self._dict() == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"<{type(self).__name__} over {self._store.name!r}>"


class _FlatRho(_LazyMapping):
    """``rho``: edge -> (source, target), decoded from the u32 arrays."""

    __slots__ = ()

    def __getitem__(self, edge: ObjectId) -> Tuple[ObjectId, ObjectId]:
        store = self._store
        position = store.index.get(edge)
        if position is None:
            raise KeyError(edge)
        edge_pos = position - store.node_count
        if not 0 <= edge_pos < store.edge_count:
            raise KeyError(edge)
        return store.endpoints_at(edge_pos)

    def __len__(self) -> int:
        return self._store.edge_count

    def __iter__(self):
        return iter(self._store.edge_ids)

    def _materialize(self) -> dict:
        return dict(self._store.iter_rho())


class _FlatDelta(_LazyMapping):
    """``delta``: path -> alternating sequence, decoded from the CSR."""

    __slots__ = ()

    def __getitem__(self, path: ObjectId) -> Tuple[ObjectId, ...]:
        store = self._store
        position = store.index.get(path)
        if position is None:
            raise KeyError(path)
        path_pos = position - store.node_count - store.edge_count
        if not 0 <= path_pos < store.path_count:
            raise KeyError(path)
        return store.sequence_at(path_pos)

    def __len__(self) -> int:
        return self._store.path_count

    def __iter__(self):
        return iter(self._store.path_ids)

    def _materialize(self) -> dict:
        store = self._store
        return {
            path: store.sequence_at(path_pos)
            for path_pos, path in enumerate(store.path_ids)
        }


class _FlatLabels(_LazyMapping):
    """``lambda``: object -> label set, decoded from per-label bitsets.

    Mirrors the dict-backed invariant that only objects with a
    *non-empty* label set appear as keys.
    """

    __slots__ = ("_cache", "_carriers")

    def __init__(self, store: FlatGraphStore) -> None:
        super().__init__(store)
        self._cache: Dict[int, FrozenSet[str]] = {}
        self._carriers: Optional[List[int]] = None

    def _positions(self) -> List[int]:
        if self._carriers is None:
            self._carriers = self._store.labeled_positions()
        return self._carriers

    def __getitem__(self, obj: ObjectId) -> FrozenSet[str]:
        store = self._store
        position = store.index.get(obj)
        if position is None:
            raise KeyError(obj)
        labels = self._cache.get(position)
        if labels is None:
            labels = store.labels_at(position)
            self._cache[position] = labels
        if not labels:
            raise KeyError(obj)
        return labels

    def __len__(self) -> int:
        return len(self._positions())

    def __iter__(self):
        ids = self._store.ids
        return (ids[position] for position in self._positions())

    def _materialize(self) -> dict:
        store = self._store
        ids = store.ids
        return {
            ids[position]: store.labels_at(position)
            for position in self._positions()
        }


class _FlatProps(_LazyMapping):
    """``sigma``: object -> {key: value set}, from dictionary columns."""

    __slots__ = ("_cache", "_carriers")

    def __init__(self, store: FlatGraphStore) -> None:
        super().__init__(store)
        self._cache: Dict[int, Dict[str, FrozenSet[Any]]] = {}
        self._carriers: Optional[List[int]] = None

    def _positions(self) -> List[int]:
        if self._carriers is None:
            self._carriers = self._store.propertied_positions()
        return self._carriers

    def __getitem__(self, obj: ObjectId) -> Dict[str, FrozenSet[Any]]:
        store = self._store
        position = store.index.get(obj)
        if position is None:
            raise KeyError(obj)
        props = self._cache.get(position)
        if props is None:
            props = store.props_at(position)
            self._cache[position] = props
        if not props:
            raise KeyError(obj)
        return props

    def __len__(self) -> int:
        return len(self._positions())

    def __iter__(self):
        ids = self._store.ids
        return (ids[position] for position in self._positions())

    def _materialize(self) -> dict:
        store = self._store
        ids = store.ids
        return {
            ids[position]: store.props_at(position)
            for position in self._positions()
        }


# ---------------------------------------------------------------------------
# The graph
# ---------------------------------------------------------------------------

class FlatPathPropertyGraph(PathPropertyGraph):
    """A :class:`PathPropertyGraph` served from a :class:`FlatGraphStore`.

    Equality, query results and public accessors are indistinguishable
    from the dict-backed original the snapshot was saved from (the
    round-trip property suite pins this). The differences are all
    operational: construction is O(identifiers), adjacency and label
    indexes decode from pre-built sections instead of being recomputed,
    and property/label payloads stay in the mapped file until touched.
    """

    __slots__ = ("_flat", "_node_set", "_edge_set", "_path_set")

    # ``_nodes``/``_edges``/``_paths`` shadow the base-class slots with
    # lazy properties: the frozensets decode from the id table on first
    # access, which keeps ``GCoreEngine.open`` O(manifest) instead of
    # O(graph). Base-class code reading the "slots" resolves to these
    # through the MRO, so every consumer sees ordinary frozensets.
    @property
    def _nodes(self) -> FrozenSet[ObjectId]:
        cached = self._node_set
        if cached is None:
            cached = frozenset(self._flat.node_ids)
            self._node_set = cached
        return cached

    @property
    def _edges(self) -> FrozenSet[ObjectId]:
        cached = self._edge_set
        if cached is None:
            cached = frozenset(self._flat.edge_ids)
            self._edge_set = cached
        return cached

    @property
    def _paths(self) -> FrozenSet[ObjectId]:
        cached = self._path_set
        if cached is None:
            cached = frozenset(self._flat.path_ids)
            self._path_set = cached
        return cached

    @classmethod
    def _from_store(
        cls, store: FlatGraphStore, name: str = ""
    ) -> "FlatPathPropertyGraph":
        graph = cls.__new__(cls)
        graph._flat = store
        graph._node_set = None
        graph._edge_set = None
        graph._path_set = None
        graph._rho = _FlatRho(store)
        graph._delta = _FlatDelta(store)
        graph._labels = _FlatLabels(store)
        graph._props = _FlatProps(store)
        graph._name = name
        graph._out_index = None
        graph._in_index = None
        graph._node_label_index = None
        graph._edge_label_index = None
        graph._path_label_index = None
        graph._adjacency_cache = {}
        graph._statistics = None
        return graph

    @property
    def store(self) -> FlatGraphStore:
        """The backing store (snapshot path, section handles)."""
        return self._flat

    # -- derived indexes from stored sections ---------------------------
    def _build_adjacency(self) -> None:
        store = self._flat
        out_index: Dict[ObjectId, List[ObjectId]] = {
            node: [] for node in store.node_ids
        }
        in_index: Dict[ObjectId, List[ObjectId]] = {
            node: [] for node in store.node_ids
        }
        for edge, (src, dst) in store.iter_rho():
            out_index[src].append(edge)
            in_index[dst].append(edge)
        self._out_index = {n: tuple(es) for n, es in out_index.items()}
        self._in_index = {n: tuple(es) for n, es in in_index.items()}

    def _adjacency(
        self, forward: bool, label: Optional[str]
    ) -> Dict[ObjectId, Tuple[ObjectId, ...]]:
        key = ("out" if forward else "in", label)
        cached = self._adjacency_cache.get(key)
        if cached is None:
            cached = self._flat.adjacency(forward, label)
            self._adjacency_cache[key] = cached
        return cached

    def _build_label_indexes(self) -> None:
        store = self._flat
        node_end = store.node_count
        edge_end = node_end + store.edge_count
        ids = store.ids
        node_idx: Dict[str, set] = {}
        edge_idx: Dict[str, set] = {}
        path_idx: Dict[str, set] = {}
        for label_pos, label in enumerate(store.label_names):
            for position in _iter_bits(store.label_bitset(label_pos)):
                if position < node_end:
                    target = node_idx
                elif position < edge_end:
                    target = edge_idx
                else:
                    target = path_idx
                target.setdefault(label, set()).add(ids[position])
        self._node_label_index = {
            label: frozenset(objs) for label, objs in node_idx.items()
        }
        self._edge_label_index = {
            label: frozenset(objs) for label, objs in edge_idx.items()
        }
        self._path_label_index = {
            label: frozenset(objs) for label, objs in path_idx.items()
        }

    def statistics(self):
        if self._statistics is None:
            payload = self._flat.statistics_payload()
            if payload is None:
                return super().statistics()
            from ..model.statistics import GraphStatistics

            stats = GraphStatistics.__new__(GraphStatistics)
            stats.node_count = payload["node_count"]
            stats.edge_count = payload["edge_count"]
            stats.path_count = payload["path_count"]
            stats.node_label_counts = dict(payload["node_label_counts"])
            stats.edge_label_counts = dict(payload["edge_label_counts"])
            stats.path_label_counts = dict(payload["path_label_counts"])
            stats.edge_label_sources = dict(payload["edge_label_sources"])
            stats.edge_label_targets = dict(payload["edge_label_targets"])
            stats._node_prop_sel = dict(payload["node_prop_sel"])
            stats._edge_prop_sel = dict(payload["edge_prop_sel"])
            stats._path_prop_sel = dict(payload["path_prop_sel"])
            self._statistics = stats
        return self._statistics

    # -- identity-preserving clone --------------------------------------
    def with_name(self, name: str) -> "FlatPathPropertyGraph":
        """A shallow flat clone under a catalog *name*.

        The base implementation clones into a plain
        :class:`PathPropertyGraph`, which would silently drop the
        store-backed index overrides; flat graphs stay flat (the lazy
        views and decoded caches are shared — everything is read-only).
        """
        clone = FlatPathPropertyGraph.__new__(FlatPathPropertyGraph)
        clone._flat = self._flat
        clone._node_set = self._node_set
        clone._edge_set = self._edge_set
        clone._path_set = self._path_set
        for slot in PathPropertyGraph.__slots__:
            if slot in ("_nodes", "_edges", "_paths"):
                continue  # shadowed by the lazy properties above
            setattr(clone, slot, getattr(self, slot))
        clone._name = name
        return clone

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return (
            f"<FlatPathPropertyGraph{label}: {len(self._nodes)} nodes, "
            f"{len(self._edges)} edges, {len(self._paths)} paths "
            f"[{self._flat.reader.path}]>"
        )

    def __reduce__(self):
        """Pickle as a (path, graph, name) reference, not as payload.

        A worker that unpickles this attaches to the same snapshot file
        (via the process-level attach cache) instead of shipping the
        graph's contents over the pipe — the mapping is the shared
        medium, which is what makes spawn-mode pools viable.
        """
        from .snapshot import _reopen_graph

        return (
            _reopen_graph,
            (self._flat.reader.path, self._flat.name, self._name),
        )
