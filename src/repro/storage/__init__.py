"""Binary graph snapshots and the mmap array-backed store.

The Storage API in three calls::

    from repro.storage import save_snapshot, open_snapshot

    save_snapshot(engine.catalog, "catalog.gsnap")   # or engine.save(path)
    snapshot = open_snapshot("catalog.gsnap")        # mmap=True by default
    graph = snapshot.graph("snb")                    # FlatPathPropertyGraph

See ``docs/storage.md`` for the format layout, the mmap lifecycle and
the mutability rules.
"""

from .flatstore import FlatGraphStore, FlatPathPropertyGraph
from .format import FORMAT_VERSION, SnapshotReader, SnapshotWriter
from .snapshot import Snapshot, attach, open_snapshot, save_snapshot

__all__ = [
    "FORMAT_VERSION",
    "FlatGraphStore",
    "FlatPathPropertyGraph",
    "Snapshot",
    "SnapshotReader",
    "SnapshotWriter",
    "attach",
    "open_snapshot",
    "save_snapshot",
]
