"""Saving and opening catalog snapshots: the Storage API entry points.

:func:`save_snapshot` serializes a catalog's **base graphs** and tables
into one binary container (see :mod:`repro.storage.format` for the
layout); :func:`open_snapshot` maps a file back into a :class:`Snapshot`
of :class:`~repro.storage.flatstore.FlatPathPropertyGraph` instances.
Materialized views and path views are *not* serialized — they are
derived state, re-registered by re-running their definitions against
the reopened base graphs.

What one graph serializes to:

* an identifier table (nodes sorted by identifier, then edges in
  ``rho`` insertion order — preserved so the reopened graph's
  ``out_edges``/``in_edges`` lists replay the original order — then
  paths in ``delta`` order),
* ``u32`` source/target arrays and a path-sequence CSR over table
  positions,
* a label dictionary plus one bitset per label over table positions,
* property columns: a key dictionary, a value dictionary (tag-encoded
  scalars, keyed by *type-aware* identity so ``1`` and ``1.0`` survive
  as themselves), and per-key ascending ``(object, values)`` runs,
* one adjacency CSR per (direction, edge label) with buckets pre-sorted
  by edge-identifier string — exactly the index
  :meth:`~repro.model.graph.PathPropertyGraph.out_adjacency` builds,
* the graph's :class:`~repro.model.statistics.GraphStatistics` as JSON.

:func:`attach` keeps one process-level :class:`Snapshot` per path so
that worker processes (fork or spawn) resolve ``(path, graph)``
references against a single shared mapping; see
:mod:`repro.eval.parallel`.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List, Optional, Tuple

from ..errors import SnapshotFormatError, UnknownGraphError, UnknownTableError
from ..model.graph import ObjectId, PathPropertyGraph
from ..model.values import Date
from ..table import Table
from .flatstore import FlatGraphStore, FlatPathPropertyGraph
from .format import (
    SnapshotReader,
    SnapshotWriter,
    encode_entry_table,
    encode_id,
    encode_scalar,
    pack_u32,
)

__all__ = ["Snapshot", "attach", "open_snapshot", "save_snapshot"]


def _id_sort_key(obj: ObjectId) -> Tuple[str, str]:
    return (type(obj).__name__, str(obj))


def _value_key(value: Any) -> Tuple[str, Any]:
    """Dictionary identity of a scalar: type-aware, so ``1`` != ``1.0``.

    Python's ``==``/``hash`` conflate ``1``, ``1.0`` and ``True``; a
    value dictionary keyed on the raw scalar would silently rewrite one
    spelling into another across objects. Tagging with the concrete type
    name keeps every spelling distinct through the round trip.
    """
    return (type(value).__name__, value)


# ---------------------------------------------------------------------------
# Table (de)serialization — JSON cells with the io.py value tagging
# ---------------------------------------------------------------------------

def _cell_to_json(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Date):
        return {"$date": str(value)}
    if isinstance(value, frozenset):
        return {"$set": [_cell_to_json(item) for item in sorted(
            value, key=_value_key
        )]}
    raise SnapshotFormatError(
        f"cannot snapshot table cell {value!r}: not a literal"
    )


def _cell_from_json(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"$date"}:
            return Date.parse(value["$date"])
        if set(value) == {"$set"}:
            return frozenset(_cell_from_json(item) for item in value["$set"])
        raise SnapshotFormatError(f"unknown table cell tag {value!r}")
    return value


# ---------------------------------------------------------------------------
# Saving
# ---------------------------------------------------------------------------

def _edge_labels(graph: PathPropertyGraph) -> List[str]:
    labels: set = set()
    for edge in graph.edges:
        labels.update(graph.labels(edge))
    return sorted(labels)


def _encode_csr(
    adjacency: Dict[ObjectId, Tuple[ObjectId, ...]],
    index: Dict[ObjectId, int],
) -> bytes:
    """``u32 node_count | u32 edge_total | nodes | starts | edges``."""
    nodes = sorted(adjacency, key=index.__getitem__)
    starts = [0]
    edge_positions: List[int] = []
    for node in nodes:
        edge_positions.extend(index[edge] for edge in adjacency[node])
        starts.append(len(edge_positions))
    return pack_u32(
        [len(nodes), len(edge_positions)]
        + [index[node] for node in nodes]
        + starts
        + edge_positions
    )


def _serialize_graph(
    writer: SnapshotWriter, prefix: str, name: str, graph: PathPropertyGraph
) -> Dict[str, Any]:
    """Append one graph's sections; returns its manifest entry."""
    nodes = sorted(graph.nodes, key=_id_sort_key)
    rho = dict(graph.rho)
    delta = dict(graph.delta)
    edges = list(rho)
    paths = list(delta)
    ids: List[ObjectId] = [*nodes, *edges, *paths]
    index = {obj: position for position, obj in enumerate(ids)}
    if len(index) != len(ids):
        raise SnapshotFormatError(
            f"graph {name!r} has overlapping identifier sets"
        )
    writer.add(
        prefix + "ids", encode_entry_table([encode_id(obj) for obj in ids])
    )

    src = [index[rho[edge][0]] for edge in edges]
    dst = [index[rho[edge][1]] for edge in edges]
    writer.add(prefix + "rho", pack_u32(src) + pack_u32(dst))

    starts = [0]
    sequence: List[int] = []
    for path in paths:
        sequence.extend(index[obj] for obj in delta[path])
        starts.append(len(sequence))
    writer.add(prefix + "paths", pack_u32(starts) + pack_u32(sequence))

    label_map = graph.label_map()
    label_names = sorted({l for lbls in label_map.values() for l in lbls})
    label_positions = {l: i for i, l in enumerate(label_names)}
    writer.add(
        prefix + "labelnames",
        encode_entry_table([l.encode("utf-8") for l in label_names]),
    )
    stride = (len(ids) + 7) >> 3
    bitsets = bytearray(stride * len(label_names))
    for obj, labels in label_map.items():
        position = index[obj]
        byte_index, bit = position >> 3, 1 << (position & 7)
        for label in labels:
            bitsets[label_positions[label] * stride + byte_index] |= bit
    writer.add(prefix + "labelbits", bytes(bitsets))

    property_map = graph.property_map()
    prop_keys = sorted({k for props in property_map.values() for k in props})
    key_positions = {k: i for i, k in enumerate(prop_keys)}
    writer.add(
        prefix + "propkeys",
        encode_entry_table([k.encode("utf-8") for k in prop_keys]),
    )
    value_slots: Dict[Tuple[str, Any], int] = {}
    values: List[Any] = []
    columns: List[List[Tuple[int, List[int]]]] = [[] for _ in prop_keys]
    for position, obj in enumerate(ids):
        props = property_map.get(obj)
        if not props:
            continue
        for key in sorted(props):
            run: List[int] = []
            for value in sorted(props[key], key=_value_key):
                slot = value_slots.get(_value_key(value))
                if slot is None:
                    slot = len(values)
                    value_slots[_value_key(value)] = slot
                    values.append(value)
                run.append(slot)
            columns[key_positions[key]].append((position, run))
    writer.add(
        prefix + "propvals",
        encode_entry_table([encode_scalar(value) for value in values]),
    )
    column_words: List[List[int]] = []
    for column in columns:
        starts = [0]
        value_refs: List[int] = []
        for _position, run in column:
            value_refs.extend(run)
            starts.append(len(value_refs))
        column_words.append(
            [len(column)]
            + [position for position, _run in column]
            + starts
            + value_refs
        )
    offsets = [len(prop_keys) + 1]
    for words in column_words:
        offsets.append(offsets[-1] + len(words))
    relative = [offset - offsets[0] for offset in offsets]
    writer.add(
        prefix + "propcols",
        pack_u32(relative) + b"".join(pack_u32(w) for w in column_words),
    )

    adj_out: List[str] = []
    adj_in: List[str] = []
    for label in [None, *_edge_labels(graph)]:
        key = "*" if label is None else str(label_positions[label])
        writer.add(
            f"{prefix}adj:out:{key}",
            _encode_csr(graph.out_adjacency(label), index),
        )
        writer.add(
            f"{prefix}adj:in:{key}",
            _encode_csr(graph.in_adjacency(label), index),
        )
        adj_out.append(key)
        adj_in.append(key)

    stats = graph.statistics()
    writer.add(
        prefix + "stats",
        json.dumps(
            {
                "node_count": stats.node_count,
                "edge_count": stats.edge_count,
                "path_count": stats.path_count,
                "node_label_counts": stats.node_label_counts,
                "edge_label_counts": stats.edge_label_counts,
                "path_label_counts": stats.path_label_counts,
                "edge_label_sources": stats.edge_label_sources,
                "edge_label_targets": stats.edge_label_targets,
                "node_prop_sel": stats._node_prop_sel,
                "edge_prop_sel": stats._edge_prop_sel,
                "path_prop_sel": stats._path_prop_sel,
            },
            separators=(",", ":"),
            sort_keys=True,
        ).encode("utf-8"),
    )

    return {
        "name": name,
        "prefix": prefix,
        "nodes": len(nodes),
        "edges": len(edges),
        "paths": len(paths),
        "adj_out": adj_out,
        "adj_in": adj_in,
    }


def save_snapshot(catalog, path: str) -> None:
    """Serialize *catalog*'s base graphs and tables into one file.

    *catalog* is a live :class:`~repro.catalog.Catalog` or a pinned
    :class:`~repro.catalog.CatalogSnapshot` — anything exposing
    ``graph_names``/``graph``/``is_base_graph``/``table_names``/
    ``table``/``default_graph_name``. For a consistent picture under
    concurrent writers, pass a snapshot (:meth:`GCoreEngine.save
    <repro.engine.GCoreEngine.save>` does). Views are not serialized;
    identifiers must be ``str`` or ``int`` and property values PPG
    literals, else :class:`~repro.errors.SnapshotFormatError`.
    """
    writer = SnapshotWriter()
    graphs: List[Dict[str, Any]] = []
    names = [
        name for name in catalog.graph_names() if catalog.is_base_graph(name)
    ]
    for position, name in enumerate(names):
        graphs.append(
            _serialize_graph(
                writer, f"g{position}:", name, catalog.graph(name)
            )
        )
    tables = {}
    for name in catalog.table_names():
        table = catalog.table(name)
        tables[name] = {
            "columns": list(table.columns),
            "rows": [
                [_cell_to_json(cell) for cell in row] for row in table.rows
            ],
        }
    writer.add(
        "tables",
        json.dumps(tables, separators=(",", ":"), sort_keys=True).encode(
            "utf-8"
        ),
    )
    default = catalog.default_graph_name
    manifest = {
        "graphs": graphs,
        "tables": sorted(tables),
        "default": default if default in names else None,
    }
    writer.write(path, manifest)


# ---------------------------------------------------------------------------
# Opening
# ---------------------------------------------------------------------------

class Snapshot:
    """An open snapshot file: named flat graphs, tables, the mapping.

    Graphs decode lazily — :meth:`graph` builds the
    :class:`FlatGraphStore` (identifier table only) on first request and
    caches the :class:`FlatPathPropertyGraph`. Close releases the
    mapping; graphs served from a closed snapshot must not be read
    further. Usable as a context manager.
    """

    def __init__(self, reader: SnapshotReader) -> None:
        self._reader = reader
        manifest = reader.manifest
        try:
            self._entries: Dict[str, Dict[str, Any]] = {
                entry["name"]: entry for entry in manifest["graphs"]
            }
            self._table_names: List[str] = list(manifest["tables"])
            self._default: Optional[str] = manifest["default"]
        except (KeyError, TypeError) as exc:
            reader.close()
            raise SnapshotFormatError(
                f"{reader.path}: malformed snapshot manifest ({exc})"
            ) from None
        self._graphs: Dict[str, FlatPathPropertyGraph] = {}
        self._tables: Optional[Dict[str, Table]] = None

    # -- lifecycle ------------------------------------------------------
    @property
    def path(self) -> str:
        return self._reader.path

    @property
    def mapped(self) -> bool:
        """True when served from an OS memory mapping (``mmap=True``)."""
        return self._reader.mapped

    def close(self) -> None:
        self._reader.close()

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def verify(self) -> None:
        """CRC-check every section now instead of on first access."""
        self._reader.verify_all()

    # -- contents -------------------------------------------------------
    def graph_names(self) -> List[str]:
        return sorted(self._entries)

    @property
    def default_graph_name(self) -> Optional[str]:
        return self._default

    def graph(self, name: str) -> FlatPathPropertyGraph:
        graph = self._graphs.get(name)
        if graph is None:
            entry = self._entries.get(name)
            if entry is None:
                raise UnknownGraphError(name, candidates=self._entries)
            store = FlatGraphStore(self._reader, entry)
            graph = FlatPathPropertyGraph._from_store(store, name)
            self._graphs[name] = graph
        return graph

    def table_names(self) -> List[str]:
        return sorted(self._table_names)

    def table(self, name: str) -> Table:
        if self._tables is None:
            try:
                payload = json.loads(bytes(self._reader.section("tables")))
            except ValueError as exc:
                raise SnapshotFormatError(
                    f"{self.path}: undecodable tables section ({exc})"
                ) from None
            self._tables = {
                table_name: Table(
                    spec["columns"],
                    [
                        [_cell_from_json(cell) for cell in row]
                        for row in spec["rows"]
                    ],
                    name=table_name,
                )
                for table_name, spec in payload.items()
            }
        if name not in self._tables:
            raise UnknownTableError(name, candidates=self._tables)
        return self._tables[name]

    def __repr__(self) -> str:
        return (
            f"<Snapshot {self.path!r}: {len(self._entries)} graphs, "
            f"{len(self._table_names)} tables, "
            f"{'mmap' if self.mapped else 'heap'}>"
        )


def open_snapshot(path: str, mmap: bool = True) -> Snapshot:
    """Open (and with ``mmap=True`` map) a snapshot file.

    Header and directory are validated eagerly — bad magic, a truncated
    file or a corrupt directory raise
    :class:`~repro.errors.SnapshotFormatError`, an unsupported format
    version :class:`~repro.errors.SnapshotVersionError` — while section
    payloads are checksum-verified on first access.
    """
    return Snapshot(SnapshotReader(path, use_mmap=mmap))


# ---------------------------------------------------------------------------
# Process-level attach cache (worker pools, pickled graph references)
# ---------------------------------------------------------------------------

_ATTACHED: Dict[str, Snapshot] = {}
_ATTACH_LOCK = threading.Lock()


def attach(path: str) -> Snapshot:
    """The process-wide :class:`Snapshot` for *path* (opened once).

    Worker processes resolve ``(path, graph)`` references through this
    cache, so N workers reading one snapshot share a single read-only
    mapping instead of N deserialized copies — and spawn-mode pools
    (no inherited address space) attach just as cheaply as forked ones.
    """
    key = os.path.abspath(path)
    with _ATTACH_LOCK:
        snapshot = _ATTACHED.get(key)
        if snapshot is None:
            snapshot = open_snapshot(key)
            _ATTACHED[key] = snapshot
        return snapshot


def detach_all() -> None:
    """Close every attached snapshot (tests)."""
    with _ATTACH_LOCK:
        snapshots = list(_ATTACHED.values())
        _ATTACHED.clear()
    for snapshot in snapshots:
        snapshot.close()


def _reopen_graph(path: str, store_name: str, name: str):
    """Unpickle target of :meth:`FlatPathPropertyGraph.__reduce__`."""
    graph = attach(path).graph(store_name)
    return graph if graph.name == name else graph.with_name(name)
