"""One front door for every built-in dataset.

Historically each dataset shipped its own entry point
(``social_graph()``, ``generate_snb_graph(...)``, ...), and every
caller — server boot, benchmarks, examples — hand-rolled the same
register-graphs-and-tables dance. :func:`load` collapses those into a
single registry keyed by name::

    from repro.datasets import load

    dataset = load("snb", scale=500, seed=7)
    dataset.install(engine)            # registers graphs + tables

The old per-dataset functions remain as thin aliases for existing
code; new code should go through :func:`load`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..model.graph import PathPropertyGraph
from ..table import Table
from .generator import SnbParameters, generate_company_graph, generate_snb_graph
from .paper import company_graph, figure2_graph, orders_table, social_graph


@dataclass(frozen=True)
class Dataset:
    """A loaded dataset: named graphs, named tables, one default graph."""

    name: str
    graphs: Mapping[str, PathPropertyGraph]
    tables: Mapping[str, Table] = field(default_factory=dict)
    default_graph: Optional[str] = None

    def install(self, engine, *, set_default: bool = True) -> None:
        """Register every graph and table of this dataset on *engine*.

        With ``set_default=False`` the engine's current default graph is
        left alone — use it when layering a secondary dataset on top of
        an already-populated engine.
        """
        for graph_name, graph in self.graphs.items():
            engine.register_graph(
                graph_name,
                graph,
                default=(set_default and graph_name == self.default_graph),
            )
        for table_name, table in self.tables.items():
            engine.register_table(table_name, table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset({self.name!r}, graphs={sorted(self.graphs)}, "
            f"tables={sorted(self.tables)}, default={self.default_graph!r})"
        )


def _load_paper(scale: Optional[int], seed: Optional[int]) -> Dataset:
    _reject_knobs("paper", scale, seed)
    return Dataset(
        name="paper",
        graphs={
            "social_graph": social_graph(),
            "company_graph": company_graph(),
        },
        tables={"orders": orders_table()},
        default_graph="social_graph",
    )


def _load_figure2(scale: Optional[int], seed: Optional[int]) -> Dataset:
    _reject_knobs("figure2", scale, seed)
    return Dataset(
        name="figure2",
        graphs={"figure2": figure2_graph()},
        default_graph="figure2",
    )


def _load_snb(scale: Optional[int], seed: Optional[int]) -> Dataset:
    defaults = SnbParameters()
    parameters = SnbParameters(
        persons=defaults.persons if scale is None else scale,
        seed=defaults.seed if seed is None else seed,
    )
    return Dataset(
        name="snb",
        graphs={"snb": generate_snb_graph(parameters)},
        default_graph="snb",
    )


def _load_company(scale: Optional[int], seed: Optional[int]) -> Dataset:
    defaults = SnbParameters()
    parameters = SnbParameters(
        companies=defaults.companies if scale is None else scale,
        seed=defaults.seed if seed is None else seed,
    )
    return Dataset(
        name="company",
        graphs={"companies": generate_company_graph(parameters)},
        default_graph="companies",
    )


def _reject_knobs(name: str, scale: Optional[int], seed: Optional[int]) -> None:
    if scale is not None or seed is not None:
        raise ValueError(
            f"dataset {name!r} is a fixed paper instance and takes "
            f"neither scale nor seed"
        )


_REGISTRY: Dict[str, Callable[[Optional[int], Optional[int]], Dataset]] = {
    "paper": _load_paper,
    "figure2": _load_figure2,
    "snb": _load_snb,
    "company": _load_company,
}


def available() -> Tuple[str, ...]:
    """The dataset names :func:`load` accepts, sorted."""
    return tuple(sorted(_REGISTRY))


def load(
    name: str,
    *,
    scale: Optional[int] = None,
    seed: Optional[int] = None,
) -> Dataset:
    """Build the named dataset and return it as a :class:`Dataset`.

    ``scale`` and ``seed`` parameterise the synthetic generators
    (``snb``: scale is the person count; ``company``: scale is the
    company count); the fixed paper instances (``paper``, ``figure2``)
    reject both. Unknown names raise :class:`ValueError` listing the
    registry.
    """
    try:
        loader = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {', '.join(available())}"
        ) from None
    return loader(scale, seed)
