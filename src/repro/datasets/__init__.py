"""Datasets: the paper's toy instances and a scalable SNB-like generator."""

from .generator import SnbParameters, generate_company_graph, generate_snb_graph
from .paper import company_graph, figure2_graph, orders_table, social_graph

__all__ = [
    "SnbParameters",
    "generate_company_graph",
    "generate_snb_graph",
    "company_graph",
    "figure2_graph",
    "orders_table",
    "social_graph",
]
