"""Datasets: the paper's toy instances and a scalable SNB-like generator.

:func:`load` is the front door — ``load("snb", scale=500).install(engine)``
builds and registers a dataset in one call. The per-dataset functions
(``social_graph()``, ``generate_snb_graph(...)``, ...) remain as thin
aliases for existing code.
"""

from .generator import SnbParameters, generate_company_graph, generate_snb_graph
from .paper import company_graph, figure2_graph, orders_table, social_graph
from .registry import Dataset, available, load

__all__ = [
    "Dataset",
    "SnbParameters",
    "available",
    "generate_company_graph",
    "generate_snb_graph",
    "company_graph",
    "figure2_graph",
    "load",
    "orders_table",
    "social_graph",
]
