"""The paper's toy instances, reconstructed exactly.

* :func:`figure2_graph` — the small social network of Figure 2 /
  Example 2.2, with node ids 101-106, edge ids 201-207 and the stored
  path 301 = [105, 207, 103, 202, 102] (label ``toWagner``, trust 0.95).
  Every identifier, label and property stated in the paper is present;
  unstated details (names of the anonymous persons, the second city) are
  completed consistently and documented in DESIGN.md.

* :func:`social_graph` — the Figure 4 instance the guided tour queries
  run on: persons John Doe (Acme), Alice (Acme), Celine (HAL), Peter
  (no employer) and Frank Gold ({CWI, MIT}); bidirectional ``knows``
  pairs; Wagner lovers Celine and Frank; message threads sized so the
  Figure 5 view yields nr_messages John-Peter=2, Peter-Frank=3,
  Peter-Celine=1, Celine-Frank=1, John-Alice=0 — which makes both
  weighted shortest ``wKnows`` paths from John run via Peter, giving the
  final query's single :wagnerFriend edge John->Peter with score 2.

* :func:`company_graph` — the unconnected Company nodes (Acme, HAL, CWI,
  MIT) of the data-integration example.

* :func:`orders_table` — the customer/product table of the Section 5
  tabular-input examples.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..model.builder import GraphBuilder
from ..model.graph import PathPropertyGraph
from ..table import Table

__all__ = ["figure2_graph", "social_graph", "company_graph", "orders_table"]


def figure2_graph() -> PathPropertyGraph:
    """The PPG of Figure 2 / Example 2.2.

    Deprecated entry point — prefer ``repro.datasets.load("figure2")``.
    """
    b = GraphBuilder(name="figure2")
    b.add_node(101, labels=["Tag"], properties={"name": "Wagner"})
    b.add_node(
        102, labels=["Person", "Manager"], properties={"firstName": "Clara"}
    )
    b.add_node(103, labels=["Person"], properties={"firstName": "Mark"})
    b.add_node(104, labels=["City"], properties={"name": "Austin"})
    b.add_node(105, labels=["Person"], properties={"firstName": "Erik"})
    b.add_node(106, labels=["City"], properties={"name": "Houston"})
    b.add_edge(102, 101, edge_id=201, labels=["hasInterest"])
    b.add_edge(103, 102, edge_id=202, labels=["knows"])
    b.add_edge(102, 106, edge_id=203, labels=["isLocatedIn"])
    b.add_edge(105, 106, edge_id=204, labels=["isLocatedIn"])
    b.add_edge(102, 103, edge_id=205, labels=["knows"],
               properties={"since": "1/12/2014"})
    b.add_edge(103, 104, edge_id=206, labels=["isLocatedIn"])
    b.add_edge(105, 103, edge_id=207, labels=["knows"])
    b.add_path([105, 207, 103, 202, 102], path_id=301, labels=["toWagner"],
               properties={"trust": 0.95})
    return b.build()


def _add_person(
    b: GraphBuilder,
    key: str,
    first: str,
    last: str,
    employer,
    city: str,
) -> str:
    properties: Dict[str, object] = {"firstName": first, "lastName": last}
    if employer is not None:
        properties["employer"] = employer
    b.add_node(key, labels=["Person"], properties=properties)
    b.add_edge(key, city, edge_id=f"loc_{key}", labels=["isLocatedIn"])
    return key


def _add_knows_pair(b: GraphBuilder, a: str, c: str) -> Tuple[str, str]:
    """Two knows edges, one in each direction (Figure 4's caption)."""
    e1 = b.add_edge(a, c, edge_id=f"knows_{a}_{c}", labels=["knows"])
    e2 = b.add_edge(c, a, edge_id=f"knows_{c}_{a}", labels=["knows"])
    return e1, e2


def _add_thread(
    b: GraphBuilder, key: str, messages: List[Tuple[str, str]]
) -> None:
    """A message thread: each message replies to the previous one.

    *messages* is ``[(message_id_suffix, author_node), ...]``; the first
    entry is a Post, the rest are Comments with ``reply_of`` edges.
    """
    previous = None
    for index, (suffix, author) in enumerate(messages):
        mid = f"msg_{key}_{suffix}"
        label = "Post" if index == 0 else "Comment"
        b.add_node(mid, labels=[label], properties={"content": mid})
        b.add_edge(mid, author, edge_id=f"creator_{mid}", labels=["has_creator"])
        if previous is not None:
            b.add_edge(mid, previous, edge_id=f"reply_{mid}",
                       labels=["reply_of"])
        previous = mid


def social_graph() -> PathPropertyGraph:
    """The Figure 4 instance (`social_graph`).

    Deprecated entry point — prefer ``repro.datasets.load("paper")``.
    """
    b = GraphBuilder(name="social_graph")
    b.add_node("houston", labels=["City"], properties={"name": "Houston"})
    b.add_node("wagner", labels=["Tag"], properties={"name": "Wagner"})

    _add_person(b, "john", "John", "Doe", "Acme", "houston")
    _add_person(b, "alice", "Alice", "Hall", "Acme", "houston")
    _add_person(b, "celine", "Celine", "Mayer", "HAL", "houston")
    _add_person(b, "peter", "Peter", "Smith", None, "houston")
    _add_person(b, "frank", "Frank", "Gold", {"CWI", "MIT"}, "houston")

    _add_knows_pair(b, "john", "alice")
    _add_knows_pair(b, "john", "peter")
    _add_knows_pair(b, "peter", "celine")
    _add_knows_pair(b, "peter", "frank")
    _add_knows_pair(b, "celine", "frank")

    # The Wagner lovers: Celine and Frank (John's friends do not like
    # Wagner — Section 3's expert-finding setup).
    b.add_edge("celine", "wagner", edge_id="interest_celine",
               labels=["hasInterest"])
    b.add_edge("frank", "wagner", edge_id="interest_frank",
               labels=["hasInterest"])

    # Message threads sized to produce the Figure 5 nr_messages values.
    # John <-> Peter: two exchanged pairs  -> nr_messages = 2
    _add_thread(b, "jp", [("a", "john"), ("b", "peter"), ("c", "john")])
    # Peter <-> Frank: three exchanged pairs -> nr_messages = 3
    _add_thread(
        b, "pf", [("a", "peter"), ("b", "frank"), ("c", "peter"), ("d", "frank")]
    )
    # Peter <-> Celine: one exchanged pair -> nr_messages = 1
    _add_thread(b, "pc", [("a", "peter"), ("b", "celine")])
    # Celine <-> Frank: one exchanged pair -> nr_messages = 1
    _add_thread(b, "cf", [("a", "celine"), ("b", "frank")])
    return b.build()


def company_graph() -> PathPropertyGraph:
    """The unconnected Company nodes of the data-integration example.

    Deprecated entry point — prefer ``repro.datasets.load("paper")``.
    """
    b = GraphBuilder(name="company_graph")
    for key, name in (
        ("acme", "Acme"),
        ("hal", "HAL"),
        ("cwi", "CWI"),
        ("mit", "MIT"),
    ):
        b.add_node(key, labels=["Company"], properties={"name": name})
    return b.build()


def orders_table() -> Table:
    """The ``orders`` table of the Section 5 examples.

    Deprecated entry point — prefer ``repro.datasets.load("paper")``.
    """
    return Table(
        columns=("custName", "prodCode"),
        rows=[
            ("Alice", "P100"),
            ("Alice", "P200"),
            ("Bob", "P100"),
            ("Carol", "P300"),
            ("Carol", "P100"),
            ("Bob", "P300"),
        ],
        name="orders",
    )
