"""A deterministic, scalable LDBC-SNB-like data generator.

The paper evaluates its examples on the LDBC Social Network Benchmark
dataset (Figure 3 schema). The official generator is a JVM artifact; this
module provides a seeded synthetic equivalent with the same entity and
relationship types, so the benchmark harness can sweep graph sizes:

* ``Person`` nodes with firstName/lastName, an optional (possibly
  multi-valued) ``employer`` property, ``isLocatedIn`` a ``City``;
* bidirectional ``knows`` pairs (ring + random chords — connected, with
  small-world-ish shortcuts);
* ``Tag`` nodes and ``hasInterest`` edges;
* ``Company`` nodes (named like employers) in a side graph;
* message threads: ``Post``/``Comment`` nodes with ``has_creator`` and
  ``reply_of`` edges between pairs of acquainted persons.

All randomness flows from one ``random.Random(seed)``, so a given
(scale, seed) pair always produces the identical graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..model.builder import GraphBuilder
from ..model.graph import PathPropertyGraph

__all__ = ["SnbParameters", "generate_snb_graph", "generate_company_graph"]

_FIRST_NAMES = (
    "John", "Alice", "Celine", "Peter", "Frank", "Clara", "Mark", "Erik",
    "Dana", "Ivan", "Mia", "Noah", "Olga", "Pia", "Quinn", "Rosa", "Sven",
    "Tara", "Umar", "Vera", "Walt", "Xena", "Yuri", "Zoe",
)
_LAST_NAMES = (
    "Doe", "Hall", "Mayer", "Smith", "Gold", "Stone", "Rivers", "Brook",
    "Field", "Woods", "Hill", "Lake", "March", "North", "South", "West",
)
_CITIES = (
    "Houston", "Austin", "Leipzig", "Santiago", "Amsterdam", "Eindhoven",
    "Dresden", "Talca", "Walldorf", "Oslo",
)
_COMPANIES = ("Acme", "HAL", "CWI", "MIT", "Initech", "Globex", "Hooli")
_TAGS = (
    "Wagner", "Verdi", "Mozart", "Bach", "Puccini", "Mahler", "Handel",
    "Brahms", "Chopin", "Liszt",
)


@dataclass(frozen=True)
class SnbParameters:
    """Size and shape knobs of the synthetic SNB graph."""

    persons: int = 50
    seed: int = 42
    cities: int = 4
    tags: int = 6
    companies: int = 5
    knows_chords: float = 1.5       # extra random knows pairs per person
    interest_probability: float = 0.4
    unemployed_probability: float = 0.15
    multi_employer_probability: float = 0.1
    threads_per_person: float = 0.8
    max_thread_length: int = 5


def generate_snb_graph(
    parameters: Optional[SnbParameters] = None, **overrides
) -> PathPropertyGraph:
    """Generate a deterministic SNB-like social graph.

    Deprecated entry point — prefer ``repro.datasets.load("snb", scale=..., seed=...)``.
    """
    if parameters is None:
        parameters = SnbParameters(**overrides)
    elif overrides:
        raise TypeError("pass either SnbParameters or keyword overrides")
    rng = random.Random(parameters.seed)
    b = GraphBuilder(name=f"snb_{parameters.persons}_{parameters.seed}")

    cities = [f"city{i}" for i in range(max(1, parameters.cities))]
    for index, city in enumerate(cities):
        b.add_node(city, labels=["City"],
                   properties={"name": _CITIES[index % len(_CITIES)]})
    tags = [f"tag{i}" for i in range(max(1, parameters.tags))]
    for index, tag in enumerate(tags):
        b.add_node(tag, labels=["Tag"],
                   properties={"name": _TAGS[index % len(_TAGS)]})

    companies = [_COMPANIES[i % len(_COMPANIES)]
                 for i in range(max(1, parameters.companies))]

    persons = [f"p{i}" for i in range(parameters.persons)]
    for index, person in enumerate(persons):
        properties: Dict[str, object] = {
            "firstName": _FIRST_NAMES[index % len(_FIRST_NAMES)],
            "lastName": _LAST_NAMES[(index // len(_FIRST_NAMES)) % len(_LAST_NAMES)],
        }
        roll = rng.random()
        if roll >= parameters.unemployed_probability:
            if rng.random() < parameters.multi_employer_probability:
                employers = rng.sample(companies, k=min(2, len(companies)))
                properties["employer"] = set(employers)
            else:
                properties["employer"] = rng.choice(companies)
        b.add_node(person, labels=["Person"], properties=properties)
        city = rng.choice(cities)
        b.add_edge(person, city, edge_id=f"loc_{person}",
                   labels=["isLocatedIn"])
        for tag in tags:
            if rng.random() < parameters.interest_probability / len(tags) * 2:
                b.add_edge(person, tag, edge_id=f"int_{person}_{tag}",
                           labels=["hasInterest"])

    # knows topology: a ring for connectivity plus random chords.
    knows_pairs: List[Tuple[str, str]] = []
    seen_pairs = set()

    def add_pair(a: str, c: str) -> None:
        if a == c:
            return
        key = (a, c) if a < c else (c, a)
        if key in seen_pairs:
            return
        seen_pairs.add(key)
        knows_pairs.append(key)
        b.add_edge(a, c, edge_id=f"k_{a}_{c}", labels=["knows"])
        b.add_edge(c, a, edge_id=f"k_{c}_{a}", labels=["knows"])

    for index in range(len(persons)):
        add_pair(persons[index], persons[(index + 1) % len(persons)])
    chord_count = int(parameters.knows_chords * len(persons))
    for _ in range(chord_count):
        add_pair(rng.choice(persons), rng.choice(persons))

    # Message threads between acquainted pairs.
    thread_count = int(parameters.threads_per_person * len(persons))
    for thread_index in range(thread_count):
        a, c = knows_pairs[rng.randrange(len(knows_pairs))]
        length = rng.randint(2, max(2, parameters.max_thread_length))
        authors = [a if i % 2 == 0 else c for i in range(length)]
        previous = None
        for msg_index, author in enumerate(authors):
            mid = f"m{thread_index}_{msg_index}"
            label = "Post" if msg_index == 0 else "Comment"
            b.add_node(mid, labels=[label],
                       properties={"content": f"msg {mid}"})
            b.add_edge(mid, author, edge_id=f"cr_{mid}",
                       labels=["has_creator"])
            if previous is not None:
                b.add_edge(mid, previous, edge_id=f"re_{mid}",
                           labels=["reply_of"])
            previous = mid
    return b.build()


def generate_company_graph(
    parameters: Optional[SnbParameters] = None,
) -> PathPropertyGraph:
    """Company nodes matching the employers used by the person generator.

    Deprecated entry point — prefer ``repro.datasets.load("company")``.
    """
    parameters = parameters or SnbParameters()
    b = GraphBuilder(name="companies")
    for index in range(max(1, parameters.companies)):
        name = _COMPANIES[index % len(_COMPANIES)]
        b.add_node(f"c{index}", labels=["Company"], properties={"name": name})
    return b.build()
