"""The public entry point: :class:`GCoreEngine`.

An engine holds a :class:`~repro.catalog.Catalog` of named graphs, tables
and views, and executes G-CORE statements against it:

>>> from repro import GCoreEngine
>>> from repro.datasets import social_graph, company_graph
>>> engine = GCoreEngine()
>>> engine.register_graph("social_graph", social_graph(), default=True)
>>> engine.register_graph("company_graph", company_graph())
>>> g = engine.run("CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'")
>>> sorted(g.nodes)
['alice', 'john']

``run`` returns a :class:`~repro.model.graph.PathPropertyGraph` for graph
queries, a :class:`~repro.table.Table` for SELECT queries, and a
:class:`~repro.eval.query.ViewResult` for GRAPH VIEW statements. The
engine is composability in action: any returned graph can be registered
and queried again (the paper's central design goal).
"""

from __future__ import annotations

from typing import List, Optional, Union

from .catalog import Catalog
from .errors import SemanticError
from .eval.context import EvalContext, IdFactory
from .eval.match import evaluate_match
from .eval.query import QueryResult, ViewResult, evaluate_statement
from .lang import ast
from .lang.lexer import tokenize
from .lang.parser import Parser
from .model.graph import PathPropertyGraph
from .table import Table
from .algebra.binding import BindingTable

__all__ = ["GCoreEngine"]


class GCoreEngine:
    """An in-memory G-CORE query engine over a graph catalog."""

    def __init__(self) -> None:
        self.catalog = Catalog()
        self._ids = IdFactory()

    # ------------------------------------------------------------------
    # Catalog management
    # ------------------------------------------------------------------
    def register_graph(
        self, name: str, graph: PathPropertyGraph, default: bool = False
    ) -> None:
        """Register *graph* under *name*; the first graph becomes default."""
        self.catalog.register_graph(name, graph, default=default)

    def register_table(self, name: str, table: Table) -> None:
        """Register a table for the Section 5 tabular extensions."""
        self.catalog.register_table(name, table)

    def register_path_view(self, text_or_clause) -> str:
        """Register a persistent PATH view from source text or an AST node.

        Accepts either ``"PATH name = (x)-[e:knows]->(y) COST ..."`` text
        or a pre-parsed :class:`~repro.lang.ast.PathClause`.
        """
        if isinstance(text_or_clause, ast.PathClause):
            clause = text_or_clause
        else:
            parser = Parser(tokenize(str(text_or_clause)))
            clause = parser._path_clause()
            parser.expect_eof()
        self.catalog.register_path_view(clause.name, clause)
        return clause.name

    def graph(self, name: str) -> PathPropertyGraph:
        """Look up a registered graph or materialized view by name."""
        return self.catalog.graph(name)

    def table(self, name: str) -> Table:
        """Look up a registered table by name."""
        return self.catalog.table(name)

    def set_default_graph(self, name: str) -> None:
        if not self.catalog.has_graph(name):
            from .errors import UnknownGraphError

            raise UnknownGraphError(name)
        self.catalog.default_graph_name = name

    def refresh_view(self, name: str) -> PathPropertyGraph:
        """Re-evaluate a GRAPH VIEW against the current base graphs.

        Views materialize at definition time; after re-registering a base
        graph, call this to bring the view up to date. Returns the new
        materialization.
        """
        query = self.catalog.view_query(name)
        if query is None:
            from .errors import UnknownGraphError

            raise UnknownGraphError(name)
        from .eval.query import evaluate_query

        ctx = EvalContext(self.catalog, self._ids)
        result = evaluate_query(query, ctx)
        if not isinstance(result, PathPropertyGraph):
            raise SemanticError(f"view {name!r} did not produce a graph")
        self.catalog.register_view(name, query, result)
        return result.with_name(name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def parse(self, text: str) -> ast.Statement:
        """Parse a single statement without executing it."""
        parser = Parser(tokenize(text))
        statement = parser.statement()
        parser.expect_eof()
        return statement

    def run(
        self,
        text_or_statement: Union[str, ast.Statement],
        params: Optional[dict] = None,
    ) -> QueryResult:
        """Execute one G-CORE statement and return its result.

        Results are graphs (CONSTRUCT queries), tables (SELECT queries) or
        :class:`~repro.eval.query.ViewResult` (GRAPH VIEW statements).
        ``params`` supplies values for ``$name`` query parameters.
        """
        if isinstance(text_or_statement, (ast.Query, ast.GraphViewStmt)):
            statement = text_or_statement
        else:
            statement = self.parse(text_or_statement)
        ctx = EvalContext(self.catalog, self._ids)
        if params:
            ctx.params = dict(params)
        return evaluate_statement(statement, ctx)

    def run_script(self, text: str) -> List[QueryResult]:
        """Execute a ``;``-separated sequence of statements."""
        parser = Parser(tokenize(text))
        results: List[QueryResult] = []
        while parser._peek().kind != "EOF":
            statement = parser.statement()
            ctx = EvalContext(self.catalog, self._ids)
            results.append(evaluate_statement(statement, ctx))
            if not parser._accept("SEMI"):
                break
        parser.expect_eof()
        return results

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def bindings(self, match_text: str) -> BindingTable:
        """Evaluate a standalone ``MATCH ...`` fragment to a binding table.

        This mirrors the binding tables the paper prints in Section 3 and
        is used heavily by the reproduction tests and benchmarks.
        """
        parser = Parser(tokenize(match_text))
        match = parser._match_clause()
        parser.expect_eof()
        ctx = EvalContext(self.catalog, self._ids)
        return evaluate_match(match, ctx)

    def explain(self, text: str) -> str:
        """A human-readable sketch of how a query would be evaluated."""
        from .eval.match import decompose_chain, _AnonNamer
        from .eval.planner import explain_order

        statement = self.parse(text)
        if isinstance(statement, ast.GraphViewStmt):
            query = statement.query
        else:
            query = statement
        lines: List[str] = []

        def walk_body(body, indent: str) -> None:
            if isinstance(body, ast.SetOpQuery):
                lines.append(f"{indent}{body.op.upper()}")
                walk_body(body.left, indent + "  ")
                walk_body(body.right, indent + "  ")
            elif isinstance(body, ast.GraphRefQuery):
                lines.append(f"{indent}graph {body.name}")
            elif isinstance(body, ast.BasicQuery):
                head = "SELECT" if isinstance(body.head, ast.SelectClause) else "CONSTRUCT"
                lines.append(f"{indent}{head}")
                if body.from_table:
                    lines.append(f"{indent}  FROM table {body.from_table}")
                if body.match is not None:
                    blocks = [body.match.block, *body.match.optionals]
                    for b_index, block in enumerate(blocks):
                        tag = "MATCH" if b_index == 0 else "OPTIONAL"
                        lines.append(f"{indent}  {tag}")
                        namer = _AnonNamer()
                        for location in block.patterns:
                            on = (
                                location.on
                                if isinstance(location.on, str)
                                else "<subquery>" if location.on else "<default>"
                            )
                            lines.append(f"{indent}    pattern ON {on}")
                            atoms = decompose_chain(location.chain, namer)
                            lines.append(explain_order(atoms, set()))

        for head in query.heads:
            if isinstance(head, ast.PathClause):
                lines.append(f"PATH VIEW {head.name}")
            else:
                lines.append(f"LOCAL GRAPH {head.name}")
        walk_body(query.body, "")
        return "\n".join(lines)
