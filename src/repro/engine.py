"""The public entry point: :class:`GCoreEngine`.

An engine holds a :class:`~repro.catalog.Catalog` of named graphs, tables
and views, and executes G-CORE statements against it:

>>> from repro import GCoreEngine
>>> from repro.datasets import social_graph, company_graph
>>> engine = GCoreEngine()
>>> engine.register_graph("social_graph", social_graph(), default=True)
>>> engine.register_graph("company_graph", company_graph())
>>> g = engine.run("CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'")
>>> sorted(g.nodes)
['alice', 'john']

``run`` returns a :class:`~repro.model.graph.PathPropertyGraph` for graph
queries, a :class:`~repro.table.Table` for SELECT queries, and a
:class:`~repro.eval.query.ViewResult` for GRAPH VIEW statements. The
engine is composability in action: any returned graph can be registered
and queried again (the paper's central design goal).

Repeated traffic is served from a **prepared-query plan cache**:
``run(text)`` keeps an LRU of :class:`PreparedQuery` objects keyed by the
exact query text, so the second and later executions of the same
statement skip lexing, parsing and planning entirely. ``prepare(text)``
exposes the same object directly for parameterized hot loops::

    prepared = engine.prepare("CONSTRUCT (n) MATCH (n:Person) "
                              "WHERE n.employer = $company")
    for company in companies:
        prepared.run(params={"company": company})

Any catalog mutation (``register_graph``, ``register_table``,
``set_default_graph``, ``refresh_view``, ``register_path_view``)
invalidates the cache — a prepared statement may reference catalog names
whose meaning just changed. Per-graph atom orderings inside a
:class:`PreparedQuery` are additionally keyed by graph object identity,
so a ``PreparedQuery`` held across an invalidation still executes
correctly; only its memoized plans go cold.

Graphs mutate through **deltas**: ``apply_update(name, delta)`` applies a
:class:`~repro.model.delta.GraphDelta` (node/edge/label/property inserts
and removals), validates it against the entry's schema, records it on the
entry's changelog, and adjusts the graph's planner statistics in
O(|delta|). Deltas keep prepared queries hot (only plans against the
superseded graph object are purged) and make dependent ``GRAPH VIEW``
materializations *incrementally* refreshable — see
:meth:`GCoreEngine.refresh_view` and :mod:`repro.eval.maintenance`.
"""

from __future__ import annotations

import threading
import warnings
from collections import OrderedDict
from typing import Dict, List, Optional, Set, Union

from .catalog import Catalog, CatalogSnapshot
from .config import DEFAULT_CONFIG, NAIVE_CONFIG, ExecutionConfig
from .analysis import AnalysisResult, analyze as analyze_statement
from .errors import (
    AnalysisError,
    EvaluationError,
    SemanticError,
    StaleViewError,
    UnknownGraphError,
)
from .eval.context import EvalContext, IdFactory
from .eval.match import evaluate_match
from .eval.planner import PlanCache
from .eval.query import QueryResult, ViewResult, evaluate_statement
from .lang import ast
from .lang.lexer import tokenize
from .lang.parser import Parser
from .model.delta import GraphDelta, apply_delta
from .model.graph import PathPropertyGraph
from .table import Table
from .algebra.binding import BindingTable

__all__ = ["EngineSnapshot", "GCoreEngine", "PreparedQuery"]


def _resolve_config(
    config: Optional[ExecutionConfig], naive: bool
) -> ExecutionConfig:
    """Fold the deprecated ``naive=True`` flag into an ExecutionConfig.

    An explicit *config* always wins; ``naive=True`` without one maps to
    :data:`~repro.config.NAIVE_CONFIG` (the full reference column it
    historically selected) and warns.
    """
    if naive:
        warnings.warn(
            "naive=True is deprecated; pass "
            "config=ExecutionConfig(planner='naive', executor='reference', "
            "expressions='interpreted', paths='naive') "
            "(repro.config.NAIVE_CONFIG) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        if config is None:
            return NAIVE_CONFIG
    return config if config is not None else DEFAULT_CONFIG


def _collect_params(node, names: Set[str]) -> None:
    """Collect ``$name`` parameter slots from an AST (frozen dataclasses)."""
    if isinstance(node, ast.Param):
        names.add(node.name)
    if hasattr(node, "__dataclass_fields__"):
        for field in node.__dataclass_fields__:
            _collect_params(getattr(node, field), names)
    elif isinstance(node, (tuple, list, frozenset)):
        for item in node:
            _collect_params(item, names)


class PreparedQuery:
    """A parsed, plannable statement that can be executed many times.

    Holds the parsed AST, the ``$name`` parameter slots found in it, and
    a :class:`~repro.eval.planner.PlanCache` of resolved atom orderings
    (filled on first execution, replayed afterwards). Obtained from
    :meth:`GCoreEngine.prepare`; ``engine.run(text)`` transparently
    reuses prepared queries through the engine's LRU cache.
    """

    __slots__ = ("engine", "text", "statement", "param_names", "plans",
                 "executions")

    def __init__(
        self, engine: "GCoreEngine", text: str, statement: ast.Statement
    ) -> None:
        self.engine = engine
        self.text = text
        self.statement = statement
        names: Set[str] = set()
        _collect_params(statement, names)
        self.param_names = frozenset(names)
        self.plans = PlanCache()
        self.executions = 0

    def run(
        self,
        params: Optional[dict] = None,
        config: Optional[ExecutionConfig] = None,
    ) -> QueryResult:
        """Execute the prepared statement (optionally with parameters).

        *config* pins the execution-mode lattice point for this run. A
        non-default config skips the memoized atom orderings: the cached
        permutations were chosen by the default planner mode, and
        replaying them under another mode would corrupt the ablation.
        """
        missing = self.param_names - set(params or ())
        if missing:
            raise EvaluationError(
                f"missing query parameters: {sorted(missing)}"
            )
        self.executions += 1
        if config is not None and config != DEFAULT_CONFIG:
            return self.engine._execute(
                self.statement, params, plans=None, config=config
            )
        return self.engine._execute(self.statement, params, plans=self.plans)

    def explain(self) -> str:
        """The engine's EXPLAIN sketch for this statement."""
        return self.engine.explain(self.text)

    def __repr__(self) -> str:
        return (
            f"<PreparedQuery {self.text[:40]!r}... executions="
            f"{self.executions}>"
            if len(self.text) > 40
            else f"<PreparedQuery {self.text!r} executions={self.executions}>"
        )


class EngineSnapshot:
    """A consistent, read-only view of the engine for one reader.

    Obtained from :meth:`GCoreEngine.snapshot`. All reads through this
    object — ``run``, ``execute_prepared``, ``graph`` — resolve against
    the catalog version captured at acquisition time: updates applied
    concurrently through :meth:`GCoreEngine.apply_update` land on later
    epochs and are invisible here. The snapshot refcounts the graph
    versions it pins; superseded versions are retained by the catalog
    until the last pinning snapshot releases (see ``docs/consistency.md``).

    Use as a context manager, or call :meth:`release` explicitly::

        with engine.snapshot() as snap:
            table = snap.run("SELECT n.name MATCH (n:Person)")

    Mutating statements (``GRAPH VIEW``) and catalog mutations raise
    :class:`~repro.errors.SemanticError` — writes go through the live
    engine, never through a snapshot.
    """

    __slots__ = ("engine", "catalog")

    def __init__(self, engine: "GCoreEngine", catalog: CatalogSnapshot) -> None:
        self.engine = engine
        self.catalog = catalog

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "EngineSnapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def release(self) -> None:
        """Drop the reader refcounts (idempotent); reads stay usable."""
        with self.engine._lock:
            self.catalog.release()

    @property
    def released(self) -> bool:
        return self.catalog.released

    # -- reads ----------------------------------------------------------
    def run(
        self,
        text: str,
        params: Optional[dict] = None,
        config: Optional[ExecutionConfig] = None,
        strict: bool = False,
    ) -> QueryResult:
        """Execute one read-only statement against the pinned catalog.

        Shares the engine's prepared-query LRU (parsing and planning are
        memoized across snapshots; atom orderings are keyed by graph
        object identity, so plans never leak between catalog versions).
        *config* pins the execution-mode lattice point for this run.
        ``strict=True`` analyzes the statement against the pinned
        catalog first and raises :class:`~repro.errors.AnalysisError`
        when any error-level diagnostic is found.
        """
        if strict:
            result = self.analyze(text)
            if not result.ok:
                raise AnalysisError(result)
        return self.execute_prepared(
            self.engine.prepare(str(text)), params, config=config
        )

    def analyze(self, text_or_statement) -> AnalysisResult:
        """Statically analyze a statement against the pinned catalog.

        Same contract as :meth:`GCoreEngine.analyze`, resolved against
        this snapshot's catalog version.
        """
        return analyze_statement(text_or_statement, self.catalog)

    def execute_prepared(
        self,
        prepared: PreparedQuery,
        params: Optional[dict] = None,
        config: Optional[ExecutionConfig] = None,
    ) -> QueryResult:
        """Execute a :class:`PreparedQuery` against the pinned catalog."""
        if isinstance(prepared.statement, ast.GraphViewStmt):
            raise SemanticError(
                "GRAPH VIEW statements mutate the catalog and cannot run "
                "on a read-only snapshot"
            )
        missing = prepared.param_names - set(params or ())
        if missing:
            raise EvaluationError(
                f"missing query parameters: {sorted(missing)}"
            )
        prepared.executions += 1
        plans = prepared.plans
        if config is not None and config != DEFAULT_CONFIG:
            plans = None  # mode-pinned runs never replay default-mode plans
        return self.engine._execute(
            prepared.statement, params, plans=plans,
            catalog=self.catalog, config=config,
        )

    def graph(self, name: str) -> PathPropertyGraph:
        """The pinned version of graph or view *name*."""
        return self.catalog.graph(name)

    def epoch(self, name: str) -> int:
        """The pinned change epoch of *name*."""
        return self.catalog.epoch(name)

    def explain(self, text: str) -> str:
        """The engine's EXPLAIN sketch, resolved against this snapshot."""
        return self.engine.explain(text, catalog=self.catalog)


class GCoreEngine:
    """An in-memory G-CORE query engine over a graph catalog."""

    #: Default capacity of the text -> PreparedQuery LRU cache.
    PLAN_CACHE_SIZE = 128

    def __init__(self) -> None:
        self.catalog = Catalog()
        self._ids = IdFactory()
        self._prepared: "OrderedDict[str, PreparedQuery]" = OrderedDict()
        self._prepared_hits = 0
        self._prepared_misses = 0
        # Serializes catalog mutations, prepared-LRU bookkeeping and
        # snapshot acquire/release. Query *execution* runs outside the
        # lock: readers hold immutable snapshots, so only the short
        # bookkeeping sections contend. Reentrant because mutations call
        # clear_plan_cache (also locked) internally.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Binary snapshots (the Storage API)
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: str, mmap: bool = True) -> "GCoreEngine":
        """An engine over the graphs and tables of a snapshot file.

        Opens *path* (written by :meth:`save` /
        :func:`repro.storage.save_snapshot`) and registers every stored
        graph as a :class:`~repro.storage.flatstore.FlatPathPropertyGraph`
        reading straight from the mapped file — cold start is
        O(identifiers), not O(payload), and concurrent processes opening
        the same path share one read-only mapping. ``mmap=False`` loads
        the file into memory instead (same decode paths). Snapshots are
        immutable: :meth:`apply_update` on an opened graph assembles an
        ordinary dict-backed graph for the new epoch (copy-on-write),
        leaving the file untouched.
        """
        from .storage import open_snapshot

        snapshot = open_snapshot(path, mmap=mmap)
        engine = cls()
        default = snapshot.default_graph_name
        for name in snapshot.graph_names():
            engine.register_graph(
                name, snapshot.graph(name), default=(name == default)
            )
        for name in snapshot.table_names():
            engine.register_table(name, snapshot.table(name))
        return engine

    def save(self, path: str) -> None:
        """Persist the catalog's base graphs and tables to *path*.

        Serializes a consistent MVCC snapshot (concurrent
        :meth:`apply_update` writers land on later epochs and are not
        torn into the file). Materialized views and path views are
        derived state and are not stored; re-register them against the
        reopened engine. See ``docs/storage.md`` for format and limits.
        """
        from .storage import save_snapshot

        with self.snapshot() as snap:
            save_snapshot(snap.catalog, path)

    # ------------------------------------------------------------------
    # Catalog management
    # ------------------------------------------------------------------
    def register_graph(
        self,
        name: str,
        graph: PathPropertyGraph,
        default: bool = False,
        schema=None,
    ) -> None:
        """Register *graph* under *name*; the first graph becomes default.

        Re-registering an existing name replaces the graph wholesale:
        dependent materialized views become **stale** (visible through
        :meth:`get_graph`, :meth:`stale_views` and the REPL ``.views``
        command) until :meth:`refresh_view` recomputes them. An optional
        *schema* (:class:`~repro.model.schema.GraphSchema`) is attached
        to the catalog entry and enforced by :meth:`apply_update`.
        """
        with self._lock:
            self.catalog.register_graph(
                name, graph, default=default, schema=schema
            )
            self.clear_plan_cache()

    def apply_update(
        self,
        graph: Union[str, PathPropertyGraph],
        delta: GraphDelta,
        schema=None,
    ) -> PathPropertyGraph:
        """Apply a :class:`~repro.model.delta.GraphDelta` to a base graph.

        *graph* is a catalog name (or a registered graph whose ``name``
        resolves in the catalog). The delta is validated structurally
        (:func:`~repro.model.delta.apply_delta`) and — when the entry
        carries a schema, or *schema* is passed explicitly — the added
        and modified objects are re-checked against it. The resulting
        graph replaces the catalog entry and the change is recorded on
        the entry's changelog, which is what lets dependent views refresh
        incrementally (:meth:`refresh_view`) instead of recomputing.

        Consistency hooks, in order: the new graph inherits the old
        one's :class:`~repro.model.statistics.GraphStatistics` adjusted
        in O(|delta|) (no O(N + E) rebuild); prepared queries stay
        cached, but their memoized atom orderings against the superseded
        graph object are purged (plans re-resolve against the new graph
        on the next execution). Returns the new graph.
        """
        name = graph if isinstance(graph, str) else graph.name
        with self._lock:
            base = self.catalog.base_graph(name)
            new_graph, effects = apply_delta(base, delta)
            active_schema = (
                schema if schema is not None else self.catalog.schema(name)
            )
            if active_schema is not None:
                active_schema.validate_objects(
                    new_graph, effects.validation_targets(new_graph)
                )
            cached_stats = base.cached_statistics()
            if cached_stats is not None:
                # apply_delta returns a *new* GraphStatistics: readers
                # pinned to the superseded graph keep its original stats
                # object untouched (copy-on-write, never in-place).
                new_graph.adopt_statistics(
                    cached_stats.apply_delta(base, new_graph, effects)
                )
            self.catalog.commit_update(name, new_graph, delta, effects)
            for prepared in self._prepared.values():
                prepared.plans.purge_graph(base)
        return new_graph

    def register_table(self, name: str, table: Table) -> None:
        """Register a table for the Section 5 tabular extensions."""
        with self._lock:
            self.catalog.register_table(name, table)
            self.clear_plan_cache()

    def register_path_view(self, text_or_clause) -> str:
        """Register a persistent PATH view from source text or an AST node.

        Accepts either ``"PATH name = (x)-[e:knows]->(y) COST ..."`` text
        or a pre-parsed :class:`~repro.lang.ast.PathClause`.
        """
        if isinstance(text_or_clause, ast.PathClause):
            clause = text_or_clause
        else:
            parser = Parser(tokenize(str(text_or_clause)))
            clause = parser._path_clause()
            parser.expect_eof()
        with self._lock:
            self.catalog.register_path_view(clause.name, clause)
            self.clear_plan_cache()
        return clause.name

    def graph(self, name: str) -> PathPropertyGraph:
        """Look up a registered graph or materialized view by name.

        Lenient: a stale view returns its last materialization. Use
        :meth:`get_graph` when staleness must not go unnoticed.
        """
        return self.catalog.graph(name)

    def get_graph(
        self, name: str, allow_stale: bool = False
    ) -> PathPropertyGraph:
        """The strict graph accessor: stale views are surfaced, not served.

        Raises :class:`~repro.errors.StaleViewError` when *name* is a
        materialized view whose base graphs changed (re-registration or
        :meth:`apply_update`) since its materialization — call
        :meth:`refresh_view` first, or pass ``allow_stale=True`` to read
        the old materialization deliberately. Unknown names raise
        :class:`~repro.errors.UnknownGraphError` as usual.
        """
        graph = self.catalog.graph(name)
        if not allow_stale and self.catalog.is_view_stale(name):
            raise StaleViewError(name)
        return graph

    def stale_views(self) -> List[str]:
        """Views whose dependencies changed since materialization."""
        return self.catalog.stale_views()

    def table(self, name: str) -> Table:
        """Look up a registered table by name."""
        return self.catalog.table(name)

    def set_default_graph(self, name: str) -> None:
        with self._lock:
            if not self.catalog.has_graph(name):
                raise UnknownGraphError(name, candidates=self.catalog.graph_names())
            self.catalog.default_graph_name = name
            self.clear_plan_cache()

    def refresh_view(
        self,
        name: str,
        incremental: bool = True,
        config: Optional[ExecutionConfig] = None,
    ) -> PathPropertyGraph:
        """Bring a GRAPH VIEW up to date with its base graphs.

        Maintenance is **incremental** whenever possible: if the view's
        query is delta-eligible (single conjunctive MATCH over one base
        graph, identity CONSTRUCT — see :mod:`repro.eval.maintenance`)
        and every base-graph change since the last materialization was an
        :meth:`apply_update` delta, the materialization is *patched* from
        the changelog at a cost proportional to the deltas. Anything else
        — path atoms, aggregates, OPTIONAL, a wholesale
        ``register_graph`` replacement — falls back to from-scratch
        recomputation, which ``incremental=False`` also forces (the
        reference oracle the property suite compares against), as does a
        *config* with ``view_refresh="full"``. A view whose dependencies
        did not change is returned as-is. Returns the current
        materialization.
        """
        from .eval.maintenance import refresh_view as run_refresh

        config = config if config is not None else DEFAULT_CONFIG
        if config.view_refresh == "full":
            incremental = False
        with self._lock:
            ctx = EvalContext(self.catalog, self._ids, config=config)
            result, strategy = run_refresh(name, ctx, incremental=incremental)
            if strategy != "unchanged":
                self.clear_plan_cache()
        return result.with_name(name)

    # ------------------------------------------------------------------
    # MVCC snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> EngineSnapshot:
        """Acquire a consistent read-only :class:`EngineSnapshot`.

        The snapshot pins the current version of every catalog entry —
        reads through it are repeatable no matter how many
        :meth:`apply_update` / :meth:`register_graph` calls land
        concurrently — and refcounts the pinned graph versions so the
        catalog knows when a superseded version's last reader is gone
        (:meth:`Catalog.release_snapshot
        <repro.catalog.Catalog.release_snapshot>` prunes it then).
        Release promptly (context manager, or :meth:`EngineSnapshot.release`)
        to keep retained-version memory bounded.
        """
        with self._lock:
            return EngineSnapshot(self, self.catalog.acquire_snapshot())

    def mvcc_info(self) -> Dict[str, int]:
        """Reader/retention accounting: active snapshots, retained versions."""
        with self._lock:
            return {
                "active_snapshots": self.catalog.active_snapshot_count(),
                "retained_versions": self.catalog.retained_version_count(),
            }

    def catalog_info(self) -> List[Dict[str, object]]:
        """Per-graph inventory for ``GET /stats``: sizes, epochs, kind."""
        with self._lock:
            info: List[Dict[str, object]] = []
            stale = set(self.catalog.stale_views())
            for name in self.catalog.graph_names():
                graph = self.catalog.graph(name)
                entry: Dict[str, object] = {
                    "name": name,
                    "kind": "view" if self.catalog.is_view(name) else "base",
                    "epoch": self.catalog.epoch(name),
                    "node_count": len(graph.nodes),
                    "edge_count": len(graph.edges),
                    "path_count": len(graph.paths),
                    "retained_versions": self.catalog.retained_version_count(
                        name
                    ),
                }
                if entry["kind"] == "view":
                    entry["stale"] = name in stale
                info.append(entry)
            return info

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def parse(self, text: str) -> ast.Statement:
        """Parse a single statement without executing it."""
        parser = Parser(tokenize(text))
        statement = parser.statement()
        parser.expect_eof()
        return statement

    def analyze(
        self,
        text_or_statement: Union[str, ast.Statement],
        config: Optional[ExecutionConfig] = None,
    ) -> AnalysisResult:
        """Statically analyze one statement; nothing is executed.

        Returns an :class:`~repro.analysis.AnalysisResult` of typed
        diagnostics (stable ``GCxxx`` codes, severities, source spans
        when *text* is given — see ``docs/analysis.md``). Unparseable
        text comes back as a single ``GC001`` diagnostic rather than a
        raise. Analysis resolves names against the live catalog but is
        deliberately **config-independent**: *config* is accepted for
        call-site symmetry with :meth:`run` and ignored — the same
        statement yields the same diagnostics at every
        :class:`~repro.config.ExecutionConfig` lattice point.
        """
        del config  # analysis is config-independent by contract
        return analyze_statement(text_or_statement, self.catalog)

    def prepare(self, text: str) -> PreparedQuery:
        """Parse *text* once and return a reusable :class:`PreparedQuery`.

        The prepared query is also placed in the engine's LRU plan cache,
        so subsequent ``run(text)`` calls with the identical text reuse
        it. Repeated calls with the same text return the same object
        until a catalog mutation invalidates the cache.
        """
        with self._lock:
            prepared = self._prepared.get(text)
            if prepared is not None:
                self._prepared.move_to_end(text)
                self._prepared_hits += 1
                return prepared
            self._prepared_misses += 1
        # Parse outside the lock (pure function of the text); publish
        # under it. A concurrent prepare of the same text may parse
        # twice, but both threads end up sharing whichever PreparedQuery
        # published first.
        prepared = PreparedQuery(self, text, self.parse(text))
        with self._lock:
            existing = self._prepared.get(text)
            if existing is not None:
                return existing
            self._prepared[text] = prepared
            while len(self._prepared) > self.PLAN_CACHE_SIZE:
                self._prepared.popitem(last=False)
        return prepared

    def run(
        self,
        text_or_statement: Union[str, ast.Statement],
        params: Optional[dict] = None,
        naive: bool = False,
        config: Optional[ExecutionConfig] = None,
        strict: bool = False,
    ) -> QueryResult:
        """Execute one G-CORE statement and return its result.

        Results are graphs (CONSTRUCT queries), tables (SELECT queries) or
        :class:`~repro.eval.query.ViewResult` (GRAPH VIEW statements).
        ``params`` supplies values for ``$name`` query parameters. Text
        input goes through the prepared-query cache: running the same
        query text again skips lexing, parsing and planning.

        *config* (an :class:`~repro.config.ExecutionConfig`) pins the
        execution-mode lattice point — planner, executor, expression
        engine, path engine, view refresh, and worker-pool parallelism.
        Non-default configs bypass the prepared-query cache so cached
        default-mode plans never leak into pinned runs. (The deprecated
        ``naive`` flag is folded into a config by ``_resolve_config``;
        see :data:`~repro.config.NAIVE_CONFIG`.)

        ``strict=True`` runs the static analyzer first
        (:meth:`analyze`) and raises
        :class:`~repro.errors.AnalysisError` — before any planning or
        execution — when error-level diagnostics are found. Warnings
        and infos never block; EXPLAIN surfaces them.
        """
        config = _resolve_config(config, naive)
        if strict:
            analysis = self.analyze(text_or_statement)
            if not analysis.ok:
                raise AnalysisError(analysis)
        if isinstance(text_or_statement, (ast.Query, ast.GraphViewStmt)):
            return self._execute(text_or_statement, params, config=config)
        if config != DEFAULT_CONFIG:
            return self._execute(
                self.parse(str(text_or_statement)), params, config=config
            )
        prepared = self.prepare(str(text_or_statement))
        return prepared.run(params)

    def _execute(
        self,
        statement: ast.Statement,
        params: Optional[dict] = None,
        plans: Optional[PlanCache] = None,
        naive: bool = False,
        catalog: Optional[CatalogSnapshot] = None,
        config: Optional[ExecutionConfig] = None,
    ) -> QueryResult:
        config = _resolve_config(config, naive)
        if catalog is None and isinstance(statement, ast.GraphViewStmt):
            # GRAPH VIEW registers a materialization: a catalog write,
            # serialized like every other mutation.
            with self._lock:
                return self._evaluate(statement, params, plans, config,
                                      self.catalog)
        return self._evaluate(statement, params, plans, config,
                              catalog if catalog is not None else self.catalog)

    def _evaluate(
        self, statement, params, plans, config, catalog
    ) -> QueryResult:
        ctx = EvalContext(catalog, self._ids, config=config)
        if params:
            ctx.params = dict(params)
        ctx.plan_cache = plans
        result = evaluate_statement(statement, ctx)
        if isinstance(result, ViewResult):
            # GRAPH VIEW registered a materialization in the catalog:
            # honor the mutation-invalidates-plans contract here too.
            self.clear_plan_cache()
        return result

    # ------------------------------------------------------------------
    # Plan-cache management
    # ------------------------------------------------------------------
    def plan_cache_info(self) -> Dict[str, int]:
        """Hit/miss counters and occupancy of the prepared-query cache."""
        with self._lock:
            return {
                "hits": self._prepared_hits,
                "misses": self._prepared_misses,
                "size": len(self._prepared),
                "maxsize": self.PLAN_CACHE_SIZE,
            }

    def clear_plan_cache(self) -> None:
        """Drop all cached prepared queries (catalog mutations call this)."""
        with self._lock:
            self._prepared.clear()

    def is_plan_cached(self, text: str) -> bool:
        """True iff ``run(text)`` would hit the prepared-query cache."""
        with self._lock:
            return text in self._prepared

    def run_script(self, text: str) -> List[QueryResult]:
        """Execute a ``;``-separated sequence of statements."""
        parser = Parser(tokenize(text))
        results: List[QueryResult] = []
        while parser._peek().kind != "EOF":
            statement = parser.statement()
            ctx = EvalContext(self.catalog, self._ids)
            results.append(evaluate_statement(statement, ctx))
            if not parser._accept("SEMI"):
                break
        parser.expect_eof()
        return results

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def bindings(
        self,
        match_text: str,
        naive: bool = False,
        config: Optional[ExecutionConfig] = None,
    ) -> BindingTable:
        """Evaluate a standalone ``MATCH ...`` fragment to a binding table.

        This mirrors the binding tables the paper prints in Section 3 and
        is used heavily by the reproduction tests and benchmarks.
        *config* pins the execution-mode lattice point (the deprecated
        boolean flag folds into :data:`~repro.config.NAIVE_CONFIG`, the
        full row-at-a-time reference column).
        """
        parser = Parser(tokenize(match_text))
        match = parser._match_clause()
        parser.expect_eof()
        ctx = EvalContext(
            self.catalog, self._ids, config=_resolve_config(config, naive)
        )
        return evaluate_match(match, ctx)

    def explain(
        self,
        text: str,
        catalog: Optional[CatalogSnapshot] = None,
        config: Optional[ExecutionConfig] = None,
    ) -> str:
        """A human-readable sketch of how a query would be evaluated.

        Pattern atoms are listed in planner order with the heuristic
        score and — when the target graph is resolvable — the estimated
        output cardinality each atom had at selection time, followed by
        the WHERE pushdown assignment: which conjuncts filter at which
        atom's probe, which apply as post-atom filters, and which remain
        residual at block end. The header reports whether the query text
        currently sits in the prepared-query cache (``plan: cached`` vs
        ``plan: cold``) and the :class:`~repro.config.ExecutionConfig`
        lattice point the run would execute at (``config: ...``).
        *catalog* pins name resolution to a snapshot
        (:meth:`EngineSnapshot.explain` passes it). The sketch ends
        with a ``diagnostics:`` block listing the static analyzer's
        findings for the statement (``diagnostics: none`` when clean) —
        see ``docs/analysis.md``.
        """
        from .eval.match import decompose_chain, _AnonNamer
        from .eval.planner import explain_order, order_atoms
        from .eval.pushdown import PushdownPlan
        from .lang.pretty import pretty_chain, pretty_expr

        resolver = catalog if catalog is not None else self.catalog
        statement = self.parse(text)
        if isinstance(statement, ast.GraphViewStmt):
            query = statement.query
        else:
            query = statement
        cached = "cached" if self.is_plan_cached(text) else "cold"
        active = config if config is not None else DEFAULT_CONFIG
        lines: List[str] = [
            f"plan: {cached}",
            f"config: {active.describe()}",
        ]
        if isinstance(statement, ast.GraphViewStmt):
            from .eval.maintenance import analyze_view, describe_strategy

            plan = analyze_view(statement.query, resolver)
            lines.append(
                f"view maintenance: {describe_strategy(plan)}"
            )
        # Execution always runs with every $param bound (PreparedQuery
        # rejects missing ones before evaluating), so the pushdown
        # totality analysis must see the parameters as present — else
        # EXPLAIN would report a $param conjunct as residual while the
        # actual run pushes it.
        param_names: Set[str] = set()
        _collect_params(statement, param_names)
        bound_params = dict.fromkeys(param_names)

        def location_graph(location) -> Optional[PathPropertyGraph]:
            """Best-effort resolution of a pattern's target graph."""
            try:
                if location.on is None:
                    return resolver.default_graph()
                if isinstance(location.on, str):
                    return resolver.graph(location.on)
            except Exception:
                return None
            return None  # ON (subquery): no statistics without running it

        def walk_body(body, indent: str) -> None:
            if isinstance(body, ast.SetOpQuery):
                lines.append(f"{indent}{body.op.upper()}")
                walk_body(body.left, indent + "  ")
                walk_body(body.right, indent + "  ")
            elif isinstance(body, ast.GraphRefQuery):
                lines.append(f"{indent}graph {body.name}")
            elif isinstance(body, ast.BasicQuery):
                head = "SELECT" if isinstance(body.head, ast.SelectClause) else "CONSTRUCT"
                lines.append(f"{indent}{head}")
                if body.from_table:
                    lines.append(f"{indent}  FROM table {body.from_table}")
                if body.match is not None:
                    blocks = [body.match.block, *body.match.optionals]
                    for b_index, block in enumerate(blocks):
                        tag = "MATCH" if b_index == 0 else "OPTIONAL"
                        lines.append(f"{indent}  {tag}")
                        namer = _AnonNamer()
                        plan = (
                            PushdownPlan(block.where, bound_params)
                            if block.where is not None
                            else None
                        )
                        pushed_props = (
                            plan.pushed_property_keys() or None
                            if plan is not None
                            else None
                        )
                        bound_sim: Set[str] = set()
                        for location in block.patterns:
                            on = (
                                location.on
                                if isinstance(location.on, str)
                                else "<subquery>" if location.on else "<default>"
                            )
                            lines.append(
                                f"{indent}    pattern ON {on}: "
                                f"{pretty_chain(location.chain)}"
                            )
                            graph = location_graph(location)
                            stats = (
                                graph.statistics() if graph is not None else None
                            )
                            atoms = decompose_chain(location.chain, namer)
                            lines.append(
                                explain_order(
                                    atoms, set(), stats=stats,
                                    pushed_props=pushed_props,
                                )
                            )
                            if plan is not None:
                                ordered = order_atoms(
                                    atoms, set(), stats=stats,
                                    pushed_props=pushed_props,
                                )
                                for push_line in plan.simulate(
                                    ordered, bound_sim
                                ):
                                    lines.append(f"{indent}    {push_line}")
                        if plan is not None:
                            for expr in plan.remaining():
                                lines.append(
                                    f"{indent}    residual "
                                    f"{pretty_expr(expr)}"
                                )

        for head in query.heads:
            if isinstance(head, ast.PathClause):
                lines.append(f"PATH VIEW {head.name}")
            else:
                lines.append(f"LOCAL GRAPH {head.name}")
        walk_body(query.body, "")
        # Static-analysis findings last: warnings/infos that never block
        # execution but explain surprising plans (and, in strict mode,
        # the errors run() would reject the statement for).
        diagnostics = analyze_statement(text, resolver)
        if not diagnostics:
            lines.append("diagnostics: none")
        else:
            lines.append("diagnostics:")
            for diagnostic in diagnostics:
                lines.append(f"  {diagnostic.describe()}")
        return "\n".join(lines)
