"""CLI entry point: ``python -m repro.bench [experiment ...]``."""

from __future__ import annotations

import sys

from .harness import EXPERIMENTS, run_all, run_experiment


def main(argv: list) -> int:
    if not argv:
        print(run_all())
        return 0
    unknown = [name for name in argv if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"available: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in argv:
        print("#" * 72)
        print(f"# {name}")
        print("#" * 72)
        print(run_experiment(name))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
