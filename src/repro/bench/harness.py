"""The experiment harness: regenerate every table and figure of the paper.

Each ``report_*`` function reproduces one artifact (see the
per-experiment index in DESIGN.md) and returns the text the paper's
version of the artifact would contain — survey counts for Figure 1,
formal components for Figure 2, binding tables for the Section 3 tour,
view contents for Figure 5, the Table 1 feature matrix, and the measured
scaling exponents backing the Section 4 tractability claim.

``python -m repro.bench [experiment ...]`` prints them.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Tuple

from ..datasets import company_graph, figure2_graph, orders_table, social_graph
from ..datasets.generator import SnbParameters, generate_snb_graph
from ..engine import GCoreEngine
from ..lang import ast
from ..model.builder import GraphBuilder
from ..paths.automaton import compile_regex
from ..paths.product import PathFinder
from ..paths.simplepaths import count_simple_paths
from ..table import Table

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]


def _tour_engine() -> GCoreEngine:
    engine = GCoreEngine()
    engine.register_graph("social_graph", social_graph(), default=True)
    engine.register_graph("company_graph", company_graph())
    engine.register_table("orders", orders_table())
    return engine


# ---------------------------------------------------------------------------
# Figure 1 — usage characteristics (survey data + executable witnesses)
# ---------------------------------------------------------------------------

FIGURE1_FIELDS = [
    ("healthcare / pharma", 14), ("publishing", 10),
    ("finance / insurance", 6), ("cultural heritage", 6),
    ("e-commerce", 5), ("social media", 4), ("telecommunications", 4),
]
FIGURE1_FEATURES = [
    ("graph reachability", 36), ("graph construction", 34),
    ("pattern matching", 32), ("shortest path search", 19),
    ("graph clustering", 14),
]

_FEATURE_WITNESSES = {
    "graph reachability":
        "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) "
        "WHERE n.firstName = 'John'",
    "graph construction":
        "CONSTRUCT (x GROUP e :Company {name:=e})<-[:worksAt]-(n) "
        "MATCH (n:Person {employer=e})",
    "pattern matching":
        "CONSTRUCT (n)-[:coFan]->(m) MATCH "
        "(n:Person)-[:hasInterest]->(t:Tag)<-[:hasInterest]-(m:Person)",
    "shortest path search":
        "CONSTRUCT (n)-/@p:route/->(m) "
        "MATCH (n:Person)-/p<:knows*>/->(m:Person) "
        "WHERE n.firstName = 'John'",
    "graph clustering":
        "CONSTRUCT (x GROUP c :Community {members := COUNT(*)}) "
        "MATCH (n:Person)-[:isLocatedIn]->(c)",
}


def report_figure1() -> str:
    """Figure 1: the TUC survey table + a live witness query per feature."""
    lines = ["Figure 1 — Graph database usage characteristics "
             "(LDBC TUC meetings 2012-2017)", ""]
    lines.append(f"{'Application Fields':<24}{'':>4}    "
                 f"{'Used Features':<24}{'':>4}")
    rows = max(len(FIGURE1_FIELDS), len(FIGURE1_FEATURES))
    for index in range(rows):
        field, fcount = ("", "")
        feature, ucount = ("", "")
        if index < len(FIGURE1_FIELDS):
            field, fcount = FIGURE1_FIELDS[index]
        if index < len(FIGURE1_FEATURES):
            feature, ucount = FIGURE1_FEATURES[index]
        lines.append(f"{field:<24}{fcount:>4}    {feature:<24}{ucount:>4}")
    lines.append("")
    lines.append("Executable witness per feature class "
                 "(generated SNB graph, 50 persons):")
    engine = GCoreEngine()
    engine.register_graph(
        "snb", generate_snb_graph(SnbParameters(persons=50)), default=True
    )
    for feature, _ in FIGURE1_FEATURES:
        query = _FEATURE_WITNESSES[feature]
        start = time.perf_counter()
        result = engine.run(query)
        elapsed = (time.perf_counter() - start) * 1000
        size = (f"{result.order()} nodes / {result.size()} edges"
                if hasattr(result, "order") else f"{len(result)} rows")
        lines.append(f"  {feature:<24} -> {size:<28} [{elapsed:7.1f} ms]")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 2 — the formal example PPG
# ---------------------------------------------------------------------------

def report_figure2() -> str:
    """Figure 2 / Example 2.2: the formal components of the toy PPG."""
    g = figure2_graph()
    lines = ["Figure 2 — A small social network (Path Property Graph)", ""]
    lines.append(f"N = {sorted(g.nodes)}")
    lines.append(f"E = {sorted(g.edges)}")
    lines.append(f"P = {sorted(g.paths)}")
    lines.append("rho   = {" + ", ".join(
        f"{e} -> {g.endpoints(e)}" for e in sorted(g.edges)) + "}")
    lines.append(f"delta = {{301 -> {list(g.path_sequence(301))}}}")
    lines.append("lambda: " + ", ".join(
        f"{obj} -> {sorted(g.labels(obj))}"
        for obj in sorted(g.nodes | g.paths) if g.labels(obj)))
    lines.append(f"sigma(101, name)  = {sorted(g.property(101, 'name'))}")
    lines.append(f"sigma(205, since) = {sorted(g.property(205, 'since'))}")
    lines.append(f"sigma(301, trust) = {sorted(g.property(301, 'trust'))}")
    lines.append(f"nodes(301) = {list(g.path_nodes(301))}")
    lines.append(f"edges(301) = {list(g.path_edges(301))}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 4 — the guided-tour binding tables
# ---------------------------------------------------------------------------

def report_figure4() -> str:
    """The binding tables the paper prints in Section 3."""
    engine = _tour_engine()
    lines = ["Figure 4 instance — Section 3 binding tables", ""]
    lines.append("MATCH (c:Company) ON company_graph, (n:Person) ON "
                 "social_graph WHERE c.name = n.employer")
    lines.append(engine.bindings(
        "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
        "WHERE c.name = n.employer").pretty())
    lines.append("")
    lines.append("... WHERE c.name IN n.employer   (rescues Frank)")
    lines.append(engine.bindings(
        "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
        "WHERE c.name IN n.employer").pretty())
    lines.append("")
    lines.append("... (n:Person {employer=e}) WHERE c.name = e   (unrolled)")
    lines.append(engine.bindings(
        "MATCH (c:Company) ON company_graph, "
        "(n:Person {employer=e}) ON social_graph WHERE c.name = e").pretty())
    lines.append("")
    cartesian = engine.bindings(
        "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph"
    )
    lines.append(f"Cartesian product (no WHERE): {len(cartesian)} rows "
                 f"(paper: 20)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 5 — the two views and the final result
# ---------------------------------------------------------------------------

def report_figure5() -> str:
    """Figure 5: nr_messages, the :toWagner paths, the :wagnerFriend edge."""
    engine = _tour_engine()
    engine.run(
        "GRAPH VIEW social_graph1 AS (CONSTRUCT social_graph, (n)-[e]->(m) "
        "SET e.nr_messages := COUNT(*) MATCH (n)-[e:knows]->(m) "
        "WHERE (n:Person) AND (m:Person) "
        "OPTIONAL (n)<-[c1]-(msg1:Post|Comment), (msg1)-[:reply_of]-(msg2), "
        "(msg2:Post|Comment)-[c2]->(m) "
        "WHERE (c1:has_creator) AND (c2:has_creator))"
    )
    engine.run(
        "GRAPH VIEW social_graph2 AS (PATH wKnows = (x)-[e:knows]->(y) "
        "WHERE NOT 'Acme' IN y.employer COST 1 / (1 + e.nr_messages) "
        "CONSTRUCT social_graph1, (n)-/@p:toWagner/->(m) "
        "MATCH (n:Person)-/p<~wKnows*>/->(m:Person) ON social_graph1 "
        "WHERE (m)-[:hasInterest]->(:Tag {name='Wagner'}) "
        "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) "
        "AND n.firstName = 'John' AND n.lastName = 'Doe')"
    )
    g1 = engine.graph("social_graph1")
    g2 = engine.graph("social_graph2")
    lines = ["Figure 5 — social_graph1 and social_graph2", ""]
    lines.append("nr_messages per knows edge:")
    for edge in sorted(g1.edges_with_label("knows"), key=str):
        src, dst = g1.endpoints(edge)
        (count,) = g1.property(edge, "nr_messages")
        lines.append(f"  {src:>7} -> {dst:<7}: {count}")
    lines.append("")
    lines.append("Stored :toWagner paths (both via Peter):")
    for pid in sorted(g2.paths_with_label("toWagner"), key=str):
        lines.append("  " + " -> ".join(str(n) for n in g2.path_nodes(pid)))
    final = engine.run(
        "CONSTRUCT (n)-[e:wagnerFriend {score:=COUNT(*)}]->(m) "
        "WHEN e.score > 0 "
        "MATCH (n:Person)-/@p:toWagner/->(), (m:Person) ON social_graph2 "
        "WHERE m = nodes(p)[1]"
    )
    lines.append("")
    for edge in final.edges:
        src, dst = final.endpoints(edge)
        (score,) = final.property(edge, "score")
        lines.append(
            f"Final result: ({src})-[:wagnerFriend {{score: {score}}}]->"
            f"({dst})   (paper: John->Peter, score 2)"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 1 — the feature matrix
# ---------------------------------------------------------------------------

def report_table1() -> str:
    """Table 1: feature x guided-tour-lines, each executed and timed."""
    engine = _tour_engine()
    rows: List[Tuple[str, str, str]] = []

    def check(feature: str, lines: str, query: str, validate) -> None:
        start = time.perf_counter()
        try:
            result = engine.run(query)
            ok = bool(validate(result)) if validate else True
            status = "OK" if ok else "MISMATCH"
        except Exception as exc:  # pragma: no cover - report, don't die
            status = f"FAIL ({type(exc).__name__})"
        elapsed = (time.perf_counter() - start) * 1000
        rows.append((feature, lines, f"{status} [{elapsed:6.1f} ms]"))

    check("Matching all patterns (homomorphism)", "*",
          "CONSTRUCT (n)-[e]->(m) MATCH (n)-[e:knows]->(m)",
          lambda g: len(g.edges) == 10)
    check("Matching literal values", "18, 22",
          "CONSTRUCT (n) MATCH (n:Person {name='does-not-exist'})",
          lambda g: g.is_empty())
    check("Matching k shortest paths", "24",
          "CONSTRUCT (n)-/@p/->(m) MATCH (n)-/3 SHORTEST p<:knows*>/->(m) "
          "WHERE (n:Person) AND (m:Person) AND n.firstName = 'John'",
          lambda g: g.paths)
    check("Matching all shortest paths", "29",
          "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) "
          "WHERE n.firstName = 'John'",
          lambda g: len(g.nodes) == 5)
    check("Matching weighted shortest paths", "60",
          "PATH w = (x)-[e:knows]->(y) COST 1 "
          "CONSTRUCT (n)-/@p/->(m) MATCH (n:Person)-/p<~w*>/->(m:Person) "
          "WHERE n.firstName = 'John'",
          lambda g: g.paths)
    check("(multi-segment) optional matching", "44",
          "CONSTRUCT (n) MATCH (n:Person) "
          "OPTIONAL (n)<-[c1]-(m1:Post|Comment), (m1)-[:reply_of]-(m2)",
          lambda g: len(g.nodes) == 5)
    check("Querying multiple graphs", "6",
          "CONSTRUCT (c)<-[:worksAt]-(n) MATCH (c:Company) ON company_graph, "
          "(n:Person) ON social_graph WHERE c.name IN n.employer",
          lambda g: len(g.edges) == 5)
    check("Queries on paths", "69",
          "CONSTRUCT (n)-/@q:probe/->(m) "
          "MATCH (n)-/q<:knows*>/->(m) WHERE (n:Person) AND (m:Person) "
          "AND n.firstName = 'John'", lambda g: g.paths)
    check("Filtering matches", "4,8,...",
          "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'",
          lambda g: len(g.nodes) == 2)
    check("Filtering path expressions", "58",
          "PATH nf = (x)-[e:knows]->(y) WHERE NOT 'Acme' IN y.employer "
          "CONSTRUCT (m) MATCH (n:Person)-/<~nf*>/->(m) "
          "WHERE n.firstName = 'John'", lambda g: g.nodes)
    check("Value joins", "8",
          "CONSTRUCT (c) MATCH (c:Company) ON company_graph, "
          "(n:Person) ON social_graph "
          "WHERE c.name = n.employer", lambda g: len(g.nodes) == 2)
    check("Cartesian product", "11",
          "CONSTRUCT (c), (n) MATCH (c:Company) ON company_graph, "
          "(n:Person) ON social_graph",
          lambda g: len(g.nodes) == 9)
    check("List membership", "13",
          "CONSTRUCT (n) MATCH (c:Company) ON company_graph, "
          "(n:Person) ON social_graph "
          "WHERE c.name IN n.employer", lambda g: len(g.nodes) == 4)
    check("Set operations on graphs", "8, 14, 19",
          "CONSTRUCT (n) MATCH (n:Person) UNION social_graph",
          lambda g: len(g.nodes) > 5)
    check("Existential subqueries (implicit)", "27, 31, 35",
          "CONSTRUCT (n) MATCH (n:Person), (m:Person) "
          "WHERE (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
          lambda g: len(g.nodes) == 5)
    check("Existential subqueries (explicit)", "36",
          "CONSTRUCT (n) MATCH (n:Person) WHERE EXISTS ("
          "CONSTRUCT () MATCH (n)-[:hasInterest]->(t))",
          lambda g: len(g.nodes) == 2)
    check("Graph construction", "*",
          "CONSTRUCT (n)-[:rel]->(m) MATCH (n:Person)-[:knows]->(m)",
          lambda g: g.edges)
    check("Graph aggregation", "21",
          "CONSTRUCT (x GROUP e :Company {name:=e}) "
          "MATCH (n:Person {employer=e})",
          lambda g: len(g.nodes) == 4)
    check("Graph projection", "23",
          "CONSTRUCT (n)-/p/->(m) MATCH (n:Person)-/ALL p<:knows*>/->"
          "(m:Person) WHERE n.firstName = 'John'",
          lambda g: g.edges)
    check("Graph views", "39, 57",
          "GRAPH VIEW t1feat AS (CONSTRUCT (n) MATCH (n:Person))",
          lambda v: len(v.graph.nodes) == 5)
    check("Property addition", "41",
          "CONSTRUCT (n) SET n.flag := TRUE MATCH (n:Person)",
          lambda g: g.property(next(iter(g.nodes)), "flag") == {True})

    width = max(len(feature) for feature, _, _ in rows) + 2
    lines = ["Table 1 — G-CORE features, executed on the Figure 4 instance",
             ""]
    lines.append(f"{'Feature':<{width}}{'Lines':<12}Status")
    lines.append("-" * (width + 30))
    for feature, line_refs, status in rows:
        lines.append(f"{feature:<{width}}{line_refs:<12}{status}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Complexity — Section 4's tractability, measured
# ---------------------------------------------------------------------------

def _time_query(engine: GCoreEngine, query: str, repeats: int = 3) -> float:
    statement = engine.parse(query)
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        engine.run(statement)
        best = min(best, time.perf_counter() - start)
    return best


def _fit_slope(points: List[Tuple[float, float]]) -> float:
    logs = [(math.log(x), math.log(y)) for x, y in points if y > 0]
    n = len(logs)
    sx = sum(x for x, _ in logs)
    sy = sum(y for _, y in logs)
    sxx = sum(x * x for x, _ in logs)
    sxy = sum(x * y for x, y in logs)
    return (n * sxy - sx * sy) / (n * sxx - sx * sx)


def report_complexity(sizes: Tuple[int, ...] = (25, 50, 100, 200)) -> str:
    """EXP-C1: log-log scaling of fixed queries + the NP-hard baseline."""
    queries = {
        "pattern matching":
            "CONSTRUCT (n)-[e:coFan]->(m) MATCH (n:Person)-[:hasInterest]->"
            "(t:Tag)<-[:hasInterest]-(m:Person)",
        "reachability":
            "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) "
            "WHERE n.firstName = 'John'",
        "shortest paths":
            "CONSTRUCT (n)-/@p/->(m) MATCH (n:Person)-/p<:knows*>/->"
            "(m:Person) WHERE n.firstName = 'John'",
        "aggregation":
            "CONSTRUCT (x GROUP c {members := COUNT(*)}) "
            "MATCH (n:Person)-[:isLocatedIn]->(c)",
    }
    lines = ["Section 4 — data complexity, measured", ""]
    header = f"{'query':<18}" + "".join(f"{s:>10}" for s in sizes) + "   slope"
    lines.append(header + "   (ms per size; slope = log-log exponent)")
    lines.append("-" * len(header))
    for name, query in queries.items():
        points = []
        cells = []
        for size in sizes:
            engine = GCoreEngine()
            engine.register_graph(
                "snb",
                generate_snb_graph(SnbParameters(persons=size)),
                default=True,
            )
            elapsed = _time_query(engine, query)
            points.append((float(size), elapsed))
            cells.append(f"{elapsed * 1000:>10.1f}")
        slope = _fit_slope(points)
        lines.append(f"{name:<18}" + "".join(cells) + f"   {slope:5.2f}")
    lines.append("")
    lines.append("NP-hard baseline (simple-path enumeration on ladders with "
                 "2^k paths)")
    lines.append(f"{'rungs':<18}" + "".join(f"{r:>10}" for r in (6, 8, 10, 12, 14)))
    walk_cells, enum_cells = [], []
    for rungs in (6, 8, 10, 12, 14):
        builder = GraphBuilder()
        builder.add_node("n0")
        previous = "n0"
        for i in range(rungs):
            for suffix in ("t", "b"):
                builder.add_node(f"{suffix}{i}")
            builder.add_node(f"n{i+1}")
            builder.add_edge(previous, f"t{i}", edge_id=f"e{i}a", labels=["k"])
            builder.add_edge(previous, f"b{i}", edge_id=f"e{i}b", labels=["k"])
            builder.add_edge(f"t{i}", f"n{i+1}", edge_id=f"e{i}c", labels=["k"])
            builder.add_edge(f"b{i}", f"n{i+1}", edge_id=f"e{i}d", labels=["k"])
            previous = f"n{i+1}"
        graph = builder.build()
        nfa = compile_regex(ast.RStar(ast.RLabel("k")))
        start = time.perf_counter()
        count_simple_paths(graph, nfa, "n0", previous)
        enum_cells.append(f"{(time.perf_counter() - start) * 1000:>10.1f}")
        finder = PathFinder(graph, nfa)
        start = time.perf_counter()
        finder.shortest("n0", previous)
        walk_cells.append(f"{(time.perf_counter() - start) * 1000:>10.1f}")
    lines.append(f"{'simple paths (ms)':<18}" + "".join(enum_cells))
    lines.append(f"{'walk search (ms)':<18}" + "".join(walk_cells))
    return "\n".join(lines)


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "figure1": report_figure1,
    "figure2": report_figure2,
    "figure4": report_figure4,
    "figure5": report_figure5,
    "table1": report_table1,
    "complexity": report_complexity,
}


def run_experiment(name: str) -> str:
    """Run a single experiment by id and return its report text."""
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[name]()


def run_all() -> str:
    """Run every experiment; returns the concatenated reports."""
    parts = []
    for name in EXPERIMENTS:
        parts.append("#" * 72)
        parts.append(f"# {name}")
        parts.append("#" * 72)
        parts.append(run_experiment(name))
        parts.append("")
    return "\n".join(parts)
