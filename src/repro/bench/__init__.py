"""The experiment harness regenerating every paper artifact.

Usage::

    python -m repro.bench            # run every experiment
    python -m repro.bench table1     # run one (figure1, figure2, figure4,
                                     # figure5, table1, complexity)
"""

from .harness import EXPERIMENTS, run_all, run_experiment

__all__ = ["EXPERIMENTS", "run_all", "run_experiment"]
