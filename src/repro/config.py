"""The unified execution-mode configuration: :class:`ExecutionConfig`.

The engine ships every performance-critical layer in (at least) two
implementations — a fast path and a serial reference oracle — plus a
worker-pool parallelism degree. Historically each axis had its own
ad-hoc switch (``naive=True``, ``ctx.columnar_executor``,
``ctx.vectorized_expressions``, ``refresh_view(incremental=...)``);
:class:`ExecutionConfig` consolidates all of them into one frozen,
validated value accepted by :meth:`GCoreEngine.run
<repro.engine.GCoreEngine.run>`, :meth:`~repro.engine.GCoreEngine.prepare`
executions, :meth:`~repro.engine.GCoreEngine.refresh_view`, the HTTP
wire protocol (the ``"config"`` request field) and the REPL ``.config``
command. The full mode lattice:

========== =========================== ==============================
axis       values                      selects
========== =========================== ==============================
planner    ``cost | greedy | naive``   atom ordering strategy
executor   ``columnar | reference``    binding-table pipeline
expressions ``vectorized | interpreted`` WHERE/SELECT/GROUP BY engine
paths      ``batched | naive``         path-search engine
view_refresh ``incremental | full``    GRAPH VIEW maintenance
parallelism ``int >= 1`` (``"serial"`` = 1) morsel worker-pool size
========== =========================== ==============================

``DEFAULT_CONFIG`` is the fast serial lattice point; ``NAIVE_CONFIG``
is the full row-at-a-time reference column that the deprecated
``naive=True`` argument maps onto. Invalid axis values raise
:class:`~repro.errors.ValidationError` (wire code ``validation_error``),
as do unknown keys in :meth:`ExecutionConfig.from_json`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Mapping, Union

from .errors import ValidationError

__all__ = ["DEFAULT_CONFIG", "NAIVE_CONFIG", "ExecutionConfig"]

#: Closed value sets of the categorical axes, in declaration order.
AXIS_VALUES: Dict[str, tuple] = {
    "planner": ("cost", "greedy", "naive"),
    "executor": ("columnar", "reference"),
    "expressions": ("vectorized", "interpreted"),
    "paths": ("batched", "naive"),
    "view_refresh": ("incremental", "full"),
}

#: Hard ceiling on the worker-pool size (a fat-finger guard, not a tune).
MAX_PARALLELISM = 64


@dataclasses.dataclass(frozen=True)
class ExecutionConfig:
    """One point of the engine-mode lattice (immutable and hashable)."""

    planner: str = "cost"
    executor: str = "columnar"
    expressions: str = "vectorized"
    paths: str = "batched"
    view_refresh: str = "incremental"
    #: Worker-pool size for morsel-driven execution; 1 = serial. The
    #: string ``"serial"`` is accepted (and normalized to 1) everywhere
    #: a config is built, including the JSON wire format.
    parallelism: int = 1

    def __post_init__(self) -> None:
        for axis, values in AXIS_VALUES.items():
            value = getattr(self, axis)
            if value not in values:
                raise ValidationError(
                    f"invalid ExecutionConfig {axis}={value!r}; "
                    f"expected one of {'|'.join(values)}"
                )
        parallelism = self.parallelism
        if parallelism == "serial":
            object.__setattr__(self, "parallelism", 1)
            return
        if (
            not isinstance(parallelism, int)
            or isinstance(parallelism, bool)
            or not 1 <= parallelism <= MAX_PARALLELISM
        ):
            raise ValidationError(
                "invalid ExecutionConfig parallelism="
                f"{parallelism!r}; expected 'serial' or an integer in "
                f"[1, {MAX_PARALLELISM}]"
            )

    # ------------------------------------------------------------------
    @property
    def serial(self) -> bool:
        """True when no worker pool is involved (``parallelism == 1``)."""
        return self.parallelism <= 1

    def with_(self, **changes: Any) -> "ExecutionConfig":
        """A copy with *changes* applied (validated like the constructor)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    @classmethod
    def from_json(
        cls, raw: Union[None, Mapping[str, Any]]
    ) -> "ExecutionConfig":
        """Decode the wire form; unknown keys are a ``validation_error``.

        ``None`` and ``{}`` both mean "the default lattice point", so
        clients can always send a ``config`` object.
        """
        if raw is None:
            return DEFAULT_CONFIG
        if not isinstance(raw, Mapping):
            raise ValidationError("'config' must be a JSON object")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ValidationError(
                f"unknown ExecutionConfig keys: {', '.join(unknown)}; "
                f"expected a subset of {', '.join(sorted(known))}"
            )
        return cls(**dict(raw))

    def to_json(self) -> Dict[str, Any]:
        """The wire form: a plain dict, ``parallelism`` as ``"serial"``/int."""
        payload = dataclasses.asdict(self)
        if self.parallelism <= 1:
            payload["parallelism"] = "serial"
        return payload

    def describe(self) -> str:
        """One EXPLAIN/REPL line: ``planner=cost executor=columnar ...``."""
        parts = [
            f"{axis}={getattr(self, axis)}" for axis in AXIS_VALUES
        ]
        parts.append(
            "parallelism="
            + ("serial" if self.parallelism <= 1 else str(self.parallelism))
        )
        return " ".join(parts)


#: The default fast lattice point (what ``engine.run(text)`` executes).
DEFAULT_CONFIG = ExecutionConfig()

#: The full reference column — what the deprecated ``naive=True`` maps to.
NAIVE_CONFIG = ExecutionConfig(
    planner="naive",
    executor="reference",
    expressions="interpreted",
    paths="naive",
)
