"""Bindings and binding tables — Appendix A.1 of the paper.

A *binding* is a partial function from variables to graph objects or
literal values. The MATCH clause produces a *set* of bindings, which the
paper also visualizes as a table with one column per variable; both views
are provided here. Bindings are immutable and hashable so tables behave
as sets (duplicate bindings collapse), exactly matching the formal model.

Partiality matters: a variable missing from a binding's domain (e.g. after
an OPTIONAL block that did not match) is *compatible* with any value of
that variable in another binding — compatibility only constrains the
intersection of the domains.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

__all__ = ["Binding", "BindingTable", "EMPTY_BINDING"]


class Binding(Mapping[str, Any]):
    """An immutable partial assignment of variables to values."""

    __slots__ = ("_data", "_hash")

    def __init__(self, data: Optional[Mapping[str, Any]] = None) -> None:
        self._data: Dict[str, Any] = dict(data or {})
        self._hash: Optional[int] = None

    # Mapping protocol -------------------------------------------------
    def __getitem__(self, var: str) -> Any:
        return self._data[var]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, var: object) -> bool:
        return var in self._data

    # Set-of-bindings support -------------------------------------------
    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._data.items()))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Binding):
            return self._data == other._data
        if isinstance(other, Mapping):
            return self._data == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{var}={self._data[var]!r}" for var in sorted(self._data)
        )
        return "{" + inner + "}"

    # Operations ---------------------------------------------------------
    @property
    def domain(self) -> FrozenSet[str]:
        """``dom(mu)`` — the set of variables this binding assigns."""
        return frozenset(self._data)

    def get(self, var: str, default: Any = None) -> Any:
        return self._data.get(var, default)

    def compatible(self, other: "Binding") -> bool:
        """``mu1 ~ mu2``: agreement on the intersection of the domains."""
        if len(self._data) > len(other._data):
            self, other = other, self
        for var, value in self._data.items():
            if var in other._data and other._data[var] != value:
                return False
        return True

    def merge(self, other: "Binding") -> "Binding":
        """``mu1 u mu2`` for compatible bindings (caller checks compatibility)."""
        merged = dict(self._data)
        merged.update(other._data)
        return Binding(merged)

    def extend(self, var: str, value: Any) -> "Binding":
        """A new binding that additionally maps *var* to *value*."""
        extended = dict(self._data)
        extended[var] = value
        return Binding(extended)

    def extend_many(self, items: Mapping[str, Any]) -> "Binding":
        """A new binding with all of *items* added."""
        extended = dict(self._data)
        extended.update(items)
        return Binding(extended)

    def project(self, variables: Iterable[str]) -> "Binding":
        """Restrict the binding to *variables* (missing ones are dropped)."""
        return Binding(
            {var: self._data[var] for var in variables if var in self._data}
        )

    def drop(self, variables: Iterable[str]) -> "Binding":
        """Remove *variables* from the binding's domain."""
        doomed = set(variables)
        return Binding(
            {var: val for var, val in self._data.items() if var not in doomed}
        )


EMPTY_BINDING = Binding()


class BindingTable:
    """A set of bindings, with an ordered list of display columns.

    The *columns* record every variable that may appear in the table (the
    union of pattern variables), while individual rows may be partial.
    Rows are deduplicated on construction, so the table is semantically the
    set the formal semantics manipulates.
    """

    __slots__ = ("_columns", "_rows")

    def __init__(
        self,
        columns: Sequence[str] = (),
        rows: Iterable[Binding] = (),
    ) -> None:
        self._columns: Tuple[str, ...] = tuple(dict.fromkeys(columns))
        seen = set()
        unique: List[Binding] = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        self._rows: Tuple[Binding, ...] = tuple(unique)

    # ------------------------------------------------------------------
    @classmethod
    def unit(cls) -> "BindingTable":
        """The table containing only the empty binding (join identity)."""
        return cls((), (EMPTY_BINDING,))

    @classmethod
    def empty(cls, columns: Sequence[str] = ()) -> "BindingTable":
        """The table with no rows (join annihilator)."""
        return cls(columns, ())

    @property
    def columns(self) -> Tuple[str, ...]:
        return self._columns

    @property
    def rows(self) -> Tuple[Binding, ...]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Binding]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BindingTable):
            return NotImplemented
        return set(self._rows) == set(other._rows)

    def __repr__(self) -> str:
        return f"<BindingTable {list(self._columns)} with {len(self._rows)} rows>"

    # ------------------------------------------------------------------
    def with_columns(self, columns: Sequence[str]) -> "BindingTable":
        """The same rows under a widened column list."""
        return BindingTable(tuple(self._columns) + tuple(columns), self._rows)

    def maximal_domain(self) -> FrozenSet[str]:
        """The union of all row domains (used by COUNT(*) semantics)."""
        dom: set = set()
        for row in self._rows:
            dom |= row.domain
        return frozenset(dom)

    def project(self, variables: Sequence[str]) -> "BindingTable":
        """Project (and deduplicate) onto *variables*."""
        return BindingTable(
            variables, (row.project(variables) for row in self._rows)
        )

    def drop(self, variables: Iterable[str]) -> "BindingTable":
        """Drop *variables* from columns and rows (deduplicates)."""
        doomed = set(variables)
        remaining = [c for c in self._columns if c not in doomed]
        return BindingTable(remaining, (row.drop(doomed) for row in self._rows))

    def filter(self, predicate) -> "BindingTable":
        """Keep rows satisfying *predicate* (a ``Binding -> bool``)."""
        return BindingTable(
            self._columns, (row for row in self._rows if predicate(row))
        )

    def pretty(self, limit: int = 25) -> str:
        """Render the table the way the paper prints binding tables."""
        columns = list(self._columns) or sorted(self.maximal_domain())
        widths = {c: len(c) for c in columns}
        rendered: List[List[str]] = []
        for row in self._rows[:limit]:
            cells = []
            for column in columns:
                if column in row:
                    text = _render_cell(row[column])
                else:
                    text = ""
                widths[column] = max(widths[column], len(text))
                cells.append(text)
            rendered.append(cells)
        header = " | ".join(c.ljust(widths[c]) for c in columns)
        separator = "-+-".join("-" * widths[c] for c in columns)
        lines = [header, separator]
        for cells in rendered:
            lines.append(
                " | ".join(
                    cell.ljust(widths[column])
                    for column, cell in zip(columns, cells)
                )
            )
        if len(self._rows) > limit:
            lines.append(f"... ({len(self._rows) - limit} more rows)")
        return "\n".join(lines)


def _render_cell(value: Any) -> str:
    from ..model.values import format_value_set, is_scalar, format_scalar

    if isinstance(value, frozenset):
        return format_value_set(value)
    if is_scalar(value):
        return format_scalar(value)
    return str(value)
